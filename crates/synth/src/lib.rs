//! # ig-synth
//!
//! Procedural simulacra of the paper's five industrial datasets
//! (Table 1). The real data is proprietary (Product), or an external
//! download (KSDD, NEU); none is available here, so each dataset is
//! replaced by a seeded generator that reproduces the *statistical
//! structure the paper's experiments depend on*:
//!
//! | Dataset | Structure preserved |
//! |---|---|
//! | KSDD | jagged random-walk **cracks** whose shape varies a lot (policy augmentation pays off), strong class imbalance (52/399) |
//! | Product (scratch) | long thin oriented **scratches** anywhere on a strip image, mild imbalance (727/1673), large defects |
//! | Product (bubble) | tiny circular **bubbles**, heavy imbalance (102/1048) — small defects defeat object-centric labeling |
//! | Product (stamping) | small **stampings at fixed positions** (148/1094) — position-sensitive CNNs excel here |
//! | NEU | six **texture classes covering the whole image**, balanced, multi-class |
//!
//! Every image also carries gold defect boxes (standing in for the expert
//! annotations the crowd simulation perturbs), plus `noisy` / `difficult`
//! flags that ground the Table 6 error taxonomy.
//!
//! [`synthnet`] generates a generic texture corpus that plays ImageNet's
//! role for the transfer-learning baseline (Table 2).

#![warn(missing_docs)]

pub mod defects;
pub mod ksdd;
pub mod neu;
pub mod product;
pub mod spec;
pub mod surface;
pub mod synthnet;

use ig_imaging::{BBox, GrayImage};
use serde::{Deserialize, Serialize};

pub use spec::DatasetSpec;

/// Classification task shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskType {
    /// Defect vs OK.
    Binary,
    /// One of `k` defect classes (every image has a defect).
    MultiClass(usize),
}

impl TaskType {
    /// Number of label values.
    pub fn num_classes(&self) -> usize {
        match self {
            TaskType::Binary => 2,
            TaskType::MultiClass(k) => *k,
        }
    }
}

/// The defect morphologies used across the five datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DefectKind {
    /// KSDD jagged crack.
    Crack,
    /// Product long thin scratch.
    Scratch,
    /// Product small round bubble.
    Bubble,
    /// Product fixed-position stamping.
    Stamping,
    /// NEU texture classes.
    RolledInScale,
    /// NEU patches.
    Patches,
    /// NEU crazing.
    Crazing,
    /// NEU pitted surface.
    PittedSurface,
    /// NEU inclusion.
    Inclusion,
    /// NEU scratches (distinct morphology from Product scratches).
    NeuScratch,
}

/// One generated image with its gold annotations.
#[derive(Debug, Clone)]
pub struct LabeledImage {
    /// Pixels in `[0, 1]`.
    pub image: GrayImage,
    /// Gold label: 0 = OK / class index for multi-class.
    pub label: usize,
    /// Gold defect bounding boxes (empty for OK images).
    pub defect_boxes: Vec<BBox>,
    /// Image was corrupted with acquisition noise (Table 6 "noisy data").
    pub noisy: bool,
    /// Defect drawn at near-invisible contrast (Table 6 "difficult").
    pub difficult: bool,
}

impl LabeledImage {
    /// Binary convenience: does the gold label say "defective"?
    pub fn is_defective(&self) -> bool {
        self.label != 0 || !self.defect_boxes.is_empty()
    }
}

/// A full generated dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Human-readable name matching the paper's Table 1 rows.
    pub name: String,
    /// Task shape.
    pub task: TaskType,
    /// All images, shuffled.
    pub images: Vec<LabeledImage>,
}

impl Dataset {
    /// Number of images (Table 1's `N`).
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// Number of defective images (Table 1's `N_D`). For multi-class
    /// datasets every image is defective.
    pub fn num_defective(&self) -> usize {
        match self.task {
            TaskType::Binary => self.images.iter().filter(|i| i.label == 1).count(),
            TaskType::MultiClass(_) => self.images.len(),
        }
    }

    /// Gold labels in image order.
    pub fn labels(&self) -> Vec<usize> {
        self.images.iter().map(|i| i.label).collect()
    }

    /// Image dimensions (all images in a dataset share one size).
    pub fn image_dims(&self) -> (usize, usize) {
        self.images
            .first()
            .map(|i| i.image.dims())
            .unwrap_or((0, 0))
    }
}

/// Generate the dataset matching a [`DatasetSpec`].
pub fn generate(spec: &DatasetSpec) -> Dataset {
    match spec.kind {
        spec::DatasetKind::Ksdd => ksdd::generate(spec),
        spec::DatasetKind::ProductScratch => product::generate(spec, DefectKind::Scratch),
        spec::DatasetKind::ProductBubble => product::generate(spec, DefectKind::Bubble),
        spec::DatasetKind::ProductStamping => product::generate(spec, DefectKind::Stamping),
        spec::DatasetKind::Neu => neu::generate(spec),
    }
}

/// Generate only images `start..end` of [`generate`]'s output —
/// bit-identical to slicing the full dataset, without materializing it.
///
/// This is the synthesis half of the runtime's out-of-core tier: a
/// sharded run asks each shard for its slice of the *shuffled* dataset,
/// so slices must agree with the monolithic path image-for-image. Ranges
/// past the end are clamped; an inverted range is empty.
pub fn generate_range(spec: &DatasetSpec, start: usize, end: usize) -> Dataset {
    match spec.kind {
        spec::DatasetKind::Ksdd => ksdd::generate_range(spec, start, end),
        spec::DatasetKind::ProductScratch => {
            product::generate_range(spec, DefectKind::Scratch, start, end)
        }
        spec::DatasetKind::ProductBubble => {
            product::generate_range(spec, DefectKind::Bubble, start, end)
        }
        spec::DatasetKind::ProductStamping => {
            product::generate_range(spec, DefectKind::Stamping, start, end)
        }
        spec::DatasetKind::Neu => neu::generate_range(spec, start, end),
    }
}

/// Replay machinery behind every generator's `generate_range`: produce
/// images `start..end` of the shuffled output while holding at most one
/// off-range image in memory.
///
/// The generators draw one sequential RNG stream per dataset — surface
/// parameters, defect painting, and the final shuffle all interleave on
/// it — so a slice cannot skip ahead: the draws for image `k` depend on
/// every draw before it. Instead the slot loop runs twice from the same
/// seed:
///
/// 1. **Census pass** — run `emit`, dropping every image as it is built
///    (peak: one image), purely to advance the RNG to the shuffle point;
///    then shuffle an index vector exactly as [`generate`] shuffles the
///    image vector. Fisher–Yates performs identical swaps for any
///    same-length vector under the same RNG state, so `order[j]` is the
///    pre-shuffle slot that lands at post-shuffle position `j`.
/// 2. **Keep pass** — run `emit` again from a fresh RNG, keeping only the
///    slots that land in `start..end` and dropping the rest as they are
///    built.
///
/// Painting runs twice per shard, but painting is orders of magnitude
/// cheaper than the pyramid/NCC work downstream of generation — the
/// memory bound is what matters at the `ooc` tier.
fn replay_range<F>(spec: &DatasetSpec, emit: F, start: usize, end: usize) -> Vec<LabeledImage>
where
    F: Fn(&DatasetSpec, &mut rand::rngs::StdRng, &mut dyn FnMut(LabeledImage)),
{
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(spec.seed);
    let mut n = 0usize;
    emit(spec, &mut rng, &mut |_| n += 1);
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut rng);
    let end = end.min(n);
    let start = start.min(end);
    // wanted[slot] = output position (relative to `start`), or MAX.
    let mut wanted: Vec<usize> = vec![usize::MAX; n];
    for (j, &slot) in order[start..end].iter().enumerate() {
        wanted[slot] = j;
    }
    let mut out: Vec<Option<LabeledImage>> = (start..end).map(|_| None).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(spec.seed);
    let mut slot = 0usize;
    emit(spec, &mut rng, &mut |img| {
        if let Some(&dst) = wanted.get(slot) {
            if dst != usize::MAX {
                out[dst] = Some(img);
            }
        }
        slot += 1;
    });
    out.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_type_class_counts() {
        assert_eq!(TaskType::Binary.num_classes(), 2);
        assert_eq!(TaskType::MultiClass(6).num_classes(), 6);
    }

    #[test]
    fn generate_dispatches_every_kind() {
        for kind in [
            spec::DatasetKind::Ksdd,
            spec::DatasetKind::ProductScratch,
            spec::DatasetKind::ProductBubble,
            spec::DatasetKind::ProductStamping,
            spec::DatasetKind::Neu,
        ] {
            let s = DatasetSpec::quick(kind, 42);
            let d = generate(&s);
            assert!(!d.is_empty(), "{kind:?} generated nothing");
            assert_eq!(d.len(), s.n);
        }
    }

    fn assert_same_image(a: &LabeledImage, b: &LabeledImage, at: String) {
        assert_eq!(a.label, b.label, "{at}: label");
        assert_eq!(a.noisy, b.noisy, "{at}: noisy");
        assert_eq!(a.difficult, b.difficult, "{at}: difficult");
        assert_eq!(a.defect_boxes.len(), b.defect_boxes.len(), "{at}: boxes");
        assert_eq!(a.image, b.image, "{at}: pixels");
    }

    #[test]
    fn generate_range_is_a_bit_identical_slice_for_every_kind() {
        for kind in [
            spec::DatasetKind::Ksdd,
            spec::DatasetKind::ProductScratch,
            spec::DatasetKind::ProductBubble,
            spec::DatasetKind::ProductStamping,
            spec::DatasetKind::Neu,
        ] {
            let s = DatasetSpec::quick(kind, 17);
            let whole = generate(&s);
            let n = whole.len();
            for (start, end) in [(0, n), (0, n / 2), (n / 3, (2 * n) / 3), (n - 1, n)] {
                let slice = generate_range(&s, start, end);
                assert_eq!(slice.name, whole.name, "{kind:?}");
                assert_eq!(slice.task, whole.task, "{kind:?}");
                assert_eq!(slice.len(), end - start, "{kind:?} [{start}..{end}]");
                for (j, img) in slice.images.iter().enumerate() {
                    assert_same_image(
                        img,
                        &whole.images[start + j],
                        format!("{kind:?} [{start}..{end}] + {j}"),
                    );
                }
            }
        }
    }

    #[test]
    fn generate_range_clamps_out_of_bounds() {
        let s = DatasetSpec::quick(spec::DatasetKind::Ksdd, 21);
        let whole = generate(&s);
        let n = whole.len();
        let past = generate_range(&s, n, n + 10);
        assert!(past.is_empty(), "range past the end is empty");
        let clamped = generate_range(&s, n - 2, n + 10);
        assert_eq!(clamped.len(), 2, "end clamps to n");
        let inverted = generate_range(&s, 5, 3);
        assert!(inverted.is_empty(), "inverted range is empty");
    }

    #[test]
    fn shards_reassemble_the_whole_dataset() {
        let s = DatasetSpec::quick(spec::DatasetKind::ProductBubble, 33);
        let whole = generate(&s);
        let n = whole.len();
        for count in [1usize, 3, n] {
            let mut cursor = 0usize;
            let mut streamed = Vec::new();
            for i in 0..count {
                let end = ((i + 1) * n) / count;
                streamed.extend(generate_range(&s, cursor, end).images);
                cursor = end;
            }
            assert_eq!(streamed.len(), n, "count={count}");
            for (j, img) in streamed.iter().enumerate() {
                assert_same_image(img, &whole.images[j], format!("count={count} image {j}"));
            }
        }
    }
}
