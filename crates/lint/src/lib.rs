//! `ig-lint` — workspace analyzer enforcing the determinism, panic-freedom,
//! and numeric-safety invariants the fault-injection subsystem's
//! bit-for-bit reproducibility contract rests on.
//!
//! Run as `cargo run -p ig-lint -- check`. See DESIGN.md §"Static
//! invariants" for the rule catalog and the allow-annotation convention.

pub mod annotations;
pub mod ast;
pub mod baseline;
pub mod callgraph;
pub mod context;
pub mod dataflow;
pub mod fix;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod symbols;
pub mod threads;

use std::fs;
use std::path::{Path, PathBuf};

use annotations::AllowIndex;
use callgraph::CallGraph;
use context::{
    classify, hot_loop_scope, strict_error_scope, test_mask, FileClass, FileContext, HOT_PATH_FILES,
};
use report::{Diagnostic, Report, ReportedAllow};
use symbols::Symbols;
use threads::ThreadTopology;

/// One source file queued for analysis, with class and hot-path pinned.
#[derive(Debug)]
pub struct SourceUnit {
    /// Workspace-relative path with forward slashes.
    pub rel_path: String,
    pub src: String,
    pub class: FileClass,
    pub hot_path: bool,
}

impl SourceUnit {
    /// Classify by path, as the workspace walk does.
    pub fn classified(rel_path: &str, src: String) -> SourceUnit {
        SourceUnit {
            rel_path: rel_path.to_string(),
            src,
            class: classify(rel_path),
            hot_path: HOT_PATH_FILES.contains(&rel_path),
        }
    }
}

/// Per-file analysis artifacts kept alive for the workspace pass.
struct ParsedUnit {
    lexed: lexer::Lexed,
    mask: Vec<bool>,
    allows: AllowIndex,
    ast: ast::Ast,
}

fn parse_unit(u: &SourceUnit) -> ParsedUnit {
    let lexed = lexer::lex(&u.src);
    let mask = test_mask(&lexed);
    let allows = AllowIndex::build(&lexed.comments, &lexed.tokens);
    // The AST may be partial on malformed input (ast.errors records where);
    // the token-level rules are unaffected either way.
    let ast = ast::parse(&lexed.tokens);
    ParsedUnit {
        lexed,
        mask,
        allows,
        ast,
    }
}

fn contexts<'a>(units: &'a [SourceUnit], parsed: &'a [ParsedUnit]) -> Vec<FileContext<'a>> {
    units
        .iter()
        .zip(parsed)
        .map(|(u, p)| FileContext {
            path: &u.rel_path,
            class: u.class,
            tokens: &p.lexed.tokens,
            in_test: &p.mask,
            allows: &p.allows,
            hot_path: u.hot_path,
            ast: &p.ast,
            hot_loop: hot_loop_scope(&u.rel_path),
            strict_errors: strict_error_scope(&u.rel_path),
        })
        .collect()
}

/// Analyze a set of units as one workspace: the per-file rules on each
/// unit, then the symbol table + call graph + thread topology and the
/// workspace rule families (F1 fingerprint-completeness, P1
/// stage-purity, C1 lock-discipline, A1 atomic-ordering, D1
/// salt-determinism) across all of them.
pub fn check_units(units: &[SourceUnit]) -> Vec<Diagnostic> {
    let parsed: Vec<ParsedUnit> = units.iter().map(parse_unit).collect();
    let ctxs = contexts(units, &parsed);
    let mut diags = Vec::new();
    for ctx in &ctxs {
        diags.extend(rules::check_file(ctx));
    }
    let sy = Symbols::build(&ctxs);
    let graph = CallGraph::build(&ctxs, &sy);
    let topo = ThreadTopology::build(&ctxs, &sy);
    rules::check_workspace_rules(&ctxs, &sy, &graph, &topo, &mut diags);
    diags
}

/// Analyze one source string as if it lived at `rel_path` (workspace
/// relative, forward slashes). This is the unit-testable core; the binary
/// and the fixture tests both go through it. The file forms a one-file
/// workspace, so the workspace rule families run too.
pub fn check_source(rel_path: &str, src: &str) -> Vec<Diagnostic> {
    check_source_as(rel_path, src, classify(rel_path))
}

/// Like [`check_source`], but with the file class pinned by the caller —
/// fixture tests use this to exercise library-code rules on files that
/// live under `tests/fixtures/`.
pub fn check_source_as(rel_path: &str, src: &str, class: FileClass) -> Vec<Diagnostic> {
    check_source_with(rel_path, src, class, HOT_PATH_FILES.contains(&rel_path))
}

/// Fully-pinned variant: class and hot-path flag both chosen by the caller.
pub fn check_source_with(
    rel_path: &str,
    src: &str,
    class: FileClass,
    hot_path: bool,
) -> Vec<Diagnostic> {
    let units = [SourceUnit {
        rel_path: rel_path.to_string(),
        src: src.to_string(),
        class,
        hot_path,
    }];
    check_units(&units)
}

/// Build the workspace call graph for `root` and return its byte-stable
/// JSON dump (`ig-lint callgraph`; CI commits it to
/// `results/callgraph.json` and fails on drift).
pub fn callgraph_json(root: &Path) -> std::io::Result<String> {
    Ok(callgraph_json_for_units(&load_units(root)?))
}

/// In-memory variant of [`callgraph_json`]: build the graph over the
/// given units and dump it. Total on malformed input — unparseable files
/// contribute whatever their recovered partial ASTs hold, and unresolved
/// callees become `unknown` nodes rather than errors.
pub fn callgraph_json_for_units(units: &[SourceUnit]) -> String {
    let parsed: Vec<ParsedUnit> = units.iter().map(parse_unit).collect();
    let ctxs = contexts(units, &parsed);
    let sy = Symbols::build(&ctxs);
    let graph = CallGraph::build(&ctxs, &sy);
    graph.to_json()
}

/// Build the workspace thread topology for `root` and return its
/// byte-stable JSON dump (`ig-lint threads`; CI commits it to
/// `results/threads.json` and fails on drift).
pub fn threads_json(root: &Path) -> std::io::Result<String> {
    Ok(threads_json_for_units(&load_units(root)?))
}

/// In-memory variant of [`threads_json`]: every spawn site with its
/// escape set, in (file, line) order. Total on malformed input — sites
/// the recovered AST holds are classified, the rest simply absent.
pub fn threads_json_for_units(units: &[SourceUnit]) -> String {
    let parsed: Vec<ParsedUnit> = units.iter().map(parse_unit).collect();
    let ctxs = contexts(units, &parsed);
    let sy = Symbols::build(&ctxs);
    let topo = ThreadTopology::build(&ctxs, &sy);
    topo.to_json(&ctxs, &sy)
}

/// Directories never scanned: build output, VCS, vendored stubs, run
/// artifacts, sample data, and the linter's own rule-violation fixtures.
const SKIP_DIRS: &[&str] = &[
    "target",
    ".git",
    ".offline-stubs",
    "results",
    "samples",
    "fixtures",
    ".github",
    ".claude",
];

/// Recursively collect every `.rs` file under `root`, sorted for
/// deterministic reports.
pub fn collect_rs_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = fs::read_dir(&dir)?;
        for entry in entries {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Read every scanned `.rs` file under `root` into classified units.
fn load_units(root: &Path) -> std::io::Result<Vec<SourceUnit>> {
    let files = collect_rs_files(root)?;
    let mut units = Vec::with_capacity(files.len());
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        units.push(SourceUnit::classified(&rel, fs::read_to_string(path)?));
    }
    Ok(units)
}

/// Analyze the whole workspace rooted at `root`.
pub fn check_workspace(root: &Path) -> std::io::Result<Report> {
    let units = load_units(root)?;
    let mut report = Report {
        files_scanned: units.len(),
        ..Report::default()
    };
    report.violations = check_units(&units);
    // Re-lex to list surviving allow annotations for the audit trail.
    for u in &units {
        let lexed = lexer::lex(&u.src);
        let allows = AllowIndex::build(&lexed.comments, &lexed.tokens);
        for a in allows.allows {
            if let Some(reason) = a.reason {
                report.allows.push(ReportedAllow {
                    path: u.rel_path.clone(),
                    line: a.annotation_line,
                    content_hash: baseline::line_content_hash(&u.src, a.target_line),
                    rules: a.rules,
                    reason,
                });
            }
        }
    }
    report
        .violations
        .sort_by(|a, b| (&a.path, a.line, a.col, &a.rule).cmp(&(&b.path, b.line, b.col, &b.rule)));
    Ok(report)
}
