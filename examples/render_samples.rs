//! Render sample images from every dataset simulacrum (plus a few crowd
//! patterns and RGAN fakes) as PGM files under `samples/`, for eyeball
//! inspection of what the generators and the augmenter actually produce.
//!
//! ```text
//! cargo run --release --example render_samples
//! # view with any image viewer, e.g.: feh samples/*.pgm
//! ```

use inspector_gadget::augment::gan::{Rgan, RganConfig};
use inspector_gadget::imaging::io::write_pgm;
use inspector_gadget::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> std::io::Result<()> {
    let out = std::path::Path::new("samples");
    std::fs::create_dir_all(out)?;
    let mut rng = StdRng::seed_from_u64(1);

    for kind in [
        DatasetKind::Ksdd,
        DatasetKind::ProductScratch,
        DatasetKind::ProductBubble,
        DatasetKind::ProductStamping,
        DatasetKind::Neu,
    ] {
        let dataset = inspector_gadget::synth::generate(&DatasetSpec::quick(kind, 1));
        let slug = dataset.name.to_lowercase().replace([' ', '(', ')'], "");
        // One defective and (when available) one OK sample.
        if let Some(defective) = dataset.images.iter().find(|l| l.is_defective()) {
            write_pgm(&defective.image, out.join(format!("{slug}_defective.pgm")))?;
        }
        if let Some(ok) = dataset.images.iter().find(|l| l.label == 0) {
            write_pgm(&ok.image, out.join(format!("{slug}_ok.pgm")))?;
        }
        println!("rendered {slug} samples");
    }

    // Crowd patterns and GAN fakes from the scratch dataset.
    let dataset =
        inspector_gadget::synth::generate(&DatasetSpec::quick(DatasetKind::ProductScratch, 2));
    let dev: Vec<&LabeledImage> = dataset.images.iter().take(20).collect();
    let crowd = CrowdWorkflow::full().run(&dev, &mut rng);
    for (i, pattern) in crowd.patterns.iter().take(4).enumerate() {
        write_pgm(pattern, out.join(format!("pattern_{i}.pgm")))?;
    }
    if !crowd.patterns.is_empty() {
        let gan = Rgan::train(&crowd.patterns, &RganConfig::quick(), &mut rng);
        for (i, fake) in gan.generate(4, &mut rng).iter().enumerate() {
            write_pgm(fake, out.join(format!("gan_fake_{i}.pgm")))?;
        }
    }
    println!(
        "rendered {} crowd patterns and 4 GAN fakes into {}/",
        crowd.patterns.len().min(4),
        out.display()
    );
    Ok(())
}
