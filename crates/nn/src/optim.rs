//! First-order optimizers on flat parameter vectors.
//!
//! Adam drives the RGAN (the paper trains generator and discriminator at
//! learning rate 1e-4) and the CNN baselines; plain SGD exists for tests
//! and ablations. The labeler itself uses L-BFGS (see [`crate::lbfgs`]).

/// Stochastic gradient descent with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables).
    pub momentum: f32,
    velocity: Vec<f32>,
}

impl Sgd {
    /// Create with the given learning rate and momentum.
    pub fn new(lr: f32, momentum: f32) -> Self {
        Self {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }

    /// Apply one update: `params -= lr * (grad + momentum-smoothed state)`.
    pub fn step(&mut self, params: &mut [f32], grad: &[f32]) {
        assert_eq!(params.len(), grad.len(), "gradient length mismatch");
        if self.velocity.len() != params.len() {
            self.velocity = vec![0.0; params.len()];
        }
        for ((p, &g), v) in params.iter_mut().zip(grad).zip(&mut self.velocity) {
            *v = self.momentum * *v + g;
            *p -= self.lr * *v;
        }
    }
}

/// Adam (Kingma & Ba, 2015) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// Exponential decay for the first moment.
    pub beta1: f32,
    /// Exponential decay for the second moment.
    pub beta2: f32,
    /// Numerical fuzz.
    pub eps: f32,
    m: Vec<f32>,
    v: Vec<f32>,
    t: u32,
}

impl Adam {
    /// Create with standard betas (0.9, 0.999).
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: Vec::new(),
            v: Vec::new(),
            t: 0,
        }
    }

    /// GAN-friendly variant with beta1 = 0.5, conventional for adversarial
    /// training stability.
    pub fn for_gan(lr: f32) -> Self {
        Self {
            beta1: 0.5,
            ..Self::new(lr)
        }
    }

    /// Apply one Adam update in place.
    pub fn step(&mut self, params: &mut [f32], grad: &[f32]) {
        assert_eq!(params.len(), grad.len(), "gradient length mismatch");
        if self.m.len() != params.len() {
            self.m = vec![0.0; params.len()];
            self.v = vec![0.0; params.len()];
            self.t = 0;
        }
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grad[i];
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = self.m[i] / b1t;
            let v_hat = self.v[i] / b2t;
            params[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u32 {
        self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Quadratic bowl f(x) = 0.5 * sum((x - c)^2); gradient x - c.
    fn quad_grad(x: &[f32], c: &[f32]) -> Vec<f32> {
        x.iter().zip(c).map(|(&a, &b)| a - b).collect()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let target = [1.0f32, -2.0, 3.0];
        let mut x = vec![0.0f32; 3];
        let mut opt = Sgd::new(0.1, 0.0);
        for _ in 0..200 {
            let g = quad_grad(&x, &target);
            opt.step(&mut x, &g);
        }
        for (a, b) in x.iter().zip(&target) {
            assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn sgd_momentum_accelerates() {
        let target = [5.0f32];
        let run = |momentum: f32| {
            let mut x = vec![0.0f32];
            let mut opt = Sgd::new(0.01, momentum);
            for _ in 0..50 {
                let g = quad_grad(&x, &target);
                opt.step(&mut x, &g);
            }
            (x[0] - target[0]).abs()
        };
        assert!(run(0.9) < run(0.0));
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let target = [0.5f32, -1.5, 2.5, 0.0];
        let mut x = vec![10.0f32; 4];
        let mut opt = Adam::new(0.1);
        for _ in 0..500 {
            let g = quad_grad(&x, &target);
            opt.step(&mut x, &g);
        }
        for (a, b) in x.iter().zip(&target) {
            assert!((a - b).abs() < 1e-2, "{a} vs {b}");
        }
    }

    #[test]
    fn adam_handles_ill_conditioned_scales() {
        // f = 0.5*(1000*x0^2 + x1^2): plain SGD with a stable lr crawls on
        // x1; Adam's per-coordinate scaling handles it.
        let mut x = vec![1.0f32, 1.0];
        let mut opt = Adam::new(0.05);
        for _ in 0..800 {
            let g = vec![1000.0 * x[0], x[1]];
            opt.step(&mut x, &g);
        }
        assert!(x[0].abs() < 1e-2);
        assert!(x[1].abs() < 1e-2);
    }

    #[test]
    fn adam_step_counter_advances() {
        let mut opt = Adam::new(0.01);
        let mut x = vec![1.0f32];
        assert_eq!(opt.steps(), 0);
        opt.step(&mut x, &[0.5]);
        opt.step(&mut x, &[0.5]);
        assert_eq!(opt.steps(), 2);
    }

    #[test]
    fn gan_adam_uses_half_beta1() {
        let opt = Adam::for_gan(1e-4);
        assert_eq!(opt.beta1, 0.5);
        assert_eq!(opt.lr, 1e-4);
    }

    #[test]
    #[should_panic(expected = "gradient length mismatch")]
    fn mismatched_grad_panics() {
        let mut opt = Sgd::new(0.1, 0.0);
        let mut x = vec![0.0f32; 2];
        opt.step(&mut x, &[1.0]);
    }
}
