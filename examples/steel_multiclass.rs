//! Multi-class steel-surface classification on the NEU simulacrum:
//! six defect textures, every image defective, the goal is *which*
//! defect — the paper's only multi-class task. Prints the confusion
//! matrix and per-class F1 of the weak labels.
//!
//! ```text
//! cargo run --release --example steel_multiclass
//! ```

use inspector_gadget::prelude::*;
use inspector_gadget::synth::neu::NEU_CLASSES;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(6);
    let dataset = inspector_gadget::synth::generate(&DatasetSpec {
        n: 120,
        ..DatasetSpec::quick(DatasetKind::Neu, 6)
    });
    println!(
        "[neu] {} steel images over {} defect classes",
        dataset.len(),
        dataset.task.num_classes()
    );

    // Development set: a few annotated examples per class.
    let dev_indices = sample_dev_set(&dataset, 4, &mut rng);
    let dev: Vec<&LabeledImage> = dev_indices.iter().map(|&i| &dataset.images[i]).collect();
    let test: Vec<&LabeledImage> = dataset
        .images
        .iter()
        .enumerate()
        .filter(|(i, _)| !dev_indices.contains(i))
        .map(|(_, img)| img)
        .collect();
    println!("[dev] {} annotated images", dev.len());

    let crowd_out = CrowdWorkflow::full().run(&dev, &mut rng);
    println!("[crowd] {} texture patterns", crowd_out.patterns.len());

    let dev_images: Vec<&GrayImage> = dev.iter().map(|l| &l.image).collect();
    let dev_labels: Vec<usize> = dev.iter().map(|l| l.label).collect();
    let ig = InspectorGadget::train(
        Pattern::wrap_all(crowd_out.patterns, PatternSource::Crowd),
        &dev_images,
        &dev_labels,
        6,
        &PipelineConfig {
            tune: false,
            ..Default::default()
        },
        &mut rng,
    )
    .expect("pipeline trains");

    let test_images: Vec<&GrayImage> = test.iter().map(|l| &l.image).collect();
    let out = ig.label(&test_images);
    let gold: Vec<usize> = test.iter().map(|l| l.label).collect();

    let cm = ConfusionMatrix::from_pairs(6, &gold, &out.labels);
    println!("\nconfusion matrix (rows = gold, cols = predicted):");
    print!("{:<16}", "");
    for name in NEU_CLASSES {
        print!("{:>9}", &name[..name.len().min(8)]);
    }
    println!();
    for (g, name) in NEU_CLASSES.iter().enumerate() {
        print!("{name:<16}");
        for p in 0..6 {
            print!("{:>9}", cm.get(g, p));
        }
        println!();
    }
    println!("\nper-class F1:");
    for (c, name) in NEU_CLASSES.iter().enumerate() {
        println!("  {:<16} {:.3}", name, cm.scores_for(c).f1);
    }
    println!(
        "macro-F1 {:.3}, accuracy {:.3}",
        cm.macro_f1(),
        cm.accuracy()
    );
}
