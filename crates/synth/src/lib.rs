//! # ig-synth
//!
//! Procedural simulacra of the paper's five industrial datasets
//! (Table 1). The real data is proprietary (Product), or an external
//! download (KSDD, NEU); none is available here, so each dataset is
//! replaced by a seeded generator that reproduces the *statistical
//! structure the paper's experiments depend on*:
//!
//! | Dataset | Structure preserved |
//! |---|---|
//! | KSDD | jagged random-walk **cracks** whose shape varies a lot (policy augmentation pays off), strong class imbalance (52/399) |
//! | Product (scratch) | long thin oriented **scratches** anywhere on a strip image, mild imbalance (727/1673), large defects |
//! | Product (bubble) | tiny circular **bubbles**, heavy imbalance (102/1048) — small defects defeat object-centric labeling |
//! | Product (stamping) | small **stampings at fixed positions** (148/1094) — position-sensitive CNNs excel here |
//! | NEU | six **texture classes covering the whole image**, balanced, multi-class |
//!
//! Every image also carries gold defect boxes (standing in for the expert
//! annotations the crowd simulation perturbs), plus `noisy` / `difficult`
//! flags that ground the Table 6 error taxonomy.
//!
//! [`synthnet`] generates a generic texture corpus that plays ImageNet's
//! role for the transfer-learning baseline (Table 2).

#![warn(missing_docs)]

pub mod defects;
pub mod ksdd;
pub mod neu;
pub mod product;
pub mod spec;
pub mod surface;
pub mod synthnet;

use ig_imaging::{BBox, GrayImage};
use serde::{Deserialize, Serialize};

pub use spec::DatasetSpec;

/// Classification task shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskType {
    /// Defect vs OK.
    Binary,
    /// One of `k` defect classes (every image has a defect).
    MultiClass(usize),
}

impl TaskType {
    /// Number of label values.
    pub fn num_classes(&self) -> usize {
        match self {
            TaskType::Binary => 2,
            TaskType::MultiClass(k) => *k,
        }
    }
}

/// The defect morphologies used across the five datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DefectKind {
    /// KSDD jagged crack.
    Crack,
    /// Product long thin scratch.
    Scratch,
    /// Product small round bubble.
    Bubble,
    /// Product fixed-position stamping.
    Stamping,
    /// NEU texture classes.
    RolledInScale,
    /// NEU patches.
    Patches,
    /// NEU crazing.
    Crazing,
    /// NEU pitted surface.
    PittedSurface,
    /// NEU inclusion.
    Inclusion,
    /// NEU scratches (distinct morphology from Product scratches).
    NeuScratch,
}

/// One generated image with its gold annotations.
#[derive(Debug, Clone)]
pub struct LabeledImage {
    /// Pixels in `[0, 1]`.
    pub image: GrayImage,
    /// Gold label: 0 = OK / class index for multi-class.
    pub label: usize,
    /// Gold defect bounding boxes (empty for OK images).
    pub defect_boxes: Vec<BBox>,
    /// Image was corrupted with acquisition noise (Table 6 "noisy data").
    pub noisy: bool,
    /// Defect drawn at near-invisible contrast (Table 6 "difficult").
    pub difficult: bool,
}

impl LabeledImage {
    /// Binary convenience: does the gold label say "defective"?
    pub fn is_defective(&self) -> bool {
        self.label != 0 || !self.defect_boxes.is_empty()
    }
}

/// A full generated dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Human-readable name matching the paper's Table 1 rows.
    pub name: String,
    /// Task shape.
    pub task: TaskType,
    /// All images, shuffled.
    pub images: Vec<LabeledImage>,
}

impl Dataset {
    /// Number of images (Table 1's `N`).
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// Number of defective images (Table 1's `N_D`). For multi-class
    /// datasets every image is defective.
    pub fn num_defective(&self) -> usize {
        match self.task {
            TaskType::Binary => self.images.iter().filter(|i| i.label == 1).count(),
            TaskType::MultiClass(_) => self.images.len(),
        }
    }

    /// Gold labels in image order.
    pub fn labels(&self) -> Vec<usize> {
        self.images.iter().map(|i| i.label).collect()
    }

    /// Image dimensions (all images in a dataset share one size).
    pub fn image_dims(&self) -> (usize, usize) {
        self.images
            .first()
            .map(|i| i.image.dims())
            .unwrap_or((0, 0))
    }
}

/// Generate the dataset matching a [`DatasetSpec`].
pub fn generate(spec: &DatasetSpec) -> Dataset {
    match spec.kind {
        spec::DatasetKind::Ksdd => ksdd::generate(spec),
        spec::DatasetKind::ProductScratch => product::generate(spec, DefectKind::Scratch),
        spec::DatasetKind::ProductBubble => product::generate(spec, DefectKind::Bubble),
        spec::DatasetKind::ProductStamping => product::generate(spec, DefectKind::Stamping),
        spec::DatasetKind::Neu => neu::generate(spec),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_type_class_counts() {
        assert_eq!(TaskType::Binary.num_classes(), 2);
        assert_eq!(TaskType::MultiClass(6).num_classes(), 6);
    }

    #[test]
    fn generate_dispatches_every_kind() {
        for kind in [
            spec::DatasetKind::Ksdd,
            spec::DatasetKind::ProductScratch,
            spec::DatasetKind::ProductBubble,
            spec::DatasetKind::ProductStamping,
            spec::DatasetKind::Neu,
        ] {
            let s = DatasetSpec::quick(kind, 42);
            let d = generate(&s);
            assert!(!d.is_empty(), "{kind:?} generated nothing");
            assert_eq!(d.len(), s.n);
        }
    }
}
