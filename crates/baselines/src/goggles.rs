//! GOGGLES (Das et al., SIGMOD 2020) re-implementation.
//!
//! GOGGLES labels images *without* crowdsourcing: a frozen pre-trained
//! network supplies per-image "semantic prototypes" (regions of maximal
//! activation), an affinity matrix relates all images, clustering groups
//! them, and a handful of labeled examples names the clusters. Its known
//! failure mode — reproduced here and in the paper's Figure 9 — is tiny
//! defects: max-activation prototypes describe the dominant object, and a
//! 5-pixel bubble never dominates.
//!
//! ## Substitution
//!
//! The frozen VGG-16 is replaced by a fixed, non-learned multi-scale
//! filter bank (oriented edges, blob, center-surround) — the classical
//! generic feature extractor. Per filter and pyramid level, the response
//! map's top activations form the prototype value, matching GOGGLES'
//! max-pooling over feature maps.

use ig_imaging::filter::convolve2d;
use ig_imaging::pyramid::Pyramid;
use ig_imaging::GrayImage;
use rand::Rng;

/// 3x3 filter bank: 4 oriented edges, Laplacian blob, center-surround.
fn filter_bank() -> Vec<[f32; 9]> {
    vec![
        // Horizontal edge.
        [-1.0, -2.0, -1.0, 0.0, 0.0, 0.0, 1.0, 2.0, 1.0],
        // Vertical edge.
        [-1.0, 0.0, 1.0, -2.0, 0.0, 2.0, -1.0, 0.0, 1.0],
        // Diagonal 45°.
        [-2.0, -1.0, 0.0, -1.0, 0.0, 1.0, 0.0, 1.0, 2.0],
        // Diagonal 135°.
        [0.0, -1.0, -2.0, 1.0, 0.0, -1.0, 2.0, 1.0, 0.0],
        // Laplacian (blob detector).
        [0.0, 1.0, 0.0, 1.0, -4.0, 1.0, 0.0, 1.0, 0.0],
        // Center-surround.
        [-1.0, -1.0, -1.0, -1.0, 8.0, -1.0, -1.0, -1.0, -1.0],
    ]
}

/// GOGGLES configuration.
#[derive(Debug, Clone)]
pub struct GogglesConfig {
    /// Pyramid levels over which filters are applied (scales).
    pub scales: usize,
    /// Top activations averaged per response map (the "prototype").
    pub top_k: usize,
    /// k-means iterations.
    pub kmeans_iters: usize,
    /// Images are downscaled so their longest side is at most this before
    /// feature extraction.
    pub max_side: usize,
}

impl Default for GogglesConfig {
    fn default() -> Self {
        Self {
            scales: 3,
            top_k: 5,
            kmeans_iters: 30,
            max_side: 128,
        }
    }
}

/// A fitted GOGGLES instance: cluster centroids plus cluster→class names.
#[derive(Debug)]
pub struct Goggles {
    config: GogglesConfig,
    centroids: Vec<Vec<f32>>,
    cluster_class: Vec<usize>,
}

impl Goggles {
    /// Extract the prototype feature vector of one image.
    pub fn extract_features(image: &GrayImage, config: &GogglesConfig) -> Vec<f32> {
        let capped = ig_imaging::resize::fit_max_side(image, config.max_side)
            .unwrap_or_else(|_| image.clone());
        let pyramid = Pyramid::build(&capped, config.scales, 8);
        let bank = filter_bank();
        let mut features = Vec::with_capacity(bank.len() * pyramid.num_levels());
        for level in pyramid.levels() {
            for kernel in &bank {
                let response = convolve2d(level, kernel, 3, 3);
                // Top-k absolute activations, averaged.
                let mut values: Vec<f32> = response.pixels().iter().map(|&v| v.abs()).collect();
                let k = config.top_k.min(values.len()).max(1);
                values.sort_by(|a, b| b.total_cmp(a));
                let proto: f32 = values[..k].iter().sum::<f32>() / k as f32;
                features.push(proto);
            }
        }
        // Pad missing scales (small images) with zeros so vectors align.
        features.resize(bank.len() * config.scales, 0.0);
        // L2-normalize so affinities are cosine similarities.
        let norm = features.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-9);
        for f in &mut features {
            *f /= norm;
        }
        features
    }

    /// Affinity (cosine similarity) between two prototype vectors.
    pub fn affinity(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(&x, &y)| x * y).sum()
    }

    /// Fit: cluster all images (dev + unlabeled) with k-means over the
    /// rows of the affinity matrix, then name clusters by majority dev
    /// label. `dev` pairs image indices (into `images`) with gold labels.
    pub fn fit(
        images: &[&GrayImage],
        dev: &[(usize, usize)],
        num_classes: usize,
        config: &GogglesConfig,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(!images.is_empty(), "GOGGLES needs images to cluster");
        let feats: Vec<Vec<f32>> = images
            .iter()
            .map(|img| Self::extract_features(img, config))
            .collect();
        let n = feats.len();
        // Affinity rows as clustering space (GOGGLES clusters the affinity
        // matrix). For large n this is O(n²) but n is dataset-sized.
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|i| {
                (0..n)
                    .map(|j| Self::affinity(&feats[i], &feats[j]))
                    .collect()
            })
            .collect();
        let assignments = kmeans(&rows, num_classes, config.kmeans_iters, rng);

        // Name clusters by dev majority; clusters with no dev members get
        // the globally most common dev class.
        let mut counts = vec![vec![0usize; num_classes]; num_classes];
        for &(img_idx, label) in dev {
            counts[assignments[img_idx]][label] += 1;
        }
        let mut global = vec![0usize; num_classes];
        for &(_, label) in dev {
            global[label] += 1;
        }
        let global_best = argmax(&global);
        let cluster_class: Vec<usize> = (0..num_classes)
            .map(|c| {
                if counts[c].iter().all(|&v| v == 0) {
                    global_best
                } else {
                    argmax(&counts[c])
                }
            })
            .collect();

        // Centroids in affinity-row space are tied to the fitted set; for
        // labeling new images we store centroids in *feature* space
        // instead (mean prototype per cluster), which generalizes.
        let feat_dim = feats.first().map_or(0, Vec::len);
        let mut centroids = vec![vec![0.0f32; feat_dim]; num_classes];
        let mut sizes = vec![0usize; num_classes];
        for (f, &a) in feats.iter().zip(&assignments) {
            for (c, v) in centroids[a].iter_mut().zip(f) {
                *c += v;
            }
            sizes[a] += 1;
        }
        for (c, &s) in centroids.iter_mut().zip(&sizes) {
            if s > 0 {
                for v in c.iter_mut() {
                    *v /= s as f32;
                }
            }
        }
        Self {
            config: config.clone(),
            centroids,
            cluster_class,
        }
    }

    /// Label new images by nearest centroid in prototype space.
    pub fn label(&self, images: &[&GrayImage]) -> Vec<usize> {
        images
            .iter()
            .map(|img| {
                let f = Self::extract_features(img, &self.config);
                let cluster = self
                    .centroids
                    .iter()
                    .enumerate()
                    .max_by(|a, b| Self::affinity(&f, a.1).total_cmp(&Self::affinity(&f, b.1)))
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                self.cluster_class[cluster]
            })
            .collect()
    }
}

fn argmax(v: &[usize]) -> usize {
    v.iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// Standard k-means with k-means++-style seeding.
fn kmeans(points: &[Vec<f32>], k: usize, iters: usize, rng: &mut impl Rng) -> Vec<usize> {
    let n = points.len();
    if n == 0 {
        return Vec::new();
    }
    let k = k.clamp(1, n);
    let dim = points.first().map_or(0, Vec::len);
    // Seeding: first random, rest farthest-distance-biased.
    let mut centers: Vec<Vec<f32>> = Vec::with_capacity(k);
    centers.push(points[rng.gen_range(0..n)].clone());
    while centers.len() < k {
        let dists: Vec<f32> = points
            .iter()
            .map(|p| {
                centers
                    .iter()
                    .map(|c| sq_dist(p, c))
                    .fold(f32::INFINITY, f32::min)
            })
            .collect();
        let total: f32 = dists.iter().sum();
        if total <= 0.0 {
            centers.push(points[rng.gen_range(0..n)].clone());
            continue;
        }
        let mut target = rng.gen_range(0.0..total);
        let mut chosen = 0;
        for (i, &d) in dists.iter().enumerate() {
            target -= d;
            if target <= 0.0 {
                chosen = i;
                break;
            }
        }
        centers.push(points[chosen].clone());
    }
    let mut assignments = vec![0usize; n];
    for _ in 0..iters {
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let best = centers
                .iter()
                .enumerate()
                .min_by(|a, b| sq_dist(p, a.1).total_cmp(&sq_dist(p, b.1)))
                .map(|(j, _)| j)
                .unwrap_or(0);
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        let mut sums = vec![vec![0.0f32; dim]; k];
        let mut counts = vec![0usize; k];
        for (p, &a) in points.iter().zip(&assignments) {
            for (s, &v) in sums[a].iter_mut().zip(p) {
                *s += v;
            }
            counts[a] += 1;
        }
        for ((c, s), &count) in centers.iter_mut().zip(&sums).zip(&counts) {
            if count > 0 {
                for (cv, &sv) in c.iter_mut().zip(s) {
                    *cv = sv / count as f32;
                }
            }
        }
    }
    assignments
}

fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Two visually distinct image families: stripes vs blobs.
    fn two_family_images(n_per: usize, seed: u64) -> (Vec<GrayImage>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut images = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n_per * 2 {
            let stripes = i % 2 == 0;
            let img = if stripes {
                let phase = rng.gen_range(0.0..3.0f32);
                GrayImage::from_fn(32, 32, |x, _| 0.5 + 0.4 * ((x as f32 + phase) * 0.8).sin())
            } else {
                let mut img = GrayImage::filled(32, 32, 0.3);
                for _ in 0..4 {
                    img.fill_disk(rng.gen_range(4.0..28.0), rng.gen_range(4.0..28.0), 3.0, 0.9);
                }
                img
            };
            images.push(img);
            labels.push(usize::from(!stripes));
        }
        (images, labels)
    }

    #[test]
    fn features_are_normalized() {
        let (images, _) = two_family_images(2, 0);
        let f = Goggles::extract_features(&images[0], &GogglesConfig::default());
        let norm: f32 = f.iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-4);
        assert_eq!(f.len(), 6 * 3);
    }

    #[test]
    fn affinity_of_self_is_one() {
        let (images, _) = two_family_images(1, 1);
        let f = Goggles::extract_features(&images[0], &GogglesConfig::default());
        assert!((Goggles::affinity(&f, &f) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn clusters_separate_distinct_families() {
        let mut rng = StdRng::seed_from_u64(2);
        let (images, labels) = two_family_images(15, 3);
        let refs: Vec<&GrayImage> = images.iter().collect();
        // Only 4 labeled examples for cluster naming.
        let dev: Vec<(usize, usize)> = (0..4).map(|i| (i, labels[i])).collect();
        let goggles = Goggles::fit(&refs, &dev, 2, &GogglesConfig::default(), &mut rng);
        let preds = goggles.label(&refs);
        let correct = preds.iter().zip(&labels).filter(|(a, b)| a == b).count();
        assert!(correct >= 24, "{correct}/30 correct");
    }

    #[test]
    fn small_defects_confuse_goggles() {
        // Identical backgrounds, tiny defect: prototype features barely
        // change, so accuracy collapses toward chance — the failure mode
        // the paper observes on Product (bubble).
        let mut rng = StdRng::seed_from_u64(4);
        let mut images = Vec::new();
        let mut labels = Vec::new();
        for i in 0..30 {
            // Grainy industrial-style background: pixel-scale noise whose
            // own max activations dominate the prototypes, the way real
            // surface grain does.
            let mut img = ig_imaging::noise::white_noise_image(100 + i as u64, 48, 48, 0.35, 0.75);
            let defect = i % 2 == 1;
            if defect {
                // A faint 3px dot at the grain's mid-intensity. It must sit
                // *inside* the noise range [0.35, 0.75]: painting it darker
                // (the old 0.25) made the dot the image's unique extreme
                // value, which max-pooled prototype affinities latch onto —
                // the test then passed or failed by seed luck instead of
                // demonstrating the small-defect failure mode.
                let cx = rng.gen_range(5.0..43.0f32);
                let cy = rng.gen_range(5.0..43.0f32);
                img.fill_disk(cx, cy, 1.5, 0.55);
            }
            images.push(img);
            labels.push(usize::from(defect));
        }
        let refs: Vec<&GrayImage> = images.iter().collect();
        let dev: Vec<(usize, usize)> = (0..6).map(|i| (i, labels[i])).collect();
        let goggles = Goggles::fit(&refs, &dev, 2, &GogglesConfig::default(), &mut rng);
        let preds = goggles.label(&refs);
        let correct = preds.iter().zip(&labels).filter(|(a, b)| a == b).count();
        assert!(
            correct <= 26,
            "GOGGLES should struggle on tiny defects but got {correct}/30"
        );
    }

    #[test]
    fn kmeans_partitions_obvious_clusters() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut points: Vec<Vec<f32>> = Vec::new();
        for i in 0..20 {
            let offset = if i % 2 == 0 { 0.0 } else { 10.0 };
            points.push(vec![offset + (i as f32 * 0.01), offset - (i as f32 * 0.01)]);
        }
        let assign = kmeans(&points, 2, 20, &mut rng);
        // All even-index points in one cluster, odd in the other.
        let c0 = assign[0];
        assert!(assign.iter().step_by(2).all(|&a| a == c0));
        assert!(assign.iter().skip(1).step_by(2).all(|&a| a != c0));
    }
}
