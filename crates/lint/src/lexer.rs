//! A minimal, self-contained Rust lexer.
//!
//! The container this workspace builds in has no network access, so the
//! analyzer cannot depend on `syn`/`proc-macro2`. The rules in this crate
//! only need a faithful *token* view of each source file — identifiers,
//! literals, multi-character operators, and line comments with positions —
//! which this hand-rolled lexer provides. It understands the parts of the
//! lexical grammar that matter for not mis-firing inside text: nested block
//! comments, raw strings (`r#"…"#`), byte/char literals vs. lifetimes, raw
//! identifiers, and numeric literals with suffixes and exponents.

/// Lexical class of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`foo`, `fn`, `r#match`).
    Ident,
    /// Lifetime or loop label (`'a`, `'static`).
    Lifetime,
    /// Integer literal (`42`, `0xFF`, `1_000u32`).
    Int,
    /// Float literal (`1.0`, `2e-3`, `1f32`).
    Float,
    /// String, char, or byte literal (contents are opaque to the rules).
    Str,
    /// Operator or delimiter; multi-character operators (`::`, `==`, `..=`)
    /// are a single token.
    Punct,
}

/// One token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub line: u32,
    pub col: u32,
    /// Byte offset of the token's first character in the source. `text` is
    /// a verbatim slice, so the token ends at `start + text.len()`.
    pub start: usize,
}

impl Token {
    /// True when the token is this exact identifier.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// True when the token is this exact punctuation.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == s
    }
}

/// A `//` line comment, kept out-of-band for annotation parsing.
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    pub line: u32,
    /// True when no token precedes the comment on its line, i.e. the
    /// comment stands alone and annotates the *following* line.
    pub own_line: bool,
    /// True for `///` and `//!` doc comments. Doc comments describe the
    /// annotation grammar without invoking it, so they never carry live
    /// `ig-lint:` directives.
    pub doc: bool,
}

/// Lexer output: the token stream plus all line comments.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Multi-character operators, longest first so maximal munch works.
const MULTI_PUNCT: &[&str] = &[
    "..=", "...", "<<=", ">>=", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else if b & 0xC0 != 0x80 {
            // Count code points, not bytes, so columns match editors.
            self.col += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Tokenize `src`. Never fails: unrecognized bytes become single-character
/// punctuation so the rules can keep scanning the rest of the file.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Lexed::default();
    let mut last_token_line = 0u32;

    while let Some(b) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        let start = cur.pos;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek_at(1) == Some(b'/') => {
                let start = cur.pos;
                while let Some(c) = cur.peek() {
                    if c == b'\n' {
                        break;
                    }
                    cur.bump();
                }
                let text = src[start..cur.pos].to_string();
                let doc = text.starts_with("///") || text.starts_with("//!");
                out.comments.push(Comment {
                    text,
                    line,
                    own_line: last_token_line != line,
                    doc,
                });
            }
            b'/' if cur.peek_at(1) == Some(b'*') => {
                cur.bump();
                cur.bump();
                let mut depth = 1usize;
                while depth > 0 {
                    match (cur.peek(), cur.peek_at(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            cur.bump();
                            cur.bump();
                            depth += 1;
                        }
                        (Some(b'*'), Some(b'/')) => {
                            cur.bump();
                            cur.bump();
                            depth -= 1;
                        }
                        (Some(_), _) => {
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
            }
            b'r' | b'b' | b'c' if starts_raw_or_byte_literal(&cur) => {
                let text = lex_prefixed_literal(&mut cur, src);
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    text,
                    line,
                    col,
                    start,
                });
                last_token_line = line;
            }
            b'"' => {
                let text = lex_string(&mut cur, src);
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    text,
                    line,
                    col,
                    start,
                });
                last_token_line = line;
            }
            b'\'' => {
                let tok = lex_quote(&mut cur, src, line, col);
                out.tokens.push(tok);
                last_token_line = line;
            }
            _ if b.is_ascii_digit() => {
                let tok = lex_number(&mut cur, src, line, col);
                out.tokens.push(tok);
                last_token_line = line;
            }
            _ if is_ident_start(b) => {
                let start = cur.pos;
                while let Some(c) = cur.peek() {
                    if !is_ident_continue(c) {
                        break;
                    }
                    cur.bump();
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: src[start..cur.pos].to_string(),
                    line,
                    col,
                    start,
                });
                last_token_line = line;
            }
            _ => {
                let text = lex_punct(&mut cur, src);
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text,
                    line,
                    col,
                    start,
                });
                last_token_line = line;
            }
        }
    }
    out
}

/// Does the cursor sit on `r"`, `r#"`, `r#ident`… no — specifically a raw
/// string / byte string / byte char / c-string prefix (not a plain ident)?
fn starts_raw_or_byte_literal(cur: &Cursor) -> bool {
    let b0 = match cur.peek() {
        Some(b) => b,
        None => return false,
    };
    match b0 {
        b'r' | b'c' => match (cur.peek_at(1), cur.peek_at(2)) {
            (Some(b'"'), _) => true,
            (Some(b'#'), Some(b'"' | b'#')) => b0 == b'r', // r#"…" / r##"…" (r#ident handled as ident)
            _ => false,
        },
        b'b' => matches!(
            (cur.peek_at(1), cur.peek_at(2)),
            (Some(b'"'), _) | (Some(b'\''), _) | (Some(b'r'), Some(b'"' | b'#'))
        ),
        _ => false,
    }
}

/// Lex `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'x'`, `c"…"`.
fn lex_prefixed_literal(cur: &mut Cursor, src: &str) -> String {
    let start = cur.pos;
    // Consume prefix letters.
    while matches!(cur.peek(), Some(b'r' | b'b' | b'c')) {
        if matches!(cur.peek(), Some(b'"' | b'\'' | b'#')) {
            break;
        }
        // Only consume known prefix letters that are actually followed by
        // a quote or hash eventually; at most two letters (`br`).
        if cur.pos - start >= 2 {
            break;
        }
        cur.bump();
    }
    let raw = src[start..cur.pos].contains('r');
    match cur.peek() {
        Some(b'#' | b'"') => {
            // Raw or plain quoted: count hashes, then scan for `"` + hashes.
            let mut hashes = 0usize;
            while cur.peek() == Some(b'#') {
                hashes += 1;
                cur.bump();
            }
            if cur.peek() == Some(b'"') {
                cur.bump();
                'scan: while let Some(c) = cur.bump() {
                    if !raw && c == b'\\' {
                        cur.bump();
                        continue;
                    }
                    if c == b'"' {
                        let mut seen = 0usize;
                        while seen < hashes {
                            if cur.peek() == Some(b'#') {
                                cur.bump();
                                seen += 1;
                            } else {
                                continue 'scan;
                            }
                        }
                        break;
                    }
                }
            }
        }
        Some(b'\'') => {
            // b'x' byte char; `lex_char_body` consumes the opening quote.
            lex_char_body(cur);
        }
        _ => {}
    }
    src[start..cur.pos].to_string()
}

/// Lex a plain `"…"` string starting at the opening quote.
fn lex_string(cur: &mut Cursor, src: &str) -> String {
    let start = cur.pos;
    cur.bump(); // opening quote
    while let Some(c) = cur.bump() {
        match c {
            b'\\' => {
                cur.bump();
            }
            b'"' => break,
            _ => {}
        }
    }
    src[start..cur.pos].to_string()
}

/// After the opening `'` of a char literal, consume the body and closing `'`.
fn lex_char_body(cur: &mut Cursor) {
    cur.bump(); // opening quote
    match cur.peek() {
        Some(b'\\') => {
            cur.bump();
            cur.bump();
            // \u{…}
            if cur.peek() == Some(b'{') {
                while let Some(c) = cur.bump() {
                    if c == b'}' {
                        break;
                    }
                }
            }
        }
        Some(_) => {
            cur.bump();
        }
        None => return,
    }
    if cur.peek() == Some(b'\'') {
        cur.bump();
    }
}

/// Disambiguate `'a` (lifetime) from `'a'` (char literal).
fn lex_quote(cur: &mut Cursor, src: &str, line: u32, col: u32) -> Token {
    let start = cur.pos;
    let next = cur.peek_at(1);
    let after = cur.peek_at(2);
    let is_lifetime = match (next, after) {
        (Some(n), Some(a)) => is_ident_start(n) && a != b'\'',
        (Some(n), None) => is_ident_start(n),
        _ => false,
    };
    if is_lifetime {
        cur.bump(); // '
        while let Some(c) = cur.peek() {
            if !is_ident_continue(c) {
                break;
            }
            cur.bump();
        }
        Token {
            kind: TokenKind::Lifetime,
            text: src[start..cur.pos].to_string(),
            line,
            col,
            start,
        }
    } else {
        lex_char_body(cur);
        Token {
            kind: TokenKind::Str,
            text: src[start..cur.pos].to_string(),
            line,
            col,
            start,
        }
    }
}

/// Lex a numeric literal; decides Int vs Float.
fn lex_number(cur: &mut Cursor, src: &str, line: u32, col: u32) -> Token {
    let start = cur.pos;
    let mut kind = TokenKind::Int;

    if cur.peek() == Some(b'0')
        && matches!(
            cur.peek_at(1),
            Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B')
        )
    {
        cur.bump();
        cur.bump();
        while let Some(c) = cur.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                cur.bump();
            } else {
                break;
            }
        }
        return Token {
            kind,
            text: src[start..cur.pos].to_string(),
            line,
            col,
            start,
        };
    }

    let eat_digits = |cur: &mut Cursor| {
        while let Some(c) = cur.peek() {
            if c.is_ascii_digit() || c == b'_' {
                cur.bump();
            } else {
                break;
            }
        }
    };
    eat_digits(cur);

    // Fractional part: `1.5`, `1.` — but not `1..2` (range) or `1.foo()`.
    if cur.peek() == Some(b'.') {
        match cur.peek_at(1) {
            Some(n) if n.is_ascii_digit() => {
                kind = TokenKind::Float;
                cur.bump();
                eat_digits(cur);
            }
            Some(b'.') => {}
            Some(n) if is_ident_start(n) => {}
            _ => {
                kind = TokenKind::Float;
                cur.bump();
            }
        }
    }

    // Exponent: `1e3`, `2.5E-7`.
    if matches!(cur.peek(), Some(b'e' | b'E')) {
        let (sign, digit) = (cur.peek_at(1), cur.peek_at(2));
        let has_exp = match sign {
            Some(b'+' | b'-') => matches!(digit, Some(d) if d.is_ascii_digit()),
            Some(d) if d.is_ascii_digit() => true,
            _ => false,
        };
        if has_exp {
            kind = TokenKind::Float;
            cur.bump();
            if matches!(cur.peek(), Some(b'+' | b'-')) {
                cur.bump();
            }
            eat_digits(cur);
        }
    }

    // Type suffix: `1f32` is a float, `1u32` an int.
    if matches!(cur.peek(), Some(c) if is_ident_start(c)) {
        let suffix_start = cur.pos;
        while let Some(c) = cur.peek() {
            if !is_ident_continue(c) {
                break;
            }
            cur.bump();
        }
        let suffix = &src[suffix_start..cur.pos];
        if suffix == "f32" || suffix == "f64" {
            kind = TokenKind::Float;
        }
    }

    Token {
        kind,
        text: src[start..cur.pos].to_string(),
        line,
        col,
        start,
    }
}

/// Lex one operator, preferring the longest match.
fn lex_punct(cur: &mut Cursor, src: &str) -> String {
    let rest = &src[cur.pos..];
    for op in MULTI_PUNCT {
        if rest.starts_with(op) {
            for _ in 0..op.len() {
                cur.bump();
            }
            return (*op).to_string();
        }
    }
    let start = cur.pos;
    cur.bump();
    src[start..cur.pos].to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("let x: u32 = a == b;");
        assert_eq!(toks[0], (TokenKind::Ident, "let".into()));
        assert!(toks.iter().any(|t| t == &(TokenKind::Punct, "==".into())));
    }

    #[test]
    fn float_vs_int_vs_range() {
        assert_eq!(kinds("1.5")[0].0, TokenKind::Float);
        assert_eq!(kinds("1e-3")[0].0, TokenKind::Float);
        assert_eq!(kinds("1f32")[0].0, TokenKind::Float);
        assert_eq!(kinds("42")[0].0, TokenKind::Int);
        assert_eq!(kinds("1u32")[0].0, TokenKind::Int);
        let range = kinds("0..10");
        assert_eq!(range[0].0, TokenKind::Int);
        assert_eq!(range[1], (TokenKind::Punct, "..".into()));
        let method = kinds("1.max(2)");
        assert_eq!(method[0].0, TokenKind::Int);
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = kinds("&'a str");
        assert_eq!(toks[1], (TokenKind::Lifetime, "'a".into()));
        assert_eq!(kinds("'x'")[0].0, TokenKind::Str);
        assert_eq!(kinds(r"'\n'")[0].0, TokenKind::Str);
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r#"let s = "thread_rng == 1.0";"#);
        assert!(!toks.iter().any(|t| t.1 == "thread_rng"));
        let raw = kinds(r##"let s = r#"unwrap() "quoted""#;"##);
        assert!(!raw.iter().any(|t| t.1 == "unwrap"));
    }

    #[test]
    fn comments_are_captured_with_position() {
        let l = lex("let a = 1; // trailing\n// ig-lint: allow(panic) -- fine\nlet b = 2;");
        assert_eq!(l.comments.len(), 2);
        assert!(!l.comments[0].own_line);
        assert!(l.comments[1].own_line);
        assert_eq!(l.comments[1].line, 2);
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("a /* outer /* inner */ still comment */ b");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1].1, "b");
    }

    #[test]
    fn positions_are_one_based() {
        let l = lex("x\n  y");
        assert_eq!((l.tokens[0].line, l.tokens[0].col), (1, 1));
        assert_eq!((l.tokens[1].line, l.tokens[1].col), (2, 3));
    }

    #[test]
    fn raw_identifiers_are_idents() {
        let toks = kinds("r#match");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[0].1, "r");
    }
}
