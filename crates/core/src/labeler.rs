//! The weak-label MLP (Section 5.2) trained with L-BFGS (Section 6.1).
//!
//! "The model can have any architecture and be small because there are not
//! as many features as say the number of pixels in an image. We use a
//! multilayer perceptron (MLP) because it is simple, but also has good
//! performance."
//!
//! Features are standardized with statistics from the training set before
//! entering the network — NCC scores on textured industrial images
//! cluster in a narrow high band, and centering them makes L-BFGS
//! converge far more reliably.

use crate::{CoreError, Result};
use ig_faults::{FaultKind, FaultPlan, HealthReport, RecoveryAction, Stage};
use ig_nn::lbfgs::{minimize_robust, LbfgsConfig, RestartConfig};
use ig_nn::mlp::{Loss, Mlp, MlpConfig, Targets};
use ig_nn::{Activation, Matrix};
use rand::Rng;

/// Standardized features are clamped to this magnitude before entering
/// the MLP. Genuine NCC features standardize to a few units at most, so
/// the clamp only ever fires on pathological (hostile) inputs, where it
/// keeps logits — and therefore probabilities — finite.
const STANDARDIZED_CLAMP: f32 = 1e4;

/// Labeler hyper-parameters.
#[derive(Debug, Clone)]
pub struct LabelerConfig {
    /// Hidden layer widths (1–3 layers after tuning).
    pub hidden: Vec<usize>,
    /// Number of classes (2 = binary task with a 1-unit sigmoid head).
    pub num_classes: usize,
    /// L2 weight decay.
    pub l2: f32,
    /// L-BFGS settings (paper: lr 1e-5-style conservative steps, early
    /// stopping — here the iteration cap plays that role).
    pub lbfgs: LbfgsConfig,
}

impl LabelerConfig {
    /// Default: one hidden layer of 8, mild decay.
    pub fn new(num_classes: usize) -> Self {
        Self {
            hidden: vec![8],
            num_classes,
            l2: 1e-3,
            lbfgs: LbfgsConfig {
                max_iters: 150,
                ..Default::default()
            },
        }
    }
}

/// A trained (or trainable) labeler: standardization + MLP.
#[derive(Debug, Clone)]
pub struct Labeler {
    mlp: Mlp,
    config: LabelerConfig,
    feat_mean: Vec<f32>,
    feat_std: Vec<f32>,
}

impl Labeler {
    /// Initialize an untrained labeler for `input_dim` features.
    pub fn new(input_dim: usize, config: LabelerConfig, rng: &mut impl Rng) -> Result<Self> {
        if config.num_classes < 2 {
            return Err(CoreError::BadDevSet(
                "labeler needs at least two classes".into(),
            ));
        }
        let output_dim = if config.num_classes == 2 {
            1
        } else {
            config.num_classes
        };
        let mlp = Mlp::new(
            &MlpConfig {
                input_dim,
                hidden: config.hidden.clone(),
                output_dim,
                activation: Activation::Relu,
                l2: config.l2,
            },
            rng,
        )
        .map_err(|e| CoreError::BadDevSet(e.to_string()))?;
        Ok(Self {
            mlp,
            config,
            feat_mean: vec![0.0; input_dim],
            feat_std: vec![1.0; input_dim],
        })
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.config.num_classes
    }

    /// Fit on a feature matrix and gold labels. Returns the final L-BFGS
    /// loss. Non-finite feature values are sanitized to 0.0 before
    /// standardization, and optimizer divergence triggers jittered
    /// restarts; the fitted parameters are always finite.
    pub fn fit(&mut self, features: &Matrix, labels: &[usize]) -> Result<f32> {
        self.fit_with_health(features, labels, None)
    }

    /// [`Labeler::fit`] recording every fault and recovery on `health`.
    /// Returns `Err` only when the optimizer still diverges after
    /// exhausting its restart budget (the caller's ladder then falls back
    /// to a class-prior labeler).
    pub fn fit_with_health(
        &mut self,
        features: &Matrix,
        labels: &[usize],
        health: Option<&HealthReport>,
    ) -> Result<f32> {
        self.fit_with_plan(features, labels, None, health)
    }

    /// [`Labeler::fit_with_health`] under an optional chaos plan: planned
    /// objective evaluations return a poisoned (NaN) loss, exercising the
    /// optimizer's reject/restart ladder end to end. Every non-finite
    /// evaluation — injected or natural — is recorded on `health`.
    pub fn fit_with_plan(
        &mut self,
        features: &Matrix,
        labels: &[usize],
        plan: Option<&FaultPlan>,
        health: Option<&HealthReport>,
    ) -> Result<f32> {
        if features.rows() != labels.len() {
            return Err(CoreError::BadDevSet(format!(
                "{} feature rows vs {} labels",
                features.rows(),
                labels.len()
            )));
        }
        if features.rows() == 0 {
            return Err(CoreError::BadDevSet("empty training set".into()));
        }
        self.compute_standardization(features);
        let x = self.standardize(features);
        let restart = RestartConfig::default();
        let binary_targets;
        let (targets, loss) = if self.config.num_classes == 2 {
            binary_targets =
                Matrix::from_vec(labels.len(), 1, labels.iter().map(|&l| l as f32).collect());
            (Targets::Binary(&binary_targets), Loss::Bce)
        } else {
            (Targets::Classes(labels), Loss::CrossEntropy)
        };
        let x0 = self.mlp.params();
        let model = self.mlp.clone();
        let mut evals = 0usize;
        let (result, restarts) = minimize_robust(
            |p| {
                let mut m = model.clone();
                m.set_params(p);
                // The target/loss pairing is constructed consistently above,
                // so the Err arm is unreachable; a NaN loss would feed the
                // non-finite recovery path below either way.
                let (mut l, g) = m
                    .loss_and_grad(&x, &targets, loss)
                    .unwrap_or_else(|_| (f32::NAN, vec![f32::NAN; p.len()]));
                let i = evals;
                evals += 1;
                if plan.is_some_and(|pl| pl.poison_loss(i)) {
                    l = f32::NAN;
                }
                if !l.is_finite() || g.iter().any(|v| !v.is_finite()) {
                    if let Some(h) = health {
                        h.record(
                            Stage::Training,
                            FaultKind::LbfgsDivergence,
                            RecoveryAction::NoneRequired,
                            format!("non-finite loss/grad at objective evaluation {i}"),
                        );
                    }
                }
                (l, g)
            },
            x0,
            &self.config.lbfgs,
            &restart,
        );
        self.mlp.set_params(&result.x);
        if restarts > 0 {
            if let Some(h) = health {
                h.record(
                    Stage::Training,
                    FaultKind::LbfgsDivergence,
                    RecoveryAction::RestartedWithJitter,
                    format!("labeler fit needed {restarts} jittered restart(s)"),
                );
            }
        }
        if result.diverged {
            if let Some(h) = health {
                h.record(
                    Stage::Training,
                    FaultKind::TrainingFailure,
                    RecoveryAction::NoneRequired,
                    "labeler fit diverged after exhausting restarts".into(),
                );
            }
            return Err(CoreError::BadDevSet(
                "labeler training diverged after exhausting restarts".into(),
            ));
        }
        Ok(result.loss)
    }

    /// A degenerate labeler that ignores features and always predicts the
    /// class priors observed in `labels` — the last rung of the training
    /// recovery ladder. Implemented as a zero-weight linear head whose
    /// biases encode the priors, so every predict path (and its output
    /// shape) is identical to a trained labeler's.
    pub fn class_prior(
        input_dim: usize,
        config: LabelerConfig,
        labels: &[usize],
        rng: &mut impl Rng,
    ) -> Result<Self> {
        let num_classes = config.num_classes;
        let mut counts = vec![1.0f64; num_classes]; // add-one smoothing
        for &l in labels {
            if l < num_classes {
                counts[l] += 1.0;
            }
        }
        let total: f64 = counts.iter().sum();
        let head_config = LabelerConfig {
            hidden: Vec::new(),
            ..config
        };
        let mut labeler = Self::new(input_dim, head_config, rng)?;
        let mut params = vec![0.0f32; labeler.mlp.num_params()];
        let n_biases = labeler.mlp.output_dim();
        let bias_start = params.len() - n_biases;
        if num_classes == 2 {
            let p1 = counts.get(1).copied().unwrap_or_default() / total;
            params[bias_start] = (p1.ln() - (1.0 - p1).ln()) as f32; // logit
        } else {
            for (i, &c) in counts.iter().enumerate() {
                params[bias_start + i] = (c / total).ln() as f32;
            }
        }
        labeler.mlp.set_params(&params);
        Ok(labeler)
    }

    /// Predicted class per feature row.
    pub fn predict(&self, features: &Matrix) -> Vec<usize> {
        let x = self.standardize(features);
        if self.config.num_classes == 2 {
            self.mlp
                .predict_sigmoid(&x)
                .as_slice()
                .iter()
                .map(|&p| usize::from(p >= 0.5))
                .collect()
        } else {
            self.mlp.predict_class(&x)
        }
    }

    /// Per-class probabilities (binary → column 1 is P(defect)).
    pub fn predict_proba(&self, features: &Matrix) -> Matrix {
        let x = self.standardize(features);
        if self.config.num_classes == 2 {
            let p = self.mlp.predict_sigmoid(&x);
            Matrix::from_fn(p.rows(), 2, |r, c| {
                let pos = p.get(r, 0);
                if c == 1 {
                    pos
                } else {
                    1.0 - pos
                }
            })
        } else {
            self.mlp.predict_softmax(&x)
        }
    }

    fn compute_standardization(&mut self, features: &Matrix) {
        // Non-finite values are treated as 0.0 so one poisoned cell
        // cannot turn a column's statistics (and with them every
        // prediction) into NaN.
        let clean = |v: f32| if v.is_finite() { v } else { 0.0 };
        let n = features.rows().max(1) as f32;
        let d = features.cols();
        let mut mean = vec![0.0f32; d];
        for r in 0..features.rows() {
            for (m, &v) in mean.iter_mut().zip(features.row(r)) {
                *m += clean(v);
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0f32; d];
        for r in 0..features.rows() {
            for ((s, &v), &m) in var.iter_mut().zip(features.row(r)).zip(&mean) {
                let v = clean(v);
                *s += (v - m) * (v - m);
            }
        }
        self.feat_std = var.into_iter().map(|s| (s / n).sqrt().max(1e-4)).collect();
        self.feat_mean = mean;
    }

    fn standardize(&self, features: &Matrix) -> Matrix {
        assert_eq!(features.cols(), self.feat_mean.len(), "feature dim drift");
        Matrix::from_fn(features.rows(), features.cols(), |r, c| {
            let v = features.get(r, c);
            let v = if v.is_finite() { v } else { 0.0 };
            ((v - self.feat_mean[c]) / self.feat_std[c])
                .clamp(-STANDARDIZED_CLAMP, STANDARDIZED_CLAMP)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Toy similarity features: defective rows have one high feature.
    fn toy_data(n_per_class: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n_per_class {
            rows.push(vec![
                rng.gen_range(0.80..0.88f32),
                rng.gen_range(0.78..0.86),
                rng.gen_range(0.80..0.88),
            ]);
            labels.push(0);
            rows.push(vec![
                rng.gen_range(0.93..1.0f32),
                rng.gen_range(0.80..0.90),
                rng.gen_range(0.90..1.0),
            ]);
            labels.push(1);
        }
        (Matrix::from_rows(&rows), labels)
    }

    #[test]
    fn binary_labeler_learns_separation() {
        let mut rng = StdRng::seed_from_u64(0);
        let (x, y) = toy_data(30, 1);
        let mut labeler = Labeler::new(3, LabelerConfig::new(2), &mut rng).unwrap();
        labeler.fit(&x, &y).unwrap();
        let preds = labeler.predict(&x);
        let correct = preds.iter().zip(&y).filter(|(a, b)| a == b).count();
        assert!(correct >= 55, "{correct}/60 correct");
    }

    #[test]
    fn probabilities_are_normalized() {
        let mut rng = StdRng::seed_from_u64(2);
        let (x, y) = toy_data(10, 3);
        let mut labeler = Labeler::new(3, LabelerConfig::new(2), &mut rng).unwrap();
        labeler.fit(&x, &y).unwrap();
        let proba = labeler.predict_proba(&x);
        assert_eq!(proba.cols(), 2);
        for r in 0..proba.rows() {
            let sum: f32 = proba.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn multiclass_labeler() {
        let mut rng = StdRng::seed_from_u64(4);
        // Three classes, each activating one feature strongly.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for c in 0..3usize {
            for _ in 0..20 {
                let mut row = vec![
                    rng.gen_range(0.8..0.85f32),
                    rng.gen_range(0.8..0.85),
                    rng.gen_range(0.8..0.85),
                ];
                row[c] = rng.gen_range(0.95..1.0);
                rows.push(row);
                labels.push(c);
            }
        }
        let x = Matrix::from_rows(&rows);
        let mut labeler = Labeler::new(3, LabelerConfig::new(3), &mut rng).unwrap();
        labeler.fit(&x, &labels).unwrap();
        let preds = labeler.predict(&x);
        let correct = preds.iter().zip(&labels).filter(|(a, b)| a == b).count();
        assert!(correct >= 54, "{correct}/60 correct");
        let proba = labeler.predict_proba(&x);
        assert_eq!(proba.cols(), 3);
    }

    #[test]
    fn mismatched_rows_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut labeler = Labeler::new(2, LabelerConfig::new(2), &mut rng).unwrap();
        let x = Matrix::zeros(3, 2);
        assert!(labeler.fit(&x, &[0, 1]).is_err());
    }

    #[test]
    fn empty_training_set_rejected() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut labeler = Labeler::new(2, LabelerConfig::new(2), &mut rng).unwrap();
        let x = Matrix::zeros(0, 2);
        assert!(labeler.fit(&x, &[]).is_err());
    }

    #[test]
    fn one_class_config_rejected() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!(Labeler::new(3, LabelerConfig::new(1), &mut rng).is_err());
    }

    #[test]
    fn non_finite_features_never_poison_predictions() {
        let mut rng = StdRng::seed_from_u64(10);
        let (mut x, y) = toy_data(20, 11);
        // Poison a scattering of training cells.
        x.set(0, 0, f32::NAN);
        x.set(3, 1, f32::INFINITY);
        x.set(7, 2, f32::NEG_INFINITY);
        let mut labeler = Labeler::new(3, LabelerConfig::new(2), &mut rng).unwrap();
        labeler.fit(&x, &y).unwrap();
        // Poison the inference batch too.
        let hostile = Matrix::from_rows(&[
            vec![f32::NAN, f32::INFINITY, 1e30],
            vec![f32::NEG_INFINITY, 0.5, f32::NAN],
        ]);
        let proba = labeler.predict_proba(&hostile);
        for v in proba.as_slice() {
            assert!(v.is_finite(), "probability {v} not finite");
            assert!((0.0..=1.0).contains(v));
        }
        let preds = labeler.predict(&hostile);
        assert!(preds.iter().all(|&p| p < 2));
    }

    #[test]
    fn class_prior_labeler_predicts_majority() {
        let mut rng = StdRng::seed_from_u64(12);
        // 3:1 imbalance toward class 0.
        let labels = vec![0, 0, 0, 1, 0, 0, 0, 1];
        let labeler = Labeler::class_prior(4, LabelerConfig::new(2), &labels, &mut rng).unwrap();
        let x = Matrix::from_rows(&[vec![0.9, 0.1, f32::NAN, 0.5], vec![0.0, 0.0, 0.0, 0.0]]);
        let preds = labeler.predict(&x);
        assert_eq!(preds, vec![0, 0], "majority class regardless of features");
        let proba = labeler.predict_proba(&x);
        for r in 0..proba.rows() {
            // Smoothed prior: (2+1)/(8+2) = 0.3 for class 1.
            assert!((proba.get(r, 1) - 0.3).abs() < 1e-3, "{}", proba.get(r, 1));
            assert!(proba.as_slice().iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn class_prior_labeler_multiclass() {
        let mut rng = StdRng::seed_from_u64(13);
        let labels = vec![2, 2, 2, 2, 0, 1];
        let labeler = Labeler::class_prior(3, LabelerConfig::new(3), &labels, &mut rng).unwrap();
        let x = Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]);
        assert_eq!(labeler.predict(&x), vec![2]);
        let proba = labeler.predict_proba(&x);
        let sum: f32 = proba.row(0).iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
    }

    #[test]
    fn standardization_centers_features() {
        let mut rng = StdRng::seed_from_u64(8);
        let (x, y) = toy_data(15, 9);
        let mut labeler = Labeler::new(3, LabelerConfig::new(2), &mut rng).unwrap();
        labeler.fit(&x, &y).unwrap();
        let z = labeler.standardize(&x);
        for c in 0..3 {
            let mean: f32 = (0..z.rows()).map(|r| z.get(r, c)).sum::<f32>() / z.rows() as f32;
            assert!(mean.abs() < 1e-4, "column {c} mean {mean}");
        }
    }
}
