//! Background surface textures for the dataset simulacra.

use ig_imaging::filter::gaussian_blur;
use ig_imaging::noise::{band_image, fbm_image, white_noise_image};
use ig_imaging::GrayImage;
use rand::Rng;

/// Electrical-commutator surface for KSDD: mid-grey metal with vertical
/// machining striations and gentle large-scale shading.
pub fn commutator(seed: u64, width: usize, height: usize) -> GrayImage {
    let shading = fbm_image(seed, width, height, 0.01, 2, 0.35, 0.55);
    let mut out = shading;
    // Vertical machining lines: per-column brightness jitter.
    let stripes = band_image(seed.wrapping_add(7), width, 1, 0.8, -0.04, 0.04);
    for y in 0..height {
        for x in 0..width {
            let v = out.get(x, y) + stripes.get(x, 0);
            out.set(x, y, v);
        }
    }
    let grain = white_noise_image(seed.wrapping_add(13), width, height, -0.03, 0.03);
    for (o, g) in out.pixels_mut().iter_mut().zip(grain.pixels()) {
        *o += g;
    }
    out.clamp(0.0, 1.0);
    out
}

/// Product strip surface: bright, fairly uniform plastic/metal strip with
/// horizontal banding from line-scan lighting. Defaults to the "scratch"
/// strip style; see [`strip_styled`] for the per-product variants.
pub fn strip(seed: u64, width: usize, height: usize) -> GrayImage {
    strip_styled(seed, width, height, StripStyle::Matte)
}

/// The paper's Product images come from *different strips* of the same
/// product with distinct finishes ("different strips are spread into
/// rectangular shapes"; scratches, bubbles and stampings "occur in
/// different strips"). Each per-defect dataset therefore gets its own
/// surface style — this is what keeps cross-defect-dataset transfer
/// (Table 2) from being trivially easy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StripStyle {
    /// Matte mid-bright finish (scratch strip).
    Matte,
    /// Glossy brighter finish with finer banding (bubble strip).
    Glossy,
    /// Brushed darker finish with coarse vertical texture (stamping strip).
    Brushed,
}

/// Styled strip surface.
pub fn strip_styled(seed: u64, width: usize, height: usize, style: StripStyle) -> GrayImage {
    let (lo, hi, band_freq, band_amp) = match style {
        StripStyle::Matte => (0.55, 0.7, 0.05f32, 0.05f32),
        StripStyle::Glossy => (0.65, 0.8, 0.12, 0.03),
        StripStyle::Brushed => (0.45, 0.6, 0.35, 0.06),
    };
    let mut out = fbm_image(seed, width, height, 0.015, 2, lo, hi);
    let bands = band_image(
        seed.wrapping_add(3),
        width,
        1,
        band_freq,
        -band_amp,
        band_amp,
    );
    for y in 0..height {
        for x in 0..width {
            let v = out.get(x, y) + bands.get(x, 0);
            out.set(x, y, v);
        }
    }
    let grain = white_noise_image(seed.wrapping_add(5), width, height, -0.035, 0.035);
    for (o, g) in out.pixels_mut().iter_mut().zip(grain.pixels()) {
        *o += g;
    }
    out.clamp(0.0, 1.0);
    out
}

/// Hot-rolled steel base for NEU: darker, rougher fBm texture.
pub fn rolled_steel(seed: u64, width: usize, height: usize) -> GrayImage {
    let mut out = fbm_image(seed, width, height, 0.06, 4, 0.3, 0.55);
    let grain = white_noise_image(seed.wrapping_add(11), width, height, -0.03, 0.03);
    for (o, g) in out.pixels_mut().iter_mut().zip(grain.pixels()) {
        *o += g;
    }
    out.clamp(0.0, 1.0);
    out
}

/// Heavy acquisition-noise corruption: strong white noise plus a blur,
/// applied to images flagged `noisy` (the Table 6 "noisy data" cause).
pub fn corrupt_with_noise(img: &GrayImage, seed: u64, rng: &mut impl Rng) -> GrayImage {
    let strength = rng.gen_range(0.08..0.18);
    let noise = white_noise_image(seed, img.width(), img.height(), -strength, strength);
    let mut out = img.clone();
    for (o, n) in out.pixels_mut().iter_mut().zip(noise.pixels()) {
        *o += n;
    }
    let blurred = gaussian_blur(&out, 0.6);
    let mut final_img = blurred;
    final_img.clamp(0.0, 1.0);
    final_img
}

#[cfg(test)]
mod tests {
    use super::*;
    use ig_imaging::stats::stats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn surfaces_are_deterministic() {
        assert_eq!(commutator(1, 32, 32), commutator(1, 32, 32));
        assert_eq!(strip(2, 32, 16), strip(2, 32, 16));
        assert_eq!(rolled_steel(3, 24, 24), rolled_steel(3, 24, 24));
    }

    #[test]
    fn surfaces_stay_in_unit_range() {
        for img in [
            commutator(4, 40, 40),
            strip(5, 60, 20),
            rolled_steel(6, 32, 32),
        ] {
            let s = stats(&img);
            assert!(s.min >= 0.0 && s.max <= 1.0);
        }
    }

    #[test]
    fn strip_styles_are_visually_distinct() {
        use super::StripStyle;
        let matte = stats(&strip_styled(3, 64, 32, StripStyle::Matte)).mean;
        let glossy = stats(&strip_styled(3, 64, 32, StripStyle::Glossy)).mean;
        let brushed = stats(&strip_styled(3, 64, 32, StripStyle::Brushed)).mean;
        assert!(glossy > matte, "glossy {glossy} vs matte {matte}");
        assert!(matte > brushed, "matte {matte} vs brushed {brushed}");
    }

    #[test]
    fn strip_is_brighter_than_steel() {
        let a = stats(&strip(7, 64, 32)).mean;
        let b = stats(&rolled_steel(7, 64, 32)).mean;
        assert!(a > b, "strip {a} vs steel {b}");
    }

    #[test]
    fn corruption_raises_variance_of_flat_image() {
        let mut rng = StdRng::seed_from_u64(0);
        let img = GrayImage::filled(32, 32, 0.5);
        let noisy = corrupt_with_noise(&img, 9, &mut rng);
        assert!(stats(&noisy).variance > stats(&img).variance);
        assert!(stats(&noisy).min >= 0.0 && stats(&noisy).max <= 1.0);
    }
}
