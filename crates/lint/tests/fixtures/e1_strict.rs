//! E1 strict fixture: recovery code accounts for every discarded result.

pub fn recovery_step(state: &mut State) {
    let _ = state.rollback();
    state.checkpoint().ok();
    let _ = tick_counter();
}

pub fn degraded_path(state: &mut State) {
    let mut s = String::new();
    let _ = write!(s, "degraded");
    let _guard = state.lock();
    emit(&s);
}
