//! Workspace layout knowledge: which files are library code, which are
//! exempt, and which token ranges are `#[cfg(test)]`-only.

use crate::annotations::AllowIndex;
use crate::ast::Ast;
use crate::lexer::{Lexed, Token};

/// How a file participates in the invariants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Result-producing library code: all rules apply.
    Library,
    /// Driver/experiment/bench code: nondeterminism and panics are allowed
    /// (`crates/experiments`, `crates/bench`, `examples/`).
    Exempt,
    /// Test-only code (`tests/`, `benches/` directories): panics and exact
    /// float assertions are idiomatic; determinism rules still apply.
    Test,
}

/// Library crates whose `src/` must uphold every invariant. Keep in sync
/// with the workspace members in the root `Cargo.toml`.
pub const LIBRARY_CRATES: &[&str] = &[
    "imaging",
    "nn",
    "core",
    "crowd",
    "augment",
    "eval",
    "baselines",
    "synth",
    "faults",
    "runtime",
];

/// Crates allowed to use wall clocks, OS entropy, and panicking shortcuts:
/// experiment drivers and benchmarks. The linter itself is deliberately
/// *not* here — it passes its own rules (self-application).
pub const EXEMPT_CRATES: &[&str] = &["experiments", "bench"];

/// Imaging/NN hot-path files where the `lossy-cast` rule applies: the NCC
/// feature generation chain and the MLP/L-BFGS numeric kernels.
pub const HOT_PATH_FILES: &[&str] = &[
    "crates/imaging/src/ncc.rs",
    "crates/imaging/src/prepared.rs",
    "crates/imaging/src/integral.rs",
    "crates/imaging/src/fft.rs",
    "crates/imaging/src/planner.rs",
    "crates/imaging/src/resize.rs",
    "crates/imaging/src/pyramid.rs",
    "crates/imaging/src/transform.rs",
    "crates/imaging/src/filter.rs",
    "crates/imaging/src/image.rs",
    "crates/nn/src/matrix.rs",
    "crates/nn/src/conv.rs",
    "crates/nn/src/mlp.rs",
    "crates/nn/src/lbfgs.rs",
    "crates/nn/src/optim.rs",
];

/// Persistence modules blessed for ambient effects under P1
/// `stage-purity`: the durable store's disk tier and the run context's
/// artifact plumbing are *where* filesystem work is supposed to live, so
/// effects reachable through them are the contract, not a violation.
pub const PERSISTENCE_FILES: &[&str] = &[
    "crates/runtime/src/store.rs",
    "crates/runtime/src/disk.rs",
    "crates/runtime/src/codec.rs",
    "crates/runtime/src/context.rs",
];

/// Deterministic parallel engines blessed for *thread-spawn* effects only
/// under P1: scoped work-stealing with deterministic reduction. Clock,
/// filesystem, and env access are still violations here.
pub const ENGINE_FILES: &[&str] = &[
    "crates/core/src/features.rs",
    "crates/imaging/src/prepared.rs",
];

/// Files where the C1 `lock-discipline` rule applies: the LRU store and
/// disk tier of the runtime (Mutex + advisory pid lock) and the imaging
/// engine's hot-path caches — the prepared-pattern fitted/spectrum caches
/// and the NCC planner's decision/plan caches (PR 9).
pub fn lock_scope(rel_path: &str) -> bool {
    rel_path == "crates/runtime/src/store.rs"
        || rel_path == "crates/runtime/src/disk.rs"
        || rel_path == "crates/imaging/src/prepared.rs"
        || rel_path == "crates/imaging/src/planner.rs"
}

/// Files where the H1 `hot-loop-alloc` rule applies: the NCC/pyramid hot
/// paths in `crates/imaging` and the feature-generation loop in
/// `crates/core::features`. Per-iteration heap traffic here is a direct
/// throughput regression (ROADMAP: "fast as the hardware allows").
pub fn hot_loop_scope(rel_path: &str) -> bool {
    rel_path.starts_with("crates/imaging/src/") || rel_path == "crates/core/src/features.rs"
}

/// Files where the E1 `error-flow` rule runs in strict mode: fault-recovery
/// ladders (`crates/faults`), the pipeline core (`crates/core`), and the
/// stage-graph runtime (`crates/runtime`), where a swallowed `Result`
/// converts "degrade gracefully" into silent corruption — or, in the
/// runtime's case, into serving a stale artifact as if freshly computed.
pub fn strict_error_scope(rel_path: &str) -> bool {
    rel_path.starts_with("crates/faults/src/")
        || rel_path.starts_with("crates/core/src/")
        || rel_path.starts_with("crates/runtime/src/")
        // The spectral NCC path (PR 9): a swallowed plan/transform error
        // here silently degrades scores instead of failing loudly, so
        // every discarded result must be accounted for.
        || rel_path == "crates/imaging/src/fft.rs"
        || rel_path == "crates/imaging/src/planner.rs"
}

/// Classify a workspace-relative path (forward slashes).
pub fn classify(rel_path: &str) -> FileClass {
    let parts: Vec<&str> = rel_path.split('/').collect();
    // Any tests/ or benches/ directory level marks test-only code.
    if parts
        .iter()
        .take(parts.len().saturating_sub(1))
        .any(|p| *p == "tests" || *p == "benches")
    {
        return FileClass::Test;
    }
    if parts.first() == Some(&"examples") {
        return FileClass::Exempt;
    }
    if parts.first() == Some(&"crates") {
        let krate = parts.get(1).copied().unwrap_or("");
        if EXEMPT_CRATES.contains(&krate) {
            return FileClass::Exempt;
        }
        if parts.get(2) == Some(&"examples") {
            return FileClass::Exempt;
        }
        return FileClass::Library;
    }
    // Root src/ facade crate.
    FileClass::Library
}

/// Everything a rule needs to inspect one file.
#[derive(Debug)]
pub struct FileContext<'a> {
    /// Workspace-relative path with forward slashes, for diagnostics.
    pub path: &'a str,
    pub class: FileClass,
    pub tokens: &'a [Token],
    /// `in_test[i]` is true when token `i` sits inside a `#[cfg(test)]`
    /// item or a `#[test]` function.
    pub in_test: &'a [bool],
    pub allows: &'a AllowIndex,
    /// True when the `lossy-cast` rule applies to this file.
    pub hot_path: bool,
    /// Parsed AST of the file (possibly partial — see [`Ast::errors`]).
    pub ast: &'a Ast,
    /// True when H1 `hot-loop-alloc` applies ([`hot_loop_scope`]).
    pub hot_loop: bool,
    /// True when E1 `error-flow` runs in strict mode ([`strict_error_scope`]).
    pub strict_errors: bool,
}

impl<'a> FileContext<'a> {
    /// Token is in code the invariants govern (not test-only)?
    pub fn governed(&self, i: usize) -> bool {
        !self.in_test.get(i).copied().unwrap_or(false)
    }
}

/// Compute the `#[cfg(test)]` / `#[test]` mask over the token stream.
///
/// Recognizes an attribute whose path is `cfg` and whose argument list
/// mentions the bare ident `test` (covers `cfg(test)`, `cfg(all(test, …))`),
/// or the bare `#[test]` attribute, then masks through the end of the item
/// it decorates: the matching close brace of the first top-level `{`, or a
/// terminating `;` for brace-less items.
pub fn test_mask(lexed: &Lexed) -> Vec<bool> {
    let toks = &lexed.tokens;
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_punct("#") && toks.get(i + 1).is_some_and(|t| t.is_punct("[")) {
            if let Some(close) = matching(toks, i + 1, "[", "]") {
                if attr_is_test(&toks[i + 2..close]) {
                    let end = item_end(toks, close + 1).unwrap_or(toks.len() - 1);
                    for m in mask.iter_mut().take(end + 1).skip(i) {
                        *m = true;
                    }
                    i = end + 1;
                    continue;
                }
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
    mask
}

/// Does the attribute body (tokens strictly inside `#[` … `]`) gate on test?
fn attr_is_test(body: &[Token]) -> bool {
    match body.first() {
        Some(t) if t.is_ident("cfg") => body.iter().enumerate().any(|(j, t)| {
            t.is_ident("test")
                // `cfg(not(test))` gates *non*-test code.
                && !(j >= 2 && body[j - 1].is_punct("(") && body[j - 2].is_ident("not"))
        }),
        Some(t) if t.is_ident("test") && body.len() == 1 => true,
        _ => false,
    }
}

/// Find the end (inclusive) of the item starting at `start`: skips any
/// further attributes, then scans to the matching `}` of the first `{` at
/// delimiter depth zero, or to a `;` at depth zero.
fn item_end(toks: &[Token], start: usize) -> Option<usize> {
    let mut i = start;
    // Skip stacked attributes.
    while i < toks.len()
        && toks[i].is_punct("#")
        && toks.get(i + 1).is_some_and(|t| t.is_punct("["))
    {
        i = matching(toks, i + 1, "[", "]")? + 1;
    }
    let mut paren = 0i32;
    let mut bracket = 0i32;
    while i < toks.len() {
        let t = &toks[i];
        match t.text.as_str() {
            "(" => paren += 1,
            ")" => paren -= 1,
            "[" => bracket += 1,
            "]" => bracket -= 1,
            "{" if paren == 0 && bracket == 0 => return matching(toks, i, "{", "}"),
            ";" if paren == 0 && bracket == 0 => return Some(i),
            _ => {}
        }
        i += 1;
    }
    None
}

/// Index of the delimiter matching `toks[open_at]`.
pub fn matching(toks: &[Token], open_at: usize, open: &str, close: &str) -> Option<usize> {
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate().skip(open_at) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Scan backwards from `close_at` (a `)` token) to its opening `(`.
pub fn matching_back(toks: &[Token], close_at: usize, open: &str, close: &str) -> Option<usize> {
    let mut depth = 0i32;
    for i in (0..=close_at).rev() {
        let t = &toks[i];
        if t.is_punct(close) {
            depth += 1;
        } else if t.is_punct(open) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn classify_paths() {
        assert_eq!(classify("crates/imaging/src/ncc.rs"), FileClass::Library);
        assert_eq!(
            classify("crates/runtime/src/context.rs"),
            FileClass::Library
        );
        assert_eq!(
            classify("crates/experiments/src/main.rs"),
            FileClass::Exempt
        );
        assert_eq!(classify("crates/bench/benches/ncc.rs"), FileClass::Test);
        assert_eq!(classify("crates/nn/tests/props.rs"), FileClass::Test);
        assert_eq!(classify("examples/quickstart.rs"), FileClass::Exempt);
        assert_eq!(classify("src/lib.rs"), FileClass::Library);
        assert_eq!(classify("tests/integration.rs"), FileClass::Test);
        // Self-application: the linter is library code to itself.
        assert_eq!(classify("crates/lint/src/main.rs"), FileClass::Library);
    }

    #[test]
    fn rule_scopes() {
        assert!(hot_loop_scope("crates/imaging/src/ncc.rs"));
        assert!(hot_loop_scope("crates/core/src/features.rs"));
        assert!(!hot_loop_scope("crates/core/src/pipeline.rs"));
        assert!(!hot_loop_scope("crates/nn/src/matrix.rs"));
        assert!(strict_error_scope("crates/faults/src/health.rs"));
        assert!(strict_error_scope("crates/core/src/pipeline.rs"));
        assert!(strict_error_scope("crates/runtime/src/context.rs"));
        // The durable-persistence layer: a swallowed I/O or codec Result
        // here is exactly the "silent corruption" E1 strict mode exists
        // for. Pin the modules by name so a future split of the runtime
        // crate cannot quietly drop them from scope.
        assert!(strict_error_scope("crates/runtime/src/disk.rs"));
        assert!(strict_error_scope("crates/runtime/src/codec.rs"));
        assert!(strict_error_scope("crates/runtime/src/store.rs"));
        assert!(!strict_error_scope("crates/imaging/src/ncc.rs"));
        // The spectral NCC path (PR 9): new kernels enter every relevant
        // scope — H1 via the imaging prefix, N2 via HOT_PATH_FILES, E1
        // strict by name, and the planner's caches under C1.
        assert!(hot_loop_scope("crates/imaging/src/fft.rs"));
        assert!(hot_loop_scope("crates/imaging/src/planner.rs"));
        assert!(HOT_PATH_FILES.contains(&"crates/imaging/src/fft.rs"));
        assert!(HOT_PATH_FILES.contains(&"crates/imaging/src/planner.rs"));
        assert!(strict_error_scope("crates/imaging/src/fft.rs"));
        assert!(strict_error_scope("crates/imaging/src/planner.rs"));
        assert!(lock_scope("crates/imaging/src/planner.rs"));
        assert!(!strict_error_scope("crates/imaging/src/prepared.rs"));
    }

    #[test]
    fn runtime_is_a_library_crate() {
        // The stage-graph runtime (including its persistence modules)
        // must stay under full invariant coverage: D1 keeps wall clocks
        // and ambient entropy out of the durability protocol, P1 keeps
        // panics out of the artifact parser.
        assert!(LIBRARY_CRATES.contains(&"runtime"));
        assert_eq!(classify("crates/runtime/src/disk.rs"), FileClass::Library);
        assert_eq!(classify("crates/runtime/src/codec.rs"), FileClass::Library);
        assert_eq!(
            classify("crates/runtime/tests/durability.rs"),
            FileClass::Test
        );
    }

    #[test]
    fn cfg_test_module_is_masked() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn live2() {}\n";
        let l = lex(src);
        let mask = test_mask(&l);
        let unwrap_pos = l.tokens.iter().position(|t| t.is_ident("unwrap"));
        assert!(mask[unwrap_pos.expect("unwrap token present")]);
        let live2 = l.tokens.iter().position(|t| t.is_ident("live2"));
        assert!(!mask[live2.expect("live2 present")]);
    }

    #[test]
    fn test_fn_attribute_is_masked() {
        let src = "#[test]\nfn check() { assert!(v[0] == 1.0); }\nfn live() {}\n";
        let l = lex(src);
        let mask = test_mask(&l);
        let assert_pos = l.tokens.iter().position(|t| t.is_ident("assert"));
        assert!(mask[assert_pos.expect("assert present")]);
        let live = l.tokens.iter().position(|t| t.is_ident("live"));
        assert!(!mask[live.expect("live present")]);
    }

    #[test]
    fn cfg_feature_is_not_masked() {
        let src = "#[cfg(feature = \"x\")]\nfn gated() {}\n";
        let l = lex(src);
        let mask = test_mask(&l);
        assert!(mask.iter().all(|&m| !m));
    }

    #[test]
    fn derive_attributes_do_not_confuse_masking() {
        let src =
            "#[derive(Debug, Clone)]\npub struct S { x: f32 }\n#[cfg(test)]\nmod t { fn f() {} }\n";
        let l = lex(src);
        let mask = test_mask(&l);
        let s = l.tokens.iter().position(|t| t.is_ident("S"));
        assert!(!mask[s.expect("S present")]);
        let f = l.tokens.iter().position(|t| t.is_ident("f"));
        assert!(mask[f.expect("f present")]);
    }
}
