//! D1: sources of nondeterminism.
//!
//! The fault-injection subsystem's contract is that a clean run is
//! bit-for-bit reproducible from its seed. Any ambient entropy or wall
//! clock consulted by pipeline code breaks that silently, so it is banned
//! everywhere except the experiment drivers and benchmarks. The rule also
//! applies *inside* tests of library crates: a test that draws from
//! `thread_rng()` is a flaky test.

use crate::context::{FileClass, FileContext};
use crate::report::Diagnostic;

/// Identifiers that are nondeterministic wherever they appear.
const BANNED_IDENTS: &[(&str, &str)] = &[
    (
        "thread_rng",
        "`rand::thread_rng()` seeds from OS entropy; take an `&mut StdRng` \
         (seeded via `SeedableRng::seed_from_u64`) as a parameter instead",
    ),
    (
        "from_entropy",
        "`SeedableRng::from_entropy()` is unseeded; derive the RNG from the \
         run seed instead",
    ),
    (
        "OsRng",
        "`OsRng` draws from the operating system; derive randomness from the \
         run seed instead",
    ),
];

/// `Type::now` paths that read the wall clock.
const BANNED_NOW: &[(&str, &str)] = &[
    (
        "SystemTime",
        "`SystemTime::now()` makes results depend on the wall clock; thread a \
         timestamp in from the caller or drop it from the result",
    ),
    (
        "Instant",
        "`Instant::now()` reads the monotonic clock; timing belongs in \
         crates/bench, not in result-producing code",
    ),
];

pub fn check(ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    if ctx.class == FileClass::Exempt {
        return;
    }
    let toks = ctx.tokens;
    for (i, t) in toks.iter().enumerate() {
        for (name, why) in BANNED_IDENTS {
            if t.is_ident(name) {
                out.push(Diagnostic {
                    rule: "nondeterminism".to_string(),
                    path: ctx.path.to_string(),
                    line: t.line,
                    col: t.col,
                    message: (*why).to_string(),
                });
            }
        }
        for (ty, why) in BANNED_NOW {
            if t.is_ident(ty)
                && toks.get(i + 1).is_some_and(|t| t.is_punct("::"))
                && toks.get(i + 2).is_some_and(|t| t.is_ident("now"))
            {
                out.push(Diagnostic {
                    rule: "nondeterminism".to_string(),
                    path: ctx.path.to_string(),
                    line: t.line,
                    col: t.col,
                    message: (*why).to_string(),
                });
            }
        }
        // `rand::random::<T>()` — ambient thread-local RNG in disguise.
        if t.is_ident("random")
            && i >= 2
            && toks[i - 1].is_punct("::")
            && toks[i - 2].is_ident("rand")
        {
            out.push(Diagnostic {
                rule: "nondeterminism".to_string(),
                path: ctx.path.to_string(),
                line: t.line,
                col: t.col,
                message: "`rand::random()` uses the ambient thread-local RNG; draw from \
                          a seeded `StdRng` instead"
                    .to_string(),
            });
        }
    }
}
