//! Structural 128-bit fingerprints for memoization keys.
//!
//! A fingerprint is a deterministic hash of a stage's inputs and
//! configuration: same bytes in → same fingerprint, on every run and
//! every platform. Two independent 64-bit SplitMix streams keep the
//! collision probability for a store holding `n` artifacts near
//! `n² / 2^129` — negligible at experiment scale — without pulling in an
//! external hashing crate.
//!
//! Float values are hashed by their IEEE-754 bit patterns, so `-0.0` and
//! `0.0` fingerprint differently; that is the right discipline for a
//! cache whose contract is *bit-identical* replay.

use ig_faults::{FaultPlan, GanFault};
use ig_imaging::ncc::PyramidMatchConfig;
use ig_imaging::prepared::PreparedImage;
use ig_imaging::GrayImage;
use ig_nn::Matrix;
use ig_synth::spec::{DatasetKind, DatasetSpec};

/// A 128-bit content fingerprint. Ordered (lexicographically by `lo`
/// then `hi`) so stores can keep fingerprint-keyed maps with
/// deterministic iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fingerprint {
    /// Low 64 bits (stream A).
    pub lo: u64,
    /// High 64 bits (stream B).
    pub hi: u64,
}

impl Fingerprint {
    /// The fingerprint of "no input": what a fresh hasher finishes to.
    /// Non-cacheable stages may return it from [`crate::Stage::fingerprint`];
    /// the runtime never reads it for them.
    pub fn null() -> Fingerprint {
        FingerprintHasher::new().finish()
    }

    /// Fold another fingerprint into this one (order-sensitive).
    pub fn mix(self, other: Fingerprint) -> Fingerprint {
        let mut h = FingerprintHasher::new();
        h.write_u64(self.lo);
        h.write_u64(self.hi);
        h.write_u64(other.lo);
        h.write_u64(other.hi);
        h.finish()
    }
}

/// SplitMix64 finalizer: the avalanche core of both streams.
fn splitmix(state: u64, value: u64) -> u64 {
    let mut z = state ^ value.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Incremental two-stream hasher producing a [`Fingerprint`].
#[derive(Debug, Clone)]
pub struct FingerprintHasher {
    a: u64,
    b: u64,
}

impl Default for FingerprintHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl FingerprintHasher {
    /// Fresh hasher with fixed, documented stream seeds.
    pub fn new() -> Self {
        Self {
            // FNV-1a offset basis and the golden-ratio constant: two
            // unrelated starting points so the streams decorrelate.
            a: 0xcbf2_9ce4_8422_2325,
            b: 0x517c_c1b7_2722_0a95,
        }
    }

    /// Hash one 64-bit word into both streams.
    pub fn write_u64(&mut self, v: u64) {
        self.a = splitmix(self.a, v);
        self.b = splitmix(self.b, v.rotate_left(32) ^ 0xd6e8_feb8_6659_fd93);
    }

    /// Hash a `usize` (widened — fingerprints are platform-independent
    /// for any count below 2^64).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Hash a boolean as a full word (keeps adjacent fields separated).
    pub fn write_bool(&mut self, v: bool) {
        self.write_u64(u64::from(v));
    }

    /// Hash an `f32` by bit pattern.
    pub fn write_f32(&mut self, v: f32) {
        self.write_u64(u64::from(v.to_bits()));
    }

    /// Hash an `f64` by bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Hash a byte string (length-prefixed, 8 bytes per word).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_usize(bytes.len());
        for chunk in bytes.chunks(8) {
            let mut word = 0u64;
            for &byte in chunk {
                word = (word << 8) | u64::from(byte);
            }
            self.write_u64(word);
        }
    }

    /// Hash a UTF-8 string.
    pub fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
    }

    /// Hash a slice of `f32` by bit patterns, two lanes per word.
    pub fn write_f32s(&mut self, values: &[f32]) {
        self.write_usize(values.len());
        for pair in values.chunks(2) {
            let mut word = 0u64;
            for &v in pair {
                word = (word << 32) | u64::from(v.to_bits());
            }
            self.write_u64(word);
        }
    }

    /// Finish into a [`Fingerprint`]. The hasher can keep absorbing —
    /// `finish` reads the current state without consuming it.
    pub fn finish(&self) -> Fingerprint {
        // One extra avalanche round so short inputs still diffuse.
        Fingerprint {
            lo: splitmix(self.a, self.b),
            hi: splitmix(self.b, self.a.rotate_left(17)),
        }
    }
}

/// Types that can contribute to a stage fingerprint.
///
/// Implementations must hash *all* semantically relevant state: any field
/// that can change a stage's output must reach the hasher, or the store
/// will serve stale artifacts.
pub trait Fingerprintable {
    /// Feed this value into `h`.
    fn fingerprint_into(&self, h: &mut FingerprintHasher);

    /// Standalone fingerprint of this value.
    fn fingerprint(&self) -> Fingerprint {
        let mut h = FingerprintHasher::new();
        self.fingerprint_into(&mut h);
        h.finish()
    }
}

impl Fingerprintable for u64 {
    fn fingerprint_into(&self, h: &mut FingerprintHasher) {
        h.write_u64(*self);
    }
}

impl Fingerprintable for usize {
    fn fingerprint_into(&self, h: &mut FingerprintHasher) {
        h.write_usize(*self);
    }
}

impl Fingerprintable for f32 {
    fn fingerprint_into(&self, h: &mut FingerprintHasher) {
        h.write_f32(*self);
    }
}

impl Fingerprintable for f64 {
    fn fingerprint_into(&self, h: &mut FingerprintHasher) {
        h.write_f64(*self);
    }
}

impl Fingerprintable for bool {
    fn fingerprint_into(&self, h: &mut FingerprintHasher) {
        h.write_bool(*self);
    }
}

impl Fingerprintable for str {
    fn fingerprint_into(&self, h: &mut FingerprintHasher) {
        h.write_str(self);
    }
}

impl Fingerprintable for String {
    fn fingerprint_into(&self, h: &mut FingerprintHasher) {
        h.write_str(self);
    }
}

impl<T: Fingerprintable> Fingerprintable for [T] {
    fn fingerprint_into(&self, h: &mut FingerprintHasher) {
        h.write_usize(self.len());
        for item in self {
            item.fingerprint_into(h);
        }
    }
}

impl<T: Fingerprintable> Fingerprintable for Vec<T> {
    fn fingerprint_into(&self, h: &mut FingerprintHasher) {
        self.as_slice().fingerprint_into(h);
    }
}

impl<T: Fingerprintable + ?Sized> Fingerprintable for &T {
    fn fingerprint_into(&self, h: &mut FingerprintHasher) {
        (**self).fingerprint_into(h);
    }
}

impl<T: Fingerprintable> Fingerprintable for Option<T> {
    fn fingerprint_into(&self, h: &mut FingerprintHasher) {
        match self {
            None => h.write_bool(false),
            Some(v) => {
                h.write_bool(true);
                v.fingerprint_into(h);
            }
        }
    }
}

impl Fingerprintable for GrayImage {
    fn fingerprint_into(&self, h: &mut FingerprintHasher) {
        h.write_usize(self.width());
        h.write_usize(self.height());
        h.write_f32s(self.pixels());
    }
}

impl Fingerprintable for PreparedImage {
    /// A prepared image is a pure function of its source pixels and the
    /// match config it was built under; hashing the source (plus level
    /// count, which encodes the config's effect) keeps the fingerprint
    /// cheap relative to rebuilding the pyramid.
    fn fingerprint_into(&self, h: &mut FingerprintHasher) {
        self.image().fingerprint_into(h);
        h.write_usize(self.num_levels());
    }
}

impl Fingerprintable for Matrix {
    fn fingerprint_into(&self, h: &mut FingerprintHasher) {
        h.write_usize(self.rows());
        h.write_usize(self.cols());
        h.write_f32s(self.as_slice());
    }
}

impl Fingerprintable for PyramidMatchConfig {
    fn fingerprint_into(&self, h: &mut FingerprintHasher) {
        h.write_usize(self.max_levels);
        h.write_usize(self.min_pattern_side);
        h.write_usize(self.top_k);
        h.write_usize(self.refine_radius);
    }
}

impl Fingerprintable for DatasetKind {
    fn fingerprint_into(&self, h: &mut FingerprintHasher) {
        let tag = match self {
            DatasetKind::Ksdd => 0u64,
            DatasetKind::ProductScratch => 1,
            DatasetKind::ProductBubble => 2,
            DatasetKind::ProductStamping => 3,
            DatasetKind::Neu => 4,
        };
        h.write_u64(tag);
    }
}

impl Fingerprintable for DatasetSpec {
    fn fingerprint_into(&self, h: &mut FingerprintHasher) {
        self.kind.fingerprint_into(h);
        h.write_usize(self.n);
        h.write_usize(self.n_defective);
        h.write_usize(self.width);
        h.write_usize(self.height);
        h.write_u64(self.seed);
        h.write_f64(self.noisy_fraction);
        h.write_f64(self.difficult_fraction);
    }
}

impl Fingerprintable for FaultPlan {
    fn fingerprint_into(&self, h: &mut FingerprintHasher) {
        h.write_u64(self.seed);
        h.write_f64(self.nan_feature_rate);
        h.write_f64(self.inf_feature_rate);
        h.write_f64(self.degenerate_pattern_rate);
        h.write_f64(self.crowd_no_show_rate);
        h.write_f64(self.crowd_spammer_rate);
        h.write_f64(self.worker_panic_rate);
        h.write_f64(self.lbfgs_poison_rate);
        h.write_f64(self.torn_write_rate);
        h.write_f64(self.artifact_bitflip_rate);
        h.write_f64(self.stale_lock_rate);
        match self.gan_fault_epoch {
            None => h.write_bool(false),
            Some(epoch) => {
                h.write_bool(true);
                h.write_usize(epoch);
            }
        }
        h.write_u64(match self.gan_fault {
            GanFault::Diverge => 0,
            GanFault::Collapse => 1,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_inputs_same_fingerprint() {
        let a = DatasetSpec::quick(DatasetKind::Ksdd, 7).fingerprint();
        let b = DatasetSpec::quick(DatasetKind::Ksdd, 7).fingerprint();
        assert_eq!(a, b);
    }

    #[test]
    fn any_field_change_changes_fingerprint() {
        let base = DatasetSpec::quick(DatasetKind::Ksdd, 7);
        let variants = [
            DatasetSpec { seed: 8, ..base },
            DatasetSpec {
                n: base.n + 1,
                ..base
            },
            DatasetSpec {
                noisy_fraction: base.noisy_fraction + 0.01,
                ..base
            },
            DatasetSpec::quick(DatasetKind::Neu, 7),
        ];
        for v in &variants {
            assert_ne!(base.fingerprint(), v.fingerprint(), "{v:?}");
        }
    }

    #[test]
    fn field_order_matters() {
        let mut h1 = FingerprintHasher::new();
        h1.write_u64(1);
        h1.write_u64(2);
        let mut h2 = FingerprintHasher::new();
        h2.write_u64(2);
        h2.write_u64(1);
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn length_prefix_separates_concatenations() {
        // ["ab", "c"] vs ["a", "bc"] must differ.
        let mut h1 = FingerprintHasher::new();
        h1.write_str("ab");
        h1.write_str("c");
        let mut h2 = FingerprintHasher::new();
        h2.write_str("a");
        h2.write_str("bc");
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn float_bits_distinguish_negative_zero() {
        let mut h1 = FingerprintHasher::new();
        h1.write_f32(0.0);
        let mut h2 = FingerprintHasher::new();
        h2.write_f32(-0.0);
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn image_fingerprint_tracks_pixels() {
        let img = GrayImage::filled(8, 6, 0.5);
        let mut other = img.clone();
        let fp = img.fingerprint();
        assert_eq!(fp, other.fingerprint());
        if let Some(p) = other.pixels_mut().iter_mut().next() {
            *p += 0.25;
        }
        assert_ne!(fp, other.fingerprint());
    }

    #[test]
    fn mix_is_order_sensitive() {
        let a = 1u64.fingerprint();
        let b = 2u64.fingerprint();
        assert_ne!(a.mix(b), b.mix(a));
        assert_eq!(a.mix(b), a.mix(b));
    }

    #[test]
    fn fault_plan_fingerprint_covers_gan_fields() {
        let base = FaultPlan::none(3);
        let epoch = FaultPlan {
            gan_fault_epoch: Some(2),
            ..base.clone()
        };
        let collapse = FaultPlan {
            gan_fault_epoch: Some(2),
            gan_fault: GanFault::Collapse,
            ..base.clone()
        };
        assert_ne!(base.fingerprint(), epoch.fingerprint());
        assert_ne!(epoch.fingerprint(), collapse.fingerprint());
    }

    #[test]
    fn fault_plan_fingerprint_covers_durability_fields() {
        let base = FaultPlan::none(3);
        let variants = [
            FaultPlan {
                torn_write_rate: 0.1,
                ..base.clone()
            },
            FaultPlan {
                artifact_bitflip_rate: 0.1,
                ..base.clone()
            },
            FaultPlan {
                stale_lock_rate: 0.1,
                ..base.clone()
            },
        ];
        for v in &variants {
            assert_ne!(base.fingerprint(), v.fingerprint(), "{v:?}");
        }
        assert_ne!(
            variants[0].fingerprint(),
            variants[1].fingerprint(),
            "rates must land in distinct hash positions"
        );
    }
}
