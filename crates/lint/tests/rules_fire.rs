//! End-to-end rule tests over the fixture files: each rule fires at the
//! expected `(line)` positions, clean constructs stay silent, and allow
//! annotations (with reasons) suppress.

use ig_lint::context::FileClass;
use ig_lint::report::Diagnostic;
use ig_lint::{check_source_with, collect_rs_files};

/// Run the analyzer on a fixture as library code (hot-path on, so the
/// lossy-cast rule participates).
fn lint_fixture(src: &str) -> Vec<Diagnostic> {
    check_source_with("fixture.rs", src, FileClass::Library, true)
}

/// Lines (sorted, deduped) where `rule` fired.
fn lines_for(diags: &[Diagnostic], rule: &str) -> Vec<u32> {
    let mut lines: Vec<u32> = diags
        .iter()
        .filter(|d| d.rule == rule)
        .map(|d| d.line)
        .collect();
    lines.sort_unstable();
    lines.dedup();
    lines
}

#[test]
fn d1_nondeterminism_fires_at_expected_lines() {
    let diags = lint_fixture(include_str!("fixtures/d1_nondeterminism.rs"));
    assert_eq!(
        lines_for(&diags, "nondeterminism"),
        vec![7, 8, 13, 14, 18, 19],
        "diags: {diags:#?}"
    );
    // Seeded construction and the annotated SystemTime::now stay silent.
    assert!(!lines_for(&diags, "nondeterminism").contains(&23));
    assert!(!lines_for(&diags, "nondeterminism").contains(&28));
}

#[test]
fn d2_hash_iter_fires_at_expected_lines() {
    let diags = lint_fixture(include_str!("fixtures/d2_hash_iter.rs"));
    assert_eq!(
        lines_for(&diags, "hash-iter"),
        vec![7, 14],
        "diags: {diags:#?}"
    );
}

#[test]
fn p1_panic_fires_at_expected_lines() {
    let diags = lint_fixture(include_str!("fixtures/p1_panic.rs"));
    assert_eq!(
        lines_for(&diags, "panic"),
        vec![4, 5, 11, 12, 13, 19],
        "diags: {diags:#?}"
    );
}

#[test]
fn n1_float_eq_fires_at_expected_lines() {
    let diags = lint_fixture(include_str!("fixtures/n1_float_eq.rs"));
    assert_eq!(
        lines_for(&diags, "float-eq"),
        vec![5, 13, 17],
        "diags: {diags:#?}"
    );
}

#[test]
fn n2_lossy_cast_fires_at_expected_lines() {
    let diags = lint_fixture(include_str!("fixtures/n2_lossy_cast.rs"));
    assert_eq!(
        lines_for(&diags, "lossy-cast"),
        vec![5, 9, 13],
        "diags: {diags:#?}"
    );
}

#[test]
fn n2_is_scoped_to_hot_paths() {
    let src = include_str!("fixtures/n2_lossy_cast.rs");
    let diags = check_source_with("fixture.rs", src, FileClass::Library, false);
    assert!(lines_for(&diags, "lossy-cast").is_empty());
}

#[test]
fn bad_annotations_fail_and_do_not_suppress() {
    let diags = lint_fixture(include_str!("fixtures/bad_annotations.rs"));
    assert_eq!(
        lines_for(&diags, "panic"),
        vec![5, 9, 13],
        "malformed allows must not suppress; diags: {diags:#?}"
    );
    assert_eq!(lines_for(&diags, "bad-annotation"), vec![5, 9, 13]);
}

#[test]
fn exempt_class_skips_library_rules() {
    let src = include_str!("fixtures/p1_panic.rs");
    let diags = check_source_with("fixture.rs", src, FileClass::Exempt, true);
    assert!(diags.is_empty(), "diags: {diags:#?}");
}

#[test]
fn test_class_keeps_determinism_rules_only() {
    let d1 = include_str!("fixtures/d1_nondeterminism.rs");
    let diags = check_source_with("fixture.rs", d1, FileClass::Test, true);
    assert!(!lines_for(&diags, "nondeterminism").is_empty());

    let p1 = include_str!("fixtures/p1_panic.rs");
    let diags = check_source_with("fixture.rs", p1, FileClass::Test, true);
    assert!(lines_for(&diags, "panic").is_empty());
}

#[test]
fn diagnostics_carry_column_and_render() {
    let diags = lint_fixture(include_str!("fixtures/p1_panic.rs"));
    let first = diags.iter().find(|d| d.rule == "panic").expect("fires");
    assert!(first.col > 1);
    let rendered = first.render();
    assert!(rendered.contains("error[panic]"));
    assert!(rendered.contains(&format!("fixture.rs:{}:{}", first.line, first.col)));
}

#[test]
fn e1_error_flow_fires_at_expected_lines() {
    let diags = lint_fixture(include_str!("fixtures/e1_error_flow.rs"));
    assert_eq!(
        lines_for(&diags, "error-flow"),
        vec![8, 9, 10, 11],
        "diags: {diags:#?}"
    );
}

#[test]
fn e1_strict_scope_flags_any_discard() {
    let src = include_str!("fixtures/e1_strict.rs");
    let strict = check_source_with(
        "crates/faults/src/fixture.rs",
        src,
        FileClass::Library,
        false,
    );
    assert_eq!(
        lines_for(&strict, "error-flow"),
        vec![4, 5, 6],
        "diags: {strict:#?}"
    );
    // Outside strict scope the same discards are legal: none of the callees
    // are provably fallible.
    let lax = check_source_with("fixture.rs", src, FileClass::Library, false);
    assert!(lines_for(&lax, "error-flow").is_empty(), "diags: {lax:#?}");
}

#[test]
fn h1_hot_loop_alloc_fires_at_expected_lines() {
    let src = include_str!("fixtures/h1_hot_loop.rs");
    let hot = check_source_with(
        "crates/imaging/src/fixture.rs",
        src,
        FileClass::Library,
        false,
    );
    assert_eq!(
        lines_for(&hot, "hot-loop-alloc"),
        vec![7, 8, 9, 19],
        "diags: {hot:#?}"
    );
    // The same allocations off the hot paths are out of scope.
    let cold = check_source_with("fixture.rs", src, FileClass::Library, false);
    assert!(
        lines_for(&cold, "hot-loop-alloc").is_empty(),
        "diags: {cold:#?}"
    );
}

#[test]
fn s1_shape_contract_fires_at_expected_lines() {
    let diags = lint_fixture(include_str!("fixtures/s1_shape.rs"));
    assert_eq!(
        lines_for(&diags, "shape-contract"),
        vec![4, 5, 6, 7, 8],
        "diags: {diags:#?}"
    );
}

#[test]
fn malformed_source_degrades_to_token_rules() {
    // `fn broken(((( {` never parses; the token-level panic rule must still
    // fire on the well-formed function below it, and nothing may panic.
    let diags = lint_fixture(include_str!("fixtures/parse_recovery.rs"));
    assert_eq!(lines_for(&diags, "panic"), vec![7], "diags: {diags:#?}");
}

#[test]
fn fix_roundtrip_clears_error_flow() {
    let src = include_str!("fixtures/fix_roundtrip.rs");
    let rel = "crates/faults/src/fixture.rs";
    let before = check_source_with(rel, src, FileClass::Library, false);
    assert!(!lines_for(&before, "error-flow").is_empty());

    let fixes = ig_lint::fix::plan_fixes(rel, src, Some(FileClass::Library));
    assert!(!fixes.is_empty(), "expected mechanical fixes to be planned");
    let fixed = ig_lint::fix::apply_fixes(src, &fixes);

    let after = check_source_with(rel, &fixed, FileClass::Library, false);
    assert!(
        lines_for(&after, "error-flow").is_empty(),
        "fixed:\n{fixed}\ndiags: {after:#?}"
    );
}

#[test]
fn f1_fingerprint_fires_at_expected_lines() {
    let diags = check_source_with(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/f1_stage.rs"),
        FileClass::Library,
        false,
    );
    // 35: `self.deep` read through the inherent `helper()` (interprocedural);
    // 43: `self.relic` hashed but never read; 47: `self.bins` read-unhashed;
    // 49: `ctx.threads()` influences run() but is not keyed.
    assert_eq!(
        lines_for(&diags, "fingerprint-completeness"),
        vec![35, 43, 47, 49],
        "diags: {diags:#?}"
    );
    // The clean stage contributes nothing.
    assert!(diags
        .iter()
        .filter(|d| d.rule == "fingerprint-completeness")
        .all(|d| !d.message.contains("Clean")));
}

#[test]
fn p1_stage_purity_fires_at_expected_lines() {
    let diags = check_source_with(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/p1_stage.rs"),
        FileClass::Library,
        false,
    );
    // 12: `std::fs::read_to_string` reached through the free helper;
    // 26: `std::env::var` called directly in run(). `Pure` stays silent.
    assert_eq!(
        lines_for(&diags, "stage-purity"),
        vec![12, 26],
        "diags: {diags:#?}"
    );
    assert!(diags
        .iter()
        .filter(|d| d.rule == "stage-purity")
        .all(|d| d.message.contains("Impure::run")));
}

#[test]
fn c1_lock_discipline_fires_at_expected_lines() {
    let diags = check_source_with(
        "crates/runtime/src/store.rs",
        include_str!("fixtures/c1_locks.rs"),
        FileClass::Library,
        false,
    );
    // 15: Store.index→Store.journal ordering that `backward()` reverses
    // (cycle); 16: `?` with both guards held; 36: `?` under the advisory
    // pid lock. `disciplined()` (read before lock, drop before return) is
    // silent.
    assert_eq!(
        lines_for(&diags, "lock-discipline"),
        vec![15, 16, 36],
        "diags: {diags:#?}"
    );
}

#[test]
fn a1_atomic_ordering_fires_at_expected_lines() {
    let diags = check_source_with(
        "crates/runtime/src/fixture.rs",
        include_str!("fixtures/a1_atomic.rs"),
        FileClass::Library,
        false,
    );
    // 15: Relaxed load gating an `if` directly; 21: gate through one
    // local binding; 30: consumed RMW; 42: Relaxed store whose target is
    // in the worker closure's escape set. The statement-level counter
    // (16), the blessed `clock` field (34), and the Acquire/Release
    // pairs (46-48) stay silent.
    assert_eq!(
        lines_for(&diags, "atomic-ordering"),
        vec![15, 21, 30, 42],
        "diags: {diags:#?}"
    );
}

#[test]
fn j1_join_discipline_fires_at_expected_lines() {
    let diags = lint_fixture(include_str!("fixtures/j1_join.rs"));
    // 6: bare-statement spawn; 10: `let _ =` spawn; 14: handle never
    // joined; 21: `?` exits before the join; 30-32: join verdicts
    // discarded. `disciplined`, the escaping handle, and the blessed
    // detach stay silent.
    assert_eq!(
        lines_for(&diags, "join-discipline"),
        vec![6, 10, 14, 21, 30, 31, 32],
        "diags: {diags:#?}"
    );
}

#[test]
fn d1_salt_determinism_fires_at_expected_lines() {
    let diags = check_source_with(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/d1_salt.rs"),
        FileClass::Library,
        false,
    );
    // 19 + 26: Splitter and Augmenter share salt 0x51; 35: salt is not a
    // compile-time constant; 36: the run seed fed to `seed_from_u64`
    // directly. The unique salt (33) and the helper shared by several
    // stages (42) stay silent.
    assert_eq!(
        lines_for(&diags, "salt-determinism"),
        vec![19, 26, 35, 36],
        "diags: {diags:#?}"
    );
    let collision = diags
        .iter()
        .find(|d| d.rule == "salt-determinism" && d.line == 19)
        .expect("collision diag");
    assert!(
        collision.message.contains("Splitter") && collision.message.contains("Augmenter"),
        "collision must name both stages: {}",
        collision.message
    );
}

#[test]
fn fix_roundtrip_clears_discarded_joins() {
    // The mechanical J1 rewrite clears the discarded-verdict shape (lines
    // 30-32); detached spawns and early exits stay manual findings.
    let src = include_str!("fixtures/j1_join.rs");
    let fixes = ig_lint::fix::plan_fixes("crates/core/src/fixture.rs", src, None);
    assert_eq!(fixes.len(), 3, "fixes: {fixes:#?}");
    let fixed = ig_lint::fix::apply_fixes(src, &fixes);
    let after = lint_fixture(&fixed);
    assert_eq!(
        lines_for(&after, "join-discipline")
            .iter()
            .filter(|&&l| (30..=34).contains(&l))
            .count(),
        0,
        "fixed:\n{fixed}\ndiags: {after:#?}"
    );
    assert!(
        fixed.contains("if let Err(e) = a.join()"),
        "fixed:\n{fixed}"
    );
}

#[test]
fn workspace_walk_skips_fixtures_and_target() {
    // Walk this crate's own directory: the fixtures directory (full of
    // deliberate violations) must not be collected.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let files = collect_rs_files(root).expect("walk");
    assert!(files
        .iter()
        .all(|p| !p.to_string_lossy().contains("fixtures")));
    assert!(files
        .iter()
        .any(|p| p.to_string_lossy().ends_with("src/lib.rs")));
}
