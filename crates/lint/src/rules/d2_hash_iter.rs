//! D2: iteration over hash-ordered collections.
//!
//! `HashMap`/`HashSet` iteration order is randomized per process (SipHash
//! keys), so any result that folds over it — feature vectors, worker
//! tallies, report lines — can differ between two runs with the same
//! seed. The rule tracks identifiers bound to hash collections within a
//! file and flags iteration-shaped uses; membership tests and keyed reads
//! stay legal.

use std::collections::BTreeSet;

use crate::context::{FileClass, FileContext};
use crate::lexer::TokenKind;
use crate::report::Diagnostic;

const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];

/// Methods that observe collection order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

pub fn check(ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    if ctx.class != FileClass::Library {
        return;
    }
    let toks = ctx.tokens;

    // Pass 1: identifiers bound to a hash collection anywhere in the file —
    // `x: HashMap<…>` (lets, fields, params) or `let x = HashMap::new()`.
    let mut hash_idents: BTreeSet<&str> = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident || !HASH_TYPES.contains(&t.text.as_str()) {
            continue;
        }
        // `name : HashMap` (possibly through `&`/`&mut`).
        let mut j = i;
        while j >= 1 && (toks[j - 1].is_punct("&") || toks[j - 1].is_ident("mut")) {
            j -= 1;
        }
        if j >= 2 && toks[j - 1].is_punct(":") && toks[j - 2].kind == TokenKind::Ident {
            hash_idents.insert(toks[j - 2].text.as_str());
        }
        // `let [mut] name = HashMap…`.
        if i >= 2 && toks[i - 1].is_punct("=") {
            let name_at = i - 2;
            if toks[name_at].kind == TokenKind::Ident {
                let let_at = if name_at >= 1 && toks[name_at - 1].is_ident("mut") {
                    name_at.checked_sub(2)
                } else {
                    name_at.checked_sub(1)
                };
                if let_at.is_some_and(|k| toks[k].is_ident("let")) {
                    hash_idents.insert(toks[name_at].text.as_str());
                }
            }
        }
    }

    for (i, t) in toks.iter().enumerate() {
        if !ctx.governed(i) {
            continue;
        }
        // `recv.method(` where recv is hash-bound (also `self.field.method(`).
        if t.kind == TokenKind::Ident
            && ITER_METHODS.contains(&t.text.as_str())
            && i >= 2
            && toks[i - 1].is_punct(".")
            && toks[i - 2].kind == TokenKind::Ident
            && hash_idents.contains(toks[i - 2].text.as_str())
            && toks.get(i + 1).is_some_and(|t| t.is_punct("("))
        {
            out.push(diag(ctx, t.line, t.col, &toks[i - 2].text, &t.text));
        }
        // `for pat in [&[mut]] recv {` — implicit IntoIterator.
        if t.is_ident("in") && i > 0 {
            let mut j = i + 1;
            while toks
                .get(j)
                .is_some_and(|t| t.is_punct("&") || t.is_ident("mut"))
            {
                j += 1;
            }
            if let Some(recv) = toks.get(j) {
                if recv.kind == TokenKind::Ident
                    && hash_idents.contains(recv.text.as_str())
                    && toks.get(j + 1).is_some_and(|t| t.is_punct("{"))
                {
                    out.push(diag(ctx, recv.line, recv.col, &recv.text, "for-in"));
                }
            }
        }
    }
}

fn diag(ctx: &FileContext, line: u32, col: u32, recv: &str, how: &str) -> Diagnostic {
    Diagnostic {
        rule: "hash-iter".to_string(),
        path: ctx.path.to_string(),
        line,
        col,
        message: format!(
            "iterating hash-ordered `{recv}` (via `{how}`) has process-randomized \
             order; use a BTreeMap/BTreeSet, collect-and-sort, or annotate with \
             `ig-lint: allow(hash-iter) -- <why order cannot reach results>`"
        ),
    }
}
