//! Fixture: malformed allow annotations. Line numbers are asserted — do
//! not reflow.

fn missing_reason(v: Option<u32>) -> u32 {
    v.unwrap() // line 5: NOT suppressed // ig-lint: allow(panic)
}

fn unknown_rule(v: Option<u32>) -> u32 {
    v.unwrap() // line 9: NOT suppressed // ig-lint: allow(no-such-rule) -- reason present
}

fn empty_list(v: Option<u32>) -> u32 {
    v.unwrap() // line 13: NOT suppressed // ig-lint: allow() -- reason present
}
