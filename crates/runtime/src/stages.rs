//! Built-in stages for the dataflow steps below the core pipeline:
//! dataset generation and per-image matching-cache preparation.

use core::convert::Infallible;

use ig_imaging::ncc::PyramidMatchConfig;
use ig_imaging::prepared::PreparedImage;
use ig_imaging::GrayImage;
use ig_synth::spec::DatasetSpec;
use ig_synth::Dataset;

use crate::codec::Durable;
use crate::context::RunContext;
use crate::fingerprint::{Fingerprint, FingerprintHasher, Fingerprintable};
use crate::shard::{ShardSpec, ShardableStage};
use crate::stage::Stage;

/// Generate a synthetic dataset from a [`DatasetSpec`].
///
/// The spec carries its own seed, so the artifact is a pure function of
/// the spec: every driver asking for the same `(kind, scale, seed)`
/// shares one generated dataset.
#[derive(Debug, Clone)]
pub struct GenerateDataset {
    /// Full generation parameters (including the generation seed).
    pub spec: DatasetSpec,
}

impl Stage for GenerateDataset {
    type Output = Dataset;
    type Error = Infallible;

    fn id(&self) -> &'static str {
        "synth.generate"
    }

    fn fingerprint(&self) -> Fingerprint {
        self.spec.fingerprint()
    }

    fn plan_sensitive(&self) -> bool {
        // Generation happens before any fault-injection site; chaos and
        // clean arms share the dataset artifact.
        false
    }

    fn run(&mut self, _ctx: &RunContext) -> Result<Dataset, Infallible> {
        Ok(ig_synth::generate(&self.spec))
    }

    // Generation is the most expensive plan-independent stage, so it
    // persists to the durable tier: a resumed sweep reads the dataset
    // back bit-identically instead of regenerating it.
    fn encode(&self, output: &Dataset) -> Option<Vec<u8>> {
        Some(output.to_bytes())
    }

    fn decode(&self, bytes: &[u8]) -> Option<Dataset> {
        Dataset::from_bytes(bytes)
    }

    fn durable(&self) -> bool {
        // Expensive + persisted: worth a single-flight claim so
        // concurrent sweeps over one store root generate each dataset
        // exactly once.
        true
    }
}

/// Out-of-core execution of [`GenerateDataset`]: each shard materializes
/// only images `start..end` of the shuffled dataset (bit-identical to the
/// same slice of the monolithic output) via the synth crate's two-pass
/// replay, so peak memory is one shard plus one in-flight image instead
/// of the whole dataset.
impl ShardableStage for GenerateDataset {
    type Output = Dataset;
    type Error = Infallible;

    fn id(&self) -> &'static str {
        "synth.generate"
    }

    fn fingerprint(&self) -> Fingerprint {
        self.spec.fingerprint()
    }

    fn run_shard(&mut self, _ctx: &RunContext, shard: &ShardSpec) -> Result<Dataset, Infallible> {
        Ok(ig_synth::generate_range(&self.spec, shard.start, shard.end))
    }

    fn plan_sensitive(&self) -> bool {
        false
    }

    fn durable(&self) -> bool {
        true
    }

    fn encode_shard(&self, output: &Dataset) -> Option<Vec<u8>> {
        Some(output.to_bytes())
    }

    fn decode_shard(&self, bytes: &[u8]) -> Option<Dataset> {
        Dataset::from_bytes(bytes)
    }
}

/// Build the per-image matching caches (pyramid + per-level integral
/// tables) for a batch of images.
///
/// Fingerprinting hashes the raw pixels — cheap next to the pyramid and
/// integral-table construction it saves — so any batch with the same
/// content and match config shares one prepared artifact.
#[derive(Debug)]
pub struct PrepareImages<'a> {
    /// Images to prepare, in output order.
    pub images: Vec<&'a GrayImage>,
    /// Match configuration the caches are built under.
    pub config: PyramidMatchConfig,
}

impl<'a> PrepareImages<'a> {
    /// Prepare `images` under the default match config.
    pub fn new(images: Vec<&'a GrayImage>) -> PrepareImages<'a> {
        PrepareImages {
            images,
            config: PyramidMatchConfig::default(),
        }
    }
}

impl Stage for PrepareImages<'_> {
    type Output = Vec<PreparedImage>;
    type Error = Infallible;

    fn id(&self) -> &'static str {
        "imaging.prepare"
    }

    fn fingerprint(&self) -> Fingerprint {
        let mut h = FingerprintHasher::new();
        self.config.fingerprint_into(&mut h);
        h.write_usize(self.images.len());
        for image in &self.images {
            image.fingerprint_into(&mut h);
        }
        h.finish()
    }

    fn plan_sensitive(&self) -> bool {
        // Preparation is pure image processing; no fault site reads the
        // plan here.
        false
    }

    fn run(&mut self, _ctx: &RunContext) -> Result<Vec<PreparedImage>, Infallible> {
        Ok(self
            .images
            .iter()
            .map(|image| PreparedImage::new(image, &self.config))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infallible;
    use ig_synth::spec::DatasetKind;

    #[test]
    fn dataset_is_generated_once_per_spec() {
        let ctx = RunContext::new(3);
        let spec = DatasetSpec::quick(DatasetKind::Ksdd, 5);
        let a = infallible(ctx.run(&mut GenerateDataset { spec }));
        let b = infallible(ctx.run(&mut GenerateDataset { spec }));
        assert!(std::sync::Arc::ptr_eq(&a, &b));
        assert_eq!(a.len(), spec.n);
        // A different generation seed is a different artifact.
        let other = infallible(ctx.run(&mut GenerateDataset {
            spec: DatasetSpec::quick(DatasetKind::Ksdd, 6),
        }));
        assert!(!std::sync::Arc::ptr_eq(&a, &other));
    }

    #[test]
    fn prepared_images_are_shared_across_plans() {
        let clean = RunContext::new(3);
        let images = [
            GrayImage::filled(16, 12, 0.4),
            GrayImage::filled(16, 12, 0.6),
        ];
        let refs: Vec<&GrayImage> = images.iter().collect();
        let a = infallible(clean.run(&mut PrepareImages::new(refs.clone())));
        let chaotic = clean
            .clone()
            .with_plan(Some(ig_faults::FaultPlan::chaos(7)));
        let b = infallible(chaotic.run(&mut PrepareImages::new(refs)));
        assert!(
            std::sync::Arc::ptr_eq(&a, &b),
            "plan-independent stage shares artifacts across arms"
        );
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn generate_dataset_survives_the_durable_round_trip() {
        let spec = DatasetSpec::quick(DatasetKind::ProductBubble, 9);
        let stage = GenerateDataset { spec };
        let dataset = ig_synth::generate(&spec);
        let bytes = match stage.encode(&dataset) {
            Some(b) => b,
            None => {
                assert!(false, "GenerateDataset must opt into durability");
                return;
            }
        };
        let back = match stage.decode(&bytes) {
            Some(d) => d,
            None => {
                assert!(false, "encoded dataset must decode");
                return;
            }
        };
        assert_eq!(back.name, dataset.name);
        assert_eq!(back.len(), dataset.len());
        // Truncated payloads are rejected, not mis-decoded.
        assert!(stage.decode(&bytes[..bytes.len() / 2]).is_none());
    }

    #[test]
    fn sharded_generation_reassembles_the_monolithic_dataset() {
        use crate::shard::{ShardPlan, Sharded};
        let ctx = RunContext::new(4);
        let spec = DatasetSpec::quick(DatasetKind::Neu, 8);
        let whole = infallible(ctx.run(&mut GenerateDataset { spec }));
        let plan = ShardPlan::with_count(whole.len(), 3);
        let mut seen = 0usize;
        for shard in plan.shards() {
            let part = infallible(ctx.run(&mut Sharded::new(GenerateDataset { spec }, shard)));
            for (offset, img) in part.images.iter().enumerate() {
                let reference = &whole.images[seen + offset];
                assert_eq!(img.image, reference.image, "image {}", seen + offset);
                assert_eq!(img.label, reference.label);
                assert_eq!(img.noisy, reference.noisy);
            }
            seen += part.len();
        }
        assert_eq!(seen, whole.len(), "shards must cover the whole dataset");
    }

    #[test]
    fn prepare_fingerprint_tracks_pixel_content() {
        let img_a = GrayImage::filled(8, 8, 0.3);
        let mut img_b = img_a.clone();
        if let Some(p) = img_b.pixels_mut().iter_mut().next() {
            *p = 0.9;
        }
        let fp_a = PrepareImages::new(vec![&img_a]).fingerprint();
        let fp_b = PrepareImages::new(vec![&img_b]).fingerprint();
        assert_ne!(fp_a, fp_b);
    }
}
