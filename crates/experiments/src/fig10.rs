//! Figure 10: F1 vs number of augmented patterns (policy-based vs
//! GAN-based) on Product (stamping) — the diminishing-returns curve.

use crate::common::{
    crowd_patterns, default_policies, gan_config, run_ig_with_patterns, ExpEnv, Prepared, Report,
};
use ig_augment::gan::Rgan;
use ig_augment::policy::policy_augment;
use ig_core::ScaleTier;
use ig_crowd::CrowdWorkflow;
use ig_synth::spec::DatasetKind;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    dataset: String,
    method: String,
    augmented_patterns: usize,
    f1: f64,
}

/// Run the Figure 10 reproduction. The paper plots Product (stamping);
/// our stamping simulacrum saturates without augmentation, so the sweep
/// also runs KSDD, where the no-augmentation baseline leaves headroom and
/// the paper's rising-then-plateauing shape is visible.
pub fn run(env: &ExpEnv) {
    let mut report = Report::new("fig10", &env.out);
    let mut all_points = Vec::new();
    for kind in [DatasetKind::ProductStamping, DatasetKind::Ksdd] {
        run_for(env, kind, &mut report, &mut all_points);
    }
    report.finish(&all_points);
}

fn run_for(env: &ExpEnv, kind: DatasetKind, report: &mut Report, all_points: &mut Vec<Point>) {
    let seed = env.seed();
    report.line(format!(
        "
Figure 10 (reproduction, scale={}): F1 vs #augmented patterns on {}",
        env.scale().name(),
        kind.display_name()
    ));
    let prepared = Prepared::new(&env.ctx, kind);
    let dev = prepared.dev_images();
    let base_patterns = crowd_patterns(&dev, &CrowdWorkflow::full(), seed ^ 0xf10);
    if base_patterns.is_empty() {
        report.line("(no crowd patterns; skipping)");
        return;
    }
    let counts: Vec<usize> = match env.scale().tier {
        ScaleTier::Quick => vec![0, 10, 20],
        _ => vec![0, 20, 40, 60, 80, 100],
    };
    let policies = default_policies(kind);
    // Train the GAN once; sample increasing counts from it.
    let mut rng = StdRng::seed_from_u64(seed ^ 0xf11);
    let gan = Rgan::train(&base_patterns, &gan_config(env.scale()), &mut rng);

    report.line(format!(
        "{:>12} {:>14} {:>14}",
        "#augmented", "Policy-based", "GAN-based"
    ));
    let mut points = Vec::new();
    for &count in &counts {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xf12 ^ count as u64);
        let mut policy_set = base_patterns.clone();
        policy_set.extend(policy_augment(&base_patterns, &policies, count, &mut rng));
        let policy_f1 = run_ig_with_patterns(
            &env.ctx,
            &prepared,
            &dev,
            policy_set,
            false,
            seed + count as u64,
        )
        .map(|r| r.f1)
        .unwrap_or(0.0);

        let mut gan_set = base_patterns.clone();
        gan_set.extend(gan.generate(count, &mut rng));
        let gan_f1 = run_ig_with_patterns(
            &env.ctx,
            &prepared,
            &dev,
            gan_set,
            false,
            seed + 1000 + count as u64,
        )
        .map(|r| r.f1)
        .unwrap_or(0.0);

        report.line(format!("{count:>12} {policy_f1:>14.3} {gan_f1:>14.3}"));
        points.push(Point {
            dataset: kind.display_name().to_string(),
            method: "Policy-based".into(),
            augmented_patterns: count,
            f1: policy_f1,
        });
        points.push(Point {
            dataset: kind.display_name().to_string(),
            method: "GAN-based".into(),
            augmented_patterns: count,
            f1: gan_f1,
        });
    }
    // Shape note: improvement from 0 to the best count, per method.
    for method in ["Policy-based", "GAN-based"] {
        let series: Vec<&Point> = points.iter().filter(|p| p.method == method).collect();
        let at_zero = series
            .iter()
            .find(|p| p.augmented_patterns == 0)
            .map(|p| p.f1)
            .unwrap_or(0.0);
        let best = series
            .iter()
            .map(|p| p.f1)
            .fold(f64::NEG_INFINITY, f64::max);
        report.line(format!(
            "{method}: F1 {at_zero:.3} with no augmentation → best {best:.3} \
             (paper: adding patterns helps, then plateaus)"
        ));
    }
    all_points.extend(points);
}
