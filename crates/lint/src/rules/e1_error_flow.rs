//! E1: error-flow — a `Result`/`Option` produced by a fallible call must
//! reach a consumer (`?`, `match`/`if let`, a return position, an argument)
//! or an annotated sink.
//!
//! The fault-injection recovery ladders (PR 1) only work if every failure
//! is *seen*: a `let _ = save_labels(..)` inside a recovery path silently
//! converts "degrade gracefully" into "corrupt the label matrix". Flags:
//!
//! - `let _ = <fallible call>;` — the error is dropped unnamed;
//! - statement-level `<fallible chain>.ok();` — converted to `Option` and
//!   immediately discarded;
//! - `<fallible call>.unwrap_or_default()` — the failure collapses into a
//!   default value indistinguishable from success;
//! - a named local bound from a fallible call that is never read again.
//!
//! Fallibility is decided conservatively: a call is fallible when its
//! target is declared *in the same file* with a `Result`/`Option` return
//! (see [`Ast::signatures`]) or its name is on the known-fallible list.
//! In strict scope (`crates/faults`, `crates/core` — see
//! [`strict_error_scope`](crate::context::strict_error_scope)) any
//! discarded call result is flagged: recovery code must account for every
//! value it throws away.

use std::collections::BTreeMap;

use crate::ast::{walk_stmts, Expr, ExprKind, LetPat, Stmt};
use crate::context::{FileClass, FileContext};
use crate::dataflow::{chain_is_handled, chain_root, is_fallible_call, local_flows};
use crate::report::Diagnostic;

/// Is `e` any call at all (used by strict scope)?
fn is_any_call(e: &Expr) -> bool {
    matches!(
        e.kind,
        ExprKind::Call { .. } | ExprKind::MethodCall { .. } | ExprKind::Macro { .. }
    )
}

/// Macros whose value position makes a discarded result idiomatic.
fn is_exempt_macro(e: &Expr) -> bool {
    matches!(
        &chain_root(e).kind,
        ExprKind::Macro { name, .. } if name == "write" || name == "writeln"
    )
}

pub fn check(ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    if ctx.class != FileClass::Library {
        return;
    }
    let sigs = ctx.ast.signatures();
    let strict = ctx.strict_errors;

    let mut diag = |tok: usize, message: String| {
        if let Some(t) = ctx.tokens.get(tok) {
            out.push(Diagnostic {
                rule: "error-flow".to_string(),
                path: ctx.path.to_string(),
                line: t.line,
                col: t.col,
                message,
            });
        }
    };

    for f in &ctx.ast.fns {
        if !ctx.governed(f.name_tok) {
            continue;
        }

        // Locals bound from a provably fallible call, for `.ok();`-on-local
        // and the unused-binding check.
        let flows = local_flows(f);
        let fallible_locals: BTreeMap<&str, usize> = flows
            .iter()
            .filter(|fl| is_fallible_call(fl.init, &sigs) && !chain_is_handled(fl.init))
            .map(|fl| (fl.name, fl.name_tok))
            .collect();

        for fl in &flows {
            // A fallible binding that is never read again: the error can't
            // have reached anything. Underscore-prefixed names are spared —
            // that's the RAII-guard idiom (`let _guard = m.lock()…`).
            if fl.unused()
                && !fl.name.starts_with('_')
                && fallible_locals.contains_key(fl.name)
                && ctx.governed(fl.name_tok)
            {
                diag(
                    fl.name_tok,
                    format!(
                        "`{}` binds a fallible result that never reaches `?`, \
                         `match`, or any other consumer; propagate the error, log \
                         it into the HealthReport, or annotate with `ig-lint: \
                         allow(error-flow) -- <why dropping it is safe>`",
                        fl.name
                    ),
                );
            }
        }

        walk_stmts(&f.body, &mut |s: &Stmt| match s {
            Stmt::Let(l) => {
                let (LetPat::Wild(tok), Some(init)) = (&l.pat, &l.init) else {
                    return;
                };
                if !ctx.governed(*tok) || is_exempt_macro(init) || chain_is_handled(init) {
                    return;
                }
                let fallible = is_fallible_call(init, &sigs);
                if fallible || (strict && is_any_call(init)) {
                    let what = if fallible {
                        "a fallible result"
                    } else {
                        "a call result in strict error-flow scope"
                    };
                    diag(
                        *tok,
                        format!(
                            "`let _ =` discards {what}; use `?`, match the error \
                             into the recovery ladder, or annotate with `ig-lint: \
                             allow(error-flow) -- <why dropping it is safe>"
                        ),
                    );
                }
            }
            Stmt::Expr(es) if es.has_semi => {
                let e = &es.expr;
                let ExprKind::MethodCall {
                    method,
                    method_tok,
                    recv,
                    ..
                } = &e.kind
                else {
                    return;
                };
                if !ctx.governed(*method_tok) {
                    return;
                }
                if method == "ok" {
                    // `expr.ok();` as a whole statement: the Result was
                    // converted to Option purely to silence must_use.
                    let root = chain_root(e);
                    let on_fallible_local = matches!(
                        &root.kind,
                        ExprKind::Path(p) if matches!(
                            p.as_slice(),
                            [only] if fallible_locals.contains_key(only.as_str())
                        )
                    );
                    if chain_is_handled(recv) || is_exempt_macro(e) {
                        return;
                    }
                    if is_fallible_call(recv, &sigs) || on_fallible_local || strict {
                        diag(
                            *method_tok,
                            "statement-level `.ok()` swallows the error without a \
                             trace; match it, log it into the HealthReport, or \
                             annotate with `ig-lint: allow(error-flow) -- <why>`"
                                .to_string(),
                        );
                    }
                }
            }
            _ => {}
        });

        // `.unwrap_or_default()` anywhere (value or statement position) on a
        // fallible chain — the expression walker sees every position.
        crate::ast::walk_block(&f.body, &mut |e: &Expr| {
            if let ExprKind::MethodCall {
                method,
                method_tok,
                recv,
                ..
            } = &e.kind
            {
                if method == "unwrap_or_default"
                    && ctx.governed(*method_tok)
                    && is_fallible_call(recv, &sigs)
                    && !chain_is_handled(recv)
                {
                    diag(
                        *method_tok,
                        "`.unwrap_or_default()` on a fallible call makes failure \
                         indistinguishable from an empty success; match the error or \
                         annotate with `ig-lint: allow(error-flow) -- <why a default \
                         is correct>`"
                            .to_string(),
                    );
                }
            }
        });
    }
}
