//! J1 fixture: detached spawns, never-joined handles, early exits before
//! the join, and discarded join verdicts fire; disciplined joins and
//! blessed detaches stay silent.

pub fn detached_statement() {
    std::thread::spawn(|| loop {});
}

pub fn detached_let_wild() {
    let _ = std::thread::spawn(|| 1);
}

pub fn never_joined() {
    let worker = std::thread::spawn(|| 2);
    let sum = 2 + 2;
    drop(sum);
}

pub fn early_exit() -> Result<u32, String> {
    let worker = std::thread::spawn(|| 3);
    let parsed: u32 = "7".parse().map_err(|_| "bad".to_string())?;
    let v = worker.join().map_err(|_| "worker panicked".to_string())?;
    Ok(v + parsed)
}

pub fn discarded_verdicts() {
    let a = std::thread::spawn(|| 4);
    let b = std::thread::spawn(|| 5);
    let c = std::thread::spawn(|| 6);
    a.join();
    let _ = b.join();
    c.join().ok();
}

pub fn disciplined() -> u32 {
    let worker = std::thread::spawn(|| 7);
    match worker.join() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("worker thread panicked: {e:?}");
            0
        }
    }
}

pub fn escapes_to_caller() -> std::thread::JoinHandle<u32> {
    let handle = std::thread::spawn(|| 8);
    handle
}

pub fn blessed_detach() {
    // ig-lint: allow(join-discipline) -- fire-and-forget heartbeat: the
    // logger thread must outlive this call by design
    std::thread::spawn(|| loop {});
}
