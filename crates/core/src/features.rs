//! Feature generation functions (Section 5.1).
//!
//! The i-th FGF matches pattern `P_i` against an image `I` and returns
//! the maximum normalized cross-correlation over all placements. The
//! per-image feature vector stacks all FGF outputs — "a vector that
//! consists of all output values of the FGFs on each image is used as the
//! input of the labeler". Matching uses the paper's pyramid method by
//! default; the exact scan exists for the ablation bench.
//!
//! This is the pipeline's hot path, so it runs as a **batched matching
//! engine**: the pattern bank is prepared once at construction
//! ([`ig_imaging::prepared::PreparedPattern`] — reduced + mean-centred
//! stacks per pyramid level, plus cached fitted shrinks for oversized
//! patterns), each image is prepared once per batch
//! ([`ig_imaging::prepared::PreparedImage`] — pyramid + integral tables),
//! and the N×M (image × pattern) cell grid is scheduled through a
//! work-stealing atomic cursor so large images or deep-pyramid patterns
//! can't serialize a fixed chunk. Scores are bit-identical to the
//! per-call matchers (pinned by proptests in `crates/core/tests`).

use crate::pattern::Pattern;
use crate::{CoreError, Result};
use ig_faults::{FaultKind, FaultPlan, HealthReport, RecoveryAction, Stage};
use ig_imaging::ncc::PyramidMatchConfig;
use ig_imaging::prepared::{match_prepared, match_prepared_exact, PreparedImage, PreparedPattern};
use ig_imaging::GrayImage;
use ig_nn::Matrix;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Pixel variance below which a pattern is degenerate: NCC normalizes by
/// the pattern's standard deviation, so a (near-)constant pattern can
/// never produce a meaningful score.
const DEGENERATE_VARIANCE: f32 = 1e-10;

fn pixel_variance(img: &GrayImage) -> f32 {
    let px = img.pixels();
    if px.is_empty() {
        return 0.0;
    }
    let n = px.len() as f32;
    let mean = px.iter().sum::<f32>() / n;
    px.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / n
}

/// Which matcher the FGFs use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchBackend {
    /// Exhaustive scan (exact; slow on large images).
    Exact,
    /// Coarse-to-fine pyramid search (the paper's choice).
    Pyramid,
}

/// A bank of FGFs over a fixed pattern set.
#[derive(Debug, Clone)]
pub struct FeatureGenerator {
    patterns: Vec<Pattern>,
    /// Per-pattern quarantine mask: `false` = degenerate (zero variance),
    /// its FGF always emits 0.0 without touching the matcher. Feature
    /// dimensionality stays equal to the pattern count either way.
    active: Vec<bool>,
    /// Prepared form of each active pattern, built once at construction
    /// and shared across every image, batch, and clone of this generator.
    /// `None` for quarantined (or unpreparable) patterns.
    prepared: Vec<Option<Arc<PreparedPattern>>>,
    backend: MatchBackend,
    pyramid: PyramidMatchConfig,
    threads: usize,
}

impl FeatureGenerator {
    /// Build with the pyramid backend and hardware parallelism.
    pub fn new(patterns: Vec<Pattern>) -> Result<Self> {
        Self::new_with_health(patterns, None, &HealthReport::new())
    }

    /// [`FeatureGenerator::new`] with chaos-plan injection and health
    /// reporting. Patterns the plan marks degenerate are flattened to
    /// constant gray before detection runs; every quarantined pattern is
    /// recorded on `health`. A quarantined pattern keeps its feature
    /// column (constant 0.0) so feature dimensions never shift — which is
    /// also what a degenerate pattern produced before quarantining
    /// existed, since NCC on zero variance errors out into a 0.0 score.
    pub fn new_with_health(
        mut patterns: Vec<Pattern>,
        plan: Option<&FaultPlan>,
        health: &HealthReport,
    ) -> Result<Self> {
        if patterns.is_empty() {
            return Err(CoreError::NoPatterns);
        }
        if let Some(plan) = plan {
            for (i, p) in patterns.iter_mut().enumerate() {
                if plan.degenerate_pattern(i) {
                    p.image.map_in_place(|_| 0.5);
                }
            }
        }
        let active: Vec<bool> = patterns
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let ok = pixel_variance(&p.image) > DEGENERATE_VARIANCE;
                if !ok {
                    health.record(
                        Stage::Features,
                        FaultKind::DegeneratePattern,
                        RecoveryAction::QuarantinedPattern,
                        format!("pattern {i}: zero pixel variance, FGF pinned to 0.0"),
                    );
                }
                ok
            })
            .collect();
        let pyramid = PyramidMatchConfig::default();
        // Prepare the bank once: reduced + centred stacks per level. Every
        // image this generator ever scores reuses them.
        let prepared: Vec<Option<Arc<PreparedPattern>>> = patterns
            .iter()
            .zip(&active)
            .enumerate()
            .map(|(i, (p, &ok))| {
                if !ok {
                    return None;
                }
                match PreparedPattern::new(&p.image, &pyramid) {
                    Ok(pp) => Some(Arc::new(pp)),
                    Err(e) => {
                        health.record(
                            Stage::Features,
                            FaultKind::MatchError,
                            RecoveryAction::QuarantinedPattern,
                            format!("pattern {i}: preparation failed ({e}); FGF pinned to 0.0"),
                        );
                        None
                    }
                }
            })
            .collect();
        Ok(Self {
            patterns,
            active,
            prepared,
            backend: MatchBackend::Pyramid,
            pyramid,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        })
    }

    /// Number of non-quarantined patterns.
    pub fn num_active(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }

    /// Override the matching backend.
    pub fn with_backend(mut self, backend: MatchBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Override the worker-thread count (1 = serial).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Number of features (= number of patterns).
    pub fn num_features(&self) -> usize {
        self.patterns.len()
    }

    /// Borrow the pattern bank.
    pub fn patterns(&self) -> &[Pattern] {
        &self.patterns
    }

    /// Total fitted-pattern resizes performed so far across the bank.
    /// Each build is one bilinear resize, cached per distinct target
    /// dims — matching one oversized pattern against any number of
    /// same-shaped images costs exactly one.
    pub fn fitted_resize_builds(&self) -> usize {
        self.prepared.iter().flatten().map(|p| p.fit_builds()).sum()
    }

    /// Build the per-image pyramid + integral caches for a batch. The
    /// result is reusable across any number of
    /// [`FeatureGenerator::feature_matrix_prepared`] calls — and across
    /// generators with *different pattern banks*, because the cache
    /// depends only on the image and the default pyramid config.
    pub fn prepare_images(&self, images: &[&GrayImage]) -> Vec<PreparedImage> {
        images
            .iter()
            .map(|img| PreparedImage::new(img, &self.pyramid))
            .collect()
    }

    /// Feature vector of one image: max NCC score per pattern. Patterns
    /// larger than the image are shrunk to fit (keeping aspect) before
    /// matching, mirroring the paper's re-adjustment of pattern sizes;
    /// the shrink is cached on the pattern per target dims. Quarantined
    /// patterns contribute a constant 0.0.
    pub fn features_for(&self, image: &GrayImage) -> Vec<f32> {
        let prep = PreparedImage::new(image, &self.pyramid);
        (0..self.patterns.len())
            .map(|col| self.match_cell(&prep, col).0)
            .collect()
    }

    /// Score one (image, pattern) cell from prepared operands. Quarantined
    /// patterns score 0.0; matcher errors surface as a message for the
    /// caller's health report.
    fn match_cell(&self, image: &PreparedImage, col: usize) -> (f32, Option<String>) {
        let Some(pattern) = self.prepared.get(col).and_then(|p| p.as_deref()) else {
            return (0.0, None);
        };
        let (iw, ih) = image.dims();
        let fitted = match pattern.fitted_for(iw, ih) {
            Ok(f) => f,
            Err(e) => return (0.0, Some(format!("pattern resize failed: {e}"))),
        };
        let pattern = fitted.as_deref().unwrap_or(pattern);
        let result = match self.backend {
            MatchBackend::Exact => match_prepared_exact(image, pattern),
            MatchBackend::Pyramid => match_prepared(image, pattern, &self.pyramid),
        };
        match result {
            Ok(m) => (m.score, None),
            Err(e) => (0.0, Some(format!("template match failed: {e}"))),
        }
    }

    /// [`FeatureGenerator::match_cell`] plus the fault ladder: matcher
    /// errors and non-finite scores are recorded (and sanitized to 0.0)
    /// instead of silently swallowed, and the chaos plan may corrupt the
    /// value first.
    fn finish_cell(
        &self,
        image: &PreparedImage,
        row: usize,
        col: usize,
        plan: Option<&FaultPlan>,
        health: &HealthReport,
    ) -> f32 {
        let (mut v, error) = self.match_cell(image, col);
        if let Some(msg) = error {
            health.record(
                Stage::Features,
                FaultKind::MatchError,
                RecoveryAction::SanitizedValue,
                format!("image {row}, pattern {col}: {msg}"),
            );
        }
        if let Some(plan) = plan {
            v = plan.corrupt_feature(row, col, v);
        }
        if !v.is_finite() {
            health.record(
                Stage::Features,
                FaultKind::NonFiniteFeature,
                RecoveryAction::SanitizedValue,
                format!("image {row}, pattern {col}: {v} replaced with 0.0"),
            );
            v = 0.0;
        }
        v
    }

    /// Feature matrix for a batch of images (rows = images). Each image
    /// is prepared once, the pattern bank was prepared at construction,
    /// and the N×M cell grid is scheduled across worker threads by a
    /// work-stealing cursor.
    pub fn feature_matrix(&self, images: &[&GrayImage]) -> Matrix {
        self.feature_matrix_with_health(images, None, &HealthReport::new())
    }

    /// [`FeatureGenerator::feature_matrix`] with fault injection and
    /// health reporting. Recovery is cell-granular: a worker thread that
    /// panics (injected or real) is joined individually, and only the
    /// cells it claimed but never delivered — plus any left unclaimed —
    /// are recomputed serially on the calling thread, so one bad thread
    /// costs a few cells of latency instead of a whole image chunk.
    pub fn feature_matrix_with_health(
        &self,
        images: &[&GrayImage],
        plan: Option<&FaultPlan>,
        health: &HealthReport,
    ) -> Matrix {
        // Per-image caches fill lazily inside the worker pool, so image
        // preparation itself is parallelized across the batch.
        let slots: Vec<OnceLock<PreparedImage>> = images.iter().map(|_| OnceLock::new()).collect();
        let prep_of =
            |i: usize| slots[i].get_or_init(|| PreparedImage::new(images[i], &self.pyramid));
        self.matrix_engine(images.len(), 0, &prep_of, plan, health)
    }

    /// Feature matrix over images prepared earlier with
    /// [`FeatureGenerator::prepare_images`] — skips even the per-batch
    /// pyramid/integral builds. Rows follow `images` order.
    pub fn feature_matrix_prepared(&self, images: &[PreparedImage]) -> Matrix {
        self.feature_matrix_prepared_with_health(images, None, &HealthReport::new())
    }

    /// [`FeatureGenerator::feature_matrix_prepared`] with fault injection
    /// and health reporting (same ladder as
    /// [`FeatureGenerator::feature_matrix_with_health`]).
    pub fn feature_matrix_prepared_with_health(
        &self,
        images: &[PreparedImage],
        plan: Option<&FaultPlan>,
        health: &HealthReport,
    ) -> Matrix {
        self.feature_matrix_prepared_offset_with_health(images, 0, plan, health)
    }

    /// [`FeatureGenerator::feature_matrix_prepared_with_health`] for a
    /// *shard* of a larger batch: `images` are rows
    /// `row_offset..row_offset + images.len()` of the full matrix. The
    /// offset keeps the global row coordinate flowing into the fault
    /// ladder — health messages name the dataset-wide image index, and
    /// the chaos plan's `corrupt_feature(row, col, ..)` sites fire on the
    /// same cells whether the matrix is built whole or shard by shard.
    /// That coordinate stability is what makes sharded execution
    /// bit-identical to monolithic under any fault plan.
    pub fn feature_matrix_prepared_offset_with_health(
        &self,
        images: &[PreparedImage],
        row_offset: usize,
        plan: Option<&FaultPlan>,
        health: &HealthReport,
    ) -> Matrix {
        let prep_of = |i: usize| &images[i];
        self.matrix_engine(images.len(), row_offset, &prep_of, plan, health)
    }

    /// The batched engine: schedule all `n × num_patterns` cells over the
    /// worker pool with an atomic work-stealing cursor, then assemble the
    /// matrix. `prep_of` yields the prepared form of image `i` (lazily
    /// built or supplied by the caller); `row_offset` translates local
    /// image indices into global matrix rows for the fault ladder when
    /// `n` is one shard of a larger batch.
    fn matrix_engine<'a, F>(
        &self,
        n: usize,
        row_offset: usize,
        prep_of: &F,
        plan: Option<&FaultPlan>,
        health: &HealthReport,
    ) -> Matrix
    where
        F: Fn(usize) -> &'a PreparedImage + Sync,
    {
        let m = self.patterns.len();
        if n == 0 {
            return Matrix::zeros(0, m);
        }
        let total = n * m;
        let threads = self.threads.min(total);
        let mut cells: Vec<Option<f32>> = vec![None; total];
        if threads <= 1 {
            for i in 0..n {
                let prep = prep_of(i);
                for (j, cell) in cells.iter_mut().skip(i * m).take(m).enumerate() {
                    *cell = Some(self.finish_cell(prep, row_offset + i, j, plan, health));
                }
            }
        } else {
            let cursor = AtomicUsize::new(0);
            let mut panicked: Vec<usize> = Vec::new();
            let scope_result = crossbeam::thread::scope(|scope| {
                let mut handles = Vec::new();
                for w in 0..threads {
                    let cursor = &cursor;
                    let handle = scope.spawn(move |_| {
                        let poisoned = plan.is_some_and(|p| p.worker_panic(w));
                        let mut local: Vec<(usize, f32)> = Vec::new();
                        loop {
                            // ig-lint: allow(atomic-ordering) -- work-stealing
                            // ticket: each worker only needs a unique cell
                            // index; cell data flows through the per-worker
                            // locals joined under the scope, not the counter
                            let cell = cursor.fetch_add(1, Ordering::Relaxed);
                            if cell >= total {
                                break;
                            }
                            if poisoned {
                                // ig-lint: allow(panic) -- deliberate injected
                                // fault; cell-granular recovery recomputes the
                                // claimed-but-undelivered cells serially
                                panic!("injected fault: feature worker {w} panicked");
                            }
                            // Pattern-major order: cell c is (image c % n,
                            // pattern c / n), so workers start on distinct
                            // images and the per-image cache builds run in
                            // parallel instead of serializing on image 0.
                            let (i, j) = (cell % n, cell / n);
                            local.push((
                                i * m + j,
                                self.finish_cell(prep_of(i), row_offset + i, j, plan, health),
                            ));
                        }
                        local
                    });
                    handles.push((w, handle));
                }
                // Join each worker individually: a panic surfaces as Err
                // here instead of tearing down the scope.
                for (w, handle) in handles {
                    match handle.join() {
                        Ok(local) => {
                            for (idx, v) in local {
                                cells[idx] = Some(v);
                            }
                        }
                        Err(_) => panicked.push(w),
                    }
                }
            });
            debug_assert!(scope_result.is_ok(), "all workers were joined in-scope");
            if !panicked.is_empty() {
                let lost = cells.iter().filter(|c| c.is_none()).count();
                for w in &panicked {
                    health.record(
                        Stage::Features,
                        FaultKind::WorkerPanic,
                        RecoveryAction::SerialRecompute,
                        format!(
                            "feature worker {w} panicked; {lost} lost cells recomputed serially"
                        ),
                    );
                }
                for (idx, cell) in cells.iter_mut().enumerate() {
                    if cell.is_none() {
                        let (i, j) = (idx / m, idx % m);
                        *cell = Some(self.finish_cell(prep_of(i), row_offset + i, j, plan, health));
                    }
                }
            }
        }
        let rows: Vec<Vec<f32>> = cells
            .chunks(m)
            .map(|row| row.iter().map(|c| c.unwrap_or(0.0)).collect())
            .collect();
        Matrix::from_rows(&rows)
    }

    /// Per-image maximum over all features — the "did anything match at
    /// all" signal used by the Table 6 error analysis. An image with no
    /// features (empty pattern row) reports 0.0, not `-inf`.
    pub fn max_similarity(features: &Matrix, row: usize) -> f32 {
        let max = features
            .row(row)
            .iter()
            .fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        if max.is_finite() {
            max
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::PatternSource;

    fn image_with_defect(at: (usize, usize)) -> GrayImage {
        let mut img = GrayImage::filled(64, 48, 0.7);
        let mut defect = GrayImage::filled(8, 8, 0.7);
        defect.fill_disk(3.5, 3.5, 3.0, 0.15);
        img.paste(&defect, at.0, at.1).unwrap();
        img
    }

    fn defect_pattern() -> Pattern {
        let mut p = GrayImage::filled(8, 8, 0.7);
        p.fill_disk(3.5, 3.5, 3.0, 0.15);
        Pattern::crowd(p)
    }

    #[test]
    fn empty_pattern_bank_rejected() {
        assert!(matches!(
            FeatureGenerator::new(vec![]),
            Err(CoreError::NoPatterns)
        ));
    }

    #[test]
    fn defective_image_scores_higher_than_clean() {
        let fg = FeatureGenerator::new(vec![defect_pattern()]).unwrap();
        let defective = image_with_defect((20, 20));
        let clean = GrayImage::filled(64, 48, 0.7);
        let f_def = fg.features_for(&defective)[0];
        let f_clean = fg.features_for(&clean)[0];
        assert!(
            f_def > f_clean + 0.01,
            "defective {f_def} vs clean {f_clean}"
        );
        assert!(f_def > 0.99, "planted pattern should match ~1.0: {f_def}");
    }

    #[test]
    fn feature_vector_length_matches_pattern_count() {
        let pats = vec![defect_pattern(), defect_pattern(), defect_pattern()];
        let fg = FeatureGenerator::new(pats).unwrap();
        let img = image_with_defect((5, 5));
        assert_eq!(fg.features_for(&img).len(), 3);
        assert_eq!(fg.num_features(), 3);
    }

    #[test]
    fn exact_and_pyramid_agree_on_planted_defect() {
        let pats = vec![defect_pattern()];
        let img = image_with_defect((33, 17));
        let exact = FeatureGenerator::new(pats.clone())
            .unwrap()
            .with_backend(MatchBackend::Exact)
            .features_for(&img)[0];
        let pyramid = FeatureGenerator::new(pats)
            .unwrap()
            .with_backend(MatchBackend::Pyramid)
            .features_for(&img)[0];
        assert!((exact - pyramid).abs() < 0.01, "{exact} vs {pyramid}");
    }

    #[test]
    fn oversized_pattern_is_shrunk_not_dropped() {
        // A smooth 100x100 pattern against a 32x24 image with the same
        // large-scale structure: the pattern must be shrunk to fit and
        // still correlate strongly (not error out or score 0).
        let texture = |x: usize, y: usize, scale: f32| {
            0.5 + 0.3 * ((x as f32 * scale).sin() * (y as f32 * scale).cos())
        };
        let big = Pattern::augmented(
            GrayImage::from_fn(100, 100, |x, y| texture(x, y, 0.07)),
            PatternSource::Gan,
        );
        let fg = FeatureGenerator::new(vec![big]).unwrap();
        // ~3.1x smaller image with the matching (downscaled) frequency.
        let img = GrayImage::from_fn(32, 24, |x, y| texture(x, y, 0.07 * 100.0 / 32.0));
        let f = fg.features_for(&img);
        // The aspect-preserving shrink (to 24x24 here) shifts the texture
        // frequency slightly, so expect a clear but imperfect correlation.
        assert!(f[0] > 0.3, "shrunk pattern should still match: {}", f[0]);
    }

    #[test]
    fn oversized_pattern_resize_runs_once_per_target_dims() {
        // Regression: the fit used to be recomputed for every image. One
        // oversized pattern scored against many same-shaped images must
        // resize exactly once; a second distinct image shape adds one.
        let big = Pattern::augmented(
            GrayImage::from_fn(100, 100, |x, y| {
                0.5 + 0.3 * ((x as f32 * 0.07).sin() * (y as f32 * 0.07).cos())
            }),
            PatternSource::Gan,
        );
        let fg = FeatureGenerator::new(vec![big]).unwrap().with_threads(4);
        let images: Vec<GrayImage> = (0..6)
            .map(|i| {
                GrayImage::from_fn(32, 24, move |x, y| {
                    0.5 + 0.3 * (((x + i) as f32 * 0.2).sin() * (y as f32 * 0.2).cos())
                })
            })
            .collect();
        let refs: Vec<&GrayImage> = images.iter().collect();
        assert_eq!(fg.fitted_resize_builds(), 0);
        fg.feature_matrix(&refs);
        assert_eq!(fg.fitted_resize_builds(), 1, "one resize for 6 images");
        fg.feature_matrix(&refs);
        assert_eq!(fg.fitted_resize_builds(), 1, "second batch is cached");
        let other = GrayImage::from_fn(40, 30, |x, y| 0.4 + 0.01 * ((x * y) % 7) as f32);
        fg.features_for(&other);
        assert_eq!(fg.fitted_resize_builds(), 2, "new target dims, one more");
    }

    #[test]
    fn parallel_matches_serial() {
        let pats = vec![defect_pattern(), defect_pattern()];
        let images: Vec<GrayImage> = (0..7).map(|i| image_with_defect((i * 5, 10))).collect();
        let refs: Vec<&GrayImage> = images.iter().collect();
        let serial = FeatureGenerator::new(pats.clone())
            .unwrap()
            .with_threads(1)
            .feature_matrix(&refs);
        let parallel = FeatureGenerator::new(pats)
            .unwrap()
            .with_threads(4)
            .feature_matrix(&refs);
        assert_eq!(serial.shape(), parallel.shape());
        for (a, b) in serial.as_slice().iter().zip(parallel.as_slice()) {
            assert_eq!(a, b, "parallel result differs");
        }
    }

    #[test]
    fn prepared_batch_matches_unprepared() {
        let pats = vec![defect_pattern(), defect_pattern(), defect_pattern()];
        let images: Vec<GrayImage> = (0..5).map(|i| image_with_defect((i * 7, 9))).collect();
        let refs: Vec<&GrayImage> = images.iter().collect();
        let fg = FeatureGenerator::new(pats).unwrap().with_threads(3);
        let direct = fg.feature_matrix(&refs);
        let prepped = fg.prepare_images(&refs);
        let via_prepared = fg.feature_matrix_prepared(&prepped);
        assert_eq!(direct.shape(), via_prepared.shape());
        assert_eq!(direct.as_slice(), via_prepared.as_slice());
        // And the same prepared set is reusable by a different generator.
        let fg2 = FeatureGenerator::new(vec![defect_pattern()])
            .unwrap()
            .with_threads(2);
        let m2 = fg2.feature_matrix_prepared(&prepped);
        assert_eq!(m2.shape(), (5, 1));
        assert_eq!(m2.as_slice(), fg2.feature_matrix(&refs).as_slice());
    }

    #[test]
    fn empty_image_batch() {
        let fg = FeatureGenerator::new(vec![defect_pattern()]).unwrap();
        let m = fg.feature_matrix(&[]);
        assert_eq!(m.shape(), (0, 1));
    }

    #[test]
    fn max_similarity_extracts_row_max() {
        let m = Matrix::from_rows(&[vec![0.1, 0.9, 0.4], vec![0.2, 0.1, 0.3]]);
        assert_eq!(FeatureGenerator::max_similarity(&m, 0), 0.9);
        assert_eq!(FeatureGenerator::max_similarity(&m, 1), 0.3);
    }

    #[test]
    fn max_similarity_empty_row_is_zero() {
        // Regression: an empty feature row used to report -inf, which
        // poisoned every downstream threshold comparison.
        let m = Matrix::zeros(2, 0);
        assert_eq!(FeatureGenerator::max_similarity(&m, 0), 0.0);
        assert_eq!(FeatureGenerator::max_similarity(&m, 1), 0.0);
    }

    #[test]
    fn degenerate_pattern_is_quarantined() {
        use ig_faults::{FaultKind, HealthReport, RecoveryAction};
        let health = HealthReport::new();
        let flat = Pattern::crowd(GrayImage::filled(8, 8, 0.5));
        let fg =
            FeatureGenerator::new_with_health(vec![defect_pattern(), flat], None, &health).unwrap();
        assert_eq!(fg.num_features(), 2, "feature dim must not shift");
        assert_eq!(fg.num_active(), 1);
        assert_eq!(health.count(FaultKind::DegeneratePattern), 1);
        assert_eq!(health.count_action(RecoveryAction::QuarantinedPattern), 1);
        let f = fg.features_for(&image_with_defect((10, 10)));
        assert_eq!(f[1], 0.0, "quarantined FGF pinned to 0.0");
        assert!(f[0] > 0.9, "live FGF unaffected: {}", f[0]);
    }

    #[test]
    fn worker_panic_recovers_to_serial_result() {
        use ig_faults::{FaultKind, FaultPlan, HealthReport, RecoveryAction};
        let pats = vec![defect_pattern(), defect_pattern()];
        let images: Vec<GrayImage> = (0..8).map(|i| image_with_defect((i * 4, 8))).collect();
        let refs: Vec<&GrayImage> = images.iter().collect();
        let serial = FeatureGenerator::new(pats.clone())
            .unwrap()
            .with_threads(1)
            .feature_matrix(&refs);
        let plan = FaultPlan {
            seed: 5,
            worker_panic_rate: 1.0, // every worker panics
            ..FaultPlan::default()
        };
        let health = HealthReport::new();
        let parallel = FeatureGenerator::new(pats)
            .unwrap()
            .with_threads(4)
            .feature_matrix_with_health(&refs, Some(&plan), &health);
        assert_eq!(serial.shape(), parallel.shape());
        for (a, b) in serial.as_slice().iter().zip(parallel.as_slice()) {
            assert_eq!(a, b, "recovered result differs from serial");
        }
        assert!(health.count(FaultKind::WorkerPanic) >= 1);
        assert!(health.count_action(RecoveryAction::SerialRecompute) >= 1);
    }

    #[test]
    fn injected_non_finite_features_are_sanitized() {
        use ig_faults::{FaultKind, FaultPlan, HealthReport};
        let pats = vec![defect_pattern(), defect_pattern(), defect_pattern()];
        let images: Vec<GrayImage> = (0..12).map(|i| image_with_defect((i * 3, 6))).collect();
        let refs: Vec<&GrayImage> = images.iter().collect();
        let plan = FaultPlan {
            seed: 9,
            nan_feature_rate: 0.2,
            inf_feature_rate: 0.1,
            ..FaultPlan::default()
        };
        let health = HealthReport::new();
        let m = FeatureGenerator::new(pats)
            .unwrap()
            .with_threads(2)
            .feature_matrix_with_health(&refs, Some(&plan), &health);
        assert!(m.as_slice().iter().all(|v| v.is_finite()));
        assert!(health.count(FaultKind::NonFiniteFeature) >= 1);
    }

    #[test]
    fn empty_plan_matches_no_plan() {
        use ig_faults::{FaultPlan, HealthReport};
        let pats = vec![defect_pattern()];
        let images: Vec<GrayImage> = (0..5).map(|i| image_with_defect((i * 6, 4))).collect();
        let refs: Vec<&GrayImage> = images.iter().collect();
        let fg = FeatureGenerator::new(pats).unwrap().with_threads(2);
        let plain = fg.feature_matrix(&refs);
        let health = HealthReport::new();
        let with_empty_plan =
            fg.feature_matrix_with_health(&refs, Some(&FaultPlan::none(3)), &health);
        assert_eq!(plain.as_slice(), with_empty_plan.as_slice());
        assert!(health.is_clean());
    }
}
