//! End-to-end timings, one group per paper experiment family: the crowd
//! workflow (Table 3), the full IG train+label pipeline (Figure 9 /
//! Table 4 inner loop), Snuba synthesis (Figure 9), GOGGLES affinity
//! coding (Figure 9), and a CNN baseline epoch (Figure 9 / Table 5).

use criterion::{criterion_group, criterion_main, Criterion};
use ig_baselines::cnn_models::CnnArch;
use ig_baselines::goggles::{Goggles, GogglesConfig};
use ig_baselines::selflearn::{SelfLearnConfig, SelfLearner};
use ig_baselines::snuba::{Snuba, SnubaConfig};
use ig_core::{InspectorGadget, Pattern, PatternSource, PipelineConfig};
use ig_crowd::CrowdWorkflow;
use ig_imaging::GrayImage;
use ig_synth::spec::{DatasetKind, DatasetSpec};
use ig_synth::LabeledImage;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn quick_dataset() -> ig_synth::Dataset {
    ig_synth::generate(&DatasetSpec::quick(DatasetKind::ProductScratch, 99))
}

fn bench_crowd_workflow(c: &mut Criterion) {
    let dataset = quick_dataset();
    let dev: Vec<&LabeledImage> = dataset.images.iter().take(20).collect();
    c.bench_function("e2e_crowd_workflow_20_images", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            CrowdWorkflow::full().run(&dev, &mut rng).patterns.len()
        })
    });
}

fn bench_pipeline(c: &mut Criterion) {
    let dataset = quick_dataset();
    let dev: Vec<&LabeledImage> = dataset.images.iter().take(20).collect();
    let mut rng = StdRng::seed_from_u64(2);
    let crowd = CrowdWorkflow::full().run(&dev, &mut rng);
    let dev_imgs: Vec<&GrayImage> = dev.iter().map(|l| &l.image).collect();
    let dev_labels: Vec<usize> = dev.iter().map(|l| l.label).collect();
    let test_imgs: Vec<&GrayImage> = dataset.images[20..].iter().map(|l| &l.image).collect();
    let mut group = c.benchmark_group("e2e_pipeline");
    group.sample_size(10);
    group.bench_function("train", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            InspectorGadget::train(
                Pattern::wrap_all(crowd.patterns.clone(), PatternSource::Crowd),
                &dev_imgs,
                &dev_labels,
                2,
                &PipelineConfig {
                    tune: false,
                    ..Default::default()
                },
                &mut rng,
            )
            .unwrap()
        })
    });
    let mut rng = StdRng::seed_from_u64(4);
    let ig = InspectorGadget::train(
        Pattern::wrap_all(crowd.patterns.clone(), PatternSource::Crowd),
        &dev_imgs,
        &dev_labels,
        2,
        &PipelineConfig {
            tune: false,
            ..Default::default()
        },
        &mut rng,
    )
    .unwrap();
    group.bench_function("label_20_images", |b| b.iter(|| ig.label(&test_imgs)));
    group.finish();
}

fn bench_snuba(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let d = 12;
    let rows: Vec<Vec<f32>> = (0..60)
        .map(|i| {
            let mut row: Vec<f32> = (0..d).map(|_| rng.gen_range(0.8..0.9)).collect();
            if i % 2 == 1 {
                row[0] = rng.gen_range(0.92..1.0);
            }
            row
        })
        .collect();
    let labels: Vec<usize> = (0..60).map(|i| i % 2).collect();
    let x = ig_nn::Matrix::from_rows(&rows);
    let mut group = c.benchmark_group("e2e_snuba");
    group.sample_size(10);
    group.bench_function("train_60x12", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(6);
            Snuba::train(&x, &labels, &x, 2, &SnubaConfig::default(), &mut rng).num_lfs()
        })
    });
    group.finish();
}

fn bench_goggles(c: &mut Criterion) {
    let dataset = quick_dataset();
    let refs: Vec<&GrayImage> = dataset.images.iter().map(|l| &l.image).collect();
    let dev: Vec<(usize, usize)> = (0..8).map(|i| (i, dataset.images[i].label)).collect();
    let mut group = c.benchmark_group("e2e_goggles");
    group.sample_size(10);
    group.bench_function("fit_40_images", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            Goggles::fit(&refs, &dev, 2, &GogglesConfig::default(), &mut rng)
        })
    });
    group.finish();
}

fn bench_cnn_baseline(c: &mut Criterion) {
    let dataset = quick_dataset();
    let dev: Vec<&LabeledImage> = dataset.images.iter().take(20).collect();
    let dev_imgs: Vec<&GrayImage> = dev.iter().map(|l| &l.image).collect();
    let dev_labels: Vec<usize> = dev.iter().map(|l| l.label).collect();
    let mut group = c.benchmark_group("e2e_cnn_baseline");
    group.sample_size(10);
    for arch in [
        CnnArch::MiniVgg,
        CnnArch::MiniMobileNet,
        CnnArch::MiniResNet,
    ] {
        group.bench_function(format!("{arch:?}_5_epochs"), |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(8);
                SelfLearner::train(
                    arch,
                    &dev_imgs,
                    &dev_labels,
                    2,
                    &SelfLearnConfig {
                        side: 16,
                        epochs: 5,
                        ..Default::default()
                    },
                    &mut rng,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_crowd_workflow,
    bench_pipeline,
    bench_snuba,
    bench_goggles,
    bench_cnn_baseline
);
criterion_main!(benches);
