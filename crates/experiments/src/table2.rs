//! Table 2: transfer-learning source comparison — pre-train VGG (MiniVGG)
//! on each other defect dataset vs a generic corpus (SynthNet standing in
//! for ImageNet), fine-tune on the target dev set, and report target-test
//! F1. The paper's finding: generic pre-training wins everywhere.

use crate::common::{f1, ExpEnv, Prepared, Report};
use ig_baselines::cnn_models::CnnArch;
use ig_baselines::selflearn::SelfLearnConfig;
use ig_baselines::transfer::{fine_tune, pretrain};
use ig_core::ScaleTier;
use ig_imaging::GrayImage;
use ig_synth::spec::DatasetKind;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Cell {
    target: String,
    source: String,
    f1: f64,
}

const TARGETS: [DatasetKind; 4] = [
    DatasetKind::ProductScratch,
    DatasetKind::ProductBubble,
    DatasetKind::ProductStamping,
    DatasetKind::Ksdd,
];

/// Run the Table 2 reproduction.
pub fn run(env: &ExpEnv) {
    let seed = env.seed();
    let mut report = Report::new("table2", &env.out);
    report.line(format!(
        "Table 2 (reproduction, scale={}): MiniVGG F1 when pre-trained on various sources",
        env.scale().name()
    ));
    let config = SelfLearnConfig {
        epochs: env.scale().cnn_epochs,
        ..Default::default()
    };

    // Source corpora: the four defect datasets (full, gold labels — the
    // paper pre-trains on whole labeled datasets) + SynthNet.
    let source_names: Vec<String> = TARGETS
        .iter()
        .map(|k| k.display_name().to_string())
        .chain(std::iter::once("SynthNet (ImageNet)".to_string()))
        .collect();

    let targets: Vec<Prepared> = TARGETS
        .iter()
        .map(|&k| Prepared::new(&env.ctx, k))
        .collect();
    let synthnet = ig_synth::synthnet::generate(
        match env.scale().tier {
            ScaleTier::Quick => 64,
            ScaleTier::Medium => 320,
            ScaleTier::Paper | ScaleTier::Ooc => 800,
        },
        32,
        seed ^ 0x1111,
    );

    report.line(format!(
        "{:<20} {}",
        "Target \\ Source",
        source_names
            .iter()
            .map(|s| format!("{s:>20}"))
            .collect::<String>()
    ));

    let mut cells = Vec::new();
    for (ti, target) in targets.iter().enumerate() {
        let mut row = format!("{:<20}", TARGETS[ti].display_name());
        let dev = target.dev_images();
        let dev_imgs: Vec<&GrayImage> = dev.iter().map(|l| &l.image).collect();
        let dev_labels: Vec<usize> = dev.iter().map(|l| l.label).collect();
        let test = target.test_images();
        let test_imgs: Vec<&GrayImage> = test.iter().map(|l| &l.image).collect();
        let test_labels = target.test_labels();
        for (si, source_name) in source_names.iter().enumerate() {
            if si == ti {
                row.push_str(&format!("{:>20}", "x"));
                continue;
            }
            let mut rng = StdRng::seed_from_u64(seed ^ ((ti * 16 + si) as u64) << 8);
            let (src_imgs, src_labels, src_classes): (Vec<&GrayImage>, Vec<usize>, usize) =
                if si < TARGETS.len() {
                    let src = &targets[si];
                    (
                        src.dataset.images.iter().map(|l| &l.image).collect(),
                        src.dataset.labels(),
                        src.num_classes(),
                    )
                } else {
                    (
                        synthnet.images.iter().map(|l| &l.image).collect(),
                        synthnet.labels(),
                        synthnet.task.num_classes(),
                    )
                };
            let pre = pretrain(
                CnnArch::MiniVgg,
                &src_imgs,
                &src_labels,
                src_classes,
                &config,
                &mut rng,
            );
            let mut tuned = fine_tune(
                pre,
                &dev_imgs,
                &dev_labels,
                target.num_classes(),
                &config,
                &mut rng,
            );
            let preds = tuned.label(&test_imgs);
            let score = f1(target.num_classes(), &test_labels, &preds);
            row.push_str(&format!("{score:>20.3}"));
            cells.push(Cell {
                target: TARGETS[ti].display_name().to_string(),
                source: source_name.clone(),
                f1: score,
            });
        }
        report.line(row);
    }
    // Shape check: generic pre-training should win per target.
    let mut wins = 0usize;
    for target in TARGETS.iter().map(|k| k.display_name()) {
        let best_defect = cells
            .iter()
            .filter(|c| c.target == target && !c.source.starts_with("SynthNet"))
            .map(|c| c.f1)
            .fold(f64::NEG_INFINITY, f64::max);
        let generic = cells
            .iter()
            .find(|c| c.target == target && c.source.starts_with("SynthNet"))
            .map(|c| c.f1)
            .unwrap_or(0.0);
        if generic >= best_defect {
            wins += 1;
        }
    }
    report.line(format!(
        "Generic (SynthNet) pre-training wins on {wins}/4 targets \
         (paper: ImageNet wins on 4/4)"
    ));
    report.finish(&cells);
}
