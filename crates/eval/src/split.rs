//! Stratified holdout splits.

use ig_runtime::RunContext;
use rand::seq::SliceRandom;
use rand::Rng;

/// RNG salt for [`stratified_split_in`]: keeps the split stream disjoint
/// from every other `ctx.rng(salt)` consumer of the same run seed.
const SPLIT_SALT: u64 = 0x5911_7000;

/// Index sets of a holdout split.
#[derive(Debug, Clone)]
pub struct Split {
    /// Training indices.
    pub train: Vec<usize>,
    /// Test indices.
    pub test: Vec<usize>,
}

impl Split {
    /// Materialize the split over any parallel slice: `(train, test)`
    /// item references in index order. Generic so prepared per-image
    /// caches (or images, or labels) flow through a split without
    /// cloning or re-deriving indices.
    pub fn select<'a, T>(&self, items: &'a [T]) -> (Vec<&'a T>, Vec<&'a T>) {
        (
            self.train.iter().map(|&i| &items[i]).collect(),
            self.test.iter().map(|&i| &items[i]).collect(),
        )
    }
}

/// Split `labels.len()` samples into train/test with `test_fraction` of
/// each class in the test set (rounded; at least one test sample per class
/// that has ≥ 2 members).
pub fn stratified_split(labels: &[usize], test_fraction: f64, rng: &mut impl Rng) -> Split {
    assert!(
        (0.0..1.0).contains(&test_fraction),
        "test fraction must be in [0, 1)"
    );
    let num_classes = labels.iter().copied().max().map_or(0, |m| m + 1);
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); num_classes];
    for (i, &c) in labels.iter().enumerate() {
        buckets[c].push(i);
    }
    let mut train = Vec::new();
    let mut test = Vec::new();
    for bucket in &mut buckets {
        bucket.shuffle(rng);
        let mut n_test = ((bucket.len() as f64) * test_fraction).round() as usize;
        if bucket.len() >= 2 && test_fraction > 0.0 {
            n_test = n_test.clamp(1, bucket.len() - 1);
        } else {
            n_test = n_test.min(bucket.len());
        }
        test.extend_from_slice(&bucket[..n_test]);
        train.extend_from_slice(&bucket[n_test..]);
    }
    train.sort_unstable();
    test.sort_unstable();
    Split { train, test }
}

/// [`stratified_split`] seeded from a [`RunContext`]: the split is a pure
/// function of the context seed (and the inputs), so every consumer of
/// the same run derives the same partition without threading an RNG.
pub fn stratified_split_in(ctx: &RunContext, labels: &[usize], test_fraction: f64) -> Split {
    let mut rng = ctx.rng(SPLIT_SALT);
    stratified_split(labels, test_fraction, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn split_is_a_partition() {
        let mut rng = StdRng::seed_from_u64(0);
        let labels: Vec<usize> = (0..40).map(|i| i % 4).collect();
        let s = stratified_split(&labels, 0.25, &mut rng);
        assert_eq!(s.train.len() + s.test.len(), 40);
        let mut all: Vec<usize> = s.train.iter().chain(&s.test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn split_is_stratified() {
        let mut rng = StdRng::seed_from_u64(1);
        // 30 of class 0, 10 of class 1.
        let labels: Vec<usize> = (0..40).map(|i| usize::from(i >= 30)).collect();
        let s = stratified_split(&labels, 0.2, &mut rng);
        let test_pos = s.test.iter().filter(|&&i| labels[i] == 1).count();
        assert_eq!(test_pos, 2);
        assert_eq!(s.test.len(), 8);
    }

    #[test]
    fn rare_class_keeps_a_train_sample() {
        let mut rng = StdRng::seed_from_u64(2);
        // 2 positives with 50% test fraction must leave one in train.
        let labels = vec![0, 0, 0, 0, 1, 1];
        let s = stratified_split(&labels, 0.5, &mut rng);
        let train_pos = s.train.iter().filter(|&&i| labels[i] == 1).count();
        assert_eq!(train_pos, 1);
    }

    #[test]
    fn zero_fraction_puts_all_in_train() {
        let mut rng = StdRng::seed_from_u64(3);
        let labels = vec![0, 1, 0, 1];
        let s = stratified_split(&labels, 0.0, &mut rng);
        assert!(s.test.is_empty());
        assert_eq!(s.train.len(), 4);
    }

    #[test]
    fn select_materializes_both_sides_in_index_order() {
        let split = Split {
            train: vec![0, 2, 3],
            test: vec![1, 4],
        };
        let items = ["a", "b", "c", "d", "e"];
        let (train, test) = split.select(&items);
        assert_eq!(train, vec![&"a", &"c", &"d"]);
        assert_eq!(test, vec![&"b", &"e"]);
        // Works over any parallel slice, e.g. labels.
        let labels = [10usize, 11, 12, 13, 14];
        let (ltrain, _) = split.select(&labels);
        assert_eq!(ltrain, vec![&10, &12, &13]);
    }

    #[test]
    fn context_split_is_deterministic_per_seed() {
        let labels: Vec<usize> = (0..30).map(|i| i % 3).collect();
        let ctx = RunContext::new(42);
        let a = stratified_split_in(&ctx, &labels, 0.25);
        let b = stratified_split_in(&ctx, &labels, 0.25);
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
        let other = stratified_split_in(&RunContext::new(43), &labels, 0.25);
        assert!(
            a.train != other.train || a.test != other.test,
            "different seeds should (generically) shuffle differently"
        );
    }

    #[test]
    fn singleton_class_stays_in_train() {
        let mut rng = StdRng::seed_from_u64(4);
        let labels = vec![0, 0, 0, 1];
        let s = stratified_split(&labels, 0.3, &mut rng);
        // Single class-1 member: rounds to 0 test samples.
        assert!(s.test.iter().all(|&i| labels[i] == 0));
    }
}
