//! F1: fingerprint completeness for `impl Stage` blocks.
//!
//! The memoization contract (DESIGN.md §"Stage contract") is that a
//! stage's cache key — `H(id, fingerprint, seed, plan)` — covers every
//! input `run()` can observe. A field read by `run()` but absent from
//! `fingerprint()` means two differently-configured stages collide on one
//! cache slot and the second run is served the first run's artifact; the
//! inverse (hashed but never read) splits one logical artifact across
//! keys and silently re-runs work the cache should have absorbed.
//!
//! The check is interprocedural but name-based: the `run()` closure is
//! walked for `self.*` field reads and keyed `ctx` accessors (chased
//! through free-fn calls like `effective_threads(config, ctx)`), and the
//! hashed set is the identifier closure of `fingerprint()` plus, for each
//! directly-hashed field, its constructor derivation — the statements of
//! `new()` that feed the field's init expression, found by taint
//! back-propagation (so `fp: h.finish()` expands through every
//! `x.fingerprint_into(&mut h)` statement to the inputs `x`).

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{walk_block, walk_expr, walk_stmts, Expr, ExprKind, ImplDecl, Span, Stmt};
use crate::callgraph::CallGraph;
use crate::context::{FileClass, FileContext};
use crate::lexer::TokenKind;
use crate::report::Diagnostic;
use crate::symbols::{Resolution, Symbols};

/// `RunContext` accessors that key the cache only if the stage hashes
/// them. (`seed`/`rng`/`plan` are folded into the key by the runtime
/// itself; `health`/`store`/`stage_runs` are observability sinks.)
const KEYED_CTX: &[&str] = &["threads", "scale"];

/// Field names that are observability sinks by convention: a health
/// report collects counters without influencing the artifact bytes.
const SINK_FIELDS: &[&str] = &["health"];

/// Call-chasing depth for the identifier closure and `ctx` threading.
const MAX_CHASE: usize = 3;

/// Taint fixpoint bound inside one constructor body.
const MAX_TAINT_ROUNDS: usize = 16;

pub fn check(ctxs: &[FileContext], sy: &Symbols, graph: &CallGraph, out: &mut Vec<Diagnostic>) {
    for (fi, ctx) in ctxs.iter().enumerate() {
        if ctx.class != FileClass::Library {
            continue;
        }
        for im in &ctx.ast.impls {
            let is_stage = im
                .trait_path
                .as_ref()
                .and_then(|t| t.last())
                .is_some_and(|s| s == "Stage");
            if is_stage {
                check_impl(ctxs, sy, graph, fi, im, out);
            }
        }
    }
}

fn check_impl(
    ctxs: &[FileContext],
    sy: &Symbols,
    graph: &CallGraph,
    fi: usize,
    im: &ImplDecl,
    out: &mut Vec<Diagnostic>,
) {
    let ctx = &ctxs[fi];
    let ast = ctx.ast;
    let find = |name: &str| {
        im.fn_ids
            .iter()
            .copied()
            .find(|&f| ast.fns.get(f).is_some_and(|d| d.name == name))
    };
    let (Some(run_idx), Some(fp_idx)) = (find("run"), find("fingerprint")) else {
        return;
    };
    // Test-only stages are never cached across processes.
    if ctx
        .in_test
        .get(ast.fns[run_idx].name_tok)
        .copied()
        .unwrap_or(false)
    {
        return;
    }
    // A null fingerprint or `cacheable() == false` opts the stage out of
    // memoization entirely — there is no key to be incomplete.
    if span_has_ident(ctx, ast.fns[fp_idx].body.span, "null") {
        return;
    }
    if find("cacheable").is_some_and(|c| {
        ast.fns[c]
            .body
            .span
            .tokens(ctx.tokens)
            .iter()
            .any(|t| t.text == "false")
    }) {
        return;
    }
    let ty = im.self_path.last().cloned().unwrap_or_default();

    // The run closure: methods of this self type (trait and inherent impl
    // blocks alike) reachable from `run()`.
    let impl_syms: BTreeSet<usize> = ast
        .impls
        .iter()
        .filter(|other| other.self_path.last() == im.self_path.last())
        .flat_map(|other| other.fn_ids.iter())
        .filter_map(|f| sy.fn_of[fi].get(f))
        .copied()
        .collect();
    let Some(&run_sym) = sy.fn_of[fi].get(&run_idx) else {
        return;
    };
    let mut closure = vec![run_sym];
    let mut seen: BTreeSet<usize> = closure.iter().copied().collect();
    let mut qi = 0;
    while qi < closure.len() {
        let n = graph.node_of_sym[closure[qi]];
        qi += 1;
        for &m in &graph.adj[n] {
            if let Some(si) = graph.nodes[m].sym {
                if impl_syms.contains(&si) && seen.insert(si) {
                    closure.push(si);
                }
            }
        }
    }

    // Everything the closure observes: `self.X` reads and keyed `ctx`
    // accessors (including `ctx` threaded through free fns).
    let mut reads: BTreeMap<String, usize> = BTreeMap::new();
    let mut ctx_uses: BTreeMap<String, usize> = BTreeMap::new();
    for &si in &closure {
        let f = &ast.fns[sy.fns[si].fn_idx];
        let ctx_params: BTreeSet<&str> = f
            .params
            .iter()
            .map(String::as_str)
            .filter(|p| p.trim_start_matches('_') == "ctx")
            .collect();
        let module = sy.fn_module(fi, ast, sy.fns[si].fn_idx);
        walk_block(&f.body, &mut |e| match &e.kind {
            ExprKind::Field { base, name } if is_self(base) => {
                reads.entry(name.clone()).or_insert(e.span.lo);
            }
            ExprKind::MethodCall {
                recv,
                method,
                method_tok,
                ..
            } => {
                if let ExprKind::Path(p) = &recv.kind {
                    if matches!(p.as_slice(), [s] if ctx_params.contains(s.as_str()))
                        && KEYED_CTX.contains(&method.as_str())
                    {
                        ctx_uses.entry(method.clone()).or_insert(*method_tok);
                    }
                }
            }
            ExprKind::Call { callee, args } => {
                let ExprKind::Path(segs) = &callee.kind else {
                    return;
                };
                for (pos, a) in args.iter().enumerate() {
                    let passes_ctx = matches!(&strip_refs(a).kind,
                        ExprKind::Path(p)
                            if matches!(p.as_slice(), [s] if ctx_params.contains(s.as_str())));
                    if !passes_ctx {
                        continue;
                    }
                    if let Resolution::Fns(ids) = sy.resolve_path(fi, &module, segs) {
                        for id in ids {
                            for acc in chase_ctx(ctxs, sy, id, pos, MAX_CHASE) {
                                ctx_uses.entry(acc).or_insert(callee.span.lo);
                            }
                        }
                    }
                }
            }
            _ => {}
        });
    }

    // The hashed set: identifier closure of `fingerprint()`.
    let hashed = ident_closure(ctxs, sy, graph, &[sy.fn_of[fi][&fp_idx]], MAX_CHASE);

    // Fields `fingerprint()` hashes directly, and their constructor
    // derivations (what each was computed from in `new()`).
    let mut direct: BTreeMap<String, usize> = BTreeMap::new();
    walk_block(&ast.fns[fp_idx].body, &mut |e| {
        if let ExprKind::Field { base, name } = &e.kind {
            if is_self(base) {
                direct.entry(name.clone()).or_insert(e.span.lo);
            }
        }
    });
    let expansions: BTreeMap<String, BTreeSet<String>> = direct
        .keys()
        .map(|g| (g.clone(), ctor_expansion(ctxs, sy, graph, fi, &ty, g)))
        .collect();
    let effectively_hashed =
        |name: &str| hashed.contains(name) || expansions.values().any(|e| e.contains(name));

    for (field, &tok) in &reads {
        if SINK_FIELDS.contains(&field.as_str()) || effectively_hashed(field) {
            continue;
        }
        out.push(diag(
            ctx,
            tok,
            format!(
                "`self.{field}` is read by `{ty}::run` but never folded into \
                 `fingerprint()` — two stages differing only in `{field}` share one \
                 cache key, so the second is served the first's artifact; hash it or \
                 derive a hashed field from it in the constructor"
            ),
        ));
    }
    for (acc, &tok) in &ctx_uses {
        if effectively_hashed(acc) {
            continue;
        }
        out.push(diag(
            ctx,
            tok,
            format!(
                "`ctx.{acc}()` influences `{ty}::run` but is not folded into \
                 `fingerprint()` — runs under different context budgets would share \
                 one cache key; fold the accessor's value into the fingerprint"
            ),
        ));
    }
    for (g, &tok) in &direct {
        if reads.contains_key(g) {
            continue;
        }
        let e = &expansions[g];
        if reads.keys().any(|r| e.contains(r)) || ctx_uses.keys().any(|a| e.contains(a)) {
            continue;
        }
        out.push(diag(
            ctx,
            tok,
            format!(
                "`self.{g}` is hashed by `{ty}::fingerprint` but `run()` never reads \
                 it (directly or through a derived field) — it over-invalidates the \
                 cache, re-running work whose inputs did not change"
            ),
        ));
    }
}

/// Identifiers in the bodies of `starts` and every workspace fn they call,
/// to `depth` hops.
fn ident_closure(
    ctxs: &[FileContext],
    sy: &Symbols,
    graph: &CallGraph,
    starts: &[usize],
    depth: usize,
) -> BTreeSet<String> {
    let mut set = BTreeSet::new();
    let mut seen: BTreeSet<usize> = BTreeSet::new();
    let mut frontier: Vec<usize> = starts.to_vec();
    for _ in 0..=depth {
        let mut next = Vec::new();
        for &si in &frontier {
            if !seen.insert(si) {
                continue;
            }
            let s = &sy.fns[si];
            let fctx = &ctxs[s.file];
            if let Some(f) = fctx.ast.fns.get(s.fn_idx) {
                span_idents(fctx, f.body.span, &mut set);
            }
            for &m in &graph.adj[graph.node_of_sym[si]] {
                if let Some(ns) = graph.nodes[m].sym {
                    next.push(ns);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    set
}

/// Keyed `ctx` accessors invoked on parameter `arg_pos` of `sym`, chased
/// through further calls to `depth`.
fn chase_ctx(
    ctxs: &[FileContext],
    sy: &Symbols,
    sym: usize,
    arg_pos: usize,
    depth: usize,
) -> BTreeSet<String> {
    let mut found = BTreeSet::new();
    if depth == 0 {
        return found;
    }
    let s = &sy.fns[sym];
    let fctx = &ctxs[s.file];
    let Some(f) = fctx.ast.fns.get(s.fn_idx) else {
        return found;
    };
    let Some(pname) = f.params.get(arg_pos).cloned() else {
        return found;
    };
    let module = sy.fn_module(s.file, fctx.ast, s.fn_idx);
    walk_block(&f.body, &mut |e| match &e.kind {
        ExprKind::MethodCall { recv, method, .. } => {
            if let ExprKind::Path(p) = &recv.kind {
                if matches!(p.as_slice(), [s] if *s == pname)
                    && KEYED_CTX.contains(&method.as_str())
                {
                    found.insert(method.clone());
                }
            }
        }
        ExprKind::Call { callee, args } => {
            let ExprKind::Path(segs) = &callee.kind else {
                return;
            };
            for (pos, a) in args.iter().enumerate() {
                let forwards = matches!(&strip_refs(a).kind,
                    ExprKind::Path(p) if matches!(p.as_slice(), [s] if *s == pname));
                if !forwards {
                    continue;
                }
                if let Resolution::Fns(ids) = sy.resolve_path(s.file, &module, segs) {
                    for id in ids {
                        found.extend(chase_ctx(ctxs, sy, id, pos, depth - 1));
                    }
                }
            }
        }
        _ => {}
    });
    found
}

/// What field `field` of a `ty` struct literal was computed from: the
/// identifiers of its init expression, widened by taint back-propagation
/// over the constructor's statements, plus the identifier closure of any
/// workspace fn those statements call.
fn ctor_expansion(
    ctxs: &[FileContext],
    sy: &Symbols,
    graph: &CallGraph,
    fi: usize,
    ty: &str,
    field: &str,
) -> BTreeSet<String> {
    let ctx = &ctxs[fi];
    let ast = ctx.ast;
    let mut expansion = BTreeSet::new();
    // Locate `Ty { .., field: init, .. }` (first occurrence wins).
    let mut found: Option<(usize, Span, &Expr)> = None;
    for (fni, f) in ast.fns.iter().enumerate() {
        if found.is_some() {
            break;
        }
        walk_block(&f.body, &mut |e| {
            if found.is_some() {
                return;
            }
            let ExprKind::StructLit {
                path,
                fields,
                names,
            } = &e.kind
            else {
                return;
            };
            if path.last().map(String::as_str) != Some(ty) {
                return;
            }
            for (i, fe) in fields.iter().enumerate() {
                let hit = match names.get(i) {
                    Some(Some(n)) => n == field,
                    _ => matches!(&fe.kind,
                        ExprKind::Path(p) if matches!(p.as_slice(), [s] if s == field)),
                };
                if hit {
                    found = Some((fni, e.span, fe));
                    return;
                }
            }
        });
    }
    let Some((ctor_idx, lit_span, init)) = found else {
        return expansion;
    };
    span_idents(ctx, init.span, &mut expansion);
    let module = sy.fn_module(fi, ast, ctor_idx);
    let self_type = sy.fn_of[fi]
        .get(&ctor_idx)
        .and_then(|&s| sy.fns[s].self_type.clone());
    let mut call_targets: Vec<usize> = Vec::new();
    calls_in(
        sy,
        fi,
        &module,
        self_type.as_deref(),
        init,
        &mut call_targets,
    );

    // Taint back-propagation: every constructor statement that mentions a
    // tainted name contributes its own identifiers (and its callees). The
    // struct-literal statement itself is excluded — it mentions every
    // field and would conflate their derivations.
    let mut stmts: Vec<&Stmt> = Vec::new();
    walk_stmts(&ast.fns[ctor_idx].body, &mut |s| stmts.push(s));
    for _ in 0..MAX_TAINT_ROUNDS {
        let mut changed = false;
        for s in &stmts {
            let (span, expr) = match s {
                Stmt::Let(l) => (l.span, l.init.as_ref()),
                Stmt::Expr(es) => (es.span, Some(&es.expr)),
                _ => continue,
            };
            if span.lo <= lit_span.lo && lit_span.lo < span.hi {
                continue;
            }
            let mut ids = BTreeSet::new();
            span_idents(ctx, span, &mut ids);
            if ids.iter().any(|i| expansion.contains(i)) && !ids.is_subset(&expansion) {
                expansion.extend(ids);
                changed = true;
                if let Some(e) = expr {
                    calls_in(sy, fi, &module, self_type.as_deref(), e, &mut call_targets);
                }
            }
        }
        if !changed {
            break;
        }
    }
    call_targets.sort_unstable();
    call_targets.dedup();
    expansion.extend(ident_closure(ctxs, sy, graph, &call_targets, 2));
    expansion
}

/// Workspace fns called anywhere inside `e`.
fn calls_in(
    sy: &Symbols,
    fi: usize,
    module: &[String],
    self_type: Option<&str>,
    e: &Expr,
    out: &mut Vec<usize>,
) {
    walk_expr(e, &mut |x| match &x.kind {
        ExprKind::Call { callee, .. } => {
            if let ExprKind::Path(segs) = &callee.kind {
                if let Resolution::Fns(ids) = sy.resolve_path(fi, module, segs) {
                    out.extend(ids);
                }
            }
        }
        ExprKind::MethodCall { recv, method, .. } => {
            let st = if is_self(recv) { self_type } else { None };
            if let Resolution::Fns(ids) = sy.resolve_method(st, method) {
                out.extend(ids);
            }
        }
        _ => {}
    });
}

fn is_self(e: &Expr) -> bool {
    matches!(&e.kind, ExprKind::Path(p) if matches!(p.as_slice(), [s] if s == "self"))
}

/// Peel `&`/`*`/`-`/`!` prefixes off an expression.
fn strip_refs(e: &Expr) -> &Expr {
    let mut e = e;
    while let ExprKind::Unary(inner) = &e.kind {
        e = inner;
    }
    e
}

fn span_idents(ctx: &FileContext, span: Span, out: &mut BTreeSet<String>) {
    for t in span.tokens(ctx.tokens) {
        if t.kind == TokenKind::Ident {
            out.insert(t.text.clone());
        }
    }
}

fn span_has_ident(ctx: &FileContext, span: Span, name: &str) -> bool {
    span.tokens(ctx.tokens).iter().any(|t| t.is_ident(name))
}

fn diag(ctx: &FileContext, tok: usize, message: String) -> Diagnostic {
    let (line, col) = ctx.tokens.get(tok).map_or((0, 1), |t| (t.line, t.col));
    Diagnostic {
        rule: "fingerprint-completeness".to_string(),
        path: ctx.path.to_string(),
        line,
        col,
        message,
    }
}
