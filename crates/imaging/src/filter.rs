//! Separable blurs and generic 2-D convolution.
//!
//! The Gaussian pyramid low-passes before decimation; the synthetic dataset
//! generators blur defect stamps to soften edges.

use crate::GrayImage;

/// Horizontal-then-vertical box blur with the given radius (window size
/// `2*radius + 1`), replicate padding. Radius 0 is the identity.
pub fn box_blur(src: &GrayImage, radius: usize) -> GrayImage {
    if radius == 0 || src.is_empty() {
        return src.clone();
    }
    let horizontal = blur_rows(src, radius);
    blur_rows(&horizontal.transpose(), radius).transpose()
}

fn blur_rows(src: &GrayImage, radius: usize) -> GrayImage {
    let (w, h) = src.dims();
    let mut out = GrayImage::new(w, h);
    let norm = 1.0 / (2 * radius + 1) as f32;
    for y in 0..h {
        let row = src.row(y);
        // Sliding-window sum with replicate padding.
        let mut acc = 0.0f32;
        for i in -(radius as isize)..=(radius as isize) {
            acc += row[i.clamp(0, w as isize - 1) as usize];
        }
        for (x, out_px) in out.row_mut(y).iter_mut().enumerate() {
            *out_px = acc * norm;
            let leaving = (x as isize - radius as isize).clamp(0, w as isize - 1) as usize;
            let entering = (x as isize + radius as isize + 1).clamp(0, w as isize - 1) as usize;
            acc += row[entering] - row[leaving];
        }
    }
    out
}

/// Separable Gaussian blur with standard deviation `sigma`, replicate
/// padding. `sigma <= 0` is the identity.
pub fn gaussian_blur(src: &GrayImage, sigma: f32) -> GrayImage {
    if sigma <= 0.0 || src.is_empty() {
        return src.clone();
    }
    gaussian_blur_with_kernel(src, &gaussian_kernel(sigma))
}

/// Separable Gaussian blur with a precomputed kernel from
/// [`gaussian_kernel`]. Callers that blur many images with the same sigma
/// (the pyramid builder blurs every level) hoist the kernel allocation out
/// of their loop and pass it here — the hot-loop-alloc (H1) remedy.
pub fn gaussian_blur_with_kernel(src: &GrayImage, kernel: &[f32]) -> GrayImage {
    if kernel.len() <= 1 || src.is_empty() {
        return src.clone();
    }
    let horizontal = convolve_rows(src, kernel);
    convolve_rows(&horizontal.transpose(), kernel).transpose()
}

/// Build a normalized 1-D Gaussian kernel covering ±3 sigma.
pub fn gaussian_kernel(sigma: f32) -> Vec<f32> {
    let radius = (3.0 * sigma).max(1.0).ceil() as usize;
    let mut kernel = Vec::with_capacity(2 * radius + 1);
    let denom = 2.0 * sigma * sigma;
    for i in -(radius as isize)..=(radius as isize) {
        kernel.push((-((i * i) as f32) / denom).exp());
    }
    let sum: f32 = kernel.iter().sum();
    for k in &mut kernel {
        *k /= sum;
    }
    kernel
}

/// Convolve each row with a 1-D kernel (odd length), replicate padding.
pub fn convolve_rows(src: &GrayImage, kernel: &[f32]) -> GrayImage {
    let (w, h) = src.dims();
    let radius = kernel.len() / 2;
    let mut out = GrayImage::new(w, h);
    for y in 0..h {
        let row = src.row(y);
        for (x, out_px) in out.row_mut(y).iter_mut().enumerate() {
            let mut acc = 0.0f32;
            for (k, &kv) in kernel.iter().enumerate() {
                let sx = (x as isize + k as isize - radius as isize).clamp(0, w as isize - 1);
                acc += kv * row[sx as usize];
            }
            *out_px = acc;
        }
    }
    out
}

/// Full 2-D convolution with an arbitrary odd-sized kernel, replicate
/// padding. `kernel` is row-major `kw` x `kh`. Used by the GOGGLES filter
/// bank substitute.
pub fn convolve2d(src: &GrayImage, kernel: &[f32], kw: usize, kh: usize) -> GrayImage {
    assert_eq!(kernel.len(), kw * kh, "kernel buffer length mismatch");
    let (w, h) = src.dims();
    let rx = (kw / 2) as isize;
    let ry = (kh / 2) as isize;
    GrayImage::from_fn(w, h, |x, y| {
        let mut acc = 0.0f32;
        for ky in 0..kh {
            for kx in 0..kw {
                let sx = x as isize + kx as isize - rx;
                let sy = y as isize + ky as isize - ry;
                acc += kernel[ky * kw + kx] * src.get_clamped(sx, sy);
            }
        }
        acc
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_blur_radius_zero_is_identity() {
        let img = GrayImage::from_fn(5, 5, |x, y| (x + y) as f32);
        assert_eq!(box_blur(&img, 0), img);
    }

    #[test]
    fn box_blur_preserves_constant() {
        let img = GrayImage::filled(8, 8, 0.7);
        let blurred = box_blur(&img, 2);
        for &p in blurred.pixels() {
            assert!((p - 0.7).abs() < 1e-5);
        }
    }

    #[test]
    fn box_blur_smooths_impulse() {
        let mut img = GrayImage::new(7, 7);
        img.set(3, 3, 49.0);
        let blurred = box_blur(&img, 1);
        // A 3x3 box spreads the impulse over 9 pixels.
        assert!((blurred.get(3, 3) - 49.0 / 9.0).abs() < 1e-4);
        assert!((blurred.get(2, 2) - 49.0 / 9.0).abs() < 1e-4);
        assert!(blurred.get(0, 0).abs() < 1e-6);
    }

    #[test]
    fn gaussian_kernel_normalized_and_symmetric() {
        for sigma in [0.5, 1.0, 2.5] {
            let k = gaussian_kernel(sigma);
            assert_eq!(k.len() % 2, 1);
            let sum: f32 = k.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            for i in 0..k.len() / 2 {
                assert!((k[i] - k[k.len() - 1 - i]).abs() < 1e-6);
            }
            // Peak at the center.
            let mid = k.len() / 2;
            assert!(k.iter().all(|&v| v <= k[mid] + 1e-9));
        }
    }

    #[test]
    fn gaussian_blur_sigma_zero_is_identity() {
        let img = GrayImage::from_fn(4, 4, |x, _| x as f32);
        assert_eq!(gaussian_blur(&img, 0.0), img);
    }

    #[test]
    fn gaussian_blur_preserves_mean() {
        let img = GrayImage::from_fn(16, 16, |x, y| ((x * 7 + y * 13) % 5) as f32);
        let blurred = gaussian_blur(&img, 1.2);
        let mean = |im: &GrayImage| im.pixels().iter().sum::<f32>() / im.len() as f32;
        // Replicate padding keeps mass approximately constant.
        assert!((mean(&img) - mean(&blurred)).abs() < 0.1);
    }

    #[test]
    fn gaussian_blur_reduces_variance() {
        let img = GrayImage::from_fn(32, 32, |x, y| if (x + y) % 2 == 0 { 1.0 } else { 0.0 });
        let blurred = gaussian_blur(&img, 1.5);
        let var = |im: &GrayImage| {
            let m = im.pixels().iter().sum::<f32>() / im.len() as f32;
            im.pixels().iter().map(|&p| (p - m).powi(2)).sum::<f32>() / im.len() as f32
        };
        assert!(var(&blurred) < var(&img) * 0.1);
    }

    #[test]
    fn blur_with_precomputed_kernel_matches_blur() {
        let img = GrayImage::from_fn(17, 11, |x, y| ((x * 3 + y * 5) % 7) as f32);
        let kernel = gaussian_kernel(1.0);
        assert_eq!(
            gaussian_blur_with_kernel(&img, &kernel),
            gaussian_blur(&img, 1.0)
        );
    }

    #[test]
    fn blur_with_trivial_kernel_is_identity() {
        let img = GrayImage::from_fn(4, 4, |x, y| (x + y) as f32);
        assert_eq!(gaussian_blur_with_kernel(&img, &[1.0]), img);
        assert_eq!(gaussian_blur_with_kernel(&img, &[]), img);
    }

    #[test]
    fn convolve2d_identity_kernel() {
        let img = GrayImage::from_fn(6, 5, |x, y| (x * y) as f32);
        let identity = [0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0];
        assert_eq!(convolve2d(&img, &identity, 3, 3), img);
    }

    #[test]
    fn convolve2d_sobel_detects_vertical_edge() {
        let img = GrayImage::from_fn(8, 8, |x, _| if x < 4 { 0.0 } else { 1.0 });
        let sobel_x = [-1.0, 0.0, 1.0, -2.0, 0.0, 2.0, -1.0, 0.0, 1.0];
        let edges = convolve2d(&img, &sobel_x, 3, 3);
        // Strong response at the edge column, none far away.
        assert!(edges.get(3, 4).abs() > 1.0 || edges.get(4, 4).abs() > 1.0);
        assert!(edges.get(1, 4).abs() < 1e-6);
        assert!(edges.get(6, 4).abs() < 1e-6);
    }

    #[test]
    fn blur_on_single_pixel_image() {
        let img = GrayImage::filled(1, 1, 0.5);
        assert_eq!(box_blur(&img, 3).get(0, 0), 0.5);
        assert!((gaussian_blur(&img, 2.0).get(0, 0) - 0.5).abs() < 1e-6);
    }
}
