//! Combination strategies for overlapping worker boxes (Section 3).
//!
//! "While there are several ways to combine boxes, we find that averaging
//! their coordinates works reasonably well. [...] the union strategy tends
//! to generate patterns that are too large, while the intersection
//! strategy has the opposite problem of generating tiny patterns."

use ig_imaging::geometry::overlap_groups_iou;
use ig_imaging::BBox;

/// How to merge a group of overlapping boxes into one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CombineStrategy {
    /// Coordinate-wise mean (the paper's choice).
    Average,
    /// Smallest covering box.
    Union,
    /// Common intersection.
    Intersection,
}

impl CombineStrategy {
    /// Merge one group. `None` only for intersection of disjoint boxes
    /// (cannot happen for groups built from pairwise overlaps of ≤2 boxes
    /// but can for chains) or empty input.
    pub fn merge(&self, boxes: &[BBox]) -> Option<BBox> {
        match self {
            CombineStrategy::Average => BBox::average(boxes),
            CombineStrategy::Union => BBox::union_all(boxes),
            CombineStrategy::Intersection => BBox::intersection_all(boxes),
        }
    }
}

/// Result of the grouping + combination stage.
#[derive(Debug, Clone)]
pub struct CombineOutput {
    /// Boxes confirmed by ≥ 2 workers, merged per group.
    pub combined: Vec<BBox>,
    /// Boxes seen by a single worker (the peer-review queue).
    pub outliers: Vec<BBox>,
}

/// IoU required for two boxes to count as "the same defect". Raw overlap
/// is too permissive: different elongated defects (scratches) often graze
/// each other and would chain-merge into one meaningless averaged box.
pub const GROUPING_MIN_IOU: f32 = 0.2;

/// Group all workers' boxes for one image by pairwise IoU and merge each
/// multi-worker group; singleton groups become outliers.
pub fn combine_boxes(all_boxes: &[BBox], strategy: CombineStrategy) -> CombineOutput {
    let groups = overlap_groups_iou(all_boxes, GROUPING_MIN_IOU);
    let mut combined = Vec::new();
    let mut outliers = Vec::new();
    for group in groups {
        if group.len() >= 2 {
            let members: Vec<BBox> = group.iter().map(|&i| all_boxes[i]).collect();
            if let Some(merged) = strategy.merge(&members) {
                combined.push(merged);
            } else {
                // Chain overlap with empty common intersection: fall back
                // to the member closest to the group centroid.
                outliers.extend(members);
            }
        } else if let Some(&lone) = group.first() {
            outliers.push(all_boxes[lone]);
        }
    }
    CombineOutput { combined, outliers }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_overlapping_boxes_average() {
        let a = BBox::new(10.0, 10.0, 10.0, 10.0);
        let b = BBox::new(12.0, 12.0, 10.0, 10.0);
        let out = combine_boxes(&[a, b], CombineStrategy::Average);
        assert_eq!(out.combined.len(), 1);
        assert!(out.outliers.is_empty());
        assert_eq!(out.combined[0], BBox::new(11.0, 11.0, 10.0, 10.0));
    }

    #[test]
    fn disjoint_boxes_become_outliers() {
        let a = BBox::new(0.0, 0.0, 5.0, 5.0);
        let b = BBox::new(50.0, 50.0, 5.0, 5.0);
        let out = combine_boxes(&[a, b], CombineStrategy::Average);
        assert!(out.combined.is_empty());
        assert_eq!(out.outliers.len(), 2);
    }

    #[test]
    fn union_grows_intersection_shrinks() {
        let a = BBox::new(0.0, 0.0, 10.0, 10.0);
        let b = BBox::new(3.0, 3.0, 10.0, 10.0);
        let avg = combine_boxes(&[a, b], CombineStrategy::Average).combined[0];
        let uni = combine_boxes(&[a, b], CombineStrategy::Union).combined[0];
        let inter = combine_boxes(&[a, b], CombineStrategy::Intersection).combined[0];
        assert!(uni.area() > avg.area());
        assert!(inter.area() < avg.area());
    }

    #[test]
    fn three_workers_one_defect() {
        let boxes = [
            BBox::new(10.0, 10.0, 8.0, 8.0),
            BBox::new(11.0, 9.0, 8.0, 9.0),
            BBox::new(9.0, 11.0, 9.0, 8.0),
        ];
        let out = combine_boxes(&boxes, CombineStrategy::Average);
        assert_eq!(out.combined.len(), 1);
        let c = out.combined[0];
        assert!((c.x - 10.0).abs() < 0.01);
        assert!((c.w - 25.0 / 3.0).abs() < 0.01);
    }

    #[test]
    fn chain_with_empty_intersection_falls_back_to_outliers() {
        // a∩b and b∩c nonempty, but a∩b∩c empty.
        let a = BBox::new(0.0, 0.0, 4.0, 4.0);
        let b = BBox::new(3.0, 0.0, 4.0, 4.0);
        let c = BBox::new(6.0, 0.0, 4.0, 4.0);
        let out = combine_boxes(&[a, b, c], CombineStrategy::Intersection);
        assert!(out.combined.is_empty());
        assert_eq!(out.outliers.len(), 3);
    }

    #[test]
    fn empty_input() {
        let out = combine_boxes(&[], CombineStrategy::Average);
        assert!(out.combined.is_empty() && out.outliers.is_empty());
    }
}
