//! Property tests for the durable tier's serialization surface: the
//! artifact file format must round-trip arbitrary payloads bit for bit
//! through [`DiskStore::save`]/[`DiskStore::load`], and any damage — a
//! truncated (torn) file or a single flipped bit anywhere in the file,
//! header or payload — must be rejected, quarantined and recorded, never
//! mis-decoded. The typed codec ([`Enc`]/[`Dec`]/[`Durable`]) gets the
//! same treatment over [`Matrix`] and [`GrayImage`] artifacts.

use std::sync::atomic::{AtomicUsize, Ordering};

use ig_faults::{FaultKind, HealthReport, RecoveryAction};
use ig_imaging::GrayImage;
use ig_nn::Matrix;
use ig_runtime::{Dec, DiskStore, Durable, Enc, Fingerprint};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fresh store root per proptest case: pid separates parallel test
/// binaries, the counter separates cases within this one.
fn fresh_store() -> DiskStore {
    static CASE: AtomicUsize = AtomicUsize::new(0);
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    let root = std::env::temp_dir().join(format!("ig-fmt-{}-{case}", std::process::id()));
    match std::fs::remove_dir_all(&root) {
        // First use of this case number: nothing to clear.
        Ok(()) | Err(_) => {}
    }
    match DiskStore::open(root) {
        Ok(store) => store,
        Err(e) => {
            assert!(false, "store open failed: {e}");
            unreachable!()
        }
    }
}

fn read_artifact(store: &DiskStore, id: &str, fp: Fingerprint) -> Vec<u8> {
    match std::fs::read(store.artifact_path(id, fp)) {
        Ok(bytes) => bytes,
        Err(e) => {
            assert!(false, "artifact unreadable: {e}");
            unreachable!()
        }
    }
}

fn write_artifact(store: &DiskStore, id: &str, fp: Fingerprint, bytes: &[u8]) {
    match std::fs::write(store.artifact_path(id, fp), bytes) {
        Ok(()) => {}
        Err(e) => assert!(false, "artifact unwritable: {e}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary payloads (including empty) round-trip bit for bit.
    #[test]
    fn any_payload_round_trips(
        payload in proptest::collection::vec(any::<u8>(), 0..2048),
        lo in any::<u64>(), hi in any::<u64>(),
    ) {
        let store = fresh_store();
        let health = HealthReport::new();
        let fp = Fingerprint { lo, hi };
        prop_assert!(store.save("prop.payload", fp, &payload, None, &health));
        prop_assert_eq!(store.load("prop.payload", fp, &health), Some(payload));
        prop_assert!(health.is_clean());
    }

    /// A file truncated at any prefix length is rejected and quarantined.
    #[test]
    fn truncated_artifact_is_rejected(
        payload in proptest::collection::vec(any::<u8>(), 1..512),
        cut in any::<proptest::sample::Index>(),
    ) {
        let store = fresh_store();
        let health = HealthReport::new();
        let fp = Fingerprint { lo: 7, hi: 9 };
        prop_assert!(store.save("prop.torn", fp, &payload, None, &health));
        let bytes = read_artifact(&store, "prop.torn", fp);
        write_artifact(&store, "prop.torn", fp, &bytes[..cut.index(bytes.len())]);
        prop_assert_eq!(store.load("prop.torn", fp, &health), None);
        prop_assert_eq!(health.count(FaultKind::ArtifactCorruption), 1);
        prop_assert_eq!(health.count_action(RecoveryAction::QuarantinedArtifact), 1);
        prop_assert_eq!(store.stats().quarantined, 1);
        // The quarantine emptied the slot: the next load is a plain miss.
        prop_assert_eq!(store.load("prop.torn", fp, &health), None);
        prop_assert_eq!(store.stats().quarantined, 1);
    }

    /// One flipped bit anywhere — magic, header fields, length prefixes,
    /// checksum or payload — is rejected, never served.
    #[test]
    fn any_single_bit_flip_is_rejected(
        payload in proptest::collection::vec(any::<u8>(), 1..512),
        pos in any::<proptest::sample::Index>(),
        bit in 0u8..8,
    ) {
        let store = fresh_store();
        let health = HealthReport::new();
        let fp = Fingerprint { lo: 3, hi: 5 };
        prop_assert!(store.save("prop.flip", fp, &payload, None, &health));
        let mut bytes = read_artifact(&store, "prop.flip", fp);
        let at = pos.index(bytes.len());
        bytes[at] ^= 1 << bit;
        write_artifact(&store, "prop.flip", fp, &bytes);
        prop_assert_eq!(store.load("prop.flip", fp, &health), None);
        prop_assert_eq!(health.count(FaultKind::ArtifactCorruption), 1);
    }

    /// Typed codec: matrices round-trip bit-identically, and truncating
    /// the encoding at any prefix is rejected by [`Durable::from_bytes`].
    #[test]
    fn matrix_codec_round_trips_and_rejects_truncation(
        rows in 1usize..6, cols in 1usize..6, seed in any::<u64>(),
        cut in any::<proptest::sample::Index>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-4.0f32..4.0));
        let bytes = m.to_bytes();
        match Matrix::from_bytes(&bytes) {
            Some(back) => prop_assert_eq!(back.as_slice(), m.as_slice()),
            None => prop_assert!(false, "encoded matrix failed to decode"),
        }
        let cut_at = cut.index(bytes.len());
        if cut_at < bytes.len() {
            prop_assert!(Matrix::from_bytes(&bytes[..cut_at]).is_none());
        }
    }

    /// Typed codec: images round-trip bit-identically; a flipped bit in
    /// the dimensions header cannot smuggle in a misshapen image.
    #[test]
    fn image_codec_round_trips(w in 1usize..12, h in 1usize..12, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let img = GrayImage::from_fn(w, h, |_, _| rng.gen_range(0.0f32..1.0));
        let bytes = img.to_bytes();
        match GrayImage::from_bytes(&bytes) {
            Some(back) => {
                prop_assert_eq!(back.width(), w);
                prop_assert_eq!(back.height(), h);
                prop_assert_eq!(back.pixels(), img.pixels());
            }
            None => prop_assert!(false, "encoded image failed to decode"),
        }
        // Doubling the declared width makes pixel count inconsistent.
        let mut tampered = Enc::new();
        tampered.put_usize(w * 2);
        tampered.put_usize(h);
        tampered.put_f32s(img.pixels());
        prop_assert!(GrayImage::from_bytes(&tampered.into_bytes()).is_none());
    }

    /// Trailing garbage after a valid encoding is rejected: a durable
    /// payload is exactly one artifact, not a prefix of one.
    #[test]
    fn trailing_bytes_are_rejected(extra in 1usize..16) {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let mut bytes = m.to_bytes();
        bytes.extend(std::iter::repeat(0u8).take(extra));
        prop_assert!(Matrix::from_bytes(&bytes).is_none());
    }
}

/// The low-level decoder never reads past its input: every accessor on an
/// exhausted cursor is `None`, not a panic.
#[test]
fn decoder_is_total_on_underrun() {
    let mut enc = Enc::new();
    enc.put_u64(42);
    let bytes = enc.into_bytes();
    for cut in 0..bytes.len() {
        let mut dec = Dec::new(&bytes[..cut]);
        assert!(dec.u64().is_none());
    }
    let mut dec = Dec::new(&bytes);
    assert_eq!(dec.u64(), Some(42));
    assert!(dec.done());
}
