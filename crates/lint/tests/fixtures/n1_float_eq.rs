//! Fixture: N1 bare float equality. Line numbers are asserted — do not
//! reflow.

fn guards(precision: f64, recall: f64) -> f64 {
    if precision + recall == 0.0 {
        // (violation on line 5: == with float literal)
        return 0.0;
    }
    2.0 * precision * recall / (precision + recall)
}

fn inequality(x: f32) -> bool {
    x != 1.0 // line 13: != with float literal
}

fn literal_on_left(x: f32) -> bool {
    0.5 == x // line 17: literal on the left side
}

fn int_compare_is_fine(n: usize) -> bool {
    n == 0 // no violation: integer comparison
}

fn ordering_is_fine(x: f32) -> bool {
    x < 1.0 && x >= 0.0 // no violation: ordering, not equality
}

fn annotated(x: f32) -> bool {
    x == 0.5 // line 29: suppressed // ig-lint: allow(float-eq) -- fixture: sentinel set from this literal
}
