//! C1 fixture: `?` under held guards, `?` under the advisory pid lock,
//! and a two-lock ordering cycle. Linted as a lock-scope path.

use std::io::Write as _;
use std::sync::Mutex;

pub struct Store {
    index: Mutex<Vec<u64>>,
    journal: Mutex<Vec<u64>>,
}

impl Store {
    pub fn rebalance(&self) -> Result<(), std::io::Error> {
        let index = self.index.lock();
        let journal = self.journal.lock();
        let bytes = std::fs::read("segment.bin")?;
        let _n = bytes.len();
        drop(journal);
        drop(index);
        Ok(())
    }

    pub fn forward(&self) {
        let _a = self.index.lock();
        let _b = self.journal.lock();
    }

    pub fn backward(&self) {
        let _b = self.journal.lock();
        let _a = self.index.lock();
    }

    pub fn stamp(&self, lock: &std::path::Path) -> Result<(), std::io::Error> {
        match std::fs::OpenOptions::new().write(true).create_new(true).open(lock) {
            Ok(mut file) => {
                file.write_all(b"1")?;
                if std::fs::remove_file(lock).is_err() {
                    return Ok(());
                }
            }
            Err(_) => return Ok(()),
        }
        Ok(())
    }

    pub fn disciplined(&self) -> Result<u64, std::io::Error> {
        let bytes = std::fs::read("segment.bin")?;
        let guard = self.index.lock();
        let n = bytes.len() as u64;
        drop(guard);
        Ok(n)
    }
}
