//! Quickstart: weak-label a synthetic smart-factory dataset in ~30 lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use inspector_gadget::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(11);

    // 1. An industrial dataset: strip images with scratch defects.
    //    (Synthetic stand-in for the paper's proprietary Product data.)
    let dataset = inspector_gadget::synth::generate(&DatasetSpec {
        n: 80,
        n_defective: 30,
        ..DatasetSpec::quick(DatasetKind::ProductScratch, 11)
    });
    println!(
        "dataset: {} images ({} defective), {}x{} px",
        dataset.len(),
        dataset.num_defective(),
        dataset.image_dims().0,
        dataset.image_dims().1
    );

    // 2. Crowd workers annotate a small development set: sample images
    //    until enough defects have been seen, then draw bounding boxes.
    let dev_indices = sample_dev_set(&dataset, 12, &mut rng);
    let dev: Vec<&LabeledImage> = dev_indices.iter().map(|&i| &dataset.images[i]).collect();
    let crowd_out = CrowdWorkflow::full().run(&dev, &mut rng);
    println!(
        "crowd workflow: {} raw boxes -> {} patterns",
        crowd_out.raw_box_count,
        crowd_out.patterns.len()
    );

    // 3. Patterns become feature generation functions; a small MLP labeler
    //    trains on the dev set's similarity vectors.
    let patterns = Pattern::wrap_all(crowd_out.patterns, PatternSource::Crowd);
    let dev_images: Vec<&GrayImage> = dev.iter().map(|l| &l.image).collect();
    let dev_labels: Vec<usize> = dev.iter().map(|l| l.label).collect();
    let config = PipelineConfig {
        tune: false,
        ..Default::default()
    };
    let ig = InspectorGadget::train(patterns, &dev_images, &dev_labels, 2, &config, &mut rng)
        .expect("training succeeds");

    // 4. Weak-label everything else and score against the gold labels.
    let rest: Vec<&LabeledImage> = dataset
        .images
        .iter()
        .enumerate()
        .filter(|(i, _)| !dev_indices.contains(i))
        .map(|(_, img)| img)
        .collect();
    let rest_images: Vec<&GrayImage> = rest.iter().map(|l| &l.image).collect();
    let weak = ig.label(&rest_images);
    let gold: Vec<bool> = rest.iter().map(|l| l.label == 1).collect();
    let pred: Vec<bool> = weak.labels.iter().map(|&l| l == 1).collect();
    let scores = binary_f1(&gold, &pred);
    println!(
        "weak labels on {} unlabeled images: precision {:.3}, recall {:.3}, F1 {:.3}",
        rest.len(),
        scores.precision,
        scores.recall,
        scores.f1
    );
}
