//! P1 fixture: ambient effects reachable from `Stage::run`, directly and
//! through a helper, next to a pure stage that stays silent.

pub struct Fingerprint(u64);
pub struct RunContext;
pub trait Stage {
    fn fingerprint(&self) -> Fingerprint;
    fn run(&mut self, ctx: &RunContext) -> u64;
}

fn load_side_table(path: &str) -> u64 {
    match std::fs::read_to_string(path) {
        Ok(text) => text.len() as u64,
        Err(_) => 0,
    }
}

pub struct Impure;

impl Stage for Impure {
    fn fingerprint(&self) -> Fingerprint {
        Fingerprint(0)
    }
    fn run(&mut self, _ctx: &RunContext) -> u64 {
        let n = load_side_table("side.json");
        let scale = match std::env::var("IG_SCALE") {
            Ok(v) => v.len() as u64,
            Err(_) => 1,
        };
        n * scale
    }
}

pub struct Pure {
    pub seedlike: u64,
}

impl Stage for Pure {
    fn fingerprint(&self) -> Fingerprint {
        Fingerprint(self.seedlike)
    }
    fn run(&mut self, _ctx: &RunContext) -> u64 {
        self.seedlike.wrapping_mul(3)
    }
}
