//! Fix-roundtrip fixture: `ig-lint fix` rewrites every discard, and a
//! re-check comes back clean.

fn try_save(path: &str) -> Result<(), String> {
    Ok(())
}

pub fn propagating(path: &str) -> Result<(), String> {
    let _ = try_save(path);
    Ok(())
}

pub fn logging(path: &str) {
    let _ = try_save(path);
    try_save(path).ok();
}
