//! End-to-end integration: synthetic dataset → crowd workflow → (optional
//! augmentation) → Inspector Gadget → weak labels, scored against gold.

use inspector_gadget::augment::gan::RganConfig;
use inspector_gadget::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn split(dataset: &Dataset, dev_target: usize, rng: &mut StdRng) -> (Vec<usize>, Vec<usize>) {
    let dev = sample_dev_set(dataset, dev_target, rng);
    let in_dev: std::collections::HashSet<usize> = dev.iter().copied().collect();
    let rest = (0..dataset.len()).filter(|i| !in_dev.contains(i)).collect();
    (dev, rest)
}

fn run_pipeline(kind: DatasetKind, seed: u64, augmented: bool) -> Option<(f64, usize)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let dataset = inspector_gadget::synth::generate(&DatasetSpec {
        n: 60,
        n_defective: 20,
        noisy_fraction: 0.05,
        difficult_fraction: 0.0,
        ..DatasetSpec::quick(kind, seed)
    });
    let (dev_idx, test_idx) = split(&dataset, 8, &mut rng);
    let dev: Vec<&LabeledImage> = dev_idx.iter().map(|&i| &dataset.images[i]).collect();
    if dev.iter().all(|l| l.label == dev[0].label) {
        return None;
    }
    let crowd = CrowdWorkflow::full().run(&dev, &mut rng);
    let mut patterns = crowd.patterns;
    if patterns.is_empty() {
        return None;
    }
    if augmented {
        let policies = vec![
            Policy {
                op: PolicyOp::Rotate,
                magnitude: 10.0,
            },
            Policy {
                op: PolicyOp::Brightness,
                magnitude: 1.1,
            },
        ];
        patterns = augment(
            &patterns,
            AugmentMethod::Both,
            16,
            &policies,
            &RganConfig::quick(),
            &mut rng,
        );
    }
    let n_patterns = patterns.len();
    let dev_images: Vec<&GrayImage> = dev.iter().map(|l| &l.image).collect();
    let dev_labels: Vec<usize> = dev.iter().map(|l| l.label).collect();
    let ig = InspectorGadget::train(
        Pattern::wrap_all(patterns, PatternSource::Crowd),
        &dev_images,
        &dev_labels,
        2,
        &PipelineConfig {
            tune: false,
            ..Default::default()
        },
        &mut rng,
    )
    .ok()?;
    let test: Vec<&LabeledImage> = test_idx.iter().map(|&i| &dataset.images[i]).collect();
    let test_images: Vec<&GrayImage> = test.iter().map(|l| &l.image).collect();
    let out = ig.label(&test_images);
    let gold: Vec<bool> = test.iter().map(|l| l.label == 1).collect();
    let pred: Vec<bool> = out.labels.iter().map(|&l| l == 1).collect();
    Some((binary_f1(&gold, &pred).f1, n_patterns))
}

#[test]
fn scratch_pipeline_beats_random_guessing() {
    // Average over seeds: a single 60-image draw is noisy. Random
    // guessing on a ~1/3-positive task lands around F1 ≈ 0.4; the
    // pipeline should be clearly better on average.
    let mut total = 0.0;
    let mut runs = 0;
    for seed in 1..=3 {
        if let Some((f1, _)) = run_pipeline(DatasetKind::ProductScratch, seed, false) {
            total += f1;
            runs += 1;
        }
    }
    assert!(runs >= 2, "pipeline failed to run");
    let mean = total / runs as f64;
    assert!(mean > 0.55, "scratch weak-label mean F1 only {mean:.3}");
}

#[test]
fn bubble_pipeline_runs_and_scores() {
    let (f1, _) = run_pipeline(DatasetKind::ProductBubble, 2, false).expect("pipeline runs");
    assert!(f1 > 0.4, "bubble weak-label F1 only {f1}");
}

#[test]
fn augmented_pipeline_produces_more_patterns_and_still_works() {
    let (f1_aug, n_aug) =
        run_pipeline(DatasetKind::Ksdd, 3, true).expect("augmented pipeline runs");
    let (_, n_plain) = run_pipeline(DatasetKind::Ksdd, 3, false).expect("plain pipeline runs");
    assert!(n_aug > n_plain, "{n_aug} vs {n_plain} patterns");
    assert!(f1_aug > 0.3, "augmented KSDD F1 only {f1_aug}");
}

#[test]
fn multiclass_pipeline_on_neu() {
    let mut rng = StdRng::seed_from_u64(4);
    let dataset = inspector_gadget::synth::generate(&DatasetSpec::quick(DatasetKind::Neu, 4));
    let (dev_idx, test_idx) = split(&dataset, 3, &mut rng);
    let dev: Vec<&LabeledImage> = dev_idx.iter().map(|&i| &dataset.images[i]).collect();
    let crowd = CrowdWorkflow::full().run(&dev, &mut rng);
    let dev_images: Vec<&GrayImage> = dev.iter().map(|l| &l.image).collect();
    let dev_labels: Vec<usize> = dev.iter().map(|l| l.label).collect();
    let ig = InspectorGadget::train(
        Pattern::wrap_all(crowd.patterns, PatternSource::Crowd),
        &dev_images,
        &dev_labels,
        6,
        &PipelineConfig {
            tune: false,
            ..Default::default()
        },
        &mut rng,
    )
    .expect("multi-class pipeline trains");
    let test: Vec<&LabeledImage> = test_idx.iter().map(|&i| &dataset.images[i]).collect();
    let test_images: Vec<&GrayImage> = test.iter().map(|l| &l.image).collect();
    let out = ig.label(&test_images);
    let gold: Vec<usize> = test.iter().map(|l| l.label).collect();
    let f1 = macro_f1(6, &gold, &out.labels);
    // Six balanced classes: chance macro-F1 ≈ 0.17.
    assert!(f1 > 0.3, "NEU macro-F1 only {f1}");
}

#[test]
fn weak_label_output_is_internally_consistent() {
    let mut rng = StdRng::seed_from_u64(5);
    let dataset =
        inspector_gadget::synth::generate(&DatasetSpec::quick(DatasetKind::ProductScratch, 5));
    let dev: Vec<&LabeledImage> = dataset.images.iter().take(16).collect();
    let crowd = CrowdWorkflow::full().run(&dev, &mut rng);
    let dev_images: Vec<&GrayImage> = dev.iter().map(|l| &l.image).collect();
    let dev_labels: Vec<usize> = dev.iter().map(|l| l.label).collect();
    let ig = InspectorGadget::train(
        Pattern::wrap_all(crowd.patterns, PatternSource::Crowd),
        &dev_images,
        &dev_labels,
        2,
        &PipelineConfig {
            tune: false,
            ..Default::default()
        },
        &mut rng,
    )
    .expect("pipeline trains");
    let rest: Vec<&GrayImage> = dataset.images[16..].iter().map(|l| &l.image).collect();
    let out = ig.label(&rest);
    assert_eq!(out.labels.len(), rest.len());
    assert_eq!(out.probabilities.rows(), rest.len());
    assert_eq!(out.max_similarities.len(), rest.len());
    for r in 0..out.probabilities.rows() {
        let row_sum: f32 = out.probabilities.row(r).iter().sum();
        assert!((row_sum - 1.0).abs() < 1e-4, "row {r} sums to {row_sum}");
        // Hard label matches the probability argmax.
        let argmax = if out.probabilities.get(r, 1) >= 0.5 {
            1
        } else {
            0
        };
        assert_eq!(out.labels[r], argmax);
        // NCC similarities on non-negative images stay in [0, 1].
        assert!((0.0..=1.0 + 1e-4).contains(&out.max_similarities[r]));
    }
}
