//! CPU-scale stand-ins for the paper's CNNs and their preprocessing.
//!
//! The paper uses VGG-19, MobileNetV2 and ResNet50; this reproduction
//! builds architecture-faithful miniatures (plain conv stacks, depthwise-
//! separable blocks, identity-skip residual blocks) sized for CPU
//! training on downscaled images. The preprocessing mirrors Section 6.1:
//! long Product strips are split in half and stacked "to make them more
//! square-like, which is advantageous for CNNs".

use ig_imaging::resize::resize_bilinear;
use ig_imaging::stats::standardize;
use ig_imaging::GrayImage;
use ig_nn::conv::{
    Cnn, Conv2d, DenseLayer, DepthwiseConv2d, GlobalAvgPool, Layer, MaxPool2, ReluLayer, Residual,
    Tensor4,
};
use rand::Rng;

/// Which CNN architecture to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CnnArch {
    /// Plain conv stack (VGG-19 stand-in).
    MiniVgg,
    /// Depthwise-separable blocks (MobileNetV2 stand-in).
    MiniMobileNet,
    /// Identity-skip residual blocks (ResNet50 stand-in).
    MiniResNet,
}

impl CnnArch {
    /// Display name used in experiment tables.
    pub fn display_name(&self) -> &'static str {
        match self {
            CnnArch::MiniVgg => "VGG19",
            CnnArch::MiniMobileNet => "MobileNetV2",
            CnnArch::MiniResNet => "ResNet50",
        }
    }

    /// Build the network for `classes` outputs.
    pub fn build(&self, classes: usize, lr: f32, rng: &mut impl Rng) -> Cnn {
        match self {
            CnnArch::MiniVgg => mini_vgg(classes, lr, rng),
            CnnArch::MiniMobileNet => mini_mobilenet(classes, lr, rng),
            CnnArch::MiniResNet => mini_resnet(classes, lr, rng),
        }
    }

    /// Channel width of the feature vector before the dense head. Needed
    /// when swapping heads for fine-tuning.
    pub fn head_features(&self) -> usize {
        match self {
            CnnArch::MiniVgg => 32,
            CnnArch::MiniMobileNet => 32,
            CnnArch::MiniResNet => 16,
        }
    }
}

/// MiniVGG: three conv-relu-pool stages, widths 8→16→32, GAP head.
pub fn mini_vgg(classes: usize, lr: f32, rng: &mut impl Rng) -> Cnn {
    let layers: Vec<Box<dyn Layer>> = vec![
        Box::new(Conv2d::new(1, 8, 3, 1, 1, lr, rng)),
        Box::new(ReluLayer::new()),
        Box::new(MaxPool2::new()),
        Box::new(Conv2d::new(8, 16, 3, 1, 1, lr, rng)),
        Box::new(ReluLayer::new()),
        Box::new(MaxPool2::new()),
        Box::new(Conv2d::new(16, 32, 3, 1, 1, lr, rng)),
        Box::new(ReluLayer::new()),
        Box::new(GlobalAvgPool::new()),
        Box::new(DenseLayer::new(32, classes, lr, rng)),
    ];
    Cnn::new(layers, classes)
}

/// MiniMobileNet: an initial conv then two depthwise-separable blocks.
pub fn mini_mobilenet(classes: usize, lr: f32, rng: &mut impl Rng) -> Cnn {
    let layers: Vec<Box<dyn Layer>> = vec![
        Box::new(Conv2d::new(1, 8, 3, 1, 1, lr, rng)),
        Box::new(ReluLayer::new()),
        Box::new(MaxPool2::new()),
        // Depthwise separable block 1: dw 3x3 + pw 1x1 (8 → 16).
        Box::new(DepthwiseConv2d::new(8, 3, 1, 1, lr, rng)),
        Box::new(ReluLayer::new()),
        Box::new(Conv2d::new(8, 16, 1, 1, 0, lr, rng)),
        Box::new(ReluLayer::new()),
        Box::new(MaxPool2::new()),
        // Block 2 (16 → 32).
        Box::new(DepthwiseConv2d::new(16, 3, 1, 1, lr, rng)),
        Box::new(ReluLayer::new()),
        Box::new(Conv2d::new(16, 32, 1, 1, 0, lr, rng)),
        Box::new(ReluLayer::new()),
        Box::new(GlobalAvgPool::new()),
        Box::new(DenseLayer::new(32, classes, lr, rng)),
    ];
    Cnn::new(layers, classes)
}

/// MiniResNet: conv stem then two identity-skip residual blocks.
pub fn mini_resnet(classes: usize, lr: f32, rng: &mut impl Rng) -> Cnn {
    fn block(c: usize, lr: f32, rng: &mut impl Rng) -> Box<dyn Layer> {
        Box::new(Residual::new(vec![
            Box::new(Conv2d::new(c, c, 3, 1, 1, lr, rng)),
            Box::new(ReluLayer::new()),
            Box::new(Conv2d::new(c, c, 3, 1, 1, lr, rng)),
        ]))
    }
    let layers: Vec<Box<dyn Layer>> = vec![
        Box::new(Conv2d::new(1, 8, 3, 1, 1, lr, rng)),
        Box::new(ReluLayer::new()),
        Box::new(MaxPool2::new()),
        block(8, lr, rng),
        Box::new(ReluLayer::new()),
        Box::new(Conv2d::new(8, 16, 3, 1, 1, lr, rng)),
        Box::new(ReluLayer::new()),
        Box::new(MaxPool2::new()),
        block(16, lr, rng),
        Box::new(ReluLayer::new()),
        Box::new(GlobalAvgPool::new()),
        Box::new(DenseLayer::new(16, classes, lr, rng)),
    ];
    Cnn::new(layers, classes)
}

/// Preprocess images into an NCHW batch: split-and-stack extreme aspect
/// ratios (Section 6.1), resize to `side x side`, standardize per image.
pub fn images_to_tensor(images: &[&GrayImage], side: usize) -> Tensor4 {
    let n = images.len();
    let mut out = Tensor4::zeros(n, 1, side, side);
    for (i, img) in images.iter().enumerate() {
        let (w, h) = img.dims();
        let squared = if w > 2 * h || h > 2 * w {
            img.split_and_stack()
        } else {
            (*img).clone()
        };
        // ig-lint: allow(panic) -- side is a positive model constant and
        // split_and_stack never produces an empty image from a real input
        let resized = resize_bilinear(&squared, side, side).expect("cnn preprocessing resize");
        let standardized = standardize(&resized);
        let base = i * side * side;
        out.as_mut_slice()[base..base + side * side].copy_from_slice(standardized.pixels());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn all_architectures_forward_correct_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let x = Tensor4::zeros(2, 1, 16, 16);
        for arch in [
            CnnArch::MiniVgg,
            CnnArch::MiniMobileNet,
            CnnArch::MiniResNet,
        ] {
            let mut cnn = arch.build(3, 0.01, &mut rng);
            let logits = cnn.forward_logits(&x, false);
            assert_eq!(logits.shape(), (2, 3), "{arch:?}");
        }
    }

    #[test]
    fn architectures_train_a_step_without_panic() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = Tensor4::from_vec(
            2,
            1,
            16,
            16,
            (0..512).map(|i| (i % 7) as f32 * 0.1).collect(),
        );
        for arch in [
            CnnArch::MiniVgg,
            CnnArch::MiniMobileNet,
            CnnArch::MiniResNet,
        ] {
            let mut cnn = arch.build(2, 0.01, &mut rng);
            let loss1 = cnn.train_batch(&x, &[0, 1]);
            let loss2 = cnn.train_batch(&x, &[0, 1]);
            assert!(loss1.is_finite() && loss2.is_finite(), "{arch:?}");
        }
    }

    #[test]
    fn tensor_preprocessing_shapes_and_standardization() {
        let strip = GrayImage::filled(100, 20, 0.5); // extreme aspect → split
        let square = GrayImage::filled(30, 30, 0.5);
        let t = images_to_tensor(&[&strip, &square], 16);
        assert_eq!((t.n, t.c, t.h, t.w), (2, 1, 16, 16));
        // Constant images standardize to zero.
        assert!(t.as_slice().iter().all(|&v| v.abs() < 1e-5));
    }

    #[test]
    fn preprocessing_standardizes_nonconstant_images() {
        let img = GrayImage::from_fn(24, 24, |x, y| ((x + y) % 5) as f32 * 0.2);
        let t = images_to_tensor(&[&img], 16);
        let mean: f32 = t.as_slice().iter().sum::<f32>() / t.as_slice().len() as f32;
        assert!(mean.abs() < 0.05, "standardized mean {mean}");
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(CnnArch::MiniVgg.display_name(), "VGG19");
        assert_eq!(CnnArch::MiniMobileNet.display_name(), "MobileNetV2");
        assert_eq!(CnnArch::MiniResNet.display_name(), "ResNet50");
    }
}
