//! Out-of-core sharded feature computation: the `ooc` tier's central
//! claim is that streaming the dev set through [`ComputeFeatureShard`]
//! in budget-sized slices is *bit-identical* to the monolithic
//! [`ig_core::ComputeFeatures`] run — under any shard count and any
//! fault plan — while each shard memoizes and crash-resumes
//! independently through the durable store.

use std::sync::Arc;

use ig_core::{
    ComputeFeatureShard, DevSet, FaultPlan, FeatureGenerator, HealthReport, InspectorGadget,
    Pattern, PipelineConfig, RunContext, ScalePlan, ShardPlan,
};
use ig_imaging::prepared::PreparedImage;
use ig_imaging::GrayImage;
use ig_nn::Matrix;
use ig_runtime::{infallible, DiskStore, Fingerprintable};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A miniature task: images with or without a dark square, and a pattern
/// bank containing a dark-square crop.
fn make_task(n: usize, seed: u64) -> (Vec<Pattern>, Vec<GrayImage>, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut images = Vec::new();
    let mut labels = Vec::new();
    for i in 0..n {
        let defect = i % 2 == 1;
        let mut img = GrayImage::from_fn(48, 32, |x, y| {
            0.65 + 0.05 * ((x as f32 * 0.4).sin() * (y as f32 * 0.3).cos())
        });
        if defect {
            let x = rng.gen_range(2..38);
            let y = rng.gen_range(2..22);
            img.fill_rect(x, y, 7, 7, 0.15);
        }
        images.push(img);
        labels.push(usize::from(defect));
    }
    let mut pat = GrayImage::filled(7, 7, 0.15);
    pat.fill_rect(0, 0, 7, 1, 0.6);
    (vec![Pattern::crowd(pat)], images, labels)
}

fn build_generator(patterns: Vec<Pattern>, health: &HealthReport) -> FeatureGenerator {
    match FeatureGenerator::new_with_health(patterns, None, health) {
        Ok(g) => g,
        Err(e) => panic!("generator build failed: {e}"),
    }
}

/// Stream `prepared` through [`ComputeFeatureShard`] under `ctx` and
/// concatenate the row blocks — the same loop `train_in` runs in ooc
/// mode, exposed here so tests can drive arbitrary shard counts.
fn sharded_matrix(
    ctx: &RunContext,
    generator: &FeatureGenerator,
    prepared: &[PreparedImage],
    count: usize,
    plan: Option<&FaultPlan>,
    health: &HealthReport,
) -> Matrix {
    let bank = generator.patterns().fingerprint();
    let shard_plan = ShardPlan::with_count(prepared.len(), count);
    let cols = generator.num_features();
    let mut data = Vec::new();
    for shard in shard_plan.shards() {
        let rows = infallible(ctx.run(&mut ComputeFeatureShard::new(
            bank,
            generator,
            &prepared[shard.start..shard.end],
            shard,
            plan,
            health,
        )));
        data.extend_from_slice(rows.as_slice());
    }
    Matrix::from_vec(prepared.len(), cols, data)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any shard count (including 1 and N), with or without an active
    /// feature-corruption plan, reproduces the monolithic matrix
    /// bit-for-bit: the global row offset keeps every injection site at
    /// the same (image, pattern) coordinate regardless of sharding.
    #[test]
    fn sharded_equals_monolithic_bit_identical(
        n in 3usize..10,
        count in 1usize..10,
        seed in any::<u64>(),
        faulted in any::<bool>(),
    ) {
        let (patterns, images, _) = make_task(n, seed);
        let health = HealthReport::new();
        let generator = build_generator(patterns, &health);
        let refs: Vec<&GrayImage> = images.iter().collect();
        let prepared = generator.prepare_images(&refs);
        let plan = FaultPlan {
            seed: seed ^ 0x5ad,
            nan_feature_rate: 0.25,
            inf_feature_rate: 0.15,
            ..FaultPlan::default()
        };
        let plan = faulted.then_some(&plan);
        let whole = generator.feature_matrix_prepared_with_health(&prepared, plan, &health);
        let ctx = RunContext::new(0);
        let streamed = sharded_matrix(&ctx, &generator, &prepared, count, plan, &health);
        prop_assert_eq!(streamed.as_slice(), whole.as_slice());
        prop_assert_eq!((streamed.rows(), streamed.cols()), (whole.rows(), whole.cols()));
    }
}

/// Training under the `ooc` tier (budget far below the prepared set)
/// produces the same dev features, labels, and probabilities as
/// monolithic prepared training.
#[test]
fn ooc_training_matches_monolithic_training() {
    let (patterns, images, labels) = make_task(40, 7);
    let refs: Vec<&GrayImage> = images.iter().collect();
    let config = PipelineConfig {
        tune: false,
        ..Default::default()
    };

    let mut rng_a = StdRng::seed_from_u64(9);
    let mono = InspectorGadget::train_prepared(
        patterns.clone(),
        &prepare(&patterns, &refs),
        &labels,
        2,
        &config,
        &mut rng_a,
        None,
    )
    .expect("monolithic training");

    // 64 KiB is far below the prepared set's footprint, so the ooc
    // context genuinely streams in multiple shards.
    let scale = ScalePlan::ooc().with_memory_budget(64 << 10);
    let ctx = RunContext::new(0).with_scale(scale);
    let mut rng_b = StdRng::seed_from_u64(9);
    let prepared = prepare(&patterns, &refs);
    let ooc = InspectorGadget::train_in(
        &ctx,
        patterns,
        DevSet::Prepared(&prepared),
        &labels,
        2,
        &config,
        &mut rng_b,
    )
    .expect("ooc training");

    assert_eq!(
        mono.dev_features().as_slice(),
        ooc.dev_features().as_slice(),
        "sharded dev matrix must be bit-identical"
    );
    let out_a = mono.label_prepared(&prepared);
    let out_b = ooc.label_prepared(&prepared);
    assert_eq!(out_a.labels, out_b.labels);
    assert_eq!(
        out_a.probabilities.as_slice(),
        out_b.probabilities.as_slice()
    );
}

/// Prepare `refs` under a throwaway generator built from `patterns` —
/// fresh caches each time, so shard budgeting sees a pristine set.
fn prepare(patterns: &[Pattern], refs: &[&GrayImage]) -> Vec<PreparedImage> {
    let health = HealthReport::new();
    build_generator(patterns.to_vec(), &health).prepare_images(refs)
}

/// A sweep killed mid-stream resumes from its completed shards: the
/// artifacts it persisted are loaded back instead of recomputed, and
/// only the missing shards run.
#[test]
fn crash_resume_reuses_completed_shard_artifacts() {
    let (patterns, images, labels) = make_task(24, 11);
    let refs: Vec<&GrayImage> = images.iter().collect();
    let config = PipelineConfig {
        tune: false,
        ..Default::default()
    };
    let dir = std::env::temp_dir().join(format!("ig-shard-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let scale = ScalePlan::ooc().with_memory_budget(64 << 10);

    // First process: compute only the first two shards, then "crash".
    let health = HealthReport::new();
    let generator = build_generator(patterns.clone(), &health);
    let prepared = prepare(&patterns, &refs);
    let total_bytes: u64 = prepared.iter().map(|i| i.approx_bytes() as u64).sum();
    let shard_plan = ShardPlan::for_budget(prepared.len(), total_bytes, scale.memory_budget_bytes);
    assert!(shard_plan.count > 2, "fixture must yield several shards");
    let disk_a = Arc::new(DiskStore::open(&dir).expect("open store"));
    let ctx_a = RunContext::new(0)
        .with_scale(scale)
        .with_disk(disk_a.clone());
    // The same key `train_in` will derive, so the resumed run below
    // finds these artifacts.
    let bank = ig_core::stages::bank_fingerprint(&patterns, &config, &ctx_a);
    for shard in &shard_plan.shards()[..2] {
        infallible(ctx_a.run(&mut ComputeFeatureShard::new(
            bank,
            &generator,
            &prepared[shard.start..shard.end],
            *shard,
            None,
            &health,
        )));
    }
    assert_eq!(disk_a.stats().writes, 2, "two shard artifacts persisted");
    drop(ctx_a);

    // Second process: full ooc training over the same store root.
    let disk_b = Arc::new(DiskStore::open(&dir).expect("reopen store"));
    let ctx_b = RunContext::new(0)
        .with_scale(scale)
        .with_disk(disk_b.clone());
    let prepared_b = prepare(&patterns, &refs);
    let mut rng = StdRng::seed_from_u64(13);
    let ooc = InspectorGadget::train_in(
        &ctx_b,
        patterns.clone(),
        DevSet::Prepared(&prepared_b),
        &labels,
        2,
        &config,
        &mut rng,
    )
    .expect("resumed training");

    let stats = disk_b.stats();
    assert_eq!(
        stats.hits, 2,
        "completed shards load instead of recomputing"
    );
    assert_eq!(
        stats.writes,
        (shard_plan.count - 2) as u64,
        "only the missing shards are computed and persisted"
    );

    // And the resumed result is still bit-identical to monolithic.
    let mut rng_mono = StdRng::seed_from_u64(13);
    let mono = InspectorGadget::train_prepared(
        patterns,
        &prepared_b,
        &labels,
        2,
        &config,
        &mut rng_mono,
        None,
    )
    .expect("monolithic training");
    assert_eq!(
        mono.dev_features().as_slice(),
        ooc.dev_features().as_slice()
    );

    let _ = std::fs::remove_dir_all(&dir);
}
