//! # ig-augment
//!
//! Pattern augmentation (paper Section 4): expands the crowd-sourced
//! pattern set when defects are rare.
//!
//! Two complementary methods, exactly as in the paper:
//!
//! * **Policy-based** ([`policy`]) — deterministic transforms (rotate,
//!   stretch, shear, brightness, invert, ...) with searched magnitudes,
//!   good for "specific variations of defects that can be quite different"
//!   (e.g. stretching a line-shaped crack);
//! * **GAN-based** ([`gan`]) — a Relativistic GAN with spectral
//!   normalization trained on the patterns themselves, good for "random
//!   variations of existing defects that do not deviate significantly".
//!
//! Both operate on *patterns*, not whole images — the paper's key
//! efficiency argument: "it is sometimes infeasible to train a GAN at all
//! [on high-resolution images]. By only focusing on augmenting small
//! patterns, it becomes practical to apply sophisticated augmentation
//! techniques."
//!
//! [`augmenter`] combines both into the Table 4 ablation arms
//! (none / policy / GAN / both).
//!
//! ## Substitution note
//!
//! The paper trains a convolutional RGAN on 100x100 crops on a Titan RTX.
//! Here the generator and discriminator are MLPs over patterns resized to
//! a small square (default 16x16) so training is CPU-feasible; the
//! relativistic loss, spectral normalization, and the
//! resize-to-square/back workflow are preserved (see DESIGN.md).

#![warn(missing_docs)]

pub mod augmenter;
pub mod gan;
pub mod policy;

pub use augmenter::{augment, augment_with_health, AugmentMethod};
pub use gan::{Rgan, RganConfig};
pub use policy::{search_policies, Policy, PolicyOp, PolicySearchConfig};
