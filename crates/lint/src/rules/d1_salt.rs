//! D1: seed/salt determinism — every random stream a stage draws must be
//! a *named, distinct* derivation of the run seed.
//!
//! The runtime's discipline is `ctx.rng(salt)` = `StdRng::seed_from_u64
//! (seed ^ salt)`: one run seed, many decorrelated streams, each
//! addressable by its salt. Two stages that pass the **same** salt draw
//! bit-identical streams — the augmentation "randomly" crops exactly
//! where the splitter "randomly" sampled — and nothing downstream can
//! see it: the fingerprints differ, memoization is correct, the labels
//! are just silently correlated. That bug class is invisible to every
//! other rule, so this one resolves it statically:
//!
//! 1. **Constant salts** — the argument of every `ctx.rng(..)` call in
//!    library code must resolve at lint time: an integer literal or a
//!    `const` known workspace-wide. A computed salt cannot be checked
//!    for collisions (and cannot be grepped for during an incident).
//! 2. **Cross-stage collisions** — for every `Stage::run` entry point,
//!    the call graph gives the set of rng sites it reaches; two distinct
//!    sites with the same salt attributed to different stages fire at
//!    both sites. (One shared helper reached by several stages is the
//!    intended pattern and stays silent.)
//! 3. **Raw seed reuse** — `seed_from_u64(seed)` taking the run seed
//!    directly (not `seed ^ salt`) recreates stream zero wherever it
//!    appears; derive through `ctx.rng(SALT)` instead.
//!
//! The runtime persistence modules are exempt — `RunContext::rng` is
//! where the discipline is *implemented*.

use std::collections::BTreeMap;

use crate::ast::{walk_block, Expr, ExprKind};
use crate::callgraph::CallGraph;
use crate::context::{FileClass, FileContext, PERSISTENCE_FILES};
use crate::lexer::TokenKind;
use crate::report::Diagnostic;
use crate::symbols::Symbols;

/// Parse a Rust integer literal token (underscores, 0x/0o/0b prefixes,
/// type suffixes) to its value.
fn parse_int(text: &str) -> Option<u64> {
    let t = text.replace('_', "");
    let (radix, digits) = match t.as_bytes() {
        [b'0', b'x' | b'X', rest @ ..] => (16, rest),
        [b'0', b'o' | b'O', rest @ ..] => (8, rest),
        [b'0', b'b' | b'B', rest @ ..] => (2, rest),
        rest => (10, rest),
    };
    let digits: String = digits
        .iter()
        .map(|&b| b as char)
        .take_while(|c| c.is_digit(radix))
        .collect();
    u64::from_str_radix(&digits, radix).ok()
}

/// Workspace-wide table of integer `const` items, read off the token
/// stream (items are opaque spans to the AST). A name bound to two
/// different values maps to `None` — ambiguous, treated as unresolved.
fn const_table(ctxs: &[FileContext]) -> BTreeMap<String, Option<u64>> {
    let mut out: BTreeMap<String, Option<u64>> = BTreeMap::new();
    for ctx in ctxs.iter().filter(|c| c.class == FileClass::Library) {
        let toks = ctx.tokens;
        for i in 0..toks.len().saturating_sub(4) {
            if !toks[i].is_ident("const")
                || toks[i + 1].kind != TokenKind::Ident
                || !toks[i + 2].is_punct(":")
            {
                continue;
            }
            // `const NAME: <type> = <int literal>;` — find the `=` at
            // bracket depth zero within the type, then the literal.
            let mut depth = 0i32;
            for j in i + 3..toks.len().min(i + 24) {
                let t = &toks[j];
                if t.is_punct("<") || t.is_punct("(") || t.is_punct("[") {
                    depth += 1;
                } else if t.is_punct(">") || t.is_punct(")") || t.is_punct("]") {
                    depth -= 1;
                } else if t.is_punct(";") && depth == 0 {
                    break;
                } else if t.is_punct("=") && depth == 0 {
                    let value = toks.get(j + 1).and_then(|lit| {
                        (lit.kind == TokenKind::Int
                            && toks.get(j + 2).is_some_and(|s| s.is_punct(";")))
                        .then(|| parse_int(&lit.text))
                        .flatten()
                    });
                    out.entry(toks[i + 1].text.clone())
                        .and_modify(|v| {
                            if *v != value {
                                *v = None;
                            }
                        })
                        .or_insert(value);
                    break;
                }
            }
        }
    }
    out
}

/// One `ctx.rng(..)` call site.
struct RngSite {
    file: usize,
    tok: usize,
    /// Symbol index of the enclosing fn.
    sym: usize,
    salt: Option<u64>,
}

fn diag(ctx: &FileContext, tok: usize, message: String) -> Diagnostic {
    let (line, col) = ctx.tokens.get(tok).map_or((0, 1), |t| (t.line, t.col));
    Diagnostic {
        rule: "salt-determinism".to_string(),
        path: ctx.path.to_string(),
        line,
        col,
        message,
    }
}

/// Is this expression the *run* seed itself: a bare `seed` binding,
/// `self.seed`/`ctx.seed`, or a `.seed()` accessor (possibly behind
/// `&`/`*`)? A seed field of some other struct (`spec.seed`) is that
/// type's own input contract, not the run-context salting discipline,
/// and stays out of scope.
fn is_raw_seed(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Path(segs) => matches!(segs.as_slice(), [only] if only == "seed"),
        ExprKind::Field { base, name } => {
            name == "seed"
                && matches!(
                    &base.kind,
                    ExprKind::Path(b) if matches!(b.as_slice(), [r] if r == "self" || r == "ctx")
                )
        }
        ExprKind::MethodCall { method, args, .. } => method == "seed" && args.is_empty(),
        ExprKind::Unary(inner) => is_raw_seed(inner),
        _ => false,
    }
}

pub fn check(ctxs: &[FileContext], sy: &Symbols, graph: &CallGraph, out: &mut Vec<Diagnostic>) {
    let consts = const_table(ctxs);
    let mut sites: Vec<RngSite> = Vec::new();
    for (si, s) in sy.fns.iter().enumerate() {
        let ctx = &ctxs[s.file];
        if ctx.class != FileClass::Library || s.in_test || PERSISTENCE_FILES.contains(&ctx.path) {
            continue;
        }
        let f = &ctx.ast.fns[s.fn_idx];
        walk_block(&f.body, &mut |e: &Expr| {
            match &e.kind {
                ExprKind::MethodCall {
                    method,
                    method_tok,
                    args,
                    ..
                } if method == "rng" && args.len() == 1 => {
                    let Some(arg) = args.first() else { return };
                    if !ctx.governed(*method_tok) {
                        return;
                    }
                    let salt = match &arg.kind {
                        ExprKind::Lit {
                            kind: TokenKind::Int,
                            tok,
                        } => ctx.tokens.get(*tok).and_then(|t| parse_int(&t.text)),
                        ExprKind::Path(segs) => segs
                            .last()
                            .and_then(|name| consts.get(name).copied().flatten()),
                        _ => None,
                    };
                    if salt.is_none() {
                        out.push(diag(
                            ctx,
                            *method_tok,
                            "salt passed to `rng(..)` does not resolve to a compile-time \
                             constant — salts must be literals or workspace `const`s so \
                             cross-stage collisions are checkable (and greppable); hoist the \
                             value into a named `const <STAGE>_SALT: u64`"
                                .to_string(),
                        ));
                    }
                    sites.push(RngSite {
                        file: s.file,
                        tok: *method_tok,
                        sym: si,
                        salt,
                    });
                }
                // `seed_from_u64(seed)` — raw seed reuse. `seed ^ salt`
                // and other derived expressions are the implementation
                // pattern and stay silent.
                ExprKind::Call { callee, args } => {
                    let [arg] = args.as_slice() else { return };
                    let ExprKind::Path(segs) = &callee.kind else {
                        return;
                    };
                    if segs.last().is_some_and(|m| m == "seed_from_u64") && is_raw_seed(arg) {
                        let tok = callee.span.hi.saturating_sub(1);
                        if ctx.governed(tok) {
                            out.push(diag(
                                ctx,
                                tok,
                                "`seed_from_u64` is fed the run seed directly — this recreates \
                                 stream zero and bypasses the salting discipline; draw a \
                                 decorrelated stream via `ctx.rng(<SALT>)` instead"
                                    .to_string(),
                            ));
                        }
                    }
                }
                _ => {}
            }
        });
    }
    // Stage attribution: which `Stage::run` entries reach each site.
    let entries: Vec<usize> = sy
        .fns
        .iter()
        .enumerate()
        .filter(|(_, s)| {
            s.trait_name.as_deref() == Some("Stage")
                && s.name == "run"
                && !s.in_test
                && ctxs[s.file].class == FileClass::Library
        })
        .map(|(i, _)| i)
        .collect();
    if entries.is_empty() || sites.is_empty() {
        return;
    }
    let reach: Vec<Vec<bool>> = entries
        .iter()
        .map(|&e| graph.reachable(&[graph.node_of_sym[e]]))
        .collect();
    let stages_of = |site: &RngSite| -> Vec<usize> {
        let node = graph.node_of_sym[site.sym];
        entries
            .iter()
            .enumerate()
            .filter(|(ei, _)| reach[*ei][node])
            .map(|(_, &e)| e)
            .collect()
    };
    // Group attributed sites by salt; two *distinct sites* whose stage
    // sets differ on some pair collide.
    let mut by_salt: BTreeMap<u64, Vec<(usize, Vec<usize>)>> = BTreeMap::new();
    for (i, site) in sites.iter().enumerate() {
        let Some(salt) = site.salt else { continue };
        let stages = stages_of(site);
        if !stages.is_empty() {
            by_salt.entry(salt).or_default().push((i, stages));
        }
    }
    for (salt, group) in &by_salt {
        if group.len() < 2 {
            continue;
        }
        for (ai, (i, stages_a)) in group.iter().enumerate() {
            let colliding = group.iter().enumerate().any(|(bi, (_, stages_b))| {
                ai != bi && stages_a.iter().any(|a| stages_b.iter().any(|b| a != b))
            });
            if !colliding {
                continue;
            }
            let site = &sites[*i];
            let ctx = &ctxs[site.file];
            let stage_names: Vec<&str> = group
                .iter()
                .flat_map(|(_, ss)| ss.iter().map(|&s| sy.fns[s].path.as_str()))
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect();
            out.push(diag(
                ctx,
                site.tok,
                format!(
                    "salt {salt:#x} is used by multiple stages ({}) — `seed ^ salt` makes their \
                 random streams bit-identical, silently correlating randomness across stages \
                 (memoization cannot catch this: the fingerprints still differ); give each \
                 stage its own salt const",
                    stage_names.join(", "),
                ),
            ));
        }
    }
}
