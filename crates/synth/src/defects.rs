//! Defect painters. Each draws one defect onto an image and returns its
//! gold bounding box.
//!
//! Contrast is signed: negative paints darker than the surface, positive
//! brighter. The generators pass a small magnitude for `difficult` defects
//! — the ones Table 6 calls "difficult to humans".

use ig_imaging::filter::gaussian_blur;
use ig_imaging::{BBox, GrayImage};
use rand::Rng;

fn apply_stamp(img: &mut GrayImage, stamp: &GrayImage, x0: isize, y0: isize) {
    img.blend_add(stamp, x0, y0, 1.0);
    img.clamp(0.0, 1.0);
}

/// Bounding box of the non-zero region of a stamp placed at `(x0, y0)`,
/// clipped to the image.
fn stamp_bbox(stamp: &GrayImage, x0: isize, y0: isize, img: &GrayImage) -> BBox {
    let mut min_x = stamp.width();
    let mut min_y = stamp.height();
    let mut max_x = 0usize;
    let mut max_y = 0usize;
    for y in 0..stamp.height() {
        for x in 0..stamp.width() {
            if stamp.get(x, y).abs() > 1e-4 {
                min_x = min_x.min(x);
                min_y = min_y.min(y);
                max_x = max_x.max(x);
                max_y = max_y.max(y);
            }
        }
    }
    if min_x > max_x {
        return BBox::new(0.0, 0.0, 0.0, 0.0);
    }
    let raw = BBox::new(
        (x0 + min_x as isize) as f32,
        (y0 + min_y as isize) as f32,
        (max_x - min_x + 1) as f32,
        (max_y - min_y + 1) as f32,
    );
    raw.clip(img.width(), img.height())
        .unwrap_or_else(|| BBox::new(0.0, 0.0, 0.0, 0.0))
}

/// KSDD-style crack: a jagged random walk with occasional branches,
/// blurred slightly so the edges read as material damage. Shape varies
/// heavily between instances — the property that makes policy-based
/// augmentation effective on this dataset (Section 6.4).
pub fn paint_crack(img: &mut GrayImage, rng: &mut impl Rng, contrast: f32) -> BBox {
    let (w, h) = img.dims();
    let steps = rng.gen_range(h / 4..h / 2).max(6);
    let size = (w.min(h)).max(16);
    let mut stamp = GrayImage::new(size.min(w), steps + 4);
    let mut x = rng.gen_range(stamp.width() as f32 * 0.2..stamp.width() as f32 * 0.8);
    let mut y = 1.0f32;
    let drift = rng.gen_range(-0.5..0.5f32);
    let thickness = rng.gen_range(1.0..2.0f32);
    while (y as usize) < stamp.height() - 2 {
        let nx = (x + drift + rng.gen_range(-1.4..1.4f32)).clamp(1.0, stamp.width() as f32 - 2.0);
        let ny = y + rng.gen_range(0.6..1.8f32);
        stamp.draw_line(x, y, nx, ny, thickness, contrast);
        // Occasional short side branch.
        if rng.gen_bool(0.08) {
            let bx = (nx + rng.gen_range(-4.0..4.0f32)).clamp(1.0, stamp.width() as f32 - 2.0);
            stamp.draw_line(
                nx,
                ny,
                bx,
                ny + rng.gen_range(1.0..3.0),
                1.0,
                contrast * 0.8,
            );
        }
        x = nx;
        y = ny;
    }
    let stamp = gaussian_blur(&stamp, 0.5);
    let x0 = rng.gen_range(0..w.saturating_sub(stamp.width()).max(1)) as isize;
    let y0 = rng.gen_range(0..h.saturating_sub(stamp.height()).max(1)) as isize;
    let bbox = stamp_bbox(&stamp, x0, y0, img);
    apply_stamp(img, &stamp, x0, y0);
    bbox
}

/// Product scratch: a long thin nearly-straight line with a shallow random
/// angle, anywhere on the strip. Length and direction vary (Section 6.1).
pub fn paint_scratch(img: &mut GrayImage, rng: &mut impl Rng, contrast: f32) -> BBox {
    let (w, h) = img.dims();
    let len = rng.gen_range(w as f32 * 0.15..w as f32 * 0.45);
    let angle = rng.gen_range(-0.5..0.5f32)
        + if rng.gen_bool(0.5) {
            0.0
        } else {
            std::f32::consts::PI
        };
    let sw = (len * angle.cos().abs() + 6.0).ceil() as usize;
    let sh = (len * angle.sin().abs() + 6.0).ceil() as usize;
    let mut stamp = GrayImage::new(sw.clamp(6, w), sh.clamp(6, h));
    let cx = stamp.width() as f32 * 0.5;
    let cy = stamp.height() as f32 * 0.5;
    let dx = angle.cos() * len * 0.5;
    let dy = angle.sin() * len * 0.5;
    let thickness = rng.gen_range(1.0..1.8f32);
    // Slight curvature via a midpoint offset.
    let mx = cx + rng.gen_range(-2.0..2.0f32);
    let my = cy + rng.gen_range(-1.5..1.5f32);
    stamp.draw_line(cx - dx, cy - dy, mx, my, thickness, contrast);
    stamp.draw_line(mx, my, cx + dx, cy + dy, thickness, contrast);
    let stamp = gaussian_blur(&stamp, 0.4);
    let x0 = rng.gen_range(0..w.saturating_sub(stamp.width()).max(1)) as isize;
    let y0 = rng.gen_range(0..h.saturating_sub(stamp.height()).max(1)) as isize;
    let bbox = stamp_bbox(&stamp, x0, y0, img);
    apply_stamp(img, &stamp, x0, y0);
    bbox
}

/// Product bubble: a small ring-like blob — "more uniform, but have small
/// sizes" (Section 6.1) — with mild real-world variation: radius spread,
/// slight ellipticity and a variable rim/fill balance so that one crowd
/// pattern does not trivially cover every instance.
pub fn paint_bubble(img: &mut GrayImage, rng: &mut impl Rng, contrast: f32) -> BBox {
    let (w, h) = img.dims();
    let radius = rng.gen_range(1.5..4.5f32);
    let ecc = rng.gen_range(0.75..1.3f32); // x/y radius ratio
    let rim_sharp = rng.gen_range(0.4..1.4f32);
    let fill_level = rng.gen_range(0.15..0.55f32);
    let size = (radius * 2.0 * ecc.max(1.0) + 4.0).ceil() as usize;
    let mut stamp = GrayImage::new(size.min(w), size.min(h));
    let c = (size as f32 - 1.0) * 0.5;
    for y in 0..stamp.height() {
        for x in 0..stamp.width() {
            let dx = (x as f32 - c) / ecc;
            let dy = y as f32 - c;
            let d = (dx * dx + dy * dy).sqrt();
            // Ring profile: strongest response at the rim.
            let ring = (-(d - radius).powi(2) / rim_sharp).exp();
            let fill = if d < radius { fill_level } else { 0.0 };
            stamp.set(x, y, contrast * (ring * 0.8 + fill));
        }
    }
    let x0 = rng.gen_range(0..w.saturating_sub(stamp.width()).max(1)) as isize;
    let y0 = rng.gen_range(0..h.saturating_sub(stamp.height()).max(1)) as isize;
    let bbox = stamp_bbox(&stamp, x0, y0, img);
    apply_stamp(img, &stamp, x0, y0);
    bbox
}

/// The fixed horizontal anchor positions (as width fractions) where
/// stampings may appear — the property that lets position-sensitive CNNs
/// shine on this dataset (Section 6.2).
pub const STAMPING_SLOTS: [f32; 4] = [0.15, 0.40, 0.65, 0.90];

/// Product stamping: a small mark at one of [`STAMPING_SLOTS`], vertically
/// centred with small jitter. Three mark styles (hollow square, cross,
/// double bar) occur in the wild, with partial fading — a fixed *position*
/// but variable appearance, which is exactly the regime where
/// position-sensitive CNNs beat template matching (Section 6.2).
pub fn paint_stamping(img: &mut GrayImage, rng: &mut impl Rng, contrast: f32) -> BBox {
    let (w, h) = img.dims();
    let slot = STAMPING_SLOTS[rng.gen_range(0..STAMPING_SLOTS.len())];
    let side = rng.gen_range(5..9usize).min(w).min(h);
    let style = rng.gen_range(0..3usize);
    let fade = rng.gen_range(0.6..1.0f32);
    let mut stamp = GrayImage::new(side + 2, side + 2);
    for y in 1..=side {
        for x in 1..=side {
            let cx = (x as f32 - side as f32 / 2.0).abs();
            let cy = (y as f32 - side as f32 / 2.0).abs();
            let on = match style {
                // Hollow square with a centre dot.
                0 => x == 1 || y == 1 || x == side || y == side || (cx < 1.5 && cy < 1.5),
                // Cross.
                1 => cx < 1.2 || cy < 1.2,
                // Two vertical bars.
                _ => x == 1 || x == 2 || x == side || x == side - 1,
            };
            if on {
                stamp.set(x, y, contrast * fade);
            }
        }
    }
    let stamp = gaussian_blur(&stamp, 0.3);
    let x_center = slot * w as f32;
    let x0 = (x_center - stamp.width() as f32 / 2.0 + rng.gen_range(-1.5..1.5f32)) as isize;
    let y0 = ((h as f32 - stamp.height() as f32) / 2.0 + rng.gen_range(-2.0..2.0f32)) as isize;
    let x0 = x0.clamp(0, (w.saturating_sub(stamp.width())) as isize);
    let y0 = y0.clamp(0, (h.saturating_sub(stamp.height())) as isize);
    let bbox = stamp_bbox(&stamp, x0, y0, img);
    apply_stamp(img, &stamp, x0, y0);
    bbox
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::surface;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_img() -> GrayImage {
        surface::strip(1, 160, 40)
    }

    #[test]
    fn painters_return_nonempty_boxes_inside_image() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10 {
            for painter in [
                paint_crack as fn(&mut GrayImage, &mut StdRng, f32) -> BBox,
                paint_scratch,
                paint_bubble,
                paint_stamping,
            ] {
                let mut img = test_img();
                let bbox = painter(&mut img, &mut rng, -0.35);
                assert!(bbox.area() > 0.0, "empty defect box");
                assert!(bbox.x >= 0.0 && bbox.y >= 0.0);
                assert!(bbox.x1() <= img.width() as f32 + 0.5);
                assert!(bbox.y1() <= img.height() as f32 + 0.5);
            }
        }
    }

    #[test]
    fn defect_changes_pixels_inside_box() {
        let mut rng = StdRng::seed_from_u64(1);
        let clean = test_img();
        let mut img = clean.clone();
        let bbox = paint_scratch(&mut img, &mut rng, -0.4);
        let region = img.crop_bbox(&bbox).unwrap();
        let clean_region = clean.crop_bbox(&bbox).unwrap();
        let diff: f32 = region
            .pixels()
            .iter()
            .zip(clean_region.pixels())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 0.5, "defect barely changed the image: {diff}");
    }

    #[test]
    fn pixels_stay_in_unit_range_after_painting() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut img = test_img();
        for _ in 0..5 {
            paint_bubble(&mut img, &mut rng, -0.5);
            paint_scratch(&mut img, &mut rng, 0.5);
        }
        for &p in img.pixels() {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn stampings_land_near_fixed_slots() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..30 {
            let mut img = test_img();
            let bbox = paint_stamping(&mut img, &mut rng, -0.4);
            let (cx, _) = bbox.center();
            let frac = cx / img.width() as f32;
            let near_slot = STAMPING_SLOTS.iter().any(|&s| (frac - s).abs() < 0.05);
            assert!(near_slot, "stamping at fraction {frac}");
        }
    }

    #[test]
    fn scratches_are_elongated() {
        // An axis-aligned bounding box understates a diagonal scratch's
        // aspect ratio (a 45° stroke has a nearly square bbox), which
        // made the old bbox-aspect version of this test fail on most
        // seeds even though every scratch is genuinely thin and long. So
        // measure elongation rotation-invariantly: a stroke's painted
        // area is ~length × thickness while its bbox diagonal is
        // ~length, so diag² / area ≈ length / thickness. A filled disk
        // scores ~8/π ≈ 2.5 at any size and angle is irrelevant;
        // generated scratches clear 3.0 with an order-of-magnitude
        // margin (empirically ≥ 12 over 6000 draws).
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..20 {
            let clean = test_img();
            let mut img = clean.clone();
            let bbox = paint_scratch(&mut img, &mut rng, -0.4);
            let area = img
                .pixels()
                .iter()
                .zip(clean.pixels())
                .filter(|(a, b)| (**a - **b).abs() > 0.02)
                .count() as f32;
            let diag2 = bbox.w * bbox.w + bbox.h * bbox.h;
            assert!(
                diag2 > 3.0 * area.max(1.0),
                "scratch not elongated: bbox {bbox:?}, painted area {area}"
            );
        }
    }

    #[test]
    fn bubbles_are_small() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let mut img = test_img();
            let bbox = paint_bubble(&mut img, &mut rng, -0.4);
            assert!(bbox.w <= 14.0 && bbox.h <= 14.0, "bubble too big: {bbox:?}");
        }
    }

    #[test]
    fn low_contrast_changes_less_than_high_contrast() {
        let faint_delta = scratch_delta(-0.08);
        let strong_delta = scratch_delta(-0.5);
        assert!(faint_delta < strong_delta * 0.5);
    }

    fn scratch_delta(contrast: f32) -> f32 {
        let mut rng = StdRng::seed_from_u64(6);
        let clean = test_img();
        let mut img = clean.clone();
        paint_scratch(&mut img, &mut rng, contrast);
        img.pixels()
            .iter()
            .zip(clean.pixels())
            .map(|(a, b)| (a - b).abs())
            .sum()
    }
}
