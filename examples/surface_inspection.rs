//! Surface-defect inspection on the KSDD simulacrum: crack shapes vary a
//! lot, so this example demonstrates the Section 4.2 *policy search* and
//! measures how much policy-based augmentation lifts weak-label F1 —
//! the effect behind Table 4's KSDD row.
//!
//! ```text
//! cargo run --release --example surface_inspection
//! ```

use inspector_gadget::augment::policy::{policy_augment, search_policies, PolicySearchConfig};
use inspector_gadget::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn train_and_score(
    patterns: Vec<GrayImage>,
    dev: &[&LabeledImage],
    test: &[&LabeledImage],
    rng: &mut StdRng,
) -> f64 {
    let dev_images: Vec<&GrayImage> = dev.iter().map(|l| &l.image).collect();
    let dev_labels: Vec<usize> = dev.iter().map(|l| l.label).collect();
    let ig = InspectorGadget::train(
        Pattern::wrap_all(patterns, PatternSource::Crowd),
        &dev_images,
        &dev_labels,
        2,
        &PipelineConfig {
            tune: false,
            ..Default::default()
        },
        rng,
    )
    .expect("pipeline trains");
    let test_images: Vec<&GrayImage> = test.iter().map(|l| &l.image).collect();
    let out = ig.label(&test_images);
    let gold: Vec<bool> = test.iter().map(|l| l.label == 1).collect();
    let pred: Vec<bool> = out.labels.iter().map(|&l| l == 1).collect();
    binary_f1(&gold, &pred).f1
}

fn main() {
    let mut rng = StdRng::seed_from_u64(38);
    let spec = DatasetSpec {
        n: 100,
        n_defective: 22,
        ..DatasetSpec::quick(DatasetKind::Ksdd, 38)
    };
    let dataset = inspector_gadget::synth::generate(&spec);
    println!(
        "[ksdd] {} commutator images, {} cracked",
        dataset.len(),
        dataset.num_defective()
    );

    let dev_indices = sample_dev_set(&dataset, 10, &mut rng);
    let dev: Vec<&LabeledImage> = dev_indices.iter().map(|&i| &dataset.images[i]).collect();
    let test: Vec<&LabeledImage> = dataset
        .images
        .iter()
        .enumerate()
        .filter(|(i, _)| !dev_indices.contains(i))
        .map(|(_, img)| img)
        .collect();

    let crowd_out = CrowdWorkflow::full().run(&dev, &mut rng);
    println!(
        "[crowd] {} crack patterns collected",
        crowd_out.patterns.len()
    );

    // --- Section 4.2 policy search: score each candidate combination by
    // the weak-label F1 it produces on a dev split.
    let search_config = PolicySearchConfig {
        ops: vec![PolicyOp::Rotate, PolicyOp::ResizeY, PolicyOp::Brightness],
        magnitudes_per_op: 3,
        combo_size: 2,
        max_combinations: 12,
    };
    let base = crowd_out.patterns.clone();
    let dev_for_eval = dev.clone();
    let mut eval_rng = StdRng::seed_from_u64(39);
    let best_combo = search_policies(
        &search_config,
        |combo| {
            // Cheap inner evaluation: augment, train un-tuned labeler on
            // half the dev split, score on the other half.
            let mut rng = StdRng::seed_from_u64(40);
            let mut pats = base.clone();
            pats.extend(policy_augment(&base, combo, 12, &mut rng));
            let half = dev_for_eval.len() / 2;
            let dev_images: Vec<&GrayImage> =
                dev_for_eval[..half].iter().map(|l| &l.image).collect();
            let dev_labels: Vec<usize> = dev_for_eval[..half].iter().map(|l| l.label).collect();
            if dev_labels.iter().all(|&l| l == dev_labels[0]) {
                return 0.0;
            }
            let Ok(ig) = InspectorGadget::train(
                Pattern::wrap_all(pats, PatternSource::Policy),
                &dev_images,
                &dev_labels,
                2,
                &PipelineConfig {
                    tune: false,
                    ..Default::default()
                },
                &mut rng,
            ) else {
                return 0.0;
            };
            let val_images: Vec<&GrayImage> =
                dev_for_eval[half..].iter().map(|l| &l.image).collect();
            let out = ig.label(&val_images);
            let gold: Vec<bool> = dev_for_eval[half..].iter().map(|l| l.label == 1).collect();
            let pred: Vec<bool> = out.labels.iter().map(|&l| l == 1).collect();
            binary_f1(&gold, &pred).f1
        },
        &mut eval_rng,
    );
    println!("[search] best policy combination:");
    for p in &best_combo {
        println!("         {:?} magnitude {:.3}", p.op, p.magnitude);
    }

    // --- Measure the lift on held-out data.
    let f1_plain = train_and_score(crowd_out.patterns.clone(), &dev, &test, &mut rng);
    let mut augmented = crowd_out.patterns.clone();
    augmented.extend(policy_augment(
        &crowd_out.patterns,
        &best_combo,
        60,
        &mut rng,
    ));
    let f1_aug = train_and_score(augmented, &dev, &test, &mut rng);
    println!(
        "[result] weak-label F1: no augmentation {f1_plain:.3} -> policy-augmented {f1_aug:.3}"
    );
}
