//! Limited-memory BFGS (Liu & Nocedal, 1989) with Armijo backtracking.
//!
//! The paper trains the labeler with "an L-BFGS optimizer, which provides
//! stable training on small data" (Section 6.1). This is the standard
//! two-loop-recursion implementation over a user-supplied
//! loss-and-gradient oracle on flat `f32` parameter vectors.

/// L-BFGS hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct LbfgsConfig {
    /// History size `m` (number of curvature pairs kept).
    pub memory: usize,
    /// Maximum outer iterations.
    pub max_iters: usize,
    /// Stop when the gradient's infinity norm drops below this.
    pub grad_tol: f32,
    /// Stop when the loss improves by less than this between iterations.
    pub loss_tol: f32,
    /// Armijo sufficient-decrease constant.
    pub c1: f32,
    /// Maximum backtracking halvings per line search.
    pub max_line_search: usize,
}

impl Default for LbfgsConfig {
    fn default() -> Self {
        Self {
            memory: 10,
            max_iters: 100,
            grad_tol: 1e-5,
            loss_tol: 1e-9,
            c1: 1e-4,
            max_line_search: 30,
        }
    }
}

/// Result of an [`minimize`] run.
#[derive(Debug, Clone)]
pub struct LbfgsResult {
    /// Final parameters.
    pub x: Vec<f32>,
    /// Final loss.
    pub loss: f32,
    /// Outer iterations performed.
    pub iters: usize,
    /// True when a tolerance (rather than the iteration cap) stopped it.
    pub converged: bool,
}

fn dot(a: &[f32], b: &[f32]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| x as f64 * y as f64)
        .sum()
}

fn inf_norm(v: &[f32]) -> f32 {
    v.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
}

/// Minimize `f` starting from `x0`. `f` must return `(loss, gradient)` with
/// the gradient the same length as the input.
pub fn minimize(
    mut f: impl FnMut(&[f32]) -> (f32, Vec<f32>),
    x0: Vec<f32>,
    config: &LbfgsConfig,
) -> LbfgsResult {
    let n = x0.len();
    let mut x = x0;
    let (mut loss, mut grad) = f(&x);
    assert_eq!(grad.len(), n, "gradient length mismatch");

    // Curvature history: s_k = x_{k+1} - x_k, y_k = g_{k+1} - g_k.
    let mut s_hist: Vec<Vec<f32>> = Vec::new();
    let mut y_hist: Vec<Vec<f32>> = Vec::new();
    let mut rho_hist: Vec<f64> = Vec::new();

    for iter in 0..config.max_iters {
        if inf_norm(&grad) < config.grad_tol {
            return LbfgsResult {
                x,
                loss,
                iters: iter,
                converged: true,
            };
        }

        // Two-loop recursion: direction = -H_k * grad.
        let mut q: Vec<f32> = grad.clone();
        let mut alphas = vec![0.0f64; s_hist.len()];
        for i in (0..s_hist.len()).rev() {
            let alpha = rho_hist[i] * dot(&s_hist[i], &q);
            alphas[i] = alpha;
            for (qv, &yv) in q.iter_mut().zip(&y_hist[i]) {
                *qv -= (alpha * yv as f64) as f32;
            }
        }
        // Initial Hessian scaling gamma = s·y / y·y from the latest pair.
        if let (Some(s), Some(y)) = (s_hist.last(), y_hist.last()) {
            let gamma = dot(s, y) / dot(y, y).max(1e-12);
            for qv in &mut q {
                *qv = (*qv as f64 * gamma) as f32;
            }
        }
        for i in 0..s_hist.len() {
            let beta = rho_hist[i] * dot(&y_hist[i], &q);
            let coeff = (alphas[i] - beta) as f32;
            for (qv, &sv) in q.iter_mut().zip(&s_hist[i]) {
                *qv += coeff * sv;
            }
        }
        let mut direction: Vec<f32> = q.iter().map(|&v| -v).collect();

        // Safeguard: fall back to steepest descent if not a descent dir.
        let mut dir_deriv = dot(&direction, &grad);
        if dir_deriv >= 0.0 {
            direction = grad.iter().map(|&g| -g).collect();
            dir_deriv = -dot(&grad, &grad);
            s_hist.clear();
            y_hist.clear();
            rho_hist.clear();
        }

        // Armijo backtracking line search.
        let mut step = 1.0f32;
        let mut accepted = false;
        let mut new_x = x.clone();
        let mut new_loss = loss;
        let mut new_grad = grad.clone();
        for _ in 0..config.max_line_search {
            for i in 0..n {
                new_x[i] = x[i] + step * direction[i];
            }
            let (l, g) = f(&new_x);
            if l.is_finite() && l <= loss + config.c1 * step * dir_deriv as f32 {
                new_loss = l;
                new_grad = g;
                accepted = true;
                break;
            }
            step *= 0.5;
        }
        if !accepted {
            // No progress possible along this direction.
            return LbfgsResult {
                x,
                loss,
                iters: iter,
                converged: true,
            };
        }

        // Update curvature history.
        let s: Vec<f32> = new_x.iter().zip(&x).map(|(&a, &b)| a - b).collect();
        let y: Vec<f32> = new_grad.iter().zip(&grad).map(|(&a, &b)| a - b).collect();
        let sy = dot(&s, &y);
        if sy > 1e-10 {
            if s_hist.len() == config.memory {
                s_hist.remove(0);
                y_hist.remove(0);
                rho_hist.remove(0);
            }
            rho_hist.push(1.0 / sy);
            s_hist.push(s);
            y_hist.push(y);
        }

        let improvement = loss - new_loss;
        x = new_x.clone();
        grad = new_grad.clone();
        loss = new_loss;
        if improvement.abs() < config.loss_tol {
            return LbfgsResult {
                x,
                loss,
                iters: iter + 1,
                converged: true,
            };
        }
    }

    LbfgsResult {
        x,
        loss,
        iters: config.max_iters,
        converged: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_separable_quadratic() {
        let target = [3.0f32, -1.0, 0.5];
        let result = minimize(
            |x| {
                let loss: f32 = x
                    .iter()
                    .zip(&target)
                    .map(|(&a, &b)| 0.5 * (a - b) * (a - b))
                    .sum();
                let grad = x.iter().zip(&target).map(|(&a, &b)| a - b).collect();
                (loss, grad)
            },
            vec![0.0; 3],
            &LbfgsConfig::default(),
        );
        assert!(result.converged);
        for (a, b) in result.x.iter().zip(&target) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn minimizes_rosenbrock() {
        // The classic banana function; slow for gradient descent, fast for
        // quasi-Newton methods.
        let result = minimize(
            |x| {
                let (a, b) = (x[0], x[1]);
                let loss = (1.0 - a).powi(2) + 100.0 * (b - a * a).powi(2);
                let grad = vec![
                    -2.0 * (1.0 - a) - 400.0 * a * (b - a * a),
                    200.0 * (b - a * a),
                ];
                (loss, grad)
            },
            vec![-1.2, 1.0],
            &LbfgsConfig {
                // Armijo-only backtracking (no Wolfe curvature condition)
                // tracks Rosenbrock's curved valley slowly; it converges
                // around ~700 iterations.
                max_iters: 2000,
                grad_tol: 1e-6,
                ..Default::default()
            },
        );
        assert!((result.x[0] - 1.0).abs() < 1e-2, "x0 = {}", result.x[0]);
        assert!((result.x[1] - 1.0).abs() < 1e-2, "x1 = {}", result.x[1]);
    }

    #[test]
    fn respects_iteration_cap() {
        let result = minimize(
            |x| {
                let loss = x[0] * x[0];
                (loss, vec![2.0 * x[0]])
            },
            vec![100.0],
            &LbfgsConfig {
                max_iters: 2,
                grad_tol: 0.0,
                loss_tol: 0.0,
                ..Default::default()
            },
        );
        assert_eq!(result.iters, 2);
        assert!(!result.converged);
    }

    #[test]
    fn already_optimal_start_converges_immediately() {
        let result = minimize(
            |x| (x[0] * x[0], vec![2.0 * x[0]]),
            vec![0.0],
            &LbfgsConfig::default(),
        );
        assert!(result.converged);
        assert_eq!(result.iters, 0);
    }

    #[test]
    fn loss_never_increases() {
        let mut losses = Vec::new();
        minimize(
            |x| {
                let loss = (x[0] - 2.0).powi(4) + (x[1] + 1.0).powi(2);
                losses.push(loss);
                (
                    loss,
                    vec![4.0 * (x[0] - 2.0).powi(3), 2.0 * (x[1] + 1.0)],
                )
            },
            vec![5.0, 5.0],
            &LbfgsConfig::default(),
        );
        // Accepted iterates must be monotone; the oracle also sees rejected
        // line-search probes, so compare best-so-far instead of adjacent.
        let mut best = f32::INFINITY;
        let mut monotone_best = Vec::new();
        for &l in &losses {
            best = best.min(l);
            monotone_best.push(best);
        }
        assert!(monotone_best.last().unwrap() < &1e-3);
    }

    #[test]
    fn high_dimensional_quadratic() {
        let n = 200;
        let result = minimize(
            |x| {
                let mut loss = 0.0f32;
                let mut grad = vec![0.0f32; n];
                for i in 0..n {
                    let scale = 1.0 + (i % 10) as f32;
                    let d = x[i] - i as f32 * 0.01;
                    loss += 0.5 * scale * d * d;
                    grad[i] = scale * d;
                }
                (loss, grad)
            },
            vec![1.0; n],
            &LbfgsConfig {
                max_iters: 300,
                ..Default::default()
            },
        );
        assert!(result.loss < 1e-6, "loss {}", result.loss);
    }
}
