//! Deterministic procedural noise for synthetic industrial textures.
//!
//! `ig-synth` composes these primitives into surface simulacra: value
//! noise for rolled-steel grain, fBm for casting textures, banded patterns
//! for the strip-shaped Product images. Everything is seeded and pure so
//! dataset generation is reproducible across runs and platforms.

use crate::GrayImage;

/// Deterministic integer hash → `[0, 1)` float. SplitMix64 finalizer.
#[inline]
fn hash01(seed: u64, x: i64, y: i64) -> f32 {
    let mut z = seed
        .wrapping_add((x as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add((y as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 40) as f32 / (1u64 << 24) as f32
}

fn smoothstep(t: f32) -> f32 {
    t * t * (3.0 - 2.0 * t)
}

/// Single-octave value noise at a continuous point with the given lattice
/// `frequency` (lattice cells per pixel).
pub fn value_noise(seed: u64, x: f32, y: f32, frequency: f32) -> f32 {
    let fx = x * frequency;
    let fy = y * frequency;
    let x0 = fx.floor();
    let y0 = fy.floor();
    let tx = smoothstep(fx - x0);
    let ty = smoothstep(fy - y0);
    let xi = x0 as i64;
    let yi = y0 as i64;
    let v00 = hash01(seed, xi, yi);
    let v10 = hash01(seed, xi + 1, yi);
    let v01 = hash01(seed, xi, yi + 1);
    let v11 = hash01(seed, xi + 1, yi + 1);
    let top = v00 + (v10 - v00) * tx;
    let bot = v01 + (v11 - v01) * tx;
    top + (bot - top) * ty
}

/// Fractional Brownian motion: `octaves` octaves of value noise with
/// per-octave gain 0.5 and lacunarity 2, normalized to `[0, 1]`.
pub fn fbm(seed: u64, x: f32, y: f32, base_frequency: f32, octaves: usize) -> f32 {
    let mut amplitude = 1.0f32;
    let mut frequency = base_frequency;
    let mut total = 0.0f32;
    let mut norm = 0.0f32;
    for octave in 0..octaves.max(1) {
        total += amplitude * value_noise(seed.wrapping_add(octave as u64 * 101), x, y, frequency);
        norm += amplitude;
        amplitude *= 0.5;
        frequency *= 2.0;
    }
    total / norm
}

/// Fill an image with fBm noise mapped to `[lo, hi]`.
pub fn fbm_image(
    seed: u64,
    width: usize,
    height: usize,
    base_frequency: f32,
    octaves: usize,
    lo: f32,
    hi: f32,
) -> GrayImage {
    GrayImage::from_fn(width, height, |x, y| {
        lo + (hi - lo) * fbm(seed, x as f32, y as f32, base_frequency, octaves)
    })
}

/// Per-pixel white noise image in `[lo, hi]`.
pub fn white_noise_image(seed: u64, width: usize, height: usize, lo: f32, hi: f32) -> GrayImage {
    GrayImage::from_fn(width, height, |x, y| {
        lo + (hi - lo) * hash01(seed, x as i64, y as i64)
    })
}

/// Horizontal banding: slowly varying brightness per column, mimicking the
/// strip lighting of industrial line-scan cameras.
pub fn band_image(
    seed: u64,
    width: usize,
    height: usize,
    band_frequency: f32,
    lo: f32,
    hi: f32,
) -> GrayImage {
    GrayImage::from_fn(width, height, |x, _| {
        lo + (hi - lo) * value_noise(seed, x as f32, 0.0, band_frequency)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_is_deterministic() {
        let a = fbm_image(42, 16, 16, 0.2, 3, 0.0, 1.0);
        let b = fbm_image(42, 16, 16, 0.2, 3, 0.0, 1.0);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = fbm_image(1, 16, 16, 0.2, 3, 0.0, 1.0);
        let b = fbm_image(2, 16, 16, 0.2, 3, 0.0, 1.0);
        assert_ne!(a, b);
    }

    #[test]
    fn values_within_range() {
        let img = fbm_image(7, 32, 32, 0.3, 4, 0.2, 0.8);
        for &p in img.pixels() {
            assert!((0.2..=0.8).contains(&p), "pixel {p}");
        }
        let white = white_noise_image(7, 32, 32, -1.0, 1.0);
        for &p in white.pixels() {
            assert!((-1.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn value_noise_is_continuous() {
        // Neighbouring samples should not jump (smoothstep interpolation).
        let mut max_jump = 0.0f32;
        for i in 0..200 {
            let x = i as f32 * 0.1;
            let a = value_noise(3, x, 5.0, 0.13);
            let b = value_noise(3, x + 0.1, 5.0, 0.13);
            max_jump = max_jump.max((a - b).abs());
        }
        assert!(max_jump < 0.2, "max jump {max_jump}");
    }

    #[test]
    fn white_noise_has_spread() {
        let img = white_noise_image(9, 64, 64, 0.0, 1.0);
        let mean = img.pixels().iter().sum::<f32>() / img.len() as f32;
        let var = img
            .pixels()
            .iter()
            .map(|&p| (p - mean).powi(2))
            .sum::<f32>()
            / img.len() as f32;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
        // Uniform variance is 1/12 ≈ 0.083.
        assert!((var - 1.0 / 12.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn band_image_constant_within_columns() {
        let img = band_image(5, 24, 10, 0.1, 0.0, 1.0);
        for x in 0..24 {
            let first = img.get(x, 0);
            for y in 1..10 {
                assert_eq!(img.get(x, y), first);
            }
        }
    }

    #[test]
    fn fbm_more_octaves_adds_detail() {
        // Higher octave counts increase high-frequency content; compare
        // total variation along a scanline.
        let tv = |oct: usize| {
            let img = fbm_image(11, 128, 1, 0.05, oct, 0.0, 1.0);
            img.row(0)
                .windows(2)
                .map(|w| (w[1] - w[0]).abs())
                .sum::<f32>()
        };
        assert!(tv(5) > tv(1));
    }
}
