//! Shared fixtures for the Criterion benchmarks.
//!
//! The benches cover the ablations DESIGN.md calls out (pyramid vs exact
//! NCC, parallel vs serial feature generation, L-BFGS vs Adam labeler
//! fits, policy vs GAN augmentation throughput) plus per-experiment
//! end-to-end timings at quick scale.

use ig_imaging::GrayImage;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A textured benchmark image with one planted defect.
pub fn textured_image(width: usize, height: usize, seed: u64) -> GrayImage {
    let mut img = ig_imaging::noise::fbm_image(seed, width, height, 0.05, 3, 0.4, 0.7);
    let mut rng = StdRng::seed_from_u64(seed);
    let x = rng.gen_range(0..width.saturating_sub(12).max(1));
    let y = rng.gen_range(0..height.saturating_sub(12).max(1));
    img.fill_rect(x, y, 8, 8, 0.15);
    img
}

/// A small defect-like pattern.
pub fn defect_pattern(side: usize, seed: u64) -> GrayImage {
    let mut img = GrayImage::filled(side, side, 0.6);
    let mut rng = StdRng::seed_from_u64(seed);
    let thickness = rng.gen_range(1.0..2.0);
    img.draw_line(
        1.0,
        1.0,
        side as f32 - 2.0,
        side as f32 - 2.0,
        thickness,
        0.15,
    );
    img
}

/// A batch of textured images.
pub fn image_batch(n: usize, width: usize, height: usize, seed: u64) -> Vec<GrayImage> {
    (0..n)
        .map(|i| textured_image(width, height, seed + i as u64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_have_requested_shapes() {
        assert_eq!(textured_image(64, 32, 1).dims(), (64, 32));
        assert_eq!(defect_pattern(9, 2).dims(), (9, 9));
        assert_eq!(image_batch(3, 16, 16, 3).len(), 3);
    }
}
