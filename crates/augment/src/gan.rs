//! Relativistic GAN (Jolicoeur-Martineau, 2019) with spectral
//! normalization (Section 4.1).
//!
//! The paper's formulation:
//!
//! ```text
//! max_D E[log σ(D(x_r) − D(G(z)))]
//! max_G E[log σ(D(G(z)) − D(x_r))]
//! ```
//!
//! "the discriminator of RGAN not only distinguishes data, but also tries
//! to maximize the difference between two probabilities" — implemented
//! verbatim over paired real/fake batches. Patterns are resized to a
//! fixed square before training and new samples are resized back to
//! original pattern sizes afterwards, following Figure 6.

use ig_imaging::resize::resize_bilinear;
use ig_imaging::GrayImage;
use ig_nn::activation::{log_sigmoid, sigmoid};
use ig_nn::mlp::{Mlp, MlpConfig};
use ig_nn::spectral::SpectralNorm;
use ig_nn::{Activation, Adam, Matrix};
use rand::seq::SliceRandom;
use rand::Rng;

/// RGAN hyper-parameters. Paper values: latent dim 100, lr 1e-4 for both
/// networks, ~1K epochs, square side ≤ 100 (here 16 for CPU scale).
#[derive(Debug, Clone)]
pub struct RganConfig {
    /// Random-noise input dimension (paper: 100).
    pub latent_dim: usize,
    /// Square side patterns are resized to (paper: min(100, mean side)).
    pub pattern_side: usize,
    /// Generator/discriminator hidden widths.
    pub hidden: usize,
    /// Training epochs over the pattern set.
    pub epochs: usize,
    /// Minibatch size (clamped to the pattern count).
    pub batch_size: usize,
    /// Learning rate for both networks (paper: 1e-4; a larger default is
    /// used here because the networks are tiny).
    pub lr: f32,
    /// Power iterations per spectral-norm update.
    pub sn_iters: usize,
}

impl Default for RganConfig {
    fn default() -> Self {
        Self {
            latent_dim: 100,
            pattern_side: 16,
            hidden: 64,
            epochs: 300,
            batch_size: 16,
            lr: 2e-3,
            sn_iters: 1,
        }
    }
}

impl RganConfig {
    /// Fast preset for unit tests.
    pub fn quick() -> Self {
        Self {
            latent_dim: 16,
            pattern_side: 8,
            hidden: 32,
            epochs: 60,
            batch_size: 8,
            ..Default::default()
        }
    }

    /// Choose the square side per the paper: "the width and height are set
    /// to 100 or the averaged value of all widths and heights of patterns,
    /// whichever is smaller" — rescaled to this reproduction's default cap.
    pub fn side_for_patterns(patterns: &[GrayImage], cap: usize) -> usize {
        if patterns.is_empty() {
            return cap;
        }
        let total: usize = patterns.iter().map(|p| p.width() + p.height()).sum();
        let avg = total / (2 * patterns.len());
        avg.clamp(4, cap)
    }
}

/// A trained RGAN over fixed-size square patterns.
pub struct Rgan {
    generator: Mlp,
    discriminator: Mlp,
    config: RganConfig,
    /// Original pattern sizes, sampled from when resizing fakes back.
    original_sizes: Vec<(usize, usize)>,
    /// Final discriminator loss (diagnostic).
    pub final_disc_loss: f32,
    /// Final generator loss (diagnostic).
    pub final_gen_loss: f32,
}

impl Rgan {
    /// Train on the given patterns. Panics on an empty pattern set.
    pub fn train(patterns: &[GrayImage], config: &RganConfig, rng: &mut impl Rng) -> Self {
        assert!(!patterns.is_empty(), "cannot train a GAN on zero patterns");
        let side = config.pattern_side;
        let dim = side * side;
        // Resize every pattern to the square and map to [-1, 1].
        let reals: Vec<Vec<f32>> = patterns
            .iter()
            .map(|p| {
                resize_bilinear(p, side, side)
                    .expect("pattern resize")
                    .pixels()
                    .iter()
                    .map(|&v| v * 2.0 - 1.0)
                    .collect()
            })
            .collect();
        let original_sizes: Vec<(usize, usize)> = patterns.iter().map(|p| p.dims()).collect();

        let mut generator = Mlp::new(
            &MlpConfig {
                input_dim: config.latent_dim,
                hidden: vec![config.hidden, config.hidden],
                output_dim: dim,
                activation: Activation::Relu,
                l2: 0.0,
            },
            rng,
        )
        .expect("generator config is valid");
        let mut discriminator = Mlp::new(
            &MlpConfig {
                input_dim: dim,
                hidden: vec![config.hidden],
                output_dim: 1,
                activation: Activation::LeakyRelu,
                l2: 0.0,
            },
            rng,
        )
        .expect("discriminator config is valid");

        let mut g_opt = Adam::for_gan(config.lr);
        let mut d_opt = Adam::for_gan(config.lr);
        let mut sn_states: Vec<SpectralNorm> = (0..discriminator.num_layers())
            .map(|l| {
                let w = discriminator.weight(l);
                SpectralNorm::new(w.rows(), w.cols(), rng)
            })
            .collect();

        let batch = config.batch_size.min(reals.len()).max(1);
        let mut indices: Vec<usize> = (0..reals.len()).collect();
        let mut last_d = 0.0f32;
        let mut last_g = 0.0f32;
        for _epoch in 0..config.epochs {
            indices.shuffle(rng);
            for chunk in indices.chunks(batch) {
                let real = Matrix::from_rows(
                    &chunk.iter().map(|&i| reals[i].clone()).collect::<Vec<_>>(),
                );
                let n = real.rows();

                // ---- Discriminator step ----
                let z = random_latent(n, config.latent_dim, rng);
                let fake = generate_batch(&generator, &z);
                let real_cache = discriminator.forward_cache(&real);
                let fake_cache = discriminator.forward_cache(&fake);
                let dr = real_cache.logits().clone();
                let df = fake_cache.logits().clone();
                // L_D = -mean log σ(D(x_r) - D(x_f)).
                let mut d_loss = 0.0f32;
                let mut d_dr = Matrix::zeros(n, 1);
                let mut d_df = Matrix::zeros(n, 1);
                for i in 0..n {
                    let diff = dr.get(i, 0) - df.get(i, 0);
                    d_loss += -log_sigmoid(diff);
                    let g = (sigmoid(diff) - 1.0) / n as f32; // dL/d(diff)
                    d_dr.set(i, 0, g);
                    d_df.set(i, 0, -g);
                }
                d_loss /= n as f32;
                let (grad_real, _) = discriminator.backward(&real_cache, &d_dr);
                let (grad_fake, _) = discriminator.backward(&fake_cache, &d_df);
                let total_grad: Vec<f32> = grad_real
                    .iter()
                    .zip(&grad_fake)
                    .map(|(a, b)| a + b)
                    .collect();
                let mut params = discriminator.params();
                d_opt.step(&mut params, &total_grad);
                discriminator.set_params(&params);
                // Spectral normalization after the update.
                for (l, sn) in sn_states.iter_mut().enumerate() {
                    sn.normalize_weight(discriminator.weight_mut(l), config.sn_iters);
                }
                last_d = d_loss;

                // ---- Generator step ----
                let z = random_latent(n, config.latent_dim, rng);
                let gen_cache = generator.forward_cache(&z);
                let gen_logits = gen_cache.logits().clone();
                let fake = gen_logits.map(|v| v.tanh());
                let real_cache = discriminator.forward_cache(&real);
                let fake_cache = discriminator.forward_cache(&fake);
                let dr = real_cache.logits().clone();
                let df = fake_cache.logits().clone();
                // L_G = -mean log σ(D(x_f) - D(x_r)).
                let mut g_loss = 0.0f32;
                let mut d_df = Matrix::zeros(n, 1);
                for i in 0..n {
                    let diff = df.get(i, 0) - dr.get(i, 0);
                    g_loss += -log_sigmoid(diff);
                    d_df.set(i, 0, (sigmoid(diff) - 1.0) / n as f32);
                }
                g_loss /= n as f32;
                // Backprop through D to its input, then through tanh, then G.
                let (_, d_input) = discriminator.backward(&fake_cache, &d_df);
                let mut d_gen_logits = d_input;
                for r in 0..d_gen_logits.rows() {
                    let frow = fake.row(r);
                    for (g, &t) in d_gen_logits.row_mut(r).iter_mut().zip(frow) {
                        *g *= 1.0 - t * t;
                    }
                }
                let (gen_grad, _) = generator.backward(&gen_cache, &d_gen_logits);
                let mut params = generator.params();
                g_opt.step(&mut params, &gen_grad);
                generator.set_params(&params);
                last_g = g_loss;
            }
        }

        Self {
            generator,
            discriminator,
            config: config.clone(),
            original_sizes,
            final_disc_loss: last_d,
            final_gen_loss: last_g,
        }
    }

    /// Sample `count` fake patterns, resized back to randomly chosen
    /// original pattern sizes (Figure 6's "re-adjust new patterns into one
    /// of the original sizes").
    pub fn generate(&self, count: usize, rng: &mut impl Rng) -> Vec<GrayImage> {
        let side = self.config.pattern_side;
        let z = random_latent(count, self.config.latent_dim, rng);
        let fake = generate_batch(&self.generator, &z);
        (0..count)
            .map(|i| {
                let pixels: Vec<f32> = fake.row(i).iter().map(|&v| (v + 1.0) * 0.5).collect();
                let square = GrayImage::from_vec(side, side, pixels)
                    .expect("generator output length matches side^2");
                let &(w, h) = self
                    .original_sizes
                    .choose(rng)
                    .expect("trained on nonempty patterns");
                resize_bilinear(&square, w, h).expect("resize back to original size")
            })
            .collect()
    }

    /// Generate fixed-square fakes without the resize-back step (used by
    /// tests and diagnostics).
    pub fn generate_square(&self, count: usize, rng: &mut impl Rng) -> Vec<GrayImage> {
        let side = self.config.pattern_side;
        let z = random_latent(count, self.config.latent_dim, rng);
        let fake = generate_batch(&self.generator, &z);
        (0..count)
            .map(|i| {
                let pixels: Vec<f32> = fake.row(i).iter().map(|&v| (v + 1.0) * 0.5).collect();
                GrayImage::from_vec(side, side, pixels).expect("square output")
            })
            .collect()
    }

    /// Discriminator logit for a (square-resized) pattern — diagnostic.
    pub fn discriminator_score(&self, pattern: &GrayImage) -> f32 {
        let side = self.config.pattern_side;
        let resized = resize_bilinear(pattern, side, side).expect("resize");
        let row: Vec<f32> = resized.pixels().iter().map(|&v| v * 2.0 - 1.0).collect();
        self.discriminator.forward(&Matrix::row_vector(&row)).get(0, 0)
    }
}

fn random_latent(n: usize, dim: usize, rng: &mut impl Rng) -> Matrix {
    Matrix::from_fn(n, dim, |_, _| {
        // Approximate standard normal via sum of uniforms.
        let mut acc = 0.0f32;
        for _ in 0..4 {
            acc += rng.gen_range(-1.0..1.0f32);
        }
        acc * (3.0f32 / 4.0).sqrt()
    })
}

fn generate_batch(generator: &Mlp, z: &Matrix) -> Matrix {
    generator.forward(z).map(|v| v.tanh())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ig_imaging::stats::stats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Simple synthetic pattern family: dark diagonal lines on bright
    /// ground with small shifts.
    fn line_patterns(n: usize, seed: u64) -> Vec<GrayImage> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let mut img = GrayImage::filled(12, 12, 0.8);
                let offset = rng.gen_range(-2.0..2.0f32);
                img.draw_line(2.0 + offset, 2.0, 9.0 + offset, 9.0, 1.5, 0.15);
                img
            })
            .collect()
    }

    #[test]
    #[should_panic(expected = "zero patterns")]
    fn empty_patterns_panic() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = Rgan::train(&[], &RganConfig::quick(), &mut rng);
    }

    #[test]
    fn generates_requested_count_and_sizes() {
        let mut rng = StdRng::seed_from_u64(1);
        let patterns = line_patterns(10, 2);
        let gan = Rgan::train(&patterns, &RganConfig::quick(), &mut rng);
        let fakes = gan.generate(7, &mut rng);
        assert_eq!(fakes.len(), 7);
        for f in &fakes {
            assert_eq!(f.dims(), (12, 12), "resized back to original size");
            for &p in f.pixels() {
                assert!((0.0..=1.0).contains(&p));
            }
        }
    }

    #[test]
    fn fakes_move_toward_real_statistics() {
        // After training, fake patterns should be much closer to the real
        // mean brightness than untrained noise (~0.5).
        let mut rng = StdRng::seed_from_u64(3);
        let patterns = line_patterns(12, 4);
        let real_mean: f32 = patterns.iter().map(|p| stats(p).mean).sum::<f32>() / 12.0;
        let cfg = RganConfig {
            epochs: 250,
            ..RganConfig::quick()
        };
        let gan = Rgan::train(&patterns, &cfg, &mut rng);
        let fakes = gan.generate_square(16, &mut rng);
        let fake_mean: f32 =
            fakes.iter().map(|p| stats(p).mean).sum::<f32>() / fakes.len() as f32;
        assert!(
            (fake_mean - real_mean).abs() < 0.2,
            "fake mean {fake_mean} vs real mean {real_mean}"
        );
    }

    #[test]
    fn fakes_vary_across_samples() {
        let mut rng = StdRng::seed_from_u64(5);
        let patterns = line_patterns(10, 6);
        let gan = Rgan::train(&patterns, &RganConfig::quick(), &mut rng);
        let fakes = gan.generate_square(6, &mut rng);
        let mut distinct_pairs = 0;
        for i in 0..fakes.len() {
            for j in (i + 1)..fakes.len() {
                let diff: f32 = fakes[i]
                    .pixels()
                    .iter()
                    .zip(fakes[j].pixels())
                    .map(|(a, b)| (a - b).abs())
                    .sum();
                if diff > 0.1 {
                    distinct_pairs += 1;
                }
            }
        }
        assert!(distinct_pairs > 0, "generator collapsed to a single output");
    }

    #[test]
    fn losses_are_finite_after_training() {
        let mut rng = StdRng::seed_from_u64(7);
        let patterns = line_patterns(8, 8);
        let gan = Rgan::train(&patterns, &RganConfig::quick(), &mut rng);
        assert!(gan.final_disc_loss.is_finite());
        assert!(gan.final_gen_loss.is_finite());
    }

    #[test]
    fn side_for_patterns_follows_paper_rule() {
        let small = vec![GrayImage::filled(6, 10, 0.5)];
        assert_eq!(RganConfig::side_for_patterns(&small, 16), 8);
        let big = vec![GrayImage::filled(60, 100, 0.5)];
        assert_eq!(RganConfig::side_for_patterns(&big, 16), 16);
        assert_eq!(RganConfig::side_for_patterns(&[], 16), 16);
    }

    #[test]
    fn discriminator_scores_are_finite() {
        let mut rng = StdRng::seed_from_u64(9);
        let patterns = line_patterns(8, 10);
        let gan = Rgan::train(&patterns, &RganConfig::quick(), &mut rng);
        for p in &patterns {
            assert!(gan.discriminator_score(p).is_finite());
        }
    }
}
