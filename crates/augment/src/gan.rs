//! Relativistic GAN (Jolicoeur-Martineau, 2019) with spectral
//! normalization (Section 4.1).
//!
//! The paper's formulation:
//!
//! ```text
//! max_D E[log σ(D(x_r) − D(G(z)))]
//! max_G E[log σ(D(G(z)) − D(x_r))]
//! ```
//!
//! "the discriminator of RGAN not only distinguishes data, but also tries
//! to maximize the difference between two probabilities" — implemented
//! verbatim over paired real/fake batches. Patterns are resized to a
//! fixed square before training and new samples are resized back to
//! original pattern sizes afterwards, following Figure 6.

use ig_faults::{FaultKind, FaultPlan, GanFault, HealthReport, RecoveryAction, Stage};
use ig_imaging::resize::resize_bilinear;
use ig_imaging::GrayImage;
use ig_nn::activation::{log_sigmoid, sigmoid};
use ig_nn::mlp::{Mlp, MlpConfig};
use ig_nn::spectral::SpectralNorm;
use ig_nn::{Activation, Adam, Matrix};
use rand::seq::SliceRandom;
use rand::Rng;

/// Epoch losses past this magnitude count as divergence even when finite.
const LOSS_EXPLOSION: f32 = 1e4;
/// Probe samples drawn per epoch by the mode-collapse monitor.
const COLLAPSE_PROBE: usize = 6;
/// Mean per-pixel pairwise distance below which the probe batch counts as
/// collapsed. Healthy generators (even untrained ones) sit orders of
/// magnitude above this.
const COLLAPSE_EPS: f32 = 1e-4;

/// RGAN hyper-parameters. Paper values: latent dim 100, lr 1e-4 for both
/// networks, ~1K epochs, square side ≤ 100 (here 16 for CPU scale).
#[derive(Debug, Clone)]
pub struct RganConfig {
    /// Random-noise input dimension (paper: 100).
    pub latent_dim: usize,
    /// Square side patterns are resized to (paper: min(100, mean side)).
    pub pattern_side: usize,
    /// Generator/discriminator hidden widths.
    pub hidden: usize,
    /// Training epochs over the pattern set.
    pub epochs: usize,
    /// Minibatch size (clamped to the pattern count).
    pub batch_size: usize,
    /// Learning rate for both networks (paper: 1e-4; a larger default is
    /// used here because the networks are tiny).
    pub lr: f32,
    /// Power iterations per spectral-norm update.
    pub sn_iters: usize,
}

impl Default for RganConfig {
    fn default() -> Self {
        Self {
            latent_dim: 100,
            pattern_side: 16,
            hidden: 64,
            epochs: 300,
            batch_size: 16,
            lr: 2e-3,
            sn_iters: 1,
        }
    }
}

impl RganConfig {
    /// Fast preset for unit tests.
    pub fn quick() -> Self {
        Self {
            latent_dim: 16,
            pattern_side: 8,
            hidden: 32,
            epochs: 60,
            batch_size: 8,
            ..Default::default()
        }
    }

    /// Choose the square side per the paper: "the width and height are set
    /// to 100 or the averaged value of all widths and heights of patterns,
    /// whichever is smaller" — rescaled to this reproduction's default cap.
    pub fn side_for_patterns(patterns: &[GrayImage], cap: usize) -> usize {
        if patterns.is_empty() {
            return cap;
        }
        let total: usize = patterns.iter().map(|p| p.width() + p.height()).sum();
        let avg = total / (2 * patterns.len());
        avg.clamp(4, cap)
    }
}

/// A trained RGAN over fixed-size square patterns.
#[derive(Debug)]
pub struct Rgan {
    generator: Mlp,
    discriminator: Mlp,
    config: RganConfig,
    /// Original pattern sizes, sampled from when resizing fakes back.
    original_sizes: Vec<(usize, usize)>,
    /// Final discriminator loss (diagnostic).
    pub final_disc_loss: f32,
    /// Final generator loss (diagnostic).
    pub final_gen_loss: f32,
    /// Set when training misbehaved before any healthy epoch completed, so
    /// there was no snapshot to roll back to. The parameters are restored
    /// to their (finite) initial values, but samples are untrained noise —
    /// callers should prefer policy-based augmentation instead.
    pub degenerate: Option<FaultKind>,
}

impl Rgan {
    /// Train on the given patterns. Panics on an empty pattern set.
    pub fn train(patterns: &[GrayImage], config: &RganConfig, rng: &mut impl Rng) -> Self {
        Self::train_with_health(patterns, config, rng, None, &HealthReport::new())
    }

    /// [`Rgan::train`] with per-epoch health monitoring and optional fault
    /// injection.
    ///
    /// After every epoch the monitor checks for divergence (non-finite or
    /// exploding losses, non-finite parameters) and mode collapse (probe
    /// samples nearly identical). A healthy epoch snapshots both networks;
    /// a faulty one rolls back to the last snapshot, records the event on
    /// `health`, and stops training. The monitor draws its probe latents
    /// from an internal deterministic stream, so with an empty `plan` this
    /// is bit-for-bit identical to [`Rgan::train`].
    pub fn train_with_health(
        patterns: &[GrayImage],
        config: &RganConfig,
        rng: &mut impl Rng,
        plan: Option<&FaultPlan>,
        health: &HealthReport,
    ) -> Self {
        assert!(!patterns.is_empty(), "cannot train a GAN on zero patterns");
        let side = config.pattern_side;
        let dim = side * side;
        // Resize every pattern to the square and map to [-1, 1].
        let reals: Vec<Vec<f32>> = patterns
            .iter()
            .map(|p| {
                resize_bilinear(p, side, side)
                    // ig-lint: allow(panic) -- patterns are asserted non-empty
                    // above and `side` comes from a positive config
                    .expect("pattern resize")
                    .pixels()
                    .iter()
                    .map(|&v| v * 2.0 - 1.0)
                    .collect()
            })
            .collect();
        let original_sizes: Vec<(usize, usize)> = patterns.iter().map(|p| p.dims()).collect();

        let mut generator = Mlp::new(
            &MlpConfig {
                input_dim: config.latent_dim,
                hidden: vec![config.hidden, config.hidden],
                output_dim: dim,
                activation: Activation::Relu,
                l2: 0.0,
            },
            rng,
        )
        // ig-lint: allow(panic) -- dims are positive literals/config
        // values validated by GanConfig, so Mlp::new cannot reject them
        .expect("generator config is valid");
        let mut discriminator = Mlp::new(
            &MlpConfig {
                input_dim: dim,
                hidden: vec![config.hidden],
                output_dim: 1,
                activation: Activation::LeakyRelu,
                l2: 0.0,
            },
            rng,
        )
        // ig-lint: allow(panic) -- same validated-config argument as the
        // generator above
        .expect("discriminator config is valid");

        let mut g_opt = Adam::for_gan(config.lr);
        let mut d_opt = Adam::for_gan(config.lr);
        let mut sn_states: Vec<SpectralNorm> = (0..discriminator.num_layers())
            .map(|l| {
                let w = discriminator.weight(l);
                SpectralNorm::new(w.rows(), w.cols(), rng)
            })
            .collect();

        let batch = config.batch_size.min(reals.len()).max(1);
        let mut indices: Vec<usize> = (0..reals.len()).collect();
        let mut last_d = 0.0f32;
        let mut last_g = 0.0f32;
        // Initial parameters, restored if training faults before any
        // healthy epoch; (gen, disc, d_loss, g_loss) of the last healthy
        // epoch otherwise.
        let init_params = (generator.params(), discriminator.params());
        let mut snapshot: Option<(Vec<f32>, Vec<f32>, f32, f32)> = None;
        let mut degenerate: Option<FaultKind> = None;
        for epoch in 0..config.epochs {
            if let Some(fault) = plan.and_then(|p| p.gan_fault_at(epoch)) {
                inject_gan_fault(fault, &mut generator, &mut discriminator);
            }
            indices.shuffle(rng);
            for chunk in indices.chunks(batch) {
                let real =
                    Matrix::from_rows(&chunk.iter().map(|&i| reals[i].clone()).collect::<Vec<_>>());
                let n = real.rows();

                // ---- Discriminator step ----
                let z = random_latent(n, config.latent_dim, rng);
                let fake = generate_batch(&generator, &z);
                let real_cache = discriminator.forward_cache(&real);
                let fake_cache = discriminator.forward_cache(&fake);
                let dr = real_cache.logits().clone();
                let df = fake_cache.logits().clone();
                // L_D = -mean log σ(D(x_r) - D(x_f)).
                let mut d_loss = 0.0f32;
                let mut d_dr = Matrix::zeros(n, 1);
                let mut d_df = Matrix::zeros(n, 1);
                for i in 0..n {
                    let diff = dr.get(i, 0) - df.get(i, 0);
                    d_loss += -log_sigmoid(diff);
                    let g = (sigmoid(diff) - 1.0) / n as f32; // dL/d(diff)
                    d_dr.set(i, 0, g);
                    d_df.set(i, 0, -g);
                }
                d_loss /= n as f32;
                let (grad_real, _) = discriminator.backward(&real_cache, &d_dr);
                let (grad_fake, _) = discriminator.backward(&fake_cache, &d_df);
                let total_grad: Vec<f32> = grad_real
                    .iter()
                    .zip(&grad_fake)
                    .map(|(a, b)| a + b)
                    .collect();
                let mut params = discriminator.params();
                d_opt.step(&mut params, &total_grad);
                discriminator.set_params(&params);
                // Spectral normalization after the update.
                for (l, sn) in sn_states.iter_mut().enumerate() {
                    sn.normalize_weight(discriminator.weight_mut(l), config.sn_iters);
                }
                last_d = d_loss;

                // ---- Generator step ----
                let z = random_latent(n, config.latent_dim, rng);
                let gen_cache = generator.forward_cache(&z);
                let gen_logits = gen_cache.logits().clone();
                let fake = gen_logits.map(|v| v.tanh());
                let real_cache = discriminator.forward_cache(&real);
                let fake_cache = discriminator.forward_cache(&fake);
                let dr = real_cache.logits().clone();
                let df = fake_cache.logits().clone();
                // L_G = -mean log σ(D(x_f) - D(x_r)).
                let mut g_loss = 0.0f32;
                let mut d_df = Matrix::zeros(n, 1);
                for i in 0..n {
                    let diff = df.get(i, 0) - dr.get(i, 0);
                    g_loss += -log_sigmoid(diff);
                    d_df.set(i, 0, (sigmoid(diff) - 1.0) / n as f32);
                }
                g_loss /= n as f32;
                // Backprop through D to its input, then through tanh, then G.
                let (_, d_input) = discriminator.backward(&fake_cache, &d_df);
                let mut d_gen_logits = d_input;
                for r in 0..d_gen_logits.rows() {
                    let frow = fake.row(r);
                    for (g, &t) in d_gen_logits.row_mut(r).iter_mut().zip(frow) {
                        *g *= 1.0 - t * t;
                    }
                }
                let (gen_grad, _) = generator.backward(&gen_cache, &d_gen_logits);
                let mut params = generator.params();
                g_opt.step(&mut params, &gen_grad);
                generator.set_params(&params);
                last_g = g_loss;
            }

            match detect_gan_fault(
                &generator,
                &discriminator,
                last_d,
                last_g,
                config.latent_dim,
                epoch,
            ) {
                None => {
                    snapshot = Some((generator.params(), discriminator.params(), last_d, last_g));
                }
                Some(kind) => {
                    match snapshot.as_ref() {
                        Some((g, d, dl, gl)) => {
                            generator.set_params(g);
                            discriminator.set_params(d);
                            last_d = *dl;
                            last_g = *gl;
                            health.record(
                                Stage::Augmentation,
                                kind,
                                RecoveryAction::RolledBackSnapshot,
                                format!("epoch {epoch}: rolled back to last healthy snapshot"),
                            );
                        }
                        None => {
                            generator.set_params(&init_params.0);
                            discriminator.set_params(&init_params.1);
                            last_d = 0.0;
                            last_g = 0.0;
                            degenerate = Some(kind);
                            health.record(
                                Stage::Augmentation,
                                kind,
                                RecoveryAction::NoneRequired,
                                format!(
                                    "epoch {epoch}: no healthy snapshot to roll back to; \
                                     initial parameters restored, GAN marked degenerate"
                                ),
                            );
                        }
                    }
                    break;
                }
            }
        }

        Self {
            generator,
            discriminator,
            config: config.clone(),
            original_sizes,
            final_disc_loss: last_d,
            final_gen_loss: last_g,
            degenerate,
        }
    }

    /// Sample `count` fake patterns, resized back to randomly chosen
    /// original pattern sizes (Figure 6's "re-adjust new patterns into one
    /// of the original sizes").
    pub fn generate(&self, count: usize, rng: &mut impl Rng) -> Vec<GrayImage> {
        let side = self.config.pattern_side;
        let z = random_latent(count, self.config.latent_dim, rng);
        let fake = generate_batch(&self.generator, &z);
        (0..count)
            .map(|i| {
                let pixels: Vec<f32> = fake.row(i).iter().map(|&v| (v + 1.0) * 0.5).collect();
                // The generator's output layer is built with side*side
                // units, so the length always matches; mid-gray fallback
                // rather than a panic ladder in library code.
                let square = GrayImage::from_vec(side, side, pixels)
                    .unwrap_or_else(|_| GrayImage::from_fn(side, side, |_, _| 0.5));
                // train() asserts the pattern set is non-empty and
                // original_sizes mirrors it; fall back to the square side.
                let &(w, h) = self.original_sizes.choose(rng).unwrap_or(&(side, side));
                // (w, h) are dims of a real pattern, so they are positive
                // and the resize cannot fail; keep the square on the
                // unreachable path.
                resize_bilinear(&square, w, h).unwrap_or(square)
            })
            .collect()
    }

    /// Generate fixed-square fakes without the resize-back step (used by
    /// tests and diagnostics).
    pub fn generate_square(&self, count: usize, rng: &mut impl Rng) -> Vec<GrayImage> {
        let side = self.config.pattern_side;
        let z = random_latent(count, self.config.latent_dim, rng);
        let fake = generate_batch(&self.generator, &z);
        (0..count)
            .map(|i| {
                let pixels: Vec<f32> = fake.row(i).iter().map(|&v| (v + 1.0) * 0.5).collect();
                // Generator output length is side*side by construction;
                // mid-gray fallback on the unreachable path.
                GrayImage::from_vec(side, side, pixels)
                    .unwrap_or_else(|_| GrayImage::from_fn(side, side, |_, _| 0.5))
            })
            .collect()
    }

    /// Discriminator logit for a (square-resized) pattern — diagnostic.
    pub fn discriminator_score(&self, pattern: &GrayImage) -> f32 {
        let side = self.config.pattern_side;
        // side is positive by config; score the pattern as-is if the
        // diagnostic resize ever fails.
        let resized = resize_bilinear(pattern, side, side).unwrap_or_else(|_| pattern.clone());
        let row: Vec<f32> = resized.pixels().iter().map(|&v| v * 2.0 - 1.0).collect();
        self.discriminator
            .forward(&Matrix::row_vector(&row))
            .get(0, 0)
    }
}

fn random_latent(n: usize, dim: usize, rng: &mut impl Rng) -> Matrix {
    Matrix::from_fn(n, dim, |_, _| {
        // Approximate standard normal via sum of uniforms.
        let mut acc = 0.0f32;
        for _ in 0..4 {
            acc += rng.gen_range(-1.0..1.0f32);
        }
        acc * (3.0f32 / 4.0).sqrt()
    })
}

fn generate_batch(generator: &Mlp, z: &Matrix) -> Matrix {
    generator.forward(z).map(|v| v.tanh())
}

/// Force the scheduled fault onto the networks (see [`GanFault`]).
fn inject_gan_fault(fault: GanFault, generator: &mut Mlp, discriminator: &mut Mlp) {
    match fault {
        GanFault::Diverge => {
            // NaN parameters poison every forward pass; losses and
            // gradients go non-finite within one batch.
            let poison = |net: &mut Mlp| {
                let mut p = net.params();
                p.iter_mut().for_each(|v| *v = f32::NAN);
                net.set_params(&p);
            };
            poison(generator);
            poison(discriminator);
        }
        GanFault::Collapse => {
            // A zeroed generator emits one constant output for every
            // latent — the textbook collapsed mode.
            let zeros = vec![0.0; generator.params().len()];
            generator.set_params(&zeros);
        }
    }
}

/// End-of-epoch monitor: divergence first (non-finite or exploding state),
/// then mode collapse via a deterministic probe batch.
fn detect_gan_fault(
    generator: &Mlp,
    discriminator: &Mlp,
    d_loss: f32,
    g_loss: f32,
    latent_dim: usize,
    epoch: usize,
) -> Option<FaultKind> {
    let diverged = !d_loss.is_finite()
        || !g_loss.is_finite()
        || d_loss.abs() > LOSS_EXPLOSION
        || g_loss.abs() > LOSS_EXPLOSION
        || !all_finite(&generator.params())
        || !all_finite(&discriminator.params());
    if diverged {
        return Some(FaultKind::GanDivergence);
    }
    let z = probe_latent(COLLAPSE_PROBE, latent_dim, epoch);
    let out = generate_batch(generator, &z);
    let mut total = 0.0f32;
    let mut pairs = 0usize;
    for i in 0..COLLAPSE_PROBE {
        for j in (i + 1)..COLLAPSE_PROBE {
            let diff: f32 = out
                .row(i)
                .iter()
                .zip(out.row(j))
                .map(|(a, b)| (a - b).abs())
                .sum();
            total += diff / out.cols().max(1) as f32;
            pairs += 1;
        }
    }
    if total / (pairs as f32) < COLLAPSE_EPS {
        return Some(FaultKind::GanModeCollapse);
    }
    None
}

fn all_finite(values: &[f32]) -> bool {
    values.iter().all(|v| v.is_finite())
}

/// Probe latents for the collapse monitor. Drawn from an internal
/// SplitMix64 stream so monitoring never consumes the caller's RNG —
/// monitored training stays bit-identical to unmonitored training.
fn probe_latent(n: usize, dim: usize, epoch: usize) -> Matrix {
    Matrix::from_fn(n, dim, |r, c| {
        let h = splitmix64(
            0x6A09_E667_F3BC_C909 ^ ((epoch as u64) << 40) ^ ((r as u64) << 20) ^ c as u64,
        );
        ((((h >> 11) as f64) * (1.0 / (1u64 << 53) as f64)) * 2.0 - 1.0) as f32
    })
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ig_imaging::stats::stats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Simple synthetic pattern family: dark diagonal lines on bright
    /// ground with small shifts.
    fn line_patterns(n: usize, seed: u64) -> Vec<GrayImage> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let mut img = GrayImage::filled(12, 12, 0.8);
                let offset = rng.gen_range(-2.0..2.0f32);
                img.draw_line(2.0 + offset, 2.0, 9.0 + offset, 9.0, 1.5, 0.15);
                img
            })
            .collect()
    }

    #[test]
    #[should_panic(expected = "zero patterns")]
    fn empty_patterns_panic() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = Rgan::train(&[], &RganConfig::quick(), &mut rng);
    }

    #[test]
    fn generates_requested_count_and_sizes() {
        let mut rng = StdRng::seed_from_u64(1);
        let patterns = line_patterns(10, 2);
        let gan = Rgan::train(&patterns, &RganConfig::quick(), &mut rng);
        let fakes = gan.generate(7, &mut rng);
        assert_eq!(fakes.len(), 7);
        for f in &fakes {
            assert_eq!(f.dims(), (12, 12), "resized back to original size");
            for &p in f.pixels() {
                assert!((0.0..=1.0).contains(&p));
            }
        }
    }

    #[test]
    fn fakes_move_toward_real_statistics() {
        // After training, fake patterns should be much closer to the real
        // mean brightness than untrained noise (~0.5).
        let mut rng = StdRng::seed_from_u64(3);
        let patterns = line_patterns(12, 4);
        let real_mean: f32 = patterns.iter().map(|p| stats(p).mean).sum::<f32>() / 12.0;
        let cfg = RganConfig {
            epochs: 250,
            ..RganConfig::quick()
        };
        let gan = Rgan::train(&patterns, &cfg, &mut rng);
        let fakes = gan.generate_square(16, &mut rng);
        let fake_mean: f32 = fakes.iter().map(|p| stats(p).mean).sum::<f32>() / fakes.len() as f32;
        assert!(
            (fake_mean - real_mean).abs() < 0.2,
            "fake mean {fake_mean} vs real mean {real_mean}"
        );
    }

    #[test]
    fn fakes_vary_across_samples() {
        let mut rng = StdRng::seed_from_u64(5);
        let patterns = line_patterns(10, 6);
        let gan = Rgan::train(&patterns, &RganConfig::quick(), &mut rng);
        let fakes = gan.generate_square(6, &mut rng);
        let mut distinct_pairs = 0;
        for i in 0..fakes.len() {
            for j in (i + 1)..fakes.len() {
                let diff: f32 = fakes[i]
                    .pixels()
                    .iter()
                    .zip(fakes[j].pixels())
                    .map(|(a, b)| (a - b).abs())
                    .sum();
                if diff > 0.1 {
                    distinct_pairs += 1;
                }
            }
        }
        assert!(distinct_pairs > 0, "generator collapsed to a single output");
    }

    #[test]
    fn losses_are_finite_after_training() {
        let mut rng = StdRng::seed_from_u64(7);
        let patterns = line_patterns(8, 8);
        let gan = Rgan::train(&patterns, &RganConfig::quick(), &mut rng);
        assert!(gan.final_disc_loss.is_finite());
        assert!(gan.final_gen_loss.is_finite());
    }

    #[test]
    fn side_for_patterns_follows_paper_rule() {
        let small = vec![GrayImage::filled(6, 10, 0.5)];
        assert_eq!(RganConfig::side_for_patterns(&small, 16), 8);
        let big = vec![GrayImage::filled(60, 100, 0.5)];
        assert_eq!(RganConfig::side_for_patterns(&big, 16), 16);
        assert_eq!(RganConfig::side_for_patterns(&[], 16), 16);
    }

    #[test]
    fn injected_divergence_rolls_back_to_snapshot() {
        let mut rng = StdRng::seed_from_u64(11);
        let patterns = line_patterns(10, 12);
        let plan = FaultPlan {
            gan_fault_epoch: Some(5),
            gan_fault: GanFault::Diverge,
            ..FaultPlan::default()
        };
        let health = HealthReport::new();
        let gan = Rgan::train_with_health(
            &patterns,
            &RganConfig::quick(),
            &mut rng,
            Some(&plan),
            &health,
        );
        assert_eq!(health.count(FaultKind::GanDivergence), 1);
        assert_eq!(health.count_action(RecoveryAction::RolledBackSnapshot), 1);
        assert!(gan.degenerate.is_none(), "snapshot existed, not degenerate");
        assert!(gan.final_disc_loss.is_finite());
        assert!(gan.final_gen_loss.is_finite());
        for f in gan.generate(4, &mut rng) {
            for &p in f.pixels() {
                assert!(p.is_finite() && (0.0..=1.0).contains(&p));
            }
        }
    }

    #[test]
    fn injected_collapse_is_detected_and_rolled_back() {
        let mut rng = StdRng::seed_from_u64(13);
        let patterns = line_patterns(10, 14);
        let plan = FaultPlan {
            gan_fault_epoch: Some(5),
            gan_fault: GanFault::Collapse,
            ..FaultPlan::default()
        };
        let health = HealthReport::new();
        let gan = Rgan::train_with_health(
            &patterns,
            &RganConfig::quick(),
            &mut rng,
            Some(&plan),
            &health,
        );
        assert_eq!(health.count(FaultKind::GanModeCollapse), 1);
        assert_eq!(health.count_action(RecoveryAction::RolledBackSnapshot), 1);
        assert!(gan.degenerate.is_none());
        // Post-rollback samples come from the healthy snapshot and vary.
        let fakes = gan.generate_square(6, &mut rng);
        let max_diff: f32 = (1..fakes.len())
            .map(|i| {
                fakes[0]
                    .pixels()
                    .iter()
                    .zip(fakes[i].pixels())
                    .map(|(a, b)| (a - b).abs())
                    .sum()
            })
            .fold(0.0, f32::max);
        assert!(max_diff > 0.01, "rolled-back generator still collapsed");
    }

    #[test]
    fn fault_before_any_snapshot_marks_degenerate() {
        let mut rng = StdRng::seed_from_u64(15);
        let patterns = line_patterns(10, 16);
        let plan = FaultPlan {
            gan_fault_epoch: Some(0),
            gan_fault: GanFault::Diverge,
            ..FaultPlan::default()
        };
        let health = HealthReport::new();
        let gan = Rgan::train_with_health(
            &patterns,
            &RganConfig::quick(),
            &mut rng,
            Some(&plan),
            &health,
        );
        assert_eq!(gan.degenerate, Some(FaultKind::GanDivergence));
        assert_eq!(health.count(FaultKind::GanDivergence), 1);
        // Initial parameters were restored, so sampling still works.
        for f in gan.generate(3, &mut rng) {
            for &p in f.pixels() {
                assert!(p.is_finite() && (0.0..=1.0).contains(&p));
            }
        }
    }

    #[test]
    fn empty_plan_matches_plain_train() {
        let patterns = line_patterns(8, 18);
        let cfg = RganConfig::quick();
        let mut rng_a = StdRng::seed_from_u64(17);
        let plain = Rgan::train(&patterns, &cfg, &mut rng_a);
        let mut rng_b = StdRng::seed_from_u64(17);
        let health = HealthReport::new();
        let monitored = Rgan::train_with_health(
            &patterns,
            &cfg,
            &mut rng_b,
            Some(&FaultPlan::none(99)),
            &health,
        );
        assert!(health.is_clean());
        let a = plain.generate_square(4, &mut rng_a);
        let b = monitored.generate_square(4, &mut rng_b);
        for (fa, fb) in a.iter().zip(&b) {
            assert_eq!(fa.pixels(), fb.pixels(), "empty plan changed training");
        }
    }

    #[test]
    fn discriminator_scores_are_finite() {
        let mut rng = StdRng::seed_from_u64(9);
        let patterns = line_patterns(8, 10);
        let gan = Rgan::train(&patterns, &RganConfig::quick(), &mut rng);
        for p in &patterns {
            assert!(gan.discriminator_score(p).is_finite());
        }
    }
}
