//! Affine warps used by policy-based pattern augmentation (Section 4.2).
//!
//! Each policy operation (rotate, shear, anisotropic resize, translate)
//! reduces to sampling the source through an inverse affine map with
//! bilinear interpolation; photometric operations (brightness, contrast,
//! invert) are plain pixel maps and live in `ig-augment`.

use crate::{GrayImage, ImagingError, Result};

/// A 2x3 affine transform mapping *output* coordinates to *source*
/// coordinates (inverse mapping, the form used for resampling):
///
/// ```text
/// src_x = a*x + b*y + c
/// src_y = d*x + e*y + f
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Affine {
    /// Row-major coefficients `[a, b, c, d, e, f]`.
    pub m: [f32; 6],
}

impl Affine {
    /// Identity transform.
    pub fn identity() -> Self {
        Self {
            m: [1.0, 0.0, 0.0, 0.0, 1.0, 0.0],
        }
    }

    /// Inverse map of a rotation by `degrees` about `(cx, cy)`.
    pub fn rotation_about(degrees: f32, cx: f32, cy: f32) -> Self {
        let rad = degrees.to_radians();
        let (sin, cos) = rad.sin_cos();
        // Inverse rotation: rotate by -angle around the same center.
        let a = cos;
        let b = sin;
        let d = -sin;
        let e = cos;
        let c = cx - a * cx - b * cy;
        let f = cy - d * cx - e * cy;
        Self {
            m: [a, b, c, d, e, f],
        }
    }

    /// Inverse map of a shear along x by `factor` about `(cx, cy)`.
    pub fn shear_x_about(factor: f32, cx: f32, cy: f32) -> Self {
        // Forward: x' = x + factor*(y - cy), inverse: x = x' - factor*(y - cy).
        Self {
            m: [1.0, -factor, factor * cy + 0.0 * cx, 0.0, 1.0, 0.0],
        }
    }

    /// Inverse map of a shear along y by `factor` about `(cx, cy)`.
    pub fn shear_y_about(factor: f32, cx: f32, cy: f32) -> Self {
        Self {
            m: [1.0, 0.0, 0.0, -factor, 1.0, factor * cx + 0.0 * cy],
        }
    }

    /// Inverse map of a translation by `(dx, dy)`.
    pub fn translation(dx: f32, dy: f32) -> Self {
        Self {
            m: [1.0, 0.0, -dx, 0.0, 1.0, -dy],
        }
    }

    /// Apply to a point.
    #[inline]
    pub fn apply(&self, x: f32, y: f32) -> (f32, f32) {
        let [a, b, c, d, e, f] = self.m;
        (a * x + b * y + c, d * x + e * y + f)
    }
}

/// Warp `src` through the inverse affine `map`, producing an image of the
/// same size. Samples falling outside the source use `fill`.
pub fn warp_affine(src: &GrayImage, map: &Affine, fill: f32) -> GrayImage {
    let (w, h) = src.dims();
    GrayImage::from_fn(w, h, |x, y| {
        let (sx, sy) = map.apply(x as f32, y as f32);
        if sx < -0.5 || sy < -0.5 || sx > w as f32 - 0.5 || sy > h as f32 - 0.5 {
            fill
        } else {
            src.sample_bilinear(sx, sy)
        }
    })
}

/// Rotate about the image center by `degrees`; out-of-frame pixels take the
/// image's border mean so rotated patterns blend into their background.
pub fn rotate(src: &GrayImage, degrees: f32) -> GrayImage {
    let (w, h) = src.dims();
    let fill = border_mean(src);
    warp_affine(
        src,
        &Affine::rotation_about(degrees, (w as f32 - 1.0) * 0.5, (h as f32 - 1.0) * 0.5),
        fill,
    )
}

/// Shear along x about the center.
pub fn shear_x(src: &GrayImage, factor: f32) -> GrayImage {
    let (_, h) = src.dims();
    let fill = border_mean(src);
    warp_affine(
        src,
        &Affine::shear_x_about(factor, 0.0, (h as f32 - 1.0) * 0.5),
        fill,
    )
}

/// Shear along y about the center.
pub fn shear_y(src: &GrayImage, factor: f32) -> GrayImage {
    let (w, _) = src.dims();
    let fill = border_mean(src);
    warp_affine(
        src,
        &Affine::shear_y_about(factor, (w as f32 - 1.0) * 0.5, 0.0),
        fill,
    )
}

/// Translate by integer-ish offsets, filling uncovered pixels with the
/// border mean.
pub fn translate(src: &GrayImage, dx: f32, dy: f32) -> GrayImage {
    warp_affine(src, &Affine::translation(dx, dy), border_mean(src))
}

/// Stretch along x by `factor` (>1 widens the content), keeping the canvas
/// size; equivalent to the paper's `ResizeX` policy. Returns an error for
/// non-positive factors.
pub fn stretch_x(src: &GrayImage, factor: f32) -> Result<GrayImage> {
    if factor <= 0.0 {
        return Err(ImagingError::InvalidDimension(format!(
            "stretch factor {factor} must be positive"
        )));
    }
    let (w, _) = src.dims();
    let cx = (w as f32 - 1.0) * 0.5;
    let map = Affine {
        m: [1.0 / factor, 0.0, cx - cx / factor, 0.0, 1.0, 0.0],
    };
    Ok(warp_affine(src, &map, border_mean(src)))
}

/// Stretch along y by `factor`, keeping the canvas size (`ResizeY` policy).
pub fn stretch_y(src: &GrayImage, factor: f32) -> Result<GrayImage> {
    if factor <= 0.0 {
        return Err(ImagingError::InvalidDimension(format!(
            "stretch factor {factor} must be positive"
        )));
    }
    let (_, h) = src.dims();
    let cy = (h as f32 - 1.0) * 0.5;
    let map = Affine {
        m: [1.0, 0.0, 0.0, 0.0, 1.0 / factor, cy - cy / factor],
    };
    Ok(warp_affine(src, &map, border_mean(src)))
}

/// Mean of the one-pixel border ring, a cheap estimate of the pattern's
/// local background used to fill warp gaps.
pub fn border_mean(src: &GrayImage) -> f32 {
    let (w, h) = src.dims();
    if w == 0 || h == 0 {
        return 0.0;
    }
    if w == 1 && h == 1 {
        return src.get(0, 0);
    }
    let mut sum = 0.0f32;
    let mut count = 0usize;
    for x in 0..w {
        sum += src.get(x, 0) + src.get(x, h - 1);
        count += 2;
    }
    for y in 1..h.saturating_sub(1) {
        sum += src.get(0, y) + src.get(w - 1, y);
        count += 2;
    }
    sum / count as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn centered_blob(size: usize) -> GrayImage {
        GrayImage::from_fn(size, size, |x, y| {
            let c = (size as f32 - 1.0) * 0.5;
            let dx = x as f32 - c;
            let dy = y as f32 - c;
            (-(dx * dx + dy * dy) / (size as f32)).exp()
        })
    }

    #[test]
    fn identity_warp_is_exact() {
        let img = GrayImage::from_fn(6, 6, |x, y| (x * y) as f32);
        let out = warp_affine(&img, &Affine::identity(), 0.0);
        for (a, b) in img.pixels().iter().zip(out.pixels()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn rotate_zero_is_identity() {
        let img = centered_blob(9);
        let out = rotate(&img, 0.0);
        for (a, b) in img.pixels().iter().zip(out.pixels()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn rotate_360_approximates_identity() {
        let img = centered_blob(11);
        let out = rotate(&img, 360.0);
        for (a, b) in img.pixels().iter().zip(out.pixels()) {
            assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn rotate_90_moves_known_pixel() {
        // Mark a pixel right of the center; rotating the image by 90°
        // forward moves content; verify the energy is conserved-ish and the
        // center is fixed.
        let mut img = GrayImage::filled(9, 9, 0.0);
        img.set(7, 4, 1.0);
        let out = rotate(&img, 90.0);
        // Center pixel unchanged.
        assert!(out.get(4, 4).abs() < 1e-4);
        // The bright pixel moved off (7, 4).
        assert!(out.get(7, 4) < 0.5);
        // It landed on the vertical axis through the center (either above
        // or below depending on orientation convention).
        let above = out.get(4, 1).max(out.get(4, 2));
        let below = out.get(4, 6).max(out.get(4, 7));
        assert!(above > 0.5 || below > 0.5, "above {above} below {below}");
    }

    #[test]
    fn rotation_preserves_center_blob_mass() {
        let img = centered_blob(15);
        let out = rotate(&img, 37.0);
        let mass = |im: &GrayImage| im.pixels().iter().sum::<f32>();
        assert!((mass(&img) - mass(&out)).abs() / mass(&img) < 0.05);
    }

    #[test]
    fn translate_moves_content() {
        let mut img = GrayImage::filled(8, 8, 0.0);
        img.set(2, 2, 1.0);
        let out = translate(&img, 3.0, 1.0);
        assert!(out.get(5, 3) > 0.99);
        assert!(out.get(2, 2) < 0.01);
    }

    #[test]
    fn stretch_x_widens_line() {
        // A vertical line of width 1 at the center should get wider.
        let mut img = GrayImage::filled(17, 9, 0.0);
        img.fill_rect(8, 0, 1, 9, 1.0);
        let out = stretch_x(&img, 3.0).unwrap();
        let row_mass: f32 = out.row(4).iter().sum();
        assert!(row_mass > 2.0, "mass {row_mass}");
    }

    #[test]
    fn stretch_rejects_nonpositive_factor() {
        let img = GrayImage::filled(4, 4, 0.5);
        assert!(stretch_x(&img, 0.0).is_err());
        assert!(stretch_y(&img, -1.0).is_err());
    }

    #[test]
    fn stretch_y_one_is_identity() {
        let img = centered_blob(7);
        let out = stretch_y(&img, 1.0).unwrap();
        for (a, b) in img.pixels().iter().zip(out.pixels()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn shear_x_tilts_vertical_line() {
        let mut img = GrayImage::filled(11, 11, 0.0);
        img.fill_rect(5, 0, 1, 11, 1.0);
        let out = shear_x(&img, 0.5);
        // Top of the line shifts one way, bottom the other.
        let top_left: f32 = out.row(0)[..5].iter().sum();
        let top_right: f32 = out.row(0)[6..].iter().sum();
        assert!(top_left != top_right);
        // Center row mostly unchanged.
        assert!(out.get(5, 5) > 0.5);
    }

    #[test]
    fn border_mean_of_constant_is_constant() {
        let img = GrayImage::filled(5, 4, 0.33);
        assert!((border_mean(&img) - 0.33).abs() < 1e-6);
    }

    #[test]
    fn border_mean_ignores_interior() {
        let mut img = GrayImage::filled(5, 5, 0.1);
        img.set(2, 2, 100.0);
        assert!((border_mean(&img) - 0.1).abs() < 1e-5);
    }

    #[test]
    fn border_mean_single_pixel() {
        let img = GrayImage::filled(1, 1, 0.7);
        assert_eq!(border_mean(&img), 0.7);
    }
}
