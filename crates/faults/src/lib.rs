//! Fault injection and health reporting for the Inspector Gadget pipeline.
//!
//! Industrial labeling runs unattended: crowd workers vanish mid-task,
//! template matching emits NaN on degenerate patterns, L-BFGS diverges on
//! poisoned features, and GAN training collapses. This crate provides the
//! two halves needed to make the pipeline survive all of that:
//!
//! * [`FaultPlan`] — a deterministic, seeded chaos plan. Every decision is
//!   a pure function of `(seed, site, index)`, so injection is
//!   reproducible across runs and across parallel workers without any
//!   shared RNG state. An empty plan (the default) injects nothing and
//!   leaves pipeline output bit-identical to a run without the plan.
//! * [`HealthReport`] — a thread-safe sink recording every fault detected
//!   and every recovery action taken, stage by stage. Pipelines return it
//!   alongside their result so operators can audit what degraded and how.
//!
//! The [`inject`] module additionally provides adversarial matrix
//! generators used by property tests in `ig-core` and `ig-nn`.

#![warn(missing_docs)]

mod health;
pub mod inject;
mod plan;
pub mod sanitize;

pub use health::{
    FaultCount, FaultKind, HealthEvent, HealthReport, HealthSummary, RecoveryAction, Stage,
};
pub use plan::{FaultPlan, GanFault};
