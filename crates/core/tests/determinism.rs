//! Full-run determinism: a complete train → label run through the stage
//! graph is a pure function of the run seed. Two fresh contexts with the
//! same seed (separate artifact stores, so nothing is shared by
//! reference) must produce bit-identical weak labels and probabilities,
//! and memoization must not change the outcome.

use ig_core::{DevSet, InspectorGadget, Pattern, PipelineConfig, RunContext};
use ig_imaging::GrayImage;
use ig_nn::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Miniature dark-square detection task (same shape as the unit-test
/// fixture in `pipeline.rs`): 30 images, one crowd pattern.
fn make_task(n: usize, seed: u64) -> (Vec<Pattern>, Vec<GrayImage>, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut images = Vec::new();
    let mut labels = Vec::new();
    for i in 0..n {
        let defect = i % 2 == 1;
        let mut img = GrayImage::from_fn(48, 32, |x, y| {
            0.65 + 0.05 * ((x as f32 * 0.4).sin() * (y as f32 * 0.3).cos())
        });
        if defect {
            let x = rng.gen_range(2..38);
            let y = rng.gen_range(2..22);
            img.fill_rect(x, y, 7, 7, 0.15);
        }
        images.push(img);
        labels.push(usize::from(defect));
    }
    let mut pat = GrayImage::filled(7, 7, 0.15);
    pat.fill_rect(0, 0, 7, 1, 0.6);
    (vec![Pattern::crowd(pat)], images, labels)
}

/// One full pipeline run under `ctx`: train on the first 20 images, label
/// the held-out 10. Every random decision derives from the context.
fn run_once(ctx: &RunContext) -> (Vec<usize>, Matrix) {
    let (patterns, images, labels) = make_task(30, 5);
    let refs: Vec<&GrayImage> = images.iter().collect();
    let config = PipelineConfig {
        tune: false,
        threads: 2,
        ..Default::default()
    };
    let mut rng = ctx.rng(0);
    let ig = InspectorGadget::train_in(
        ctx,
        patterns,
        DevSet::Raw(&refs[..20]),
        &labels[..20],
        2,
        &config,
        &mut rng,
    )
    .expect("training succeeds on the toy task");
    let out = ig.label(&refs[20..]);
    (out.labels, out.probabilities)
}

#[test]
fn same_seed_produces_identical_weak_labels() {
    let (labels_a, proba_a) = run_once(&RunContext::new(11));
    let (labels_b, proba_b) = run_once(&RunContext::new(11));
    assert_eq!(labels_a, labels_b, "weak labels must be seed-deterministic");
    assert_eq!(
        proba_a.as_slice(),
        proba_b.as_slice(),
        "probabilities must be bit-identical across fresh runs"
    );
}

#[test]
fn memoization_does_not_change_the_outcome() {
    let (labels_memo, proba_memo) = run_once(&RunContext::new(11));
    let (labels_raw, proba_raw) = run_once(&RunContext::new(11).with_memoization(false));
    assert_eq!(labels_memo, labels_raw);
    assert_eq!(proba_memo.as_slice(), proba_raw.as_slice());
}
