//! Stochastic crowdworker models.
//!
//! A worker sees a development image and produces bounding boxes. Workers
//! are imperfect in four ways the paper's workflow must absorb: coordinate
//! jitter, systematic size bias (some people draw tight boxes, some draw
//! loose ones), missed defects, and spurious boxes on defect-free regions.

use ig_imaging::BBox;
use ig_synth::LabeledImage;
use rand::Rng;

/// Noise parameters of one simulated crowdworker.
#[derive(Debug, Clone, Copy)]
pub struct WorkerModel {
    /// Std-dev of Gaussian jitter added to each box edge, in pixels.
    pub jitter_std: f32,
    /// Multiplicative bias on box size (1.0 = calibrated, >1 loose boxes).
    pub size_bias: f32,
    /// Probability of not annotating a visible defect.
    pub miss_rate: f64,
    /// Expected number of spurious boxes per image.
    pub spurious_rate: f64,
}

impl WorkerModel {
    /// A careful worker: small jitter, rarely misses, near-zero spurious.
    pub fn careful() -> Self {
        Self {
            jitter_std: 1.0,
            size_bias: 1.05,
            miss_rate: 0.03,
            spurious_rate: 0.02,
        }
    }

    /// A typical worker.
    pub fn typical() -> Self {
        Self {
            jitter_std: 2.5,
            size_bias: 1.15,
            miss_rate: 0.12,
            spurious_rate: 0.08,
        }
    }

    /// A sloppy worker: heavy jitter, frequent misses and spurious boxes.
    pub fn sloppy() -> Self {
        Self {
            jitter_std: 5.0,
            size_bias: 1.4,
            miss_rate: 0.3,
            spurious_rate: 0.25,
        }
    }

    /// The default three-worker crew used in experiments: three *typical*
    /// workers of similar (imperfect) quality with slightly different
    /// biases. Homogeneous moderate noise is the regime the paper's
    /// workflow assumes — averaging independent jitter then reduces box
    /// error by ~√3, which is what makes the "average" strategy win
    /// Table 3. (A crew containing one near-perfect worker would invert
    /// that: combining their boxes with noisy ones only hurts.)
    pub fn default_crew() -> Vec<WorkerModel> {
        vec![
            WorkerModel {
                jitter_std: 2.5,
                size_bias: 1.1,
                miss_rate: 0.1,
                spurious_rate: 0.1,
            },
            WorkerModel {
                jitter_std: 3.0,
                size_bias: 1.2,
                miss_rate: 0.12,
                spurious_rate: 0.15,
            },
            WorkerModel {
                jitter_std: 3.5,
                size_bias: 1.3,
                miss_rate: 0.15,
                spurious_rate: 0.2,
            },
        ]
    }

    /// Annotate one image: perturbed versions of the gold boxes the worker
    /// noticed, plus any spurious boxes.
    pub fn annotate(&self, image: &LabeledImage, rng: &mut impl Rng) -> Vec<BBox> {
        let (w, h) = image.image.dims();
        let mut out = Vec::new();
        for gold in &image.defect_boxes {
            // Difficult (near-invisible) defects are missed more often.
            let miss = if image.difficult {
                (self.miss_rate * 3.0).min(0.9)
            } else {
                self.miss_rate
            };
            if rng.gen_bool(miss) {
                continue;
            }
            let jitter = |rng: &mut dyn rand::RngCore| -> f32 {
                // Cheap approximate Gaussian: mean of 4 uniforms.
                let mut acc = 0.0f32;
                for _ in 0..4 {
                    acc += rng.gen_range(-1.0..1.0f32);
                }
                acc * 0.5 * self.jitter_std * 2.0_f32.sqrt()
            };
            let grow_w = gold.w * (self.size_bias - 1.0) * rng.gen_range(0.3..1.2);
            let grow_h = gold.h * (self.size_bias - 1.0) * rng.gen_range(0.3..1.2);
            let b = BBox::new(
                gold.x - grow_w * 0.5 + jitter(rng),
                gold.y - grow_h * 0.5 + jitter(rng),
                gold.w + grow_w + jitter(rng).abs(),
                gold.h + grow_h + jitter(rng).abs(),
            );
            if let Some(clipped) = b.clip(w, h) {
                out.push(clipped);
            }
        }
        // Spurious boxes: random small rectangles on the background.
        let mut spurious_budget = self.spurious_rate;
        while spurious_budget > 0.0 {
            if rng.gen_bool(spurious_budget.min(1.0)) {
                let bw = rng.gen_range(4.0..(w as f32 * 0.2).max(5.0));
                let bh = rng.gen_range(4.0..(h as f32 * 0.4).max(5.0));
                let b = BBox::new(
                    rng.gen_range(0.0..(w as f32 - bw).max(1.0)),
                    rng.gen_range(0.0..(h as f32 - bh).max(1.0)),
                    bw,
                    bh,
                );
                if let Some(clipped) = b.clip(w, h) {
                    out.push(clipped);
                }
            }
            spurious_budget -= 1.0;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ig_synth::spec::{DatasetKind, DatasetSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn defective_image() -> LabeledImage {
        let d = ig_synth::generate(&DatasetSpec::quick(DatasetKind::ProductScratch, 21));
        d.images
            .into_iter()
            .find(|i| i.label == 1 && !i.difficult)
            .expect("quick dataset has defective images")
    }

    #[test]
    fn careful_worker_boxes_overlap_gold() {
        let img = defective_image();
        let worker = WorkerModel::careful();
        let mut rng = StdRng::seed_from_u64(0);
        let mut overlap_hits = 0;
        let mut total = 0;
        for _ in 0..20 {
            let boxes = worker.annotate(&img, &mut rng);
            for b in &boxes {
                total += 1;
                if img.defect_boxes.iter().any(|g| g.iou(b) > 0.3) {
                    overlap_hits += 1;
                }
            }
        }
        assert!(total > 0);
        assert!(
            overlap_hits * 10 >= total * 8,
            "{overlap_hits}/{total} careful boxes overlap gold"
        );
    }

    #[test]
    fn sloppy_worker_misses_more() {
        let img = defective_image();
        let mut rng = StdRng::seed_from_u64(1);
        let count = |w: &WorkerModel, rng: &mut StdRng| -> usize {
            (0..200).map(|_| w.annotate(&img, rng).len()).sum()
        };
        let careful = count(&WorkerModel::careful(), &mut rng);
        let sloppy = count(&WorkerModel::sloppy(), &mut rng);
        // Sloppy workers lose boxes to misses and gain spurious ones; with
        // one gold box per image the miss effect may be partly offset, so
        // compare *matching* boxes instead.
        let matching = |w: &WorkerModel, rng: &mut StdRng| -> usize {
            (0..200)
                .map(|_| {
                    w.annotate(&img, rng)
                        .iter()
                        .filter(|b| img.defect_boxes.iter().any(|g| g.iou(b) > 0.2))
                        .count()
                })
                .sum()
        };
        let careful_match = matching(&WorkerModel::careful(), &mut rng);
        let sloppy_match = matching(&WorkerModel::sloppy(), &mut rng);
        assert!(
            sloppy_match < careful_match,
            "{sloppy_match} vs {careful_match}"
        );
        let _ = (careful, sloppy);
    }

    #[test]
    fn boxes_are_inside_the_image() {
        let img = defective_image();
        let (w, h) = img.image.dims();
        let mut rng = StdRng::seed_from_u64(2);
        for worker in WorkerModel::default_crew() {
            for _ in 0..30 {
                for b in worker.annotate(&img, &mut rng) {
                    assert!(b.x >= 0.0 && b.y >= 0.0);
                    assert!(b.x1() <= w as f32 && b.y1() <= h as f32);
                    assert!(b.area() >= 1.0);
                }
            }
        }
    }

    #[test]
    fn ok_image_yields_only_spurious_boxes() {
        let d = ig_synth::generate(&DatasetSpec::quick(DatasetKind::ProductScratch, 22));
        let ok = d
            .images
            .iter()
            .find(|i| i.label == 0)
            .expect("quick dataset has OK images");
        let worker = WorkerModel::sloppy();
        let mut rng = StdRng::seed_from_u64(3);
        let total: usize = (0..100).map(|_| worker.annotate(ok, &mut rng).len()).sum();
        // spurious_rate 0.25 → about 25 boxes over 100 images.
        assert!((5..=60).contains(&total), "spurious count {total}");
    }

    #[test]
    fn difficult_defects_are_missed_more_often() {
        let d = ig_synth::generate(&DatasetSpec {
            difficult_fraction: 1.0,
            ..DatasetSpec::quick(DatasetKind::ProductScratch, 23)
        });
        let hard = d
            .images
            .iter()
            .find(|i| i.label == 1 && i.difficult)
            .expect("all defects difficult");
        let easy = defective_image();
        let worker = WorkerModel::typical();
        let mut rng = StdRng::seed_from_u64(4);
        let hits = |img: &LabeledImage, rng: &mut StdRng| -> usize {
            (0..300)
                .map(|_| {
                    worker
                        .annotate(img, rng)
                        .iter()
                        .filter(|b| img.defect_boxes.iter().any(|g| g.iou(b) > 0.1))
                        .count()
                })
                .sum()
        };
        let hard_hits = hits(hard, &mut rng) as f64 / hard.defect_boxes.len() as f64;
        let easy_hits = hits(&easy, &mut rng) as f64 / easy.defect_boxes.len() as f64;
        assert!(
            hard_hits < easy_hits,
            "difficult {hard_hits:.1} vs easy {easy_hits:.1}"
        );
    }
}
