//! C1: lock discipline in the runtime store/disk tier and the imaging
//! prepared-pattern cache.
//!
//! Three invariants, all over the workspace call graph:
//!
//! 1. **One partial order.** Acquiring lock B while holding lock A adds
//!    the edge A→B (including acquisitions inside callees, via per-fn
//!    transitive summaries); any cycle in that graph is a potential
//!    deadlock and is reported.
//! 2. **The advisory pid lock may not be held across `?`.** The lock is
//!    a `create_new` file owned by a live pid — an early exit leaks it,
//!    and since the owner is alive the stale-lock breaker will never
//!    reclaim it: every later save from this process is silently skipped.
//! 3. **No `?` while two RAII guards are held.** A single guard across
//!    `?` is fine (drop unlocks it); two means the early exit's drop
//!    order is an implicit lock-order commitment no one reviewed.
//!
//! Acquisition is recognized structurally: `.lock()` method calls
//! (plus `.read()`/`.write()` on receivers that name a lock), helper
//! methods whose own body acquires (`Store::lock`), and
//! `OpenOptions…create_new(true)…open(..)` chains for the advisory lock.
//! `match` arms are classified by their pattern tokens: an arm matching
//! `Err`/`false`/`None` observed the failed acquisition and holds
//! nothing; other arms hold the lock, and an arm that falls through
//! leaves it held for the statements after the `match`.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{walk_expr, Block, Expr, ExprKind, LetPat, Span, Stmt};
use crate::callgraph::CallGraph;
use crate::context::{lock_scope, FileContext};
use crate::report::Diagnostic;
use crate::symbols::{Resolution, Symbols};

/// Identity of the `create_new` pid-lock file.
const ADVISORY: &str = "advisory-pid-lock";

/// Depth bound for per-fn transitive acquire summaries.
const MAX_SUMMARY_DEPTH: usize = 4;

/// A lock-order edge with the site that first established it.
type Edges = BTreeMap<(String, String), (usize, usize)>; // -> (file, tok)

pub fn check(ctxs: &[FileContext], sy: &Symbols, graph: &CallGraph, out: &mut Vec<Diagnostic>) {
    // Pass 1: direct acquisitions of every fn in scope, then transitive
    // summaries over the call graph (restricted to in-scope files).
    let scoped: BTreeSet<usize> = sy
        .fns
        .iter()
        .enumerate()
        .filter(|(_, s)| lock_scope(ctxs[s.file].path))
        .map(|(i, _)| i)
        .collect();
    if scoped.is_empty() {
        return;
    }
    let mut direct: BTreeMap<usize, Vec<(String, usize)>> = BTreeMap::new();
    for &si in &scoped {
        direct.insert(si, direct_acquires(ctxs, sy, si));
    }
    let mut summary: BTreeMap<usize, BTreeSet<String>> = BTreeMap::new();
    for &si in &scoped {
        let mut acc: BTreeSet<String> = BTreeSet::new();
        let mut frontier = vec![si];
        let mut seen = BTreeSet::new();
        for _ in 0..=MAX_SUMMARY_DEPTH {
            let mut next = Vec::new();
            for &f in &frontier {
                if !seen.insert(f) {
                    continue;
                }
                if let Some(ds) = direct.get(&f) {
                    acc.extend(ds.iter().map(|(id, _)| id.clone()));
                }
                for &m in &graph.adj[graph.node_of_sym[f]] {
                    if let Some(ns) = graph.nodes[m].sym {
                        if scoped.contains(&ns) {
                            next.push(ns);
                        }
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            frontier = next;
        }
        summary.insert(si, acc);
    }

    // Pass 2: walk each in-scope fn's statements in order, tracking the
    // held set, flagging `?` under locks and recording order edges.
    let mut edges: Edges = BTreeMap::new();
    for &si in &scoped {
        let s = &sy.fns[si];
        let ctx = &ctxs[s.file];
        if s.in_test || !ctx.governed(ctx.ast.fns[s.fn_idx].name_tok) {
            continue;
        }
        let sites: Vec<(usize, usize)> = graph
            .sites
            .iter()
            .filter(|site| graph.nodes[site.caller].sym == Some(si))
            .map(|site| (site.tok, site.callee))
            .collect();
        let mut pass = Pass {
            ctx,
            sy,
            graph,
            fi: s.file,
            self_type: s.self_type.clone().unwrap_or_default(),
            direct: &direct,
            summary: &summary,
            sites,
            edges: &mut edges,
            out,
        };
        let mut state = State::default();
        pass.block(&ctx.ast.fns[s.fn_idx].body, &mut state);
    }

    // Cycle detection over the order edges.
    report_cycles(ctxs, &edges, out);
}

#[derive(Debug, Default, Clone)]
struct State {
    /// Held RAII guards: (lock identity, binding name, acquire token).
    held: Vec<(String, String, usize)>,
    advisory: bool,
}

struct Pass<'a, 'w> {
    ctx: &'a FileContext<'a>,
    sy: &'a Symbols,
    graph: &'a CallGraph,
    fi: usize,
    self_type: String,
    direct: &'w BTreeMap<usize, Vec<(String, usize)>>,
    summary: &'w BTreeMap<usize, BTreeSet<String>>,
    /// This fn's call sites: (token, callee node).
    sites: Vec<(usize, usize)>,
    edges: &'w mut Edges,
    out: &'w mut Vec<Diagnostic>,
}

impl Pass<'_, '_> {
    fn block(&mut self, b: &Block, state: &mut State) {
        for stmt in &b.stmts {
            match stmt {
                Stmt::Let(l) => {
                    if let Some(init) = &l.init {
                        if self.structured(init, state) {
                            // Bindings of structured exprs are not guards.
                        } else {
                            self.leaf_effects(init, state);
                            if let Some((id, tok)) = self.acquire_in(init) {
                                self.order_edges_to(&id, tok, state);
                                if let LetPat::Name { name, .. } = &l.pat {
                                    state.held.push((id, name.clone(), tok));
                                }
                            }
                        }
                    }
                    if let Some(eb) = &l.else_block {
                        let mut branch = state.clone();
                        self.block(eb, &mut branch);
                    }
                    self.stmt_releases(l.span, state);
                }
                Stmt::Expr(es) => {
                    if !self.structured(&es.expr, state) {
                        self.leaf_effects(&es.expr, state);
                        if let Some((id, tok)) = self.acquire_in(&es.expr) {
                            // Temporary guard: orders, but is not held after.
                            self.order_edges_to(&id, tok, state);
                        }
                    }
                    self.stmt_releases(es.span, state);
                }
                Stmt::Item(_) | Stmt::Empty(_) => {}
            }
        }
    }

    /// Handle control-flow expressions by recursing into their blocks.
    /// Returns false for leaf expressions (handled by the caller).
    fn structured(&mut self, e: &Expr, state: &mut State) -> bool {
        match &e.kind {
            ExprKind::If { cond, then, els } => {
                self.leaf_effects(cond, state);
                let mut taken = state.clone();
                self.block(then, &mut taken);
                if let Some(els) = els {
                    let mut other = state.clone();
                    if !self.structured(els, &mut other) {
                        self.leaf_effects(els, &mut other);
                    }
                }
                true
            }
            ExprKind::Loop { body, .. } => {
                self.block(body, state);
                true
            }
            ExprKind::BlockExpr(b) => {
                self.block(b, state);
                true
            }
            ExprKind::Match { scrutinee, arms } => {
                if span_has(self.ctx, scrutinee.span, &["acquire_lock", "create_new"]) {
                    self.advisory_match(scrutinee, arms, state);
                } else {
                    self.leaf_effects(scrutinee, state);
                    for (_, arm) in arms {
                        let mut branch = state.clone();
                        if !self.structured(arm, &mut branch) {
                            self.leaf_effects(arm, &mut branch);
                        }
                    }
                }
                true
            }
            _ => false,
        }
    }

    /// A `match` whose scrutinee attempts the advisory lock: arms whose
    /// pattern observed failure (`Err`/`false`/`None`) hold nothing; the
    /// rest run — and may fall through — with the lock held.
    fn advisory_match(&mut self, scrutinee: &Expr, arms: &[(Span, Expr)], state: &mut State) {
        self.leaf_effects(scrutinee, state);
        self.order_edges_to(ADVISORY, scrutinee.span.lo, state);
        let mut falls_through_held = false;
        for (pat, arm) in arms {
            let failed = span_has(self.ctx, *pat, &["Err", "false", "None"]);
            let mut branch = state.clone();
            branch.advisory = branch.advisory || !failed;
            if !self.structured(arm, &mut branch) {
                self.leaf_effects(arm, &mut branch);
            }
            if !failed && !diverges(arm) {
                falls_through_held = true;
            }
        }
        state.advisory = state.advisory || falls_through_held;
    }

    /// Leaf-statement effects: flag `?` under locks and record order
    /// edges for acquisitions inside callees (per-fn summaries).
    fn leaf_effects(&mut self, e: &Expr, state: &mut State) {
        let mut trys: Vec<usize> = Vec::new();
        scan_trys(e, &mut trys);
        for tok in trys {
            if state.advisory {
                self.diag(
                    tok,
                    "`?` can exit while the advisory pid lock is held — the lock file \
                     is owned by a live pid, so the stale-lock breaker never reclaims \
                     it and every later save from this process is silently skipped; \
                     release the lock before propagating the error"
                        .to_string(),
                );
            } else if state.held.len() >= 2 {
                let names: Vec<&str> = state.held.iter().map(|(id, _, _)| id.as_str()).collect();
                self.diag(
                    tok,
                    format!(
                        "`?` can exit while {} lock guards are held ({}) — the early \
                         exit's drop order is an unreviewed lock-order commitment; \
                         release one guard before the fallible call",
                        state.held.len(),
                        names.join(", ")
                    ),
                );
            }
        }
        // Acquisitions performed by callees, from the summaries.
        if state.held.is_empty() && !state.advisory {
            return;
        }
        let callee_acquires: Vec<(usize, String)> = self
            .sites
            .iter()
            .filter(|(tok, _)| *tok >= e.span.lo && *tok < e.span.hi)
            .filter_map(|&(tok, callee)| {
                let cs = self.graph.nodes[callee].sym?;
                Some((tok, self.summary.get(&cs)?))
            })
            .flat_map(|(tok, acquired)| acquired.iter().map(move |b| (tok, b.clone())))
            .collect();
        for (tok, b) in callee_acquires {
            self.order_edge(&b, tok, state);
        }
    }

    /// Record A→`to` for every held lock A (and the advisory lock).
    fn order_edges_to(&mut self, to: &str, tok: usize, state: &State) {
        self.order_edge(to, tok, state);
    }

    fn order_edge(&mut self, to: &str, tok: usize, state: &State) {
        for (a, _, _) in &state.held {
            if a != to {
                self.edges
                    .entry((a.clone(), to.to_string()))
                    .or_insert((self.fi, tok));
            }
        }
        if state.advisory && to != ADVISORY {
            self.edges
                .entry((ADVISORY.to_string(), to.to_string()))
                .or_insert((self.fi, tok));
        }
    }

    /// First RAII acquisition inside `e`, as (identity, token).
    fn acquire_in(&self, e: &Expr) -> Option<(String, usize)> {
        let mut found: Option<(String, usize)> = None;
        walk_expr(e, &mut |x| {
            if found.is_some() {
                return;
            }
            let ExprKind::MethodCall {
                recv,
                method,
                method_tok,
                ..
            } = &x.kind
            else {
                return;
            };
            let is_lock = method == "lock"
                || ((method == "read" || method == "write")
                    && span_has(self.ctx, recv.span, &["lock", "rw"]));
            if !is_lock {
                return;
            }
            match &recv.kind {
                ExprKind::Field { base, name } if is_self(base) => {
                    found = Some((format!("{}.{}", self.self_type, name), *method_tok));
                }
                ExprKind::Path(p) if matches!(p.as_slice(), [s] if s == "self") => {
                    // `self.lock()` helper: its identity is whatever the
                    // helper's own body acquires.
                    if let Resolution::Fns(ids) =
                        self.sy.resolve_method(Some(&self.self_type), method)
                    {
                        for id in ids {
                            if let Some((first, _)) = self.direct.get(&id).and_then(|d| d.first()) {
                                found = Some((first.clone(), *method_tok));
                                break;
                            }
                        }
                    }
                }
                _ => {}
            }
        });
        found
    }

    /// End-of-statement releases: `drop(guard)` and advisory
    /// `remove_file`, recognized over the statement's tokens.
    fn stmt_releases(&mut self, span: Span, state: &mut State) {
        let toks = span.tokens(self.ctx.tokens);
        if toks.iter().any(|t| t.is_ident("remove_file")) {
            state.advisory = false;
        }
        for (i, t) in toks.iter().enumerate() {
            if t.is_ident("drop") && toks.get(i + 1).is_some_and(|t| t.is_punct("(")) {
                if let Some(arg) = toks.get(i + 2) {
                    state.held.retain(|(_, var, _)| var != &arg.text);
                }
            }
        }
    }

    fn diag(&mut self, tok: usize, message: String) {
        let (line, col) = self.ctx.tokens.get(tok).map_or((0, 1), |t| (t.line, t.col));
        self.out.push(Diagnostic {
            rule: "lock-discipline".to_string(),
            path: self.ctx.path.to_string(),
            line,
            col,
            message,
        });
    }
}

/// Direct acquisitions in the body of `si`: RAII guards on `self` fields
/// and advisory `create_new` chains.
fn direct_acquires(ctxs: &[FileContext], sy: &Symbols, si: usize) -> Vec<(String, usize)> {
    let s = &sy.fns[si];
    let ctx = &ctxs[s.file];
    let ty = s.self_type.clone().unwrap_or_default();
    let mut acquires = Vec::new();
    walk_expr_in_body(ctx, s.fn_idx, &mut |x| {
        let ExprKind::MethodCall {
            recv,
            method,
            method_tok,
            ..
        } = &x.kind
        else {
            return;
        };
        if method == "create_new" {
            acquires.push((ADVISORY.to_string(), *method_tok));
            return;
        }
        let is_lock = method == "lock"
            || ((method == "read" || method == "write")
                && span_has(ctx, recv.span, &["lock", "rw"]));
        if !is_lock {
            return;
        }
        if let ExprKind::Field { base, name } = &recv.kind {
            if is_self(base) {
                acquires.push((format!("{ty}.{name}"), *method_tok));
            }
        }
    });
    acquires
}

fn walk_expr_in_body(ctx: &FileContext, fn_idx: usize, f: &mut impl FnMut(&Expr)) {
    if let Some(decl) = ctx.ast.fns.get(fn_idx) {
        crate::ast::walk_block(&decl.body, f);
    }
}

/// Collect the `?` tokens inside `e`, skipping closure bodies (their `?`
/// propagates within the closure, not the enclosing fn).
fn scan_trys(e: &Expr, out: &mut Vec<usize>) {
    match &e.kind {
        ExprKind::Try(inner) => {
            out.push(e.span.hi.saturating_sub(1));
            scan_trys(inner, out);
        }
        ExprKind::Closure { .. } => {}
        ExprKind::Call { callee, args } => {
            scan_trys(callee, out);
            for a in args {
                scan_trys(a, out);
            }
        }
        ExprKind::MethodCall { recv, args, .. } => {
            scan_trys(recv, out);
            for a in args {
                scan_trys(a, out);
            }
        }
        ExprKind::Unary(i) | ExprKind::Cast(i) => scan_trys(i, out),
        ExprKind::Field { base, .. } => scan_trys(base, out),
        ExprKind::Index { base, index } => {
            scan_trys(base, out);
            scan_trys(index, out);
        }
        ExprKind::Binary { children } => {
            for c in children {
                scan_trys(c, out);
            }
        }
        ExprKind::Tuple(items) | ExprKind::Array(items) => {
            for i in items {
                scan_trys(i, out);
            }
        }
        ExprKind::Macro { args, repeat, .. } => {
            for a in args {
                scan_trys(a, out);
            }
            if let Some((elem, len)) = repeat {
                scan_trys(elem, out);
                scan_trys(len, out);
            }
        }
        ExprKind::Jump(Some(i)) => scan_trys(i, out),
        ExprKind::LetCond { expr, .. } => scan_trys(expr, out),
        _ => {}
    }
}

/// Does every path through `e` leave the enclosing fn or loop?
/// (Conservative: only plain jumps and blocks ending in one.)
fn diverges(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Jump(_) => true,
        ExprKind::Try(inner) => diverges(inner),
        ExprKind::BlockExpr(b) => {
            b.stmts.iter().rev().find_map(|s| match s {
                Stmt::Expr(es) => Some(diverges(&es.expr)),
                Stmt::Let(_) => Some(false),
                _ => None,
            }) == Some(true)
        }
        _ => false,
    }
}

fn is_self(e: &Expr) -> bool {
    matches!(&e.kind, ExprKind::Path(p) if matches!(p.as_slice(), [s] if s == "self"))
}

fn span_has(ctx: &FileContext, span: Span, names: &[&str]) -> bool {
    span.tokens(ctx.tokens)
        .iter()
        .any(|t| names.iter().any(|n| t.text.contains(n)))
}

/// Report one diagnostic per distinct cycle in the lock-order graph.
fn report_cycles(ctxs: &[FileContext], edges: &Edges, out: &mut Vec<Diagnostic>) {
    let mut adj: BTreeMap<&String, Vec<&String>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        adj.entry(a).or_default().push(b);
    }
    let mut reported: BTreeSet<Vec<&String>> = BTreeSet::new();
    for ((a, b), &(fi, tok)) in edges {
        // A cycle through this edge exists iff `a` is reachable from `b`.
        let mut seen = BTreeSet::new();
        let mut stack = vec![b];
        let mut cyclic = false;
        while let Some(n) = stack.pop() {
            if n == a {
                cyclic = true;
                break;
            }
            if seen.insert(n) {
                if let Some(next) = adj.get(n) {
                    stack.extend(next.iter().copied());
                }
            }
        }
        if !cyclic {
            continue;
        }
        let mut key = vec![a, b];
        key.sort();
        if !reported.insert(key) {
            continue;
        }
        let ctx = &ctxs[fi];
        let (line, col) = ctx.tokens.get(tok).map_or((0, 1), |t| (t.line, t.col));
        out.push(Diagnostic {
            rule: "lock-discipline".to_string(),
            path: ctx.path.to_string(),
            line,
            col,
            message: format!(
                "lock-order cycle: `{a}` is acquired before `{b}` here, but another \
                 path acquires them in the opposite order — two threads taking the \
                 two paths deadlock; pick one order and hold to it everywhere"
            ),
        });
    }
}
