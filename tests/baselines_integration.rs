//! Integration tests exercising the baseline systems through the public
//! API on the same synthetic data the experiments use.

use inspector_gadget::baselines::cnn_models::CnnArch;
use inspector_gadget::baselines::goggles::{Goggles, GogglesConfig};
use inspector_gadget::baselines::selflearn::{SelfLearnConfig, SelfLearner};
use inspector_gadget::baselines::snuba::{Snuba, SnubaConfig};
use inspector_gadget::baselines::transfer::{fine_tune, pretrain};
use inspector_gadget::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn scratch_dataset(seed: u64) -> Dataset {
    inspector_gadget::synth::generate(&DatasetSpec {
        n: 50,
        n_defective: 20,
        noisy_fraction: 0.0,
        difficult_fraction: 0.0,
        ..DatasetSpec::quick(DatasetKind::ProductScratch, seed)
    })
}

#[test]
fn snuba_runs_on_fgf_features() {
    // Snuba is noisy on tiny dev sets (the paper reports it consistently
    // below IG); average over seeds and require non-trivial signal.
    let mut best = 0.0f64;
    for seed in [10u64, 11, 12] {
        let mut rng = StdRng::seed_from_u64(seed);
        let dataset = scratch_dataset(seed);
        let dev: Vec<&LabeledImage> = dataset.images.iter().take(20).collect();
        let crowd = CrowdWorkflow::full().run(&dev, &mut rng);
        let fg = FeatureGenerator::new(Pattern::wrap_all(crowd.patterns, PatternSource::Crowd))
            .expect("patterns exist");
        let dev_imgs: Vec<&GrayImage> = dev.iter().map(|l| &l.image).collect();
        let dev_labels: Vec<usize> = dev.iter().map(|l| l.label).collect();
        let dev_features = fg.feature_matrix(&dev_imgs);
        let rest_imgs: Vec<&GrayImage> = dataset.images[20..].iter().map(|l| &l.image).collect();
        let rest_features = fg.feature_matrix(&rest_imgs);
        let snuba = Snuba::train(
            &dev_features,
            &dev_labels,
            &rest_features,
            2,
            &SnubaConfig::default(),
            &mut rng,
        );
        assert!(snuba.num_lfs() >= 1, "Snuba synthesized no LFs");
        let preds = snuba.label(&rest_features);
        assert_eq!(preds.len(), rest_imgs.len());
        let gold: Vec<bool> = dataset.images[20..].iter().map(|l| l.label == 1).collect();
        let pred_b: Vec<bool> = preds.iter().map(|&p| p == 1).collect();
        best = best.max(binary_f1(&gold, &pred_b).f1);
    }
    assert!(best > 0.4, "Snuba best-of-3 F1 only {best}");
}

#[test]
fn goggles_runs_on_dataset_images() {
    let mut rng = StdRng::seed_from_u64(1);
    let dataset = scratch_dataset(11);
    let refs: Vec<&GrayImage> = dataset.images.iter().map(|l| &l.image).collect();
    let dev: Vec<(usize, usize)> = (0..10).map(|i| (i, dataset.images[i].label)).collect();
    let goggles = Goggles::fit(&refs, &dev, 2, &GogglesConfig::default(), &mut rng);
    let preds = goggles.label(&refs);
    assert_eq!(preds.len(), dataset.len());
    assert!(preds.iter().all(|&p| p < 2));
}

#[test]
fn self_learning_baselines_run_on_all_architectures() {
    let dataset = scratch_dataset(12);
    let dev: Vec<&LabeledImage> = dataset.images.iter().take(20).collect();
    let dev_imgs: Vec<&GrayImage> = dev.iter().map(|l| &l.image).collect();
    let dev_labels: Vec<usize> = dev.iter().map(|l| l.label).collect();
    let rest: Vec<&GrayImage> = dataset.images[20..].iter().map(|l| &l.image).collect();
    let config = SelfLearnConfig {
        side: 16,
        epochs: 4,
        ..Default::default()
    };
    for arch in [
        CnnArch::MiniVgg,
        CnnArch::MiniMobileNet,
        CnnArch::MiniResNet,
    ] {
        let mut rng = StdRng::seed_from_u64(13);
        let mut learner = SelfLearner::train(arch, &dev_imgs, &dev_labels, 2, &config, &mut rng);
        let preds = learner.label(&rest);
        assert_eq!(preds.len(), rest.len(), "{arch:?}");
    }
}

#[test]
fn transfer_pipeline_synthnet_to_defects() {
    let mut rng = StdRng::seed_from_u64(2);
    let synthnet = inspector_gadget::synth::synthnet::generate(32, 16, 14);
    let src_imgs: Vec<&GrayImage> = synthnet.images.iter().map(|l| &l.image).collect();
    let src_labels = synthnet.labels();
    let config = SelfLearnConfig {
        side: 16,
        epochs: 3,
        ..Default::default()
    };
    let pre = pretrain(
        CnnArch::MiniVgg,
        &src_imgs,
        &src_labels,
        synthnet.task.num_classes(),
        &config,
        &mut rng,
    );
    let dataset = scratch_dataset(15);
    let dev: Vec<&LabeledImage> = dataset.images.iter().take(16).collect();
    let dev_imgs: Vec<&GrayImage> = dev.iter().map(|l| &l.image).collect();
    let dev_labels: Vec<usize> = dev.iter().map(|l| l.label).collect();
    let mut tuned = fine_tune(pre, &dev_imgs, &dev_labels, 2, &config, &mut rng);
    let rest: Vec<&GrayImage> = dataset.images[16..].iter().map(|l| &l.image).collect();
    let preds = tuned.label(&rest);
    assert_eq!(preds.len(), rest.len());
    assert!(preds.iter().all(|&p| p < 2));
}

#[test]
fn inspector_gadget_vs_goggles_on_tiny_defects() {
    // The paper's qualitative Figure 9 story on Product (bubble): pattern
    // matching handles tiny defects; object-centric affinity coding does
    // not. The effect needs paper-like geometry — a few-pixel bubble in a
    // long strip vanishes when GOGGLES' feature extractor downscales the
    // image, while NCC matches it at native resolution.
    let mut rng = StdRng::seed_from_u64(3);
    let dataset = inspector_gadget::synth::generate(&DatasetSpec {
        n: 60,
        n_defective: 20,
        noisy_fraction: 0.0,
        difficult_fraction: 0.0,
        ..DatasetSpec::medium(DatasetKind::ProductBubble, 16)
    });
    let dev: Vec<&LabeledImage> = dataset.images.iter().take(24).collect();
    let test: Vec<&LabeledImage> = dataset.images[24..].iter().collect();
    let test_imgs: Vec<&GrayImage> = test.iter().map(|l| &l.image).collect();
    let gold: Vec<usize> = test.iter().map(|l| l.label).collect();

    // Inspector Gadget.
    let crowd = CrowdWorkflow::full().run(&dev, &mut rng);
    let dev_imgs: Vec<&GrayImage> = dev.iter().map(|l| &l.image).collect();
    let dev_labels: Vec<usize> = dev.iter().map(|l| l.label).collect();
    let ig = InspectorGadget::train(
        Pattern::wrap_all(crowd.patterns, PatternSource::Crowd),
        &dev_imgs,
        &dev_labels,
        2,
        &PipelineConfig {
            tune: false,
            ..Default::default()
        },
        &mut rng,
    )
    .expect("IG trains");
    let ig_preds = ig.label(&test_imgs).labels;

    // GOGGLES.
    let all_refs: Vec<&GrayImage> = dataset.images.iter().map(|l| &l.image).collect();
    let dev_pairs: Vec<(usize, usize)> = (0..24).map(|i| (i, dataset.images[i].label)).collect();
    let goggles = Goggles::fit(
        &all_refs,
        &dev_pairs,
        2,
        &GogglesConfig::default(),
        &mut rng,
    );
    let gg_preds = goggles.label(&test_imgs);

    let to_f1 = |preds: &[usize]| {
        let g: Vec<bool> = gold.iter().map(|&v| v == 1).collect();
        let p: Vec<bool> = preds.iter().map(|&v| v == 1).collect();
        binary_f1(&g, &p).f1
    };
    let ig_f1 = to_f1(&ig_preds);
    let gg_f1 = to_f1(&gg_preds);
    assert!(
        ig_f1 > gg_f1,
        "IG ({ig_f1:.3}) should beat GOGGLES ({gg_f1:.3}) on tiny bubbles"
    );
}
