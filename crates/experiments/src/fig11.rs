//! Figure 11: model-tuning effectiveness — for each dataset, the min and
//! max test-set F1 over the whole MLP architecture grid, and the F1 of
//! the architecture Inspector Gadget's tuner actually picked using only
//! the development set.

use crate::common::{
    crowd_patterns, default_policies, f1, feature_generator, gan_config, ExpEnv, Prepared, Report,
};
use ig_augment::{augment, AugmentMethod};
use ig_core::labeler::{Labeler, LabelerConfig};
use ig_core::tuning::{candidate_architectures, tune_labeler, TuningConfig};
use ig_crowd::CrowdWorkflow;
use ig_nn::lbfgs::LbfgsConfig;
use ig_synth::spec::DatasetKind;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    min_f1: f64,
    max_f1: f64,
    tuned_f1: f64,
    tuned_hidden: Vec<usize>,
}

/// Run the Figure 11 reproduction.
pub fn run(env: &ExpEnv) {
    let seed = env.seed();
    let mut report = Report::new("fig11", &env.out);
    report.line(format!(
        "Figure 11 (reproduction, scale={}): F1 range over MLP architectures vs our tuning",
        env.scale().name()
    ));
    report.line(format!(
        "{:<22} {:>8} {:>8} {:>12}  {}",
        "Dataset", "Min", "Max", "Our tuning", "chosen hidden layers"
    ));
    let tuning = TuningConfig {
        lbfgs: LbfgsConfig {
            max_iters: 80,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut rows = Vec::new();
    for kind in DatasetKind::all() {
        let prepared = Prepared::new(&env.ctx, kind);
        let dev = prepared.dev_images();
        let num_classes = prepared.num_classes();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xf11a);
        let base = crowd_patterns(&dev, &CrowdWorkflow::full(), seed ^ 0xf11b);
        if base.is_empty() {
            report.line(format!(
                "{:<22} (skipped: no patterns)",
                kind.display_name()
            ));
            continue;
        }
        let patterns = augment(
            &base,
            AugmentMethod::Both,
            env.scale().augment_budget,
            &default_policies(kind),
            &gan_config(env.scale()),
            &mut rng,
        );
        let Some(fg) = feature_generator(&patterns) else {
            continue;
        };
        let dev_labels: Vec<usize> = dev.iter().map(|l| l.label).collect();
        // Dev/test matching caches live in the context's artifact store,
        // shared with every other driver that scores these datasets —
        // each image is pyramided exactly once per run.
        let dev_prep = prepared.dev_prepared(&env.ctx);
        let dev_features = fg.feature_matrix_prepared(&dev_prep[..dev.len()]);
        let test_labels = prepared.test_labels();
        let test_features = fg.feature_matrix_prepared(&prepared.test_prepared(&env.ctx));

        // Evaluate every candidate architecture directly on the test set
        // (the oracle bounds: "maximum and minimum possible F1 scores").
        let mut min_f1 = f64::INFINITY;
        let mut max_f1 = f64::NEG_INFINITY;
        for hidden in candidate_architectures(dev_features.cols(), tuning.max_hidden_layers) {
            let mut labeler = match Labeler::new(
                dev_features.cols(),
                LabelerConfig {
                    hidden: hidden.clone(),
                    num_classes,
                    l2: tuning.l2,
                    lbfgs: tuning.lbfgs,
                },
                &mut rng,
            ) {
                Ok(l) => l,
                Err(_) => continue,
            };
            if labeler.fit(&dev_features, &dev_labels).is_err() {
                continue;
            }
            let preds = labeler.predict(&test_features);
            let score = f1(num_classes, &test_labels, &preds);
            min_f1 = min_f1.min(score);
            max_f1 = max_f1.max(score);
        }

        // Our tuning: choose by dev-set CV only, then score on test.
        let mut rng2 = StdRng::seed_from_u64(seed ^ 0xf11c);
        let (tuned, tuning_report) =
            match tune_labeler(&dev_features, &dev_labels, num_classes, &tuning, &mut rng2) {
                Ok(v) => v,
                Err(e) => {
                    report.line(format!("{:<22} (tuning failed: {e})", kind.display_name()));
                    continue;
                }
            };
        let tuned_f1 = f1(num_classes, &test_labels, &tuned.predict(&test_features));

        report.line(format!(
            "{:<22} {:>8.3} {:>8.3} {:>12.3}  {:?}",
            kind.display_name(),
            min_f1,
            max_f1,
            tuned_f1,
            tuning_report.best_hidden
        ));
        rows.push(Row {
            dataset: kind.display_name().to_string(),
            min_f1,
            max_f1,
            tuned_f1,
            tuned_hidden: tuning_report.best_hidden,
        });
    }
    let near_max = rows
        .iter()
        .filter(|r| r.tuned_f1 >= r.max_f1 - 0.5 * (r.max_f1 - r.min_f1).max(1e-9))
        .count();
    report.line(format!(
        "Tuning lands in the upper half of the min–max range on {near_max}/{} datasets \
         (paper: tuning gets close to the maximum)",
        rows.len()
    ));
    report.finish(&rows);
}
