//! Suppression-debt budget and ledger.
//!
//! Every `ig-lint: allow(...)` is debt: a place where the invariant is
//! argued around instead of upheld. The committed baseline
//! (`results/lint_baseline.json`) records the budget and one ledger entry
//! per live suppression, keyed by **(rule, content hash of the suppressed
//! line)**. The path and line are recorded only as hints for humans: when
//! a file is renamed or the line drifts, the hash still matches and the
//! debt is recognized as the *same* debt, not new debt. Conversely a
//! brand-new suppression — even one within budget — fails enforcement
//! until the committed ledger is regenerated, so debt can only grow by an
//! explicit, reviewed edit to the committed file.
//!
//! The format is produced and consumed only by this module, so the reader
//! is a minimal key scanner rather than a general JSON parser (the repo
//! ships no serde; see `report::to_json` for the same trade).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::report::Report;

/// One ledger entry: a recorded suppression.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct BaselineEntry {
    /// Rule the suppression targets (one entry per rule of a multi-rule
    /// allow).
    pub rule: String,
    /// FNV-1a 64 hash of the suppressed line's content, annotation
    /// stripped — the identity key.
    pub content_hash: u64,
    /// Path at record time. Hint only; never used for matching.
    pub path: String,
    /// Line at record time. Hint only; never used for matching.
    pub line: u32,
}

/// The committed suppression-debt record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Baseline {
    /// Hard ceiling on workspace-wide allow annotations.
    pub suppression_budget: usize,
    /// Allow count at the time the baseline was committed (informational).
    pub recorded_allows: usize,
    /// The ledger, sorted by (rule, hash, path, line).
    pub entries: Vec<BaselineEntry>,
}

impl Baseline {
    /// Snapshot a report into a baseline with the given budget.
    pub fn from_report(report: &Report, suppression_budget: usize) -> Self {
        let mut entries = Vec::new();
        for a in &report.allows {
            for r in &a.rules {
                entries.push(BaselineEntry {
                    rule: r.clone(),
                    content_hash: a.content_hash,
                    path: a.path.clone(),
                    line: a.line,
                });
            }
        }
        entries.sort();
        Baseline {
            suppression_budget,
            recorded_allows: report.allows.len(),
            entries,
        }
    }

    /// Check a live report against the budget and ledger. Returns
    /// human-readable failures; empty means within budget and every live
    /// suppression is on record.
    pub fn enforce(&self, report: &Report) -> Vec<String> {
        let mut failures = Vec::new();
        let live = report.allows.len();
        if live > self.suppression_budget {
            failures.push(format!(
                "suppression debt grew: {live} allow annotations exceed the \
                 committed budget of {} (raise the budget in \
                 results/lint_baseline.json only with review, or remove a \
                 suppression)",
                self.suppression_budget
            ));
        }
        // Multiset match by (rule, hash): renames and line drift keep
        // matching, new suppressions do not.
        let mut ledger: BTreeMap<(&str, u64), usize> = BTreeMap::new();
        for e in &self.entries {
            *ledger.entry((e.rule.as_str(), e.content_hash)).or_insert(0) += 1;
        }
        for a in &report.allows {
            for r in &a.rules {
                let slot = ledger.entry((r.as_str(), a.content_hash)).or_insert(0);
                if *slot > 0 {
                    *slot -= 1;
                } else {
                    failures.push(format!(
                        "unrecorded suppression: allow({r}) at {}:{} is not in \
                         the committed ledger (run `ig-lint baseline` and \
                         review the diff to record it)",
                        a.path, a.line
                    ));
                }
            }
        }
        failures
    }

    /// Render as the committed JSON document, one ledger entry per line.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"suppression_budget\": {},", self.suppression_budget);
        let _ = writeln!(s, "  \"recorded_allows\": {},", self.recorded_allows);
        s.push_str("  \"entries\": [");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n    {{\"rule\": {}, \"hash\": \"{:016x}\", \"path\": {}, \"line\": {}}}",
                crate::report::json_str(&e.rule),
                e.content_hash,
                crate::report::json_str(&e.path),
                e.line
            );
        }
        s.push_str(if self.entries.is_empty() {
            "]\n}\n"
        } else {
            "\n  ]\n}\n"
        });
        s
    }

    /// Parse the committed document. Tolerant of whitespace, strict about
    /// presence: every key including the `entries` array is mandatory, so
    /// a truncated file cannot masquerade as an empty ledger.
    pub fn parse(text: &str) -> Result<Self, String> {
        let suppression_budget = extract_usize(text, "suppression_budget")
            .ok_or("baseline missing `suppression_budget`")?;
        let recorded_allows =
            extract_usize(text, "recorded_allows").ok_or("baseline missing `recorded_allows`")?;
        let entries = extract_entries(text)?;
        Ok(Baseline {
            suppression_budget,
            recorded_allows,
            entries,
        })
    }
}

/// FNV-1a 64 over the given line of `src` (1-based), with any trailing
/// `// ig-lint:` annotation stripped so editing a suppression's *reason*
/// does not change the suppressed line's identity.
pub fn line_content_hash(src: &str, line: u32) -> u64 {
    let content = src
        .lines()
        .nth(line.saturating_sub(1) as usize)
        .unwrap_or("");
    let content = match content.find("// ig-lint:") {
        Some(at) => content.get(..at).unwrap_or(content),
        None => content,
    };
    fnv1a(content.trim().as_bytes())
}

/// FNV-1a 64-bit: tiny, dependency-free, stable across platforms.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Find `"key"` and read the unsigned integer after its `:`.
fn extract_usize(text: &str, key: &str) -> Option<usize> {
    let needle = format!("\"{key}\"");
    let at = text.find(&needle)? + needle.len();
    let rest = text.get(at..)?.trim_start().strip_prefix(':')?.trim_start();
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    if digits.is_empty() {
        None
    } else {
        digits.parse().ok()
    }
}

/// Find `"key"` and read the quoted string after its `:`.
fn extract_str<'t>(text: &'t str, key: &str) -> Option<&'t str> {
    let needle = format!("\"{key}\"");
    let at = text.find(&needle)? + needle.len();
    let rest = text.get(at..)?.trim_start().strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    let close = rest.find('"')?;
    rest.get(..close)
}

/// Read the `"entries": [...]` ledger. The renderer emits one object per
/// line, so the scanner splits on `{`-delimited object bodies.
fn extract_entries(text: &str) -> Result<Vec<BaselineEntry>, String> {
    let needle = "\"entries\"";
    let at = text
        .find(needle)
        .ok_or("baseline missing `entries` ledger")?
        + needle.len();
    let rest = text
        .get(at..)
        .and_then(|r| r.trim_start().strip_prefix(':'))
        .map(str::trim_start)
        .and_then(|r| r.strip_prefix('['))
        .ok_or("baseline `entries` is not an array")?;
    let close = rest
        .rfind(']')
        .ok_or("baseline `entries` array is unterminated")?;
    let body = rest.get(..close).unwrap_or("");
    let mut entries = Vec::new();
    for obj in body.split('{').skip(1) {
        let obj = obj.split('}').next().unwrap_or("");
        let rule = extract_str(obj, "rule")
            .ok_or("ledger entry missing `rule`")?
            .to_string();
        let hash_hex = extract_str(obj, "hash").ok_or("ledger entry missing `hash`")?;
        let content_hash = u64::from_str_radix(hash_hex, 16)
            .map_err(|_| format!("ledger entry has malformed hash `{hash_hex}`"))?;
        let path = extract_str(obj, "path")
            .ok_or("ledger entry missing `path`")?
            .to_string();
        let line = extract_usize(obj, "line").ok_or("ledger entry missing `line`")? as u32;
        entries.push(BaselineEntry {
            rule,
            content_hash,
            path,
            line,
        });
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::ReportedAllow;

    fn allow(path: &str, line: u32, rule: &str, hash: u64) -> ReportedAllow {
        ReportedAllow {
            path: path.to_string(),
            line,
            rules: vec![rule.to_string()],
            reason: "test".to_string(),
            content_hash: hash,
        }
    }

    fn report_with(allows: Vec<ReportedAllow>) -> Report {
        Report {
            allows,
            ..Report::default()
        }
    }

    fn report_with_n(n: usize) -> Report {
        report_with(
            (0..n)
                .map(|i| allow(&format!("crates/x/src/f{i}.rs"), 1, "panic", i as u64))
                .collect(),
        )
    }

    #[test]
    fn round_trips_through_render_and_parse() {
        let b = Baseline::from_report(&report_with_n(3), 10);
        let parsed = Baseline::parse(&b.render()).expect("parse");
        assert_eq!(parsed, b);
        assert_eq!(parsed.entries.len(), 3);
    }

    #[test]
    fn within_budget_and_on_ledger_passes() {
        let r = report_with_n(3);
        let b = Baseline::from_report(&r, 5);
        assert!(b.enforce(&r).is_empty());
    }

    #[test]
    fn over_budget_fails() {
        let b = Baseline::from_report(&report_with_n(6), 5);
        let failures = b.enforce(&report_with_n(6));
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("budget of 5"));
    }

    #[test]
    fn rename_and_line_drift_still_match_the_ledger() {
        // Recorded at old path/line; the file is then renamed and the
        // annotation drifts 40 lines. Identity is the content hash, so
        // this is the same debt, not new debt.
        let b = Baseline::from_report(
            &report_with(vec![allow("crates/a/src/old.rs", 10, "panic", 0xfeed)]),
            5,
        );
        let moved = report_with(vec![allow("crates/a/src/renamed.rs", 50, "panic", 0xfeed)]);
        assert!(b.enforce(&moved).is_empty());
    }

    #[test]
    fn new_suppression_fails_even_within_budget() {
        let b = Baseline::from_report(
            &report_with(vec![allow("crates/a/src/f.rs", 10, "panic", 0xfeed)]),
            5,
        );
        let grown = report_with(vec![
            allow("crates/a/src/f.rs", 10, "panic", 0xfeed),
            allow("crates/a/src/f.rs", 90, "panic", 0xbeef),
        ]);
        let failures = b.enforce(&grown);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("unrecorded suppression"));
        assert!(failures[0].contains("f.rs:90"));
    }

    #[test]
    fn same_rule_different_line_needs_its_own_entry() {
        // Two identical-content lines may share a hash; the ledger is a
        // multiset, so one entry covers exactly one suppression.
        let one = report_with(vec![allow("crates/a/src/f.rs", 10, "panic", 7)]);
        let two = report_with(vec![
            allow("crates/a/src/f.rs", 10, "panic", 7),
            allow("crates/a/src/g.rs", 20, "panic", 7),
        ]);
        let b = Baseline::from_report(&one, 5);
        assert_eq!(b.enforce(&two).len(), 1);
        assert!(Baseline::from_report(&two, 5).enforce(&two).is_empty());
    }

    #[test]
    fn truncated_baseline_is_an_error_not_zero() {
        assert!(Baseline::parse("{}").is_err());
        assert!(Baseline::parse("{\"suppression_budget\": 4}").is_err());
        // A budget with no ledger is a truncation, not an empty ledger.
        assert!(Baseline::parse("{\"suppression_budget\": 4, \"recorded_allows\": 0}").is_err());
    }

    #[test]
    fn empty_ledger_renders_cleanly() {
        let b = Baseline {
            suppression_budget: 0,
            recorded_allows: 0,
            entries: Vec::new(),
        };
        let parsed = Baseline::parse(&b.render()).expect("parse");
        assert_eq!(parsed, b);
    }

    #[test]
    fn annotation_reason_edits_do_not_change_line_identity() {
        let v1 = "fn f() {\n    x.unwrap(); // ig-lint: allow(panic) -- checked\n}\n";
        let v2 = "fn f() {\n    x.unwrap(); // ig-lint: allow(panic) -- len proven above\n}\n";
        assert_eq!(line_content_hash(v1, 2), line_content_hash(v2, 2));
        assert_ne!(line_content_hash(v1, 2), line_content_hash(v1, 1));
    }
}
