//! Transfer-learning baseline (Tables 2 and Figure 9's "TL" series).
//!
//! Pre-train a CNN on a source corpus, swap the classification head, then
//! fine-tune everything on the target development set. Table 2 compares
//! pre-training sources: the other defect datasets vs a generic corpus
//! (ImageNet in the paper, SynthNet here).

use crate::cnn_models::CnnArch;
use crate::selflearn::{fit_cnn, SelfLearnConfig, SelfLearner};
use ig_imaging::GrayImage;
use rand::Rng;

/// Pre-train `arch` on a source corpus; returns the trained learner
/// (which can be fine-tuned or used directly).
pub fn pretrain(
    arch: CnnArch,
    source_images: &[&GrayImage],
    source_labels: &[usize],
    source_classes: usize,
    config: &SelfLearnConfig,
    rng: &mut impl Rng,
) -> SelfLearner {
    SelfLearner::train(
        arch,
        source_images,
        source_labels,
        source_classes,
        config,
        rng,
    )
}

/// Fine-tune a pre-trained learner on a target task: reinitialize the
/// dense head for `target_classes` and continue training on the target
/// development set (all layers update — matching the paper's fine-tuning
/// of pre-trained VGG-19).
pub fn fine_tune(
    mut learner: SelfLearner,
    target_images: &[&GrayImage],
    target_labels: &[usize],
    target_classes: usize,
    config: &SelfLearnConfig,
    rng: &mut impl Rng,
) -> SelfLearner {
    let arch = learner.arch();
    let head_in = arch.head_features();
    {
        let cnn = learner.cnn_mut();
        let lr = config.lr;
        cnn.reset_tail(1, || {
            vec![Box::new(ig_nn::conv::DenseLayer::new(
                head_in,
                target_classes,
                lr,
                rng,
            )) as Box<dyn ig_nn::conv::Layer>]
        });
        cnn.set_num_classes(target_classes);
        fit_cnn(cnn, target_images, target_labels, config, rng);
    }
    learner
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn striped_task(n: usize, seed: u64, vertical: bool) -> (Vec<GrayImage>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut images = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let has_stripe = i % 2 == 1;
            let img = GrayImage::from_fn(16, 16, |x, y| {
                let coord = if vertical { x } else { y };
                let noise = rng.gen_range(-0.05..0.05f32);
                if has_stripe && (6..10).contains(&coord) {
                    0.9 + noise
                } else {
                    0.4 + noise
                }
            });
            images.push(img);
            labels.push(usize::from(has_stripe));
        }
        (images, labels)
    }

    #[test]
    fn fine_tuned_model_has_target_head() {
        let mut rng = StdRng::seed_from_u64(0);
        let (src_images, src_labels) = striped_task(20, 1, true);
        let src_refs: Vec<&GrayImage> = src_images.iter().collect();
        let config = SelfLearnConfig {
            side: 16,
            epochs: 3,
            ..Default::default()
        };
        let learner = pretrain(
            CnnArch::MiniVgg,
            &src_refs,
            &src_labels,
            2,
            &config,
            &mut rng,
        );
        let (tgt_images, tgt_labels) = striped_task(16, 2, false);
        let tgt_refs: Vec<&GrayImage> = tgt_images.iter().collect();
        // Target task has 3 classes (artificial) to prove head swap works.
        let tgt3: Vec<usize> = tgt_labels.iter().map(|&l| l + 1).collect();
        let mut tuned = fine_tune(learner, &tgt_refs, &tgt3, 4, &config, &mut rng);
        let preds = tuned.label(&tgt_refs);
        assert!(preds.iter().all(|&p| p < 4));
    }

    #[test]
    fn transfer_helps_on_related_task() {
        // Pre-train on a big vertical-stripe task, fine-tune on a tiny
        // vertical-stripe dev set; compare to training from scratch on
        // the same tiny set. Transfer should be at least as good on
        // average across seeds.
        let config = SelfLearnConfig {
            side: 16,
            epochs: 8,
            ..Default::default()
        };
        let mut transfer_correct = 0usize;
        let mut scratch_correct = 0usize;
        for seed in 0..3u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let (src_images, src_labels) = striped_task(60, 10 + seed, true);
            let src_refs: Vec<&GrayImage> = src_images.iter().collect();
            let (dev_images, dev_labels) = striped_task(8, 20 + seed, true);
            let dev_refs: Vec<&GrayImage> = dev_images.iter().collect();
            let (test_images, test_labels) = striped_task(30, 30 + seed, true);
            let test_refs: Vec<&GrayImage> = test_images.iter().collect();

            let pre = pretrain(
                CnnArch::MiniVgg,
                &src_refs,
                &src_labels,
                2,
                &config,
                &mut rng,
            );
            let mut tuned = fine_tune(pre, &dev_refs, &dev_labels, 2, &config, &mut rng);
            transfer_correct += tuned
                .label(&test_refs)
                .iter()
                .zip(&test_labels)
                .filter(|(a, b)| a == b)
                .count();

            let mut scratch = SelfLearner::train(
                CnnArch::MiniVgg,
                &dev_refs,
                &dev_labels,
                2,
                &config,
                &mut rng,
            );
            scratch_correct += scratch
                .label(&test_refs)
                .iter()
                .zip(&test_labels)
                .filter(|(a, b)| a == b)
                .count();
        }
        assert!(
            transfer_correct + 5 >= scratch_correct,
            "transfer {transfer_correct} vs scratch {scratch_correct}"
        );
    }
}
