//! Health events and the thread-safe report that collects them.

use std::fmt;
use std::sync::Mutex;

use serde::Serialize;

/// Pipeline stage where a fault was detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Stage {
    /// Crowd annotation / combination / peer review.
    Crowd,
    /// Pattern augmentation (policies and GAN).
    Augmentation,
    /// Feature generation (template matching).
    Features,
    /// Architecture tuning / cross-validation.
    Tuning,
    /// Labeler training (L-BFGS).
    Training,
    /// End-to-end pipeline orchestration.
    Pipeline,
    /// Durable artifact store (on-disk persistence tier).
    Store,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Stage::Crowd => "crowd",
            Stage::Augmentation => "augmentation",
            Stage::Features => "features",
            Stage::Tuning => "tuning",
            Stage::Training => "training",
            Stage::Pipeline => "pipeline",
            Stage::Store => "store",
        };
        f.write_str(s)
    }
}

/// Class of fault detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum FaultKind {
    /// A feature value came back NaN or infinite.
    NonFiniteFeature,
    /// A pattern has (near-)zero variance and can never match anything.
    DegeneratePattern,
    /// A parallel feature worker thread panicked.
    WorkerPanic,
    /// Template matching returned an error for an image/pattern pair.
    MatchError,
    /// A crowd worker produced no annotations at all.
    CrowdNoShow,
    /// A crowd worker produced garbage (spam) annotations.
    CrowdSpammer,
    /// L-BFGS hit a non-finite loss or gradient.
    LbfgsDivergence,
    /// Architecture tuning failed outright.
    TuningFailure,
    /// Labeler training failed even after retries.
    TrainingFailure,
    /// GAN losses diverged (exploded or went non-finite).
    GanDivergence,
    /// GAN generator collapsed to near-identical outputs.
    GanModeCollapse,
    /// An on-disk artifact failed integrity verification (bad magic,
    /// truncated/torn file, checksum or key mismatch, undecodable payload).
    ArtifactCorruption,
    /// An advisory store lock was held by a process that no longer exists.
    StaleLock,
    /// The durable store hit an OS-level I/O error (persistence skipped;
    /// the in-memory tier still serves the artifact).
    StoreIoError,
    /// A supervised stage returned an error (retry ladder engaged).
    StageFailure,
    /// A supervised stage finished but overran its deadline.
    DeadlineExceeded,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultKind::NonFiniteFeature => "non-finite feature",
            FaultKind::DegeneratePattern => "degenerate pattern",
            FaultKind::WorkerPanic => "worker panic",
            FaultKind::MatchError => "match error",
            FaultKind::CrowdNoShow => "crowd no-show",
            FaultKind::CrowdSpammer => "crowd spammer",
            FaultKind::LbfgsDivergence => "l-bfgs divergence",
            FaultKind::TuningFailure => "tuning failure",
            FaultKind::TrainingFailure => "training failure",
            FaultKind::GanDivergence => "gan divergence",
            FaultKind::GanModeCollapse => "gan mode collapse",
            FaultKind::ArtifactCorruption => "artifact corruption",
            FaultKind::StaleLock => "stale lock",
            FaultKind::StoreIoError => "store i/o error",
            FaultKind::StageFailure => "stage failure",
            FaultKind::DeadlineExceeded => "deadline exceeded",
        };
        f.write_str(s)
    }
}

/// Recovery action taken in response to a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum RecoveryAction {
    /// Replaced the offending value with a safe default.
    SanitizedValue,
    /// Removed the pattern from the working set.
    QuarantinedPattern,
    /// Recomputed the affected chunk serially on the calling thread.
    SerialRecompute,
    /// Dropped the worker's annotations from combination.
    ExcludedWorker,
    /// Restarted optimization from jittered parameters.
    RestartedWithJitter,
    /// Skipped tuning and used the fixed fallback architecture.
    FallbackFixedArchitecture,
    /// Fell back to the class-prior labeler (no trained MLP).
    FallbackClassPrior,
    /// Rolled GAN parameters back to the best recorded snapshot.
    RolledBackSnapshot,
    /// Dropped GAN output and used policy-based augmentation only.
    PolicyOnlyAugmentation,
    /// Moved the corrupt on-disk artifact aside and recomputed it.
    QuarantinedArtifact,
    /// Removed an advisory lock whose owning process is dead.
    BrokeStaleLock,
    /// Re-ran the failed stage after a backoff delay.
    RetriedWithBackoff,
    /// Fault was recorded but needed no intervention.
    NoneRequired,
}

impl fmt::Display for RecoveryAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RecoveryAction::SanitizedValue => "sanitized value",
            RecoveryAction::QuarantinedPattern => "quarantined pattern",
            RecoveryAction::SerialRecompute => "serial recompute",
            RecoveryAction::ExcludedWorker => "excluded worker",
            RecoveryAction::RestartedWithJitter => "restarted with jitter",
            RecoveryAction::FallbackFixedArchitecture => "fallback fixed architecture",
            RecoveryAction::FallbackClassPrior => "fallback class prior",
            RecoveryAction::RolledBackSnapshot => "rolled back snapshot",
            RecoveryAction::PolicyOnlyAugmentation => "policy-only augmentation",
            RecoveryAction::QuarantinedArtifact => "quarantined artifact",
            RecoveryAction::BrokeStaleLock => "broke stale lock",
            RecoveryAction::RetriedWithBackoff => "retried with backoff",
            RecoveryAction::NoneRequired => "none required",
        };
        f.write_str(s)
    }
}

/// One detected fault and the recovery applied to it.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct HealthEvent {
    /// Stage that detected the fault.
    pub stage: Stage,
    /// Fault class.
    pub kind: FaultKind,
    /// Recovery taken.
    pub action: RecoveryAction,
    /// Human-readable context (pattern index, iteration number, ...).
    pub detail: String,
}

impl fmt::Display for HealthEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} -> {} ({})",
            self.stage, self.kind, self.action, self.detail
        )
    }
}

/// Thread-safe sink of [`HealthEvent`]s produced during a pipeline run.
///
/// Recording takes `&self` so the report can be shared across parallel
/// feature workers. A lock poisoned by a panicking worker is recovered
/// rather than propagated — losing a report line is better than losing
/// the run.
#[derive(Debug, Default)]
pub struct HealthReport {
    events: Mutex<Vec<HealthEvent>>,
}

impl HealthReport {
    /// Empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one event.
    pub fn record(&self, stage: Stage, kind: FaultKind, action: RecoveryAction, detail: String) {
        self.lock().push(HealthEvent {
            stage,
            kind,
            action,
            detail,
        });
    }

    /// Snapshot of all events in recording order.
    pub fn events(&self) -> Vec<HealthEvent> {
        self.lock().clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// True when no fault has been recorded.
    pub fn is_clean(&self) -> bool {
        self.lock().is_empty()
    }

    /// Alias of [`HealthReport::is_clean`] (pairs with [`HealthReport::len`]).
    pub fn is_empty(&self) -> bool {
        self.is_clean()
    }

    /// Number of events of the given fault class.
    pub fn count(&self, kind: FaultKind) -> usize {
        self.lock().iter().filter(|e| e.kind == kind).count()
    }

    /// Number of events that applied the given recovery.
    pub fn count_action(&self, action: RecoveryAction) -> usize {
        self.lock().iter().filter(|e| e.action == action).count()
    }

    /// Move all events from `other` into `self` (in order).
    pub fn absorb(&self, other: &HealthReport) {
        let mut moved = std::mem::take(&mut *other.lock());
        self.lock().append(&mut moved);
    }

    /// Copy all events from `other` into `self` (in order), leaving
    /// `other` intact — the aggregation used when a run-wide report
    /// mirrors a per-training-call report that the model keeps.
    pub fn merge(&self, other: &HealthReport) {
        let copied = other.events();
        self.lock().extend(copied);
    }

    /// Aggregate the report into a serializable [`HealthSummary`]:
    /// per-kind counts in first-seen order plus the recovered /
    /// unrecovered split that drives driver exit-code policy.
    pub fn summary(&self) -> HealthSummary {
        let events = self.lock();
        let mut by_kind: Vec<FaultCount> = Vec::new();
        let mut recovered = 0usize;
        let mut unrecovered = 0usize;
        for e in events.iter() {
            let kind = e.kind.to_string();
            match by_kind.iter_mut().find(|c| c.kind == kind) {
                Some(c) => c.count += 1,
                None => by_kind.push(FaultCount { kind, count: 1 }),
            }
            if e.action == RecoveryAction::NoneRequired {
                unrecovered += 1;
            } else {
                recovered += 1;
            }
        }
        HealthSummary {
            total_faults: events.len(),
            recovered,
            unrecovered,
            by_kind,
        }
    }

    /// Multi-line human-readable rendering.
    pub fn render(&self) -> String {
        let events = self.lock();
        if events.is_empty() {
            return "health: clean (no faults detected)".to_string();
        }
        let mut out = format!("health: {} fault(s) detected\n", events.len());
        for e in events.iter() {
            out.push_str(&format!("  {e}\n"));
        }
        out
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<HealthEvent>> {
        self.events.lock().unwrap_or_else(|p| p.into_inner())
    }
}

impl Clone for HealthReport {
    fn clone(&self) -> Self {
        Self {
            events: Mutex::new(self.events()),
        }
    }
}

/// One fault class and how often it fired (see [`HealthReport::summary`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct FaultCount {
    /// Display name of the fault class.
    pub kind: String,
    /// Events of that class.
    pub count: usize,
}

/// Serializable roll-up of a [`HealthReport`], embedded in driver JSON so
/// a sweep's output distinguishes "clean" from "completed with recovered
/// faults" without replaying the log.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct HealthSummary {
    /// Total events recorded.
    pub total_faults: usize,
    /// Events where a recovery action was applied.
    pub recovered: usize,
    /// Events recorded with [`RecoveryAction::NoneRequired`] (observed,
    /// nothing to roll back).
    pub unrecovered: usize,
    /// Per-kind counts in first-seen order.
    pub by_kind: Vec<FaultCount>,
}

impl HealthSummary {
    /// True when no fault was recorded at all.
    pub fn is_clean(&self) -> bool {
        self.total_faults == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let report = HealthReport::new();
        assert!(report.is_clean());
        report.record(
            Stage::Features,
            FaultKind::NonFiniteFeature,
            RecoveryAction::SanitizedValue,
            "row 3 col 1".into(),
        );
        report.record(
            Stage::Training,
            FaultKind::LbfgsDivergence,
            RecoveryAction::RestartedWithJitter,
            "iter 7".into(),
        );
        assert!(!report.is_clean());
        assert_eq!(report.len(), 2);
        assert_eq!(report.count(FaultKind::NonFiniteFeature), 1);
        assert_eq!(report.count_action(RecoveryAction::RestartedWithJitter), 1);
        assert_eq!(report.count(FaultKind::GanDivergence), 0);
    }

    #[test]
    fn absorb_moves_events() {
        let a = HealthReport::new();
        let b = HealthReport::new();
        b.record(
            Stage::Crowd,
            FaultKind::CrowdNoShow,
            RecoveryAction::ExcludedWorker,
            "worker 2".into(),
        );
        a.absorb(&b);
        assert_eq!(a.len(), 1);
        assert!(b.is_clean());
    }

    #[test]
    fn render_mentions_every_event() {
        let report = HealthReport::new();
        assert!(report.render().contains("clean"));
        report.record(
            Stage::Augmentation,
            FaultKind::GanModeCollapse,
            RecoveryAction::PolicyOnlyAugmentation,
            "epoch 12".into(),
        );
        let text = report.render();
        assert!(text.contains("gan mode collapse"));
        assert!(text.contains("policy-only augmentation"));
    }

    #[test]
    fn summary_counts_and_recovery_split() {
        let report = HealthReport::new();
        assert!(report.summary().is_clean());
        report.record(
            Stage::Store,
            FaultKind::ArtifactCorruption,
            RecoveryAction::QuarantinedArtifact,
            "checksum mismatch".into(),
        );
        report.record(
            Stage::Store,
            FaultKind::ArtifactCorruption,
            RecoveryAction::QuarantinedArtifact,
            "torn file".into(),
        );
        report.record(
            Stage::Pipeline,
            FaultKind::DeadlineExceeded,
            RecoveryAction::NoneRequired,
            "stage x".into(),
        );
        let summary = report.summary();
        assert_eq!(summary.total_faults, 3);
        assert_eq!(summary.recovered, 2);
        assert_eq!(summary.unrecovered, 1);
        assert_eq!(
            summary.by_kind,
            vec![
                FaultCount {
                    kind: "artifact corruption".into(),
                    count: 2
                },
                FaultCount {
                    kind: "deadline exceeded".into(),
                    count: 1
                },
            ]
        );
        assert!(!summary.is_clean());
    }

    #[test]
    fn shared_across_threads() {
        let report = std::sync::Arc::new(HealthReport::new());
        std::thread::scope(|s| {
            for t in 0..4 {
                let r = std::sync::Arc::clone(&report);
                s.spawn(move || {
                    r.record(
                        Stage::Features,
                        FaultKind::MatchError,
                        RecoveryAction::SanitizedValue,
                        format!("thread {t}"),
                    );
                });
            }
        });
        assert_eq!(report.len(), 4);
    }
}
