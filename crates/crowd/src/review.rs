//! Peer review of outlier boxes (Section 3).
//!
//! Boxes drawn by a single worker go through "a peer review phase where
//! workers discuss which ones really contain defects". The simulation
//! models the panel as a noisy oracle: with probability `accuracy` it
//! makes the right call (keep a box that overlaps a gold defect, discard
//! one that does not), otherwise the wrong one.

use ig_imaging::BBox;
use rand::Rng;

/// A peer-review panel with a given decision accuracy.
#[derive(Debug, Clone, Copy)]
pub struct PeerReviewModel {
    /// Probability that the panel's keep/discard decision is correct.
    pub accuracy: f64,
}

impl PeerReviewModel {
    /// A competent panel (the default used in experiments).
    pub fn competent() -> Self {
        Self { accuracy: 0.9 }
    }

    /// Review one outlier against the image's gold boxes.
    pub fn review(&self, outlier: &BBox, gold: &[BBox], rng: &mut impl Rng) -> bool {
        let is_real = gold.iter().any(|g| g.iou(outlier) > 0.1);
        if rng.gen_bool(self.accuracy) {
            is_real
        } else {
            !is_real
        }
    }

    /// Filter a batch of outliers, keeping those the panel approves.
    pub fn review_all(&self, outliers: &[BBox], gold: &[BBox], rng: &mut impl Rng) -> Vec<BBox> {
        outliers
            .iter()
            .filter(|b| self.review(b, gold, rng))
            .copied()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn perfect_panel_keeps_real_discards_fake() {
        let panel = PeerReviewModel { accuracy: 1.0 };
        let gold = [BBox::new(10.0, 10.0, 10.0, 10.0)];
        let real = BBox::new(11.0, 11.0, 9.0, 9.0);
        let fake = BBox::new(80.0, 80.0, 5.0, 5.0);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(panel.review(&real, &gold, &mut rng));
        assert!(!panel.review(&fake, &gold, &mut rng));
    }

    #[test]
    fn zero_accuracy_panel_inverts() {
        let panel = PeerReviewModel { accuracy: 0.0 };
        let gold = [BBox::new(10.0, 10.0, 10.0, 10.0)];
        let real = BBox::new(11.0, 11.0, 9.0, 9.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!panel.review(&real, &gold, &mut rng));
    }

    #[test]
    fn competent_panel_mostly_correct() {
        let panel = PeerReviewModel::competent();
        let gold = [BBox::new(10.0, 10.0, 10.0, 10.0)];
        let fakes: Vec<BBox> = (0..200)
            .map(|i| BBox::new(100.0 + i as f32, 100.0, 5.0, 5.0))
            .collect();
        let mut rng = StdRng::seed_from_u64(2);
        let kept = panel.review_all(&fakes, &gold, &mut rng);
        assert!(kept.len() < 40, "kept {} of 200 fakes", kept.len());
    }

    #[test]
    fn review_with_no_gold_boxes_discards_mostly() {
        let panel = PeerReviewModel::competent();
        let boxes = vec![BBox::new(0.0, 0.0, 5.0, 5.0); 100];
        let mut rng = StdRng::seed_from_u64(3);
        let kept = panel.review_all(&boxes, &[], &mut rng);
        assert!(kept.len() < 25);
    }
}
