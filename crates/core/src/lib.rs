//! # ig-core
//!
//! The core of the Inspector Gadget reproduction (Heo et al., VLDB 2020):
//!
//! * [`pattern`] — defect patterns, the unit the whole system revolves
//!   around;
//! * [`features`] — **feature generation functions** (FGFs): each pattern
//!   is slid over an image with pyramid-accelerated normalized
//!   cross-correlation and emits its maximum similarity (Section 5.1);
//!   one image → one similarity vector;
//! * [`labeler`] — the small **MLP labeler** trained with L-BFGS on the
//!   development set's similarity vectors (Section 5.2);
//! * [`tuning`] — automatic **model tuning** over 1–3 hidden layers and
//!   power-of-two widths with stratified k-fold CV (Sections 5.2, 6.5);
//! * [`pipeline`] — [`pipeline::InspectorGadget`], the end-to-end weak
//!   label generator that ties patterns → features → tuned labeler → weak
//!   labels together;
//! * [`novelty`] — the paper's sketched extension: flagging images whose
//!   features match no known pattern as *unknown defect types*.

#![warn(missing_docs)]

pub mod features;
pub mod labeler;
pub mod novelty;
pub mod pattern;
pub mod pipeline;
pub mod stages;
pub mod tuning;

pub use features::{FeatureGenerator, MatchBackend};
pub use labeler::{Labeler, LabelerConfig};
pub use novelty::NoveltyDetector;
pub use pattern::{Pattern, PatternSource};
pub use pipeline::{InspectorGadget, PipelineConfig, WeakLabelOutput};
pub use stages::{BuildFeatureGen, ComputeFeatureShard, ComputeFeatures, DevSet, TrainLabeler};
pub use tuning::{tune_labeler, tune_labeler_with_health, TuningConfig, TuningReport};

// Chaos-plan and health-report types, re-exported so pipeline callers
// don't need a direct `ig-faults` dependency.
pub use ig_faults::{
    FaultCount, FaultKind, FaultPlan, HealthEvent, HealthReport, HealthSummary, RecoveryAction,
    Stage,
};

// Runtime types, re-exported so pipeline callers can build contexts and
// scale plans without a direct `ig-runtime` dependency.
pub use ig_runtime::{
    Clock, DiskStats, DiskStore, RunContext, ScalePlan, ScaleTier, ShardPlan, ShardSpec,
    Supervision,
};

/// Errors from the core pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The pipeline was run with no patterns.
    NoPatterns,
    /// The development set is empty or single-class.
    BadDevSet(String),
    /// Wrapped imaging error.
    Imaging(String),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::NoPatterns => write!(f, "no patterns available"),
            CoreError::BadDevSet(m) => write!(f, "bad development set: {m}"),
            CoreError::Imaging(m) => write!(f, "imaging error: {m}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<ig_imaging::ImagingError> for CoreError {
    fn from(e: ig_imaging::ImagingError) -> Self {
        CoreError::Imaging(e.to_string())
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, CoreError>;
