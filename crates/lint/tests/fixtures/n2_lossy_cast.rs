//! Fixture: N2 truncating casts. Checked under a hot-path pseudo-filename.
//! Line numbers are asserted — do not reflow.

fn implicit_truncation(x: f32, scale: f32) -> usize {
    (x * scale) as usize // line 5: float expr cast without explicit rounding
}

fn literal_truncation() -> u32 {
    2.75 as u32 // line 9: float literal cast
}

fn chained(x: usize) -> u32 {
    (x as f64 * 0.5) as u32 // line 13: f64 arithmetic cast to u32
}

fn explicit_floor_is_fine(x: f32) -> usize {
    (x * 2.0).floor() as usize // no violation: rounding mode explicit
}

fn explicit_round_is_fine(x: f32) -> usize {
    x.round() as usize // no violation: rounding mode explicit
}

fn int_to_int_is_fine(n: usize) -> usize {
    let y = n as u64;
    y as usize // no violation: no float evidence
}

fn annotated(x: f32) -> usize {
    // ig-lint: allow(lossy-cast) -- fixture: truncation toward zero intended
    x as usize // line 31: suppressed by line 30
}
