//! Axis-aligned bounding boxes shared across the workspace.
//!
//! Boxes use `f32` coordinates because the crowdsourcing simulation jitters
//! them continuously, and the paper's *average* combination strategy
//! averages coordinates directly.

use serde::{Deserialize, Serialize};

/// An axis-aligned bounding box with a top-left corner at `(x, y)` and
/// extent `(w, h)`, in pixel units.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BBox {
    /// Left edge.
    pub x: f32,
    /// Top edge.
    pub y: f32,
    /// Width (non-negative).
    pub w: f32,
    /// Height (non-negative).
    pub h: f32,
}

impl BBox {
    /// Create a new box. Negative extents are clamped to zero.
    pub fn new(x: f32, y: f32, w: f32, h: f32) -> Self {
        Self {
            x,
            y,
            w: w.max(0.0),
            h: h.max(0.0),
        }
    }

    /// Create a box from corner coordinates (any ordering).
    pub fn from_corners(x0: f32, y0: f32, x1: f32, y1: f32) -> Self {
        let (lo_x, hi_x) = if x0 <= x1 { (x0, x1) } else { (x1, x0) };
        let (lo_y, hi_y) = if y0 <= y1 { (y0, y1) } else { (y1, y0) };
        Self::new(lo_x, lo_y, hi_x - lo_x, hi_y - lo_y)
    }

    /// Right edge (`x + w`).
    #[inline]
    pub fn x1(&self) -> f32 {
        self.x + self.w
    }

    /// Bottom edge (`y + h`).
    #[inline]
    pub fn y1(&self) -> f32 {
        self.y + self.h
    }

    /// Box area.
    #[inline]
    pub fn area(&self) -> f32 {
        self.w * self.h
    }

    /// Center point.
    #[inline]
    pub fn center(&self) -> (f32, f32) {
        (self.x + self.w * 0.5, self.y + self.h * 0.5)
    }

    /// True if the box has zero area.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.w <= 0.0 || self.h <= 0.0
    }

    /// Intersection box, or `None` when disjoint.
    pub fn intersection(&self, other: &BBox) -> Option<BBox> {
        let x0 = self.x.max(other.x);
        let y0 = self.y.max(other.y);
        let x1 = self.x1().min(other.x1());
        let y1 = self.y1().min(other.y1());
        if x1 > x0 && y1 > y0 {
            Some(BBox::new(x0, y0, x1 - x0, y1 - y0))
        } else {
            None
        }
    }

    /// The smallest box covering both boxes (the paper's "union" strategy).
    pub fn union(&self, other: &BBox) -> BBox {
        let x0 = self.x.min(other.x);
        let y0 = self.y.min(other.y);
        let x1 = self.x1().max(other.x1());
        let y1 = self.y1().max(other.y1());
        BBox::new(x0, y0, x1 - x0, y1 - y0)
    }

    /// Intersection-over-union in `[0, 1]`.
    pub fn iou(&self, other: &BBox) -> f32 {
        let inter = match self.intersection(other) {
            Some(b) => b.area(),
            None => return 0.0,
        };
        let union = self.area() + other.area() - inter;
        if union <= 0.0 {
            0.0
        } else {
            inter / union
        }
    }

    /// True when the boxes overlap with positive area.
    pub fn overlaps(&self, other: &BBox) -> bool {
        self.intersection(other).is_some()
    }

    /// Coordinate-wise average of a set of boxes — the paper's preferred
    /// combination strategy for overlapping worker annotations (Section 3).
    /// Returns `None` for an empty slice.
    pub fn average(boxes: &[BBox]) -> Option<BBox> {
        if boxes.is_empty() {
            return None;
        }
        let n = boxes.len() as f32;
        let (mut x, mut y, mut w, mut h) = (0.0, 0.0, 0.0, 0.0);
        for b in boxes {
            x += b.x;
            y += b.y;
            w += b.w;
            h += b.h;
        }
        Some(BBox::new(x / n, y / n, w / n, h / n))
    }

    /// The smallest box covering all boxes (the "union" strategy applied to
    /// a group). Returns `None` for an empty slice.
    pub fn union_all(boxes: &[BBox]) -> Option<BBox> {
        boxes.iter().copied().reduce(|acc, b| acc.union(&b))
    }

    /// The common intersection of all boxes (the "intersection" strategy).
    /// Returns `None` when any pair is disjoint or the slice is empty.
    pub fn intersection_all(boxes: &[BBox]) -> Option<BBox> {
        let mut iter = boxes.iter();
        let first = *iter.next()?;
        iter.try_fold(first, |acc, b| acc.intersection(b))
    }

    /// Clip the box to an image of `width` x `height`, rounding outward to
    /// integer pixel coordinates. Returns `None` when nothing remains.
    pub fn clip(&self, width: usize, height: usize) -> Option<BBox> {
        let x0 = self.x.floor().max(0.0);
        let y0 = self.y.floor().max(0.0);
        let x1 = self.x1().ceil().min(width as f32);
        let y1 = self.y1().ceil().min(height as f32);
        if x1 - x0 >= 1.0 && y1 - y0 >= 1.0 {
            Some(BBox::new(x0, y0, x1 - x0, y1 - y0))
        } else {
            None
        }
    }

    /// Translate by `(dx, dy)`.
    pub fn translated(&self, dx: f32, dy: f32) -> BBox {
        BBox::new(self.x + dx, self.y + dy, self.w, self.h)
    }

    /// Grow (or shrink, for negative margins) the box by `margin` on every
    /// side, keeping the center fixed.
    pub fn inflated(&self, margin: f32) -> BBox {
        BBox::new(
            self.x - margin,
            self.y - margin,
            self.w + 2.0 * margin,
            self.h + 2.0 * margin,
        )
    }
}

/// Group boxes into connected components under pairwise overlap, in input
/// order. Used by the crowdsourcing workflow to find boxes that describe
/// the same defect before combining them.
pub fn overlap_groups(boxes: &[BBox]) -> Vec<Vec<usize>> {
    overlap_groups_iou(boxes, 0.0)
}

/// Like [`overlap_groups`], but two boxes are only connected when their
/// IoU exceeds `min_iou`. Elongated defects (scratches, cracks) from
/// *different* instances often graze each other; a small positive
/// threshold keeps them from chain-merging into one group.
pub fn overlap_groups_iou(boxes: &[BBox], min_iou: f32) -> Vec<Vec<usize>> {
    let n = boxes.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], i: usize) -> usize {
        let mut root = i;
        while parent[root] != root {
            root = parent[root];
        }
        let mut cur = i;
        while parent[cur] != root {
            let next = parent[cur];
            parent[cur] = root;
            cur = next;
        }
        root
    }
    for i in 0..n {
        for j in (i + 1)..n {
            let connected = if min_iou <= 0.0 {
                boxes[i].overlaps(&boxes[j])
            } else {
                boxes[i].iou(&boxes[j]) > min_iou
            };
            if connected {
                let ri = find(&mut parent, i);
                let rj = find(&mut parent, j);
                if ri != rj {
                    parent[rj] = ri;
                }
            }
        }
    }
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut root_to_group: std::collections::HashMap<usize, usize> =
        std::collections::HashMap::new();
    for i in 0..n {
        let r = find(&mut parent, i);
        let g = *root_to_group.entry(r).or_insert_with(|| {
            groups.push(Vec::new());
            groups.len() - 1
        });
        groups[g].push(i);
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_corners_normalizes_order() {
        let b = BBox::from_corners(5.0, 7.0, 1.0, 2.0);
        assert_eq!(b, BBox::new(1.0, 2.0, 4.0, 5.0));
    }

    #[test]
    fn negative_extent_clamped() {
        let b = BBox::new(0.0, 0.0, -3.0, 2.0);
        assert_eq!(b.w, 0.0);
        assert!(b.is_empty());
    }

    #[test]
    fn intersection_of_overlapping() {
        let a = BBox::new(0.0, 0.0, 4.0, 4.0);
        let b = BBox::new(2.0, 2.0, 4.0, 4.0);
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, BBox::new(2.0, 2.0, 2.0, 2.0));
    }

    #[test]
    fn intersection_of_disjoint_is_none() {
        let a = BBox::new(0.0, 0.0, 1.0, 1.0);
        let b = BBox::new(5.0, 5.0, 1.0, 1.0);
        assert!(a.intersection(&b).is_none());
        assert_eq!(a.iou(&b), 0.0);
    }

    #[test]
    fn touching_boxes_do_not_overlap() {
        let a = BBox::new(0.0, 0.0, 1.0, 1.0);
        let b = BBox::new(1.0, 0.0, 1.0, 1.0);
        assert!(!a.overlaps(&b));
    }

    #[test]
    fn iou_identity_is_one() {
        let a = BBox::new(3.0, 4.0, 5.0, 6.0);
        assert!((a.iou(&a) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn iou_is_symmetric() {
        let a = BBox::new(0.0, 0.0, 4.0, 4.0);
        let b = BBox::new(1.0, 1.0, 4.0, 4.0);
        assert!((a.iou(&b) - b.iou(&a)).abs() < 1e-6);
    }

    #[test]
    fn union_covers_both() {
        let a = BBox::new(0.0, 0.0, 1.0, 1.0);
        let b = BBox::new(5.0, 5.0, 1.0, 1.0);
        let u = a.union(&b);
        assert_eq!(u, BBox::new(0.0, 0.0, 6.0, 6.0));
    }

    #[test]
    fn average_of_identical_is_identity() {
        let a = BBox::new(1.0, 2.0, 3.0, 4.0);
        assert_eq!(BBox::average(&[a, a, a]).unwrap(), a);
    }

    #[test]
    fn average_strategy_between_union_and_intersection() {
        // The paper motivates averaging as a compromise: union too large,
        // intersection too small.
        let a = BBox::new(0.0, 0.0, 10.0, 10.0);
        let b = BBox::new(2.0, 2.0, 10.0, 10.0);
        let avg = BBox::average(&[a, b]).unwrap();
        let uni = BBox::union_all(&[a, b]).unwrap();
        let inter = BBox::intersection_all(&[a, b]).unwrap();
        assert!(inter.area() < avg.area());
        assert!(avg.area() < uni.area());
    }

    #[test]
    fn combination_strategies_on_empty_slice() {
        assert!(BBox::average(&[]).is_none());
        assert!(BBox::union_all(&[]).is_none());
        assert!(BBox::intersection_all(&[]).is_none());
    }

    #[test]
    fn intersection_all_detects_disjoint_triple() {
        let a = BBox::new(0.0, 0.0, 2.0, 2.0);
        let b = BBox::new(1.0, 1.0, 2.0, 2.0);
        let c = BBox::new(10.0, 10.0, 2.0, 2.0);
        assert!(BBox::intersection_all(&[a, b]).is_some());
        assert!(BBox::intersection_all(&[a, b, c]).is_none());
    }

    #[test]
    fn clip_inside_image() {
        let b = BBox::new(-2.5, 3.0, 10.0, 10.0);
        let c = b.clip(8, 8).unwrap();
        // Rounded outward: right edge 7.5 rounds up to 8.
        assert_eq!(c, BBox::new(0.0, 3.0, 8.0, 5.0));
    }

    #[test]
    fn clip_outside_image_is_none() {
        let b = BBox::new(20.0, 20.0, 5.0, 5.0);
        assert!(b.clip(8, 8).is_none());
        // Outward rounding keeps sub-pixel slivers alive as one-pixel boxes.
        let sliver = BBox::new(0.0, 0.0, 0.2, 5.0);
        assert_eq!(sliver.clip(8, 8).unwrap().w, 1.0);
    }

    #[test]
    fn inflate_keeps_center() {
        let b = BBox::new(2.0, 2.0, 4.0, 4.0);
        let g = b.inflated(1.0);
        assert_eq!(g.center(), b.center());
        assert_eq!(g.w, 6.0);
    }

    #[test]
    fn overlap_groups_transitive() {
        // a overlaps b, b overlaps c, but a does not overlap c: one group.
        let a = BBox::new(0.0, 0.0, 3.0, 3.0);
        let b = BBox::new(2.0, 0.0, 3.0, 3.0);
        let c = BBox::new(4.0, 0.0, 3.0, 3.0);
        let d = BBox::new(100.0, 100.0, 1.0, 1.0);
        let groups = overlap_groups(&[a, b, c, d]);
        assert_eq!(groups.len(), 2);
        let big = groups.iter().find(|g| g.len() == 3).unwrap();
        assert_eq!(*big, vec![0, 1, 2]);
    }

    #[test]
    fn overlap_groups_empty_input() {
        assert!(overlap_groups(&[]).is_empty());
    }
}
