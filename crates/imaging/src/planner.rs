//! Strategy planner for dense NCC scans: brute row sweep vs FFT.
//!
//! The row sweep ([`crate::ncc::ncc_row_sweep`]) costs `O(W·H·w·h)`
//! multiply-adds; the spectral numerator ([`crate::fft`]) costs
//! `O(P·log P)` with `P = next_pow2(W)·next_pow2(H)`, independent of the
//! pattern area. The planner compares the two closed-form cost models per
//! (image dims, pattern dims) and caches the verdict — plus the FFT plans
//! for the padded lengths — inside [`NccPlanner`], which
//! [`crate::prepared::PreparedImage`] owns exactly like the fitted-shrink
//! cache on the pattern side.
//!
//! **Monotone contract** (pinned by proptest): the decision is
//! `pattern area >= fft_crossover_area(image dims)`, a single threshold in
//! the area at fixed image dims — once FFT wins for some area it wins for
//! every larger area.

use crate::fft::Fft;
use crate::Result;
use parking_lot::Mutex;
use std::sync::Arc;

/// How a dense scan's numerators should be computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorrStrategy {
    /// One-pass integral-table row sweep; bit-identical to `pearson_at`.
    Sweep,
    /// Spectral cross-correlation numerator; exact only to float rounding.
    Fft,
}

/// Patterns below this area never take the FFT path regardless of the cost
/// model. Small patterns are where the sweep's cache behaviour shines, the
/// spectral setup cost never amortises — and the floor keeps the planner
/// provably out of the small-dimension domains the bit-identicality
/// proptests sample.
pub const MIN_FFT_PATTERN_AREA: usize = 256;

/// Model cost of one butterfly relative to one fused sweep multiply-add.
/// Deliberately pessimistic towards FFT: a wrong "sweep" verdict costs a
/// constant factor, a wrong "fft" verdict costs accuracy headroom too.
const FFT_OP_COST: f64 = 8.0;

/// Spectral passes a correlation needs over the padded plane: the image
/// forward transform amortises across patterns via the spectrum cache, so
/// charge the pattern forward, the product, and the inverse.
const FFT_PASSES: f64 = 3.0;

/// Power-of-two padded grid for an image of the given dims. `None` when a
/// dimension is zero or `next_power_of_two` would overflow.
pub fn padded_dims(image_dims: (usize, usize)) -> Option<(usize, usize)> {
    let (w, h) = image_dims;
    if w == 0 || h == 0 {
        return None;
    }
    Some((
        w.checked_next_power_of_two()?,
        h.checked_next_power_of_two()?,
    ))
}

/// Smallest pattern area at which the spectral numerator is predicted to
/// beat the brute sweep on a `image_dims` image. The planner picks FFT
/// exactly when `pattern area >= fft_crossover_area(image_dims)`, which
/// makes the decision trivially monotone in the pattern area.
pub fn fft_crossover_area(image_dims: (usize, usize)) -> usize {
    let Some((w2, h2)) = padded_dims(image_dims) else {
        return usize::MAX;
    };
    let p = (w2 * h2) as f64;
    let fft_model = FFT_OP_COST * FFT_PASSES * p * p.log2().max(1.0);
    // Brute sweep ≈ one MAC per (placement, pattern pixel); placements are
    // within a constant of W·H, so cost-per-pattern-pixel ≈ W·H.
    let brute_per_area = (image_dims.0 * image_dims.1) as f64;
    let crossover = (fft_model / brute_per_area).ceil();
    if !crossover.is_finite() || crossover >= usize::MAX as f64 {
        return usize::MAX;
    }
    (crossover.max(0.0).ceil() as usize).max(MIN_FFT_PATTERN_AREA)
}

/// Pure strategy decision for one (image dims, pattern dims) pairing.
/// Degenerate pairings (zero dims, pattern larger than image) fall back to
/// [`CorrStrategy::Sweep`], whose kernel rejects them uniformly.
pub fn plan_strategy(image_dims: (usize, usize), pattern_dims: (usize, usize)) -> CorrStrategy {
    let (pw, ph) = pattern_dims;
    if pw == 0 || ph == 0 || pw > image_dims.0 || ph > image_dims.1 {
        return CorrStrategy::Sweep;
    }
    if pw * ph >= fft_crossover_area(image_dims) {
        CorrStrategy::Fft
    } else {
        CorrStrategy::Sweep
    }
}

/// Cached decision entry: (image w, image h, pattern w, pattern h).
type DecisionKey = (usize, usize, usize, usize);

/// Per-image planner state: memoised strategy verdicts and the FFT plans
/// for the padded lengths this image's scans use. Linear-scan `Vec` caches,
/// like the fitted-shrink cache — distinct keys are few and iteration
/// order stays deterministic.
#[derive(Debug, Default)]
pub struct NccPlanner {
    decisions: Mutex<Vec<(DecisionKey, CorrStrategy)>>,
    plans: Mutex<Vec<(usize, Arc<Fft>)>>,
}

impl NccPlanner {
    /// Fresh planner with cold caches.
    pub fn new() -> Self {
        Self::default()
    }

    /// The strategy for scanning `pattern_dims` over `image_dims`,
    /// memoised per distinct pairing.
    pub fn strategy(
        &self,
        image_dims: (usize, usize),
        pattern_dims: (usize, usize),
    ) -> CorrStrategy {
        let key = (image_dims.0, image_dims.1, pattern_dims.0, pattern_dims.1);
        let mut cache = self.decisions.lock();
        if let Some((_, s)) = cache.iter().find(|(k, _)| *k == key) {
            return *s;
        }
        let s = plan_strategy(image_dims, pattern_dims);
        cache.push((key, s));
        s
    }

    /// The FFT plan for padded length `n`, built once and shared. Building
    /// while holding the lock guarantees one twiddle table per length even
    /// under concurrent workers (plans are small; contention is rare).
    pub fn fft_plan(&self, n: usize) -> Result<Arc<Fft>> {
        let mut cache = self.plans.lock();
        if let Some((_, p)) = cache.iter().find(|(len, _)| *len == n) {
            return Ok(Arc::clone(p));
        }
        let plan = Arc::new(Fft::new(n)?);
        cache.push((n, Arc::clone(&plan)));
        Ok(plan)
    }

    /// Number of memoised strategy verdicts (test/diagnostic hook).
    pub fn decisions_cached(&self) -> usize {
        self.decisions.lock().len()
    }

    /// Number of FFT plans built (test/diagnostic hook).
    pub fn plans_cached(&self) -> usize {
        self.plans.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_patterns_always_sweep() {
        // Everything under the area floor sweeps, on any image.
        for dims in [(32, 32), (256, 192), (1024, 1024)] {
            assert_eq!(plan_strategy(dims, (10, 10)), CorrStrategy::Sweep);
            assert_eq!(plan_strategy(dims, (15, 15)), CorrStrategy::Sweep);
        }
    }

    #[test]
    fn large_pattern_on_matched_image_takes_fft() {
        // The bench case: 64x64 GAN-scale template on a 256x192 frame.
        assert_eq!(plan_strategy((256, 192), (64, 64)), CorrStrategy::Fft);
    }

    #[test]
    fn degenerate_pairings_sweep() {
        assert_eq!(plan_strategy((0, 0), (4, 4)), CorrStrategy::Sweep);
        assert_eq!(plan_strategy((16, 16), (0, 3)), CorrStrategy::Sweep);
        assert_eq!(plan_strategy((16, 16), (32, 8)), CorrStrategy::Sweep);
    }

    #[test]
    fn crossover_is_single_threshold() {
        // Scanning areas upward at fixed image dims must flip at most once.
        let dims = (256, 192);
        let cut = fft_crossover_area(dims);
        assert!(cut >= MIN_FFT_PATTERN_AREA);
        let mut seen_fft = false;
        for side in 1..=128usize {
            let s = plan_strategy(dims, (side, side));
            match s {
                CorrStrategy::Fft => seen_fft = true,
                CorrStrategy::Sweep => {
                    assert!(!seen_fft, "strategy flipped back to sweep at side {side}")
                }
            }
        }
        assert!(seen_fft, "fft never selected up to 128x128 on 256x192");
    }

    #[test]
    fn planner_memoises_decisions_and_plans() {
        let p = NccPlanner::new();
        assert_eq!(p.strategy((256, 192), (64, 64)), CorrStrategy::Fft);
        assert_eq!(p.strategy((256, 192), (64, 64)), CorrStrategy::Fft);
        assert_eq!(p.strategy((256, 192), (8, 8)), CorrStrategy::Sweep);
        assert_eq!(p.decisions_cached(), 2);
        let a = p.fft_plan(256).unwrap();
        let b = p.fft_plan(256).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(p.plans_cached(), 1);
    }
}
