//! Extra ablation (Section 3's design argument, not a numbered table):
//! the paper argues coordinate *averaging* beats the *union* strategy
//! ("patterns that are too large") and the *intersection* strategy ("tiny
//! patterns"). This driver runs all three combination strategies through
//! the full pipeline on the Product datasets.

use crate::common::{run_ig_with_patterns, ExpEnv, Prepared, Report};
use ig_crowd::{CombineStrategy, CrowdWorkflow};
use ig_synth::spec::DatasetKind;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    average: f64,
    union: f64,
    intersection: f64,
    avg_pattern_area: [f64; 3],
}

/// Run the combination-strategy ablation.
pub fn run(env: &ExpEnv) {
    let seed = env.seed();
    let mut report = Report::new("ablation_combine", &env.out);
    report.line(format!(
        "Combination-strategy ablation (reproduction extra, scale={}): weak-label F1",
        env.scale().name()
    ));
    report.line(format!(
        "{:<22} {:>9} {:>9} {:>13}   mean pattern px (avg/union/inter)",
        "Dataset", "Average", "Union", "Intersection"
    ));
    let strategies = [
        CombineStrategy::Average,
        CombineStrategy::Union,
        CombineStrategy::Intersection,
    ];
    let mut rows = Vec::new();
    for kind in [
        DatasetKind::ProductScratch,
        DatasetKind::ProductBubble,
        DatasetKind::ProductStamping,
    ] {
        let prepared = Prepared::new(&env.ctx, kind);
        let dev = prepared.dev_images();
        let mut scores = [0.0f64; 3];
        let mut areas = [0.0f64; 3];
        for (i, strategy) in strategies.into_iter().enumerate() {
            let workflow = CrowdWorkflow {
                combine: Some(strategy),
                ..CrowdWorkflow::full()
            };
            let mut rng = StdRng::seed_from_u64(seed ^ 0xc0 ^ i as u64);
            let patterns = workflow.run(&dev, &mut rng).patterns;
            if patterns.is_empty() {
                continue;
            }
            areas[i] = patterns
                .iter()
                .map(|p| (p.width() * p.height()) as f64)
                .sum::<f64>()
                / patterns.len() as f64;
            scores[i] =
                run_ig_with_patterns(&env.ctx, &prepared, &dev, patterns, false, seed + i as u64)
                    .map(|r| r.f1)
                    .unwrap_or(0.0);
        }
        report.line(format!(
            "{:<22} {:>9.3} {:>9.3} {:>13.3}   {:.0} / {:.0} / {:.0}",
            kind.display_name(),
            scores[0],
            scores[1],
            scores[2],
            areas[0],
            areas[1],
            areas[2]
        ));
        rows.push(Row {
            dataset: kind.display_name().to_string(),
            average: scores[0],
            union: scores[1],
            intersection: scores[2],
            avg_pattern_area: areas,
        });
    }
    let avg_best = rows
        .iter()
        .filter(|r| r.average >= r.union && r.average >= r.intersection)
        .count();
    report.line(format!(
        "Averaging is best-or-tied on {avg_best}/{} datasets \
         (paper: union too large, intersection too tiny; averaging chosen)",
        rows.len()
    ));
    report.finish(&rows);
}
