//! Table 6: error analysis — Inspector Gadget's mistakes classified into
//! matching failure / noisy data / difficult-to-humans, using the
//! generators' gold noise/difficulty flags.

use crate::common::{all_kinds, run_inspector_gadget, ExpEnv, Prepared, Report};
use ig_augment::AugmentMethod;
use ig_eval::error_analysis::{categorize_errors, SampleDiagnostics};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    matching_failure: usize,
    noisy_data: usize,
    difficult: usize,
    percentages: [f64; 3],
}

/// Run the Table 6 reproduction.
pub fn run(env: &ExpEnv) {
    let seed = env.seed();
    let mut report = Report::new("table6", &env.out);
    report.line(format!(
        "Table 6 (reproduction, scale={}): error analysis of Inspector Gadget",
        env.scale().name()
    ));
    report.line(format!(
        "{:<22} {:>22} {:>16} {:>22}",
        "Dataset", "Matching failure", "Noisy data", "Difficult to humans"
    ));
    let mut rows = Vec::new();
    for kind in all_kinds() {
        let prepared = Prepared::new(&env.ctx, kind);
        let dev = prepared.dev_images();
        let Some(run) = run_inspector_gadget(
            &env.ctx,
            &prepared,
            &dev,
            AugmentMethod::Both,
            env.scale().augment_budget,
            false,
            kind,
            seed,
        ) else {
            report.line(format!(
                "{:<22} (skipped: no patterns)",
                kind.display_name()
            ));
            continue;
        };
        let test = prepared.test_images();
        let gold = prepared.test_labels();
        let diagnostics: Vec<SampleDiagnostics> = test
            .iter()
            .zip(&gold)
            .zip(run.weak_labels.iter().zip(&run.max_similarities))
            .map(|((img, &g), (&pred, &sim))| SampleDiagnostics {
                mispredicted: g != pred,
                noisy: img.noisy,
                difficult: img.difficult,
                max_similarity: sim,
            })
            .collect();
        // Threshold: the median max-similarity of *correct* samples minus
        // a margin — matches that a "silent" feature vector is the cause.
        let mut correct_sims: Vec<f32> = diagnostics
            .iter()
            .filter(|d| !d.mispredicted)
            .map(|d| d.max_similarity)
            .collect();
        correct_sims.sort_by(f32::total_cmp);
        let threshold = correct_sims
            .get(correct_sims.len() / 2)
            .copied()
            .unwrap_or(0.5)
            - 0.02;
        let breakdown = categorize_errors(&diagnostics, threshold);
        let p = breakdown.percentages();
        report.line(format!(
            "{:<22} {:>13} ({:>4.1} %) {:>7} ({:>4.1} %) {:>13} ({:>4.1} %)",
            kind.display_name(),
            breakdown.matching_failure,
            p[0],
            breakdown.noisy_data,
            p[1],
            breakdown.difficult,
            p[2]
        ));
        rows.push(Row {
            dataset: kind.display_name().to_string(),
            matching_failure: breakdown.matching_failure,
            noisy_data: breakdown.noisy_data,
            difficult: breakdown.difficult,
            percentages: p,
        });
    }
    let matching_dominant = rows
        .iter()
        .filter(|r| r.matching_failure >= r.noisy_data && r.matching_failure >= r.difficult)
        .count();
    report.line(format!(
        "Matching failure is the most common cause on {matching_dominant}/{} datasets \
         (paper: most common everywhere, 36.7–63.6%)",
        rows.len()
    ));
    report.finish(&rows);
}
