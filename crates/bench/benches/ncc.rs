//! Ablation bench: exact brute-force NCC vs the paper's coarse-to-fine
//! pyramid matcher (Section 5.1). The pyramid's advantage should grow
//! with image size — this is the design choice DESIGN.md flags.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ig_bench::{defect_pattern, textured_image};
use ig_imaging::ncc::{match_template, match_template_pyramid, score_map, PyramidMatchConfig};
use ig_imaging::pyramid::Pyramid;

fn bench_matchers(c: &mut Criterion) {
    let pattern = defect_pattern(16, 7);
    let mut group = c.benchmark_group("ncc_match");
    for side in [64usize, 128, 256] {
        let image = textured_image(side, side, side as u64);
        group.bench_with_input(BenchmarkId::new("exact", side), &side, |b, _| {
            b.iter(|| match_template(&image, &pattern).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("pyramid", side), &side, |b, _| {
            b.iter(|| {
                match_template_pyramid(&image, &pattern, &PyramidMatchConfig::default()).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_score_map(c: &mut Criterion) {
    let pattern = defect_pattern(12, 9);
    let image = textured_image(128, 128, 11);
    c.bench_function("ncc_score_map_128", |b| {
        b.iter(|| score_map(&image, &pattern).unwrap())
    });
}

fn bench_pyramid_build(c: &mut Criterion) {
    // Pins the H1 hoist: `Pyramid::build` computes the Gaussian kernel once
    // and reuses it across every level (see crates/bench/NOTES.md).
    let image = textured_image(256, 256, 7);
    c.bench_function("pyramid_build_256_l4", |b| {
        b.iter(|| Pyramid::build(&image, 4, 8))
    });
}

criterion_group!(
    benches,
    bench_matchers,
    bench_score_map,
    bench_pyramid_build
);
criterion_main!(benches);
