//! The end-to-end crowdsourcing workflow (Figure 4) and its Table 3
//! ablation variants.

use crate::combine::{combine_boxes, CombineStrategy};
use crate::review::PeerReviewModel;
use crate::worker::WorkerModel;
use ig_faults::{FaultKind, FaultPlan, HealthReport, RecoveryAction, Stage};
use ig_imaging::{BBox, GrayImage};
use ig_synth::LabeledImage;
use rand::Rng;

/// IoU above which two workers' boxes count as corroborating each other.
const AGREEMENT_IOU: f32 = 0.1;
/// Minimum boxes a worker must have drawn before the spammer screen can
/// fire (protects tiny dev sets from false positives).
const SPAM_MIN_BOXES: usize = 5;
/// Corroboration fraction below which a worker counts as a spammer.
/// Honest workers mostly annotate the same gold defects and land well
/// above this; random spam almost never overlaps another worker's boxes.
const SPAM_AGREEMENT_MIN: f64 = 0.2;

/// Workflow configuration. The Table 3 ablations correspond to:
///
/// * full workflow: `combine = Some(Average)`, `peer_review = Some(..)`,
/// * "No peer review": `combine = Some(Average)`, `peer_review = None`
///   (outliers pass straight through),
/// * "No avg. (±std)": `combine = None` — each worker's raw boxes become
///   patterns directly; the experiment harness runs this per worker and
///   reports mean ± std across them.
#[derive(Debug, Clone)]
pub struct CrowdWorkflow {
    /// The simulated crew; each worker annotates every dev image.
    pub workers: Vec<WorkerModel>,
    /// Combination strategy for overlapping boxes; `None` disables
    /// grouping entirely (every raw box becomes a candidate pattern).
    pub combine: Option<CombineStrategy>,
    /// Peer-review panel for outlier boxes; `None` keeps all outliers.
    pub peer_review: Option<PeerReviewModel>,
    /// Margin (pixels) added around each final box when cropping patterns,
    /// giving the matcher a little context.
    pub crop_margin: f32,
    /// Discard final patterns smaller than this many pixels on a side.
    pub min_pattern_side: usize,
}

impl CrowdWorkflow {
    /// The paper's full workflow with the default crew.
    pub fn full() -> Self {
        Self {
            workers: WorkerModel::default_crew(),
            combine: Some(CombineStrategy::Average),
            peer_review: Some(PeerReviewModel::competent()),
            crop_margin: 2.0,
            min_pattern_side: 3,
        }
    }

    /// Table 3 "No peer review" variant.
    pub fn no_peer_review() -> Self {
        Self {
            peer_review: None,
            ..Self::full()
        }
    }

    /// Table 3 "No avg." variant for a single worker (run per worker and
    /// aggregate mean ± std externally).
    pub fn single_worker(worker: WorkerModel) -> Self {
        Self {
            workers: vec![worker],
            combine: None,
            peer_review: None,
            ..Self::full()
        }
    }

    /// Run the workflow over the development images.
    pub fn run(&self, dev_images: &[&LabeledImage], rng: &mut impl Rng) -> WorkflowOutput {
        self.run_with_health(dev_images, rng, None, &HealthReport::new())
    }

    /// [`CrowdWorkflow::run`] with crew health screening and optional fault
    /// injection.
    ///
    /// After annotation the crew is screened: a worker who produced no
    /// boxes at all while others did is flagged as a no-show; a worker
    /// whose boxes are almost never corroborated by another worker is
    /// flagged as a spammer and their boxes are excluded from combination.
    /// Both are recorded on `health` with
    /// [`RecoveryAction::ExcludedWorker`]. The screen needs at least two
    /// workers — the single-worker ablation passes through untouched.
    pub fn run_with_health(
        &self,
        dev_images: &[&LabeledImage],
        rng: &mut impl Rng,
        plan: Option<&FaultPlan>,
        health: &HealthReport,
    ) -> WorkflowOutput {
        // First pass in the workflow's original per-image order —
        // annotation, combination and peer review interleaved — so a run
        // with no plan (or an empty one) consumes the RNG stream exactly
        // as `run` always has and produces bit-identical output. Raw
        // annotations are retained per worker so the crew can be screened
        // afterwards.
        let mut boxes_per_image: Vec<Vec<Vec<BBox>>> = Vec::with_capacity(dev_images.len());
        let mut out = WorkflowOutput {
            patterns: Vec::new(),
            final_boxes_per_image: Vec::with_capacity(dev_images.len()),
            raw_box_count: 0,
            outlier_count: 0,
        };
        for image in dev_images {
            // 1. Annotation (with optional injected crew faults).
            let mut per_worker = Vec::with_capacity(self.workers.len());
            for (widx, worker) in self.workers.iter().enumerate() {
                let boxes = match plan {
                    Some(p) if p.crowd_no_show(widx) => Vec::new(),
                    Some(p) if p.crowd_spammer(widx) => spam_boxes(image, rng),
                    _ => worker.annotate(image, rng),
                };
                per_worker.push(boxes);
            }
            let raw: Vec<BBox> = per_worker.iter().flatten().copied().collect();
            out.raw_box_count += raw.len();
            let (final_boxes, mut patterns, n_outliers) = self.assemble_image(image, raw, rng);
            out.outlier_count += n_outliers;
            out.patterns.append(&mut patterns);
            out.final_boxes_per_image.push(final_boxes);
            boxes_per_image.push(per_worker);
        }

        // Screen the crew on what it actually produced (not on the plan:
        // natural no-shows and spammers are caught the same way). Only a
        // flagged worker triggers the redo below — the clean path returns
        // the first pass untouched.
        let excluded = screen_crew(&boxes_per_image, self.workers.len(), health);
        if excluded.iter().any(|&e| e) {
            let mut redone = WorkflowOutput {
                patterns: Vec::new(),
                final_boxes_per_image: Vec::with_capacity(dev_images.len()),
                // Keep the "boxes drawn" semantics: exclusion drops boxes
                // from combination, not from the drawing tally.
                raw_box_count: out.raw_box_count,
                outlier_count: 0,
            };
            for (image, per_worker) in dev_images.iter().zip(&boxes_per_image) {
                let raw: Vec<BBox> = per_worker
                    .iter()
                    .enumerate()
                    .filter(|&(w, _)| !excluded[w])
                    .flat_map(|(_, boxes)| boxes.iter().copied())
                    .collect();
                let (final_boxes, mut patterns, n_outliers) = self.assemble_image(image, raw, rng);
                redone.outlier_count += n_outliers;
                redone.patterns.append(&mut patterns);
                redone.final_boxes_per_image.push(final_boxes);
            }
            out = redone;
        }
        out
    }

    /// Combine, peer-review and crop one image's raw boxes. Returns the
    /// final boxes, the cropped patterns and the outlier-queue size.
    fn assemble_image(
        &self,
        image: &LabeledImage,
        raw: Vec<BBox>,
        rng: &mut impl Rng,
    ) -> (Vec<BBox>, Vec<GrayImage>, usize) {
        // 2. Combination (or pass-through).
        let (mut final_boxes, outliers) = match self.combine {
            Some(strategy) => {
                let out = combine_boxes(&raw, strategy);
                (out.combined, out.outliers)
            }
            None => (raw, Vec::new()),
        };
        let n_outliers = outliers.len();

        // 3. Peer review of outliers.
        match (&self.peer_review, outliers) {
            (Some(panel), outliers) => {
                final_boxes.extend(panel.review_all(&outliers, &image.defect_boxes, rng));
            }
            (None, outliers) => final_boxes.extend(outliers),
        }

        // 4. Crop patterns.
        let mut patterns = Vec::new();
        for bbox in &final_boxes {
            if let Some(crop) = crop_pattern(&image.image, bbox, self.crop_margin) {
                if crop.width() >= self.min_pattern_side && crop.height() >= self.min_pattern_side {
                    patterns.push(crop);
                }
            }
        }
        (final_boxes, patterns, n_outliers)
    }
}

/// Crop the image region under `bbox` inflated by `margin`.
fn crop_pattern(image: &GrayImage, bbox: &BBox, margin: f32) -> Option<GrayImage> {
    image.crop_bbox(&bbox.inflated(margin))
}

/// Random garbage boxes an injected spammer draws instead of annotating.
/// Small sides keep chance overlap with honest boxes rare, which is what
/// the agreement screen keys on.
fn spam_boxes(image: &LabeledImage, rng: &mut impl Rng) -> Vec<BBox> {
    let (w, h) = image.image.dims();
    let count = rng.gen_range(3..=8);
    (0..count)
        .filter_map(|_| {
            let bw = rng.gen_range(3.0..9.0f32);
            let bh = rng.gen_range(3.0..9.0f32);
            BBox::new(
                rng.gen_range(0.0..(w as f32 - bw).max(1.0)),
                rng.gen_range(0.0..(h as f32 - bh).max(1.0)),
                bw,
                bh,
            )
            .clip(w, h)
        })
        .collect()
}

/// Flag no-shows (zero boxes while others produced some) and spammers
/// (boxes almost never corroborated by a different worker). Returns the
/// per-worker exclusion mask.
fn screen_crew(
    boxes_per_image: &[Vec<Vec<BBox>>],
    n_workers: usize,
    health: &HealthReport,
) -> Vec<bool> {
    let mut excluded = vec![false; n_workers];
    if n_workers < 2 || boxes_per_image.is_empty() {
        return excluded;
    }
    let mut totals = vec![0usize; n_workers];
    let mut corroborated = vec![0usize; n_workers];
    for per_worker in boxes_per_image {
        for w in 0..n_workers {
            for b in &per_worker[w] {
                totals[w] += 1;
                let agrees = per_worker
                    .iter()
                    .enumerate()
                    .any(|(o, boxes)| o != w && boxes.iter().any(|ob| ob.iou(b) > AGREEMENT_IOU));
                if agrees {
                    corroborated[w] += 1;
                }
            }
        }
    }
    let any_boxes = totals.iter().any(|&t| t > 0);
    for w in 0..n_workers {
        if totals[w] == 0 {
            if any_boxes {
                excluded[w] = true;
                health.record(
                    Stage::Crowd,
                    FaultKind::CrowdNoShow,
                    RecoveryAction::ExcludedWorker,
                    format!(
                        "worker {w} produced no annotations across {} images",
                        boxes_per_image.len()
                    ),
                );
            }
        } else if totals[w] >= SPAM_MIN_BOXES
            && (corroborated[w] as f64 / totals[w] as f64) < SPAM_AGREEMENT_MIN
        {
            excluded[w] = true;
            health.record(
                Stage::Crowd,
                FaultKind::CrowdSpammer,
                RecoveryAction::ExcludedWorker,
                format!(
                    "worker {w}: only {}/{} boxes corroborated by another worker",
                    corroborated[w], totals[w]
                ),
            );
        }
    }
    excluded
}

/// Everything the workflow produced.
#[derive(Debug, Clone)]
pub struct WorkflowOutput {
    /// Final pattern crops, ready for augmentation / feature generation.
    pub patterns: Vec<GrayImage>,
    /// Final boxes per input image (parallel to the input slice).
    pub final_boxes_per_image: Vec<Vec<BBox>>,
    /// Total raw boxes drawn by all workers.
    pub raw_box_count: usize,
    /// Boxes that entered the peer-review queue.
    pub outlier_count: usize,
}

impl WorkflowOutput {
    /// Recall of the final boxes against gold: fraction of gold defects
    /// covered by at least one final box (IoU > `iou_threshold`).
    pub fn gold_recall(&self, dev_images: &[&LabeledImage], iou_threshold: f32) -> f64 {
        let mut covered = 0usize;
        let mut total = 0usize;
        for (image, boxes) in dev_images.iter().zip(&self.final_boxes_per_image) {
            for gold in &image.defect_boxes {
                total += 1;
                if boxes.iter().any(|b| b.iou(gold) > iou_threshold) {
                    covered += 1;
                }
            }
        }
        if total == 0 {
            1.0
        } else {
            covered as f64 / total as f64
        }
    }

    /// Precision of the final boxes: fraction overlapping some gold box.
    pub fn gold_precision(&self, dev_images: &[&LabeledImage], iou_threshold: f32) -> f64 {
        let mut good = 0usize;
        let mut total = 0usize;
        for (image, boxes) in dev_images.iter().zip(&self.final_boxes_per_image) {
            for b in boxes {
                total += 1;
                if image.defect_boxes.iter().any(|g| g.iou(b) > iou_threshold) {
                    good += 1;
                }
            }
        }
        if total == 0 {
            1.0
        } else {
            good as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ig_synth::spec::{DatasetKind, DatasetSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dev_images(seed: u64) -> (ig_synth::Dataset, Vec<usize>) {
        let d = ig_synth::generate(&DatasetSpec {
            n: 30,
            n_defective: 15,
            noisy_fraction: 0.0,
            difficult_fraction: 0.0,
            ..DatasetSpec::quick(DatasetKind::ProductScratch, seed)
        });
        let idx: Vec<usize> = (0..d.len()).collect();
        (d, idx)
    }

    #[test]
    fn full_workflow_produces_patterns() {
        let (d, idx) = dev_images(40);
        let refs: Vec<&LabeledImage> = idx.iter().map(|&i| &d.images[i]).collect();
        let mut rng = StdRng::seed_from_u64(0);
        let out = CrowdWorkflow::full().run(&refs, &mut rng);
        assert!(!out.patterns.is_empty());
        assert!(out.raw_box_count >= out.patterns.len());
        for p in &out.patterns {
            assert!(p.width() >= 3 && p.height() >= 3);
        }
    }

    #[test]
    fn full_workflow_beats_no_review_on_precision() {
        let (d, idx) = dev_images(41);
        let refs: Vec<&LabeledImage> = idx.iter().map(|&i| &d.images[i]).collect();
        // Use sloppier workers to make spurious boxes common.
        let mut sloppy_crew = CrowdWorkflow::full();
        sloppy_crew.workers = vec![
            WorkerModel::sloppy(),
            WorkerModel::sloppy(),
            WorkerModel::typical(),
        ];
        let mut no_review = sloppy_crew.clone();
        no_review.peer_review = None;

        let mut p_full = 0.0;
        let mut p_none = 0.0;
        for trial in 0..5 {
            let mut rng = StdRng::seed_from_u64(100 + trial);
            p_full += sloppy_crew.run(&refs, &mut rng).gold_precision(&refs, 0.1);
            let mut rng = StdRng::seed_from_u64(100 + trial);
            p_none += no_review.run(&refs, &mut rng).gold_precision(&refs, 0.1);
        }
        assert!(
            p_full > p_none,
            "peer review should filter spurious outliers: {p_full} vs {p_none}"
        );
    }

    #[test]
    fn recall_is_high_with_default_crew() {
        let (d, idx) = dev_images(42);
        let refs: Vec<&LabeledImage> = idx.iter().map(|&i| &d.images[i]).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let out = CrowdWorkflow::full().run(&refs, &mut rng);
        let recall = out.gold_recall(&refs, 0.1);
        assert!(recall > 0.6, "recall {recall}");
    }

    #[test]
    fn single_worker_variant_uses_raw_boxes() {
        let (d, idx) = dev_images(43);
        let refs: Vec<&LabeledImage> = idx.iter().map(|&i| &d.images[i]).collect();
        let mut rng = StdRng::seed_from_u64(2);
        let out = CrowdWorkflow::single_worker(WorkerModel::careful()).run(&refs, &mut rng);
        assert_eq!(out.outlier_count, 0, "no grouping → no outlier queue");
        // Raw boxes map 1:1 to final boxes (minus sub-minimum crops).
        let finals: usize = out.final_boxes_per_image.iter().map(Vec::len).sum();
        assert_eq!(finals, out.raw_box_count);
    }

    #[test]
    fn empty_dev_set_yields_empty_output() {
        let mut rng = StdRng::seed_from_u64(3);
        let out = CrowdWorkflow::full().run(&[], &mut rng);
        assert!(out.patterns.is_empty());
        assert_eq!(out.gold_recall(&[], 0.1), 1.0);
    }

    #[test]
    fn injected_no_show_is_detected_and_reported() {
        use ig_faults::{FaultKind, FaultPlan, RecoveryAction};
        let (d, idx) = dev_images(45);
        let refs: Vec<&LabeledImage> = idx.iter().map(|&i| &d.images[i]).collect();
        // Find a seed where exactly one of the three workers no-shows.
        let plan = (0..200)
            .map(|s| FaultPlan {
                seed: s,
                crowd_no_show_rate: 0.3,
                ..FaultPlan::default()
            })
            .find(|p| (0..3).filter(|&i| p.crowd_no_show(i)).count() == 1)
            .expect("some seed singles out one worker");
        let health = HealthReport::new();
        let mut rng = StdRng::seed_from_u64(5);
        let out = CrowdWorkflow::full().run_with_health(&refs, &mut rng, Some(&plan), &health);
        assert_eq!(health.count(FaultKind::CrowdNoShow), 1);
        assert_eq!(health.count_action(RecoveryAction::ExcludedWorker), 1);
        assert!(!out.patterns.is_empty(), "two workers still cover the set");
    }

    #[test]
    fn injected_spammer_is_detected_and_excluded() {
        use ig_faults::{FaultKind, FaultPlan, RecoveryAction};
        let (d, idx) = dev_images(46);
        let refs: Vec<&LabeledImage> = idx.iter().map(|&i| &d.images[i]).collect();
        let plan = (0..200)
            .map(|s| FaultPlan {
                seed: s,
                crowd_spammer_rate: 0.3,
                ..FaultPlan::default()
            })
            .find(|p| (0..3).filter(|&i| p.crowd_spammer(i)).count() == 1)
            .expect("some seed singles out one worker");
        let health = HealthReport::new();
        let mut rng = StdRng::seed_from_u64(6);
        let workflow = CrowdWorkflow::full();
        let out = workflow.run_with_health(&refs, &mut rng, Some(&plan), &health);
        assert_eq!(health.count(FaultKind::CrowdSpammer), 1);
        assert!(health.count_action(RecoveryAction::ExcludedWorker) >= 1);
        // Spam was dropped before combination, so precision holds up.
        let precision = out.gold_precision(&refs, 0.1);
        assert!(precision > 0.5, "precision {precision} after exclusion");
    }

    #[test]
    fn empty_plan_matches_plain_run() {
        use ig_faults::FaultPlan;
        let (d, idx) = dev_images(47);
        let refs: Vec<&LabeledImage> = idx.iter().map(|&i| &d.images[i]).collect();
        let workflow = CrowdWorkflow::full();
        let mut rng_a = StdRng::seed_from_u64(7);
        let plain = workflow.run(&refs, &mut rng_a);
        let mut rng_b = StdRng::seed_from_u64(7);
        let health = HealthReport::new();
        let screened =
            workflow.run_with_health(&refs, &mut rng_b, Some(&FaultPlan::none(5)), &health);
        assert_eq!(plain.raw_box_count, screened.raw_box_count);
        assert_eq!(plain.patterns, screened.patterns);
        assert_eq!(
            plain.final_boxes_per_image.len(),
            screened.final_boxes_per_image.len()
        );
    }

    #[test]
    fn combined_boxes_have_averaged_coordinates() {
        // With three careful workers on the same defect, the final box
        // should be close to the gold box.
        let (d, _) = dev_images(44);
        let img = d
            .images
            .iter()
            .find(|i| i.label == 1 && i.defect_boxes.len() == 1)
            .expect("single-defect image");
        let refs = vec![img];
        let workflow = CrowdWorkflow {
            workers: vec![WorkerModel::careful(); 3],
            ..CrowdWorkflow::full()
        };
        let mut rng = StdRng::seed_from_u64(4);
        let out = workflow.run(&refs, &mut rng);
        let gold = img.defect_boxes[0];
        let best_iou = out.final_boxes_per_image[0]
            .iter()
            .map(|b| b.iou(&gold))
            .fold(0.0f32, f32::max);
        assert!(best_iou > 0.5, "best IoU {best_iou}");
    }
}
