//! N1: bare float equality.
//!
//! `precision + recall == 0.0` style guards silently stop matching the
//! moment a computation introduces rounding noise (and NaN never equals
//! anything), which is how divide-by-zero guards rot into NaN factories.
//! Comparisons where either operand is a float literal must go through the
//! epsilon helpers in `ig_imaging::stats` or carry an allow annotation
//! arguing the value is exact (e.g. set from a literal and never computed).

use crate::context::{FileClass, FileContext};
use crate::lexer::TokenKind;
use crate::report::Diagnostic;

pub fn check(ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    if ctx.class != FileClass::Library {
        return;
    }
    let toks = ctx.tokens;
    for (i, t) in toks.iter().enumerate() {
        if !ctx.governed(i) || !(t.is_punct("==") || t.is_punct("!=")) {
            continue;
        }
        let prev_float = i >= 1 && toks[i - 1].kind == TokenKind::Float;
        let next_float = toks.get(i + 1).is_some_and(|t| t.kind == TokenKind::Float);
        if prev_float || next_float {
            out.push(Diagnostic {
                rule: "float-eq".to_string(),
                path: ctx.path.to_string(),
                line: t.line,
                col: t.col,
                message: format!(
                    "bare float `{}` comparison; use \
                     `ig_imaging::stats::approx_eq`/`is_effectively_zero`, or \
                     annotate with `ig-lint: allow(float-eq) -- <why the value is \
                     exact>`",
                    t.text
                ),
            });
        }
    }
}
