//! Multilayer perceptrons with manual backpropagation.
//!
//! The labeler in Inspector Gadget is "a multilayer perceptron (MLP)
//! because it is simple, but also has good performance" (Section 5.2),
//! trained with L-BFGS on a small development set. The same type powers
//! the RGAN generator/discriminator and the Snuba heuristic models, so the
//! API exposes three levels:
//!
//! * high level: [`Mlp::fit_lbfgs`] / [`Mlp::loss_and_grad`] for standard
//!   classification losses,
//! * mid level: [`Mlp::forward_cache`] + [`Mlp::backward`] for custom
//!   losses (the relativistic GAN objective differentiates through both
//!   networks),
//! * parameter level: [`Mlp::params`] / [`Mlp::set_params`] flatten all
//!   weights for the L-BFGS optimizer.

use crate::activation::{log_sigmoid, sigmoid, softmax_rows, Activation};
use crate::lbfgs::{minimize, minimize_robust, LbfgsConfig, LbfgsResult, RestartConfig};
use crate::matrix::Matrix;
use crate::{NnError, Result};
use rand::Rng;

/// Architecture and regularization for an [`Mlp`].
#[derive(Debug, Clone)]
pub struct MlpConfig {
    /// Input feature dimension.
    pub input_dim: usize,
    /// Hidden layer widths, possibly empty (logistic regression).
    pub hidden: Vec<usize>,
    /// Output dimension (1 for binary, #classes for multi-class).
    pub output_dim: usize,
    /// Hidden activation.
    pub activation: Activation,
    /// L2 weight decay coefficient (biases exempt).
    pub l2: f32,
}

impl MlpConfig {
    /// Convenience constructor with ReLU hidden units and no weight decay.
    pub fn new(input_dim: usize, hidden: Vec<usize>, output_dim: usize) -> Self {
        Self {
            input_dim,
            hidden,
            output_dim,
            activation: Activation::Relu,
            l2: 0.0,
        }
    }
}

/// Classification losses fused with their output nonlinearity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loss {
    /// Sigmoid + binary cross-entropy. Targets are a matrix of 0/1 values
    /// matching the logits' shape.
    Bce,
    /// Softmax + cross-entropy. Targets are class indices, one per row.
    CrossEntropy,
}

/// Targets for [`Mlp::loss_and_grad`].
#[derive(Debug, Clone)]
pub enum Targets<'a> {
    /// Per-output binary targets (same shape as the logits).
    Binary(&'a Matrix),
    /// Per-row class indices.
    Classes(&'a [usize]),
}

/// Forward-pass cache: `post[0]` is the input, `pre[i]`/`post[i+1]` the
/// pre-/post-activation of layer `i`. The final `post` holds raw logits.
#[derive(Debug, Clone)]
pub struct MlpCache {
    pre: Vec<Matrix>,
    post: Vec<Matrix>,
}

impl MlpCache {
    /// The output logits.
    pub fn logits(&self) -> &Matrix {
        // ig-lint: allow(panic) -- forward_cache seeds `post` with the input
        // activation before any layer runs, so the vec is never empty
        self.post.last().expect("cache always holds the input")
    }
}

/// A fully-connected network with a linear output layer.
#[derive(Debug, Clone)]
pub struct Mlp {
    weights: Vec<Matrix>,
    biases: Vec<Vec<f32>>,
    activation: Activation,
    l2: f32,
}

impl Mlp {
    /// Build with He/Xavier initialization matching the hidden activation.
    pub fn new(config: &MlpConfig, rng: &mut impl Rng) -> Result<Self> {
        if config.input_dim == 0 || config.output_dim == 0 {
            return Err(NnError::InvalidConfig(
                "input and output dimensions must be positive".into(),
            ));
        }
        if config.hidden.contains(&0) {
            return Err(NnError::InvalidConfig("zero-width hidden layer".into()));
        }
        let mut dims = vec![config.input_dim];
        dims.extend_from_slice(&config.hidden);
        dims.push(config.output_dim);
        let mut weights = Vec::with_capacity(dims.len() - 1);
        let mut biases = Vec::with_capacity(dims.len() - 1);
        for win in dims.windows(2) {
            let &[fan_in, fan_out] = win else { continue };
            let w = match config.activation {
                Activation::Relu | Activation::LeakyRelu => Matrix::he(fan_in, fan_out, rng),
                _ => Matrix::xavier(fan_in, fan_out, rng),
            };
            weights.push(w);
            biases.push(vec![0.0; fan_out]);
        }
        Ok(Self {
            weights,
            biases,
            activation: config.activation,
            l2: config.l2,
        })
    }

    /// Number of layers (hidden + output).
    pub fn num_layers(&self) -> usize {
        self.weights.len()
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        // `new` always builds at least the output layer.
        self.weights.first().map_or(0, Matrix::rows)
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.weights.last().map_or(0, Matrix::cols)
    }

    /// Immutable access to a layer's weight matrix (for spectral norm).
    pub fn weight(&self, layer: usize) -> &Matrix {
        &self.weights[layer]
    }

    /// Mutable access to a layer's weight matrix (for spectral norm).
    pub fn weight_mut(&mut self, layer: usize) -> &mut Matrix {
        &mut self.weights[layer]
    }

    /// Total parameter count.
    pub fn num_params(&self) -> usize {
        self.weights
            .iter()
            .zip(&self.biases)
            .map(|(w, b)| w.len() + b.len())
            .sum()
    }

    /// Flatten all parameters (layer-by-layer, weights then bias).
    pub fn params(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_params());
        for (w, b) in self.weights.iter().zip(&self.biases) {
            out.extend_from_slice(w.as_slice());
            out.extend_from_slice(b);
        }
        out
    }

    /// Load parameters from a flat vector produced by [`Mlp::params`].
    pub fn set_params(&mut self, flat: &[f32]) {
        assert_eq!(flat.len(), self.num_params(), "parameter count mismatch");
        let mut offset = 0;
        for (w, b) in self.weights.iter_mut().zip(&mut self.biases) {
            let wlen = w.len();
            w.as_mut_slice()
                .copy_from_slice(&flat[offset..offset + wlen]);
            offset += wlen;
            let blen = b.len();
            b.copy_from_slice(&flat[offset..offset + blen]);
            offset += blen;
        }
    }

    /// Forward pass retaining intermediate activations for backprop.
    pub fn forward_cache(&self, x: &Matrix) -> MlpCache {
        assert_eq!(x.cols(), self.input_dim(), "input dimension mismatch");
        let n_layers = self.weights.len();
        let mut pre = Vec::with_capacity(n_layers);
        let mut post = Vec::with_capacity(n_layers + 1);
        post.push(x.clone());
        for (i, (w, b)) in self.weights.iter().zip(&self.biases).enumerate() {
            let mut z = post[i].matmul(w);
            z.add_row_broadcast(b);
            let a = if i + 1 == n_layers {
                z.clone() // linear output
            } else {
                self.activation.forward(&z)
            };
            pre.push(z);
            post.push(a);
        }
        MlpCache { pre, post }
    }

    /// Raw logits for a batch.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        self.forward_cache(x).logits().clone()
    }

    /// Sigmoid probabilities (binary heads).
    pub fn predict_sigmoid(&self, x: &Matrix) -> Matrix {
        self.forward(x).map(sigmoid)
    }

    /// Softmax probabilities (multi-class heads).
    pub fn predict_softmax(&self, x: &Matrix) -> Matrix {
        softmax_rows(&self.forward(x))
    }

    /// Argmax class per row.
    pub fn predict_class(&self, x: &Matrix) -> Vec<usize> {
        let logits = self.forward(x);
        (0..logits.rows())
            .map(|r| {
                logits
                    .row(r)
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Backpropagate an arbitrary gradient w.r.t. the output logits.
    /// Returns `(flat_parameter_gradient, gradient_w.r.t._input)`. The
    /// parameter gradient includes the L2 term.
    pub fn backward(&self, cache: &MlpCache, d_logits: &Matrix) -> (Vec<f32>, Matrix) {
        let n_layers = self.weights.len();
        let mut grads_w: Vec<Matrix> = Vec::with_capacity(n_layers);
        let mut grads_b: Vec<Vec<f32>> = Vec::with_capacity(n_layers);
        let mut delta = d_logits.clone();
        for i in (0..n_layers).rev() {
            if i + 1 != n_layers {
                // Multiply by the activation derivative of layer i.
                let pre = &cache.pre[i];
                let post = &cache.post[i + 1];
                let act = self.activation;
                assert_eq!(delta.shape(), pre.shape());
                for r in 0..delta.rows() {
                    let drow = delta.row_mut(r);
                    let prow = pre.row(r);
                    let orow = post.row(r);
                    for (d, (&p, &o)) in drow.iter_mut().zip(prow.iter().zip(orow)) {
                        *d *= act.derivative(p, o);
                    }
                }
            }
            let input = &cache.post[i];
            let mut dw = input.matmul_tn(&delta);
            if self.l2 > 0.0 {
                dw.axpy(self.l2, &self.weights[i]);
            }
            let db = delta.col_sums();
            let dx = delta.matmul_nt(&self.weights[i]);
            grads_w.push(dw);
            grads_b.push(db);
            delta = dx;
        }
        grads_w.reverse();
        grads_b.reverse();
        let mut flat = Vec::with_capacity(self.num_params());
        for (w, b) in grads_w.iter().zip(&grads_b) {
            flat.extend_from_slice(w.as_slice());
            flat.extend_from_slice(b);
        }
        (flat, delta)
    }

    /// Mean loss and flat parameter gradient for a standard loss.
    ///
    /// Errors with [`NnError::InvalidConfig`] when the loss kind and target
    /// kind disagree (BCE wants binary targets, cross-entropy wants class
    /// indices).
    pub fn loss_and_grad(
        &self,
        x: &Matrix,
        targets: &Targets<'_>,
        loss: Loss,
    ) -> Result<(f32, Vec<f32>)> {
        let cache = self.forward_cache(x);
        let (loss_value, d_logits) = pair_loss(cache.logits(), targets, loss)?;
        // `backward` folds the L2 term into the weight gradients; the loss
        // needs the matching 0.5·λ·||W||² penalty added explicitly.
        let (grad, _) = self.backward(&cache, &d_logits);
        let mut total = loss_value;
        if self.l2 > 0.0 {
            for w in &self.weights {
                let n = w.frobenius_norm();
                total += 0.5 * self.l2 * n * n;
            }
        }
        debug_assert_eq!(grad.len(), self.num_params());
        Ok((total, grad))
    }

    /// Mean loss only (no gradient) — used for early-stopping validation.
    /// Same loss/target compatibility contract as [`Mlp::loss_and_grad`].
    pub fn loss(&self, x: &Matrix, targets: &Targets<'_>, loss: Loss) -> Result<f32> {
        let logits = self.forward(x);
        pair_loss(&logits, targets, loss).map(|(l, _)| l)
    }

    /// Fit with L-BFGS (the paper's optimizer for the labeler), returning
    /// the optimizer report.
    pub fn fit_lbfgs(
        &mut self,
        x: &Matrix,
        targets: &Targets<'_>,
        loss: Loss,
        config: &LbfgsConfig,
    ) -> Result<LbfgsResult> {
        // Reject a mismatched loss/target pairing once, up front, so the
        // objective closure below stays infallible.
        check_pair(targets, loss)?;
        let x0 = self.params();
        let model = self.clone();
        let result = minimize(
            |p| {
                let mut m = model.clone();
                m.set_params(p);
                // Pairing was validated above; a NaN loss would trip the
                // optimizer's divergence handling if it somehow failed.
                m.loss_and_grad(x, targets, loss)
                    .unwrap_or_else(|_| (f32::NAN, vec![f32::NAN; p.len()]))
            },
            x0,
            config,
        );
        self.set_params(&result.x);
        Ok(result)
    }

    /// [`Mlp::fit_lbfgs`] with the divergence-recovery ladder of
    /// [`minimize_robust`]: non-finite losses or gradients trigger
    /// deterministic jittered restarts instead of corrupting the model.
    /// The fitted parameters are always finite. Returns the optimizer
    /// report and the number of restarts consumed.
    pub fn fit_lbfgs_robust(
        &mut self,
        x: &Matrix,
        targets: &Targets<'_>,
        loss: Loss,
        config: &LbfgsConfig,
        restart: &RestartConfig,
    ) -> Result<(LbfgsResult, usize)> {
        check_pair(targets, loss)?;
        let x0 = self.params();
        let model = self.clone();
        let (result, restarts) = minimize_robust(
            |p| {
                let mut m = model.clone();
                m.set_params(p);
                m.loss_and_grad(x, targets, loss)
                    .unwrap_or_else(|_| (f32::NAN, vec![f32::NAN; p.len()]))
            },
            x0,
            config,
            restart,
        );
        self.set_params(&result.x);
        Ok((result, restarts))
    }
}

/// Check that the loss kind matches the target kind without running the
/// network. BCE pairs with [`Targets::Binary`], cross-entropy with
/// [`Targets::Classes`].
pub fn check_pair(targets: &Targets<'_>, loss: Loss) -> Result<()> {
    match (loss, targets) {
        (Loss::Bce, Targets::Binary(_)) | (Loss::CrossEntropy, Targets::Classes(_)) => Ok(()),
        (Loss::Bce, Targets::Classes(_)) => Err(NnError::InvalidConfig(
            "BCE loss needs binary targets, got class indices".into(),
        )),
        (Loss::CrossEntropy, Targets::Binary(_)) => Err(NnError::InvalidConfig(
            "cross-entropy loss needs class indices, got binary targets".into(),
        )),
    }
}

/// Dispatch to the matching loss implementation, or error on a mismatched
/// pairing.
fn pair_loss(logits: &Matrix, targets: &Targets<'_>, loss: Loss) -> Result<(f32, Matrix)> {
    check_pair(targets, loss)?;
    Ok(match (loss, targets) {
        (Loss::Bce, Targets::Binary(t)) => bce_with_logits(logits, t),
        (Loss::CrossEntropy, Targets::Classes(c)) => ce_with_logits(logits, c),
        // check_pair rejected the cross combinations already; returning a
        // zero loss here is unreachable but panic-free.
        _ => (0.0, Matrix::zeros(logits.rows(), logits.cols())),
    })
}

/// Mean binary cross-entropy with logits and its gradient.
/// `loss = mean( softplus(z) - t*z )`, `dL/dz = (sigmoid(z) - t) / n`.
fn bce_with_logits(logits: &Matrix, targets: &Matrix) -> (f32, Matrix) {
    assert_eq!(logits.shape(), targets.shape(), "BCE target shape mismatch");
    let n = logits.len().max(1) as f32;
    let mut loss = 0.0f32;
    let mut grad = Matrix::zeros(logits.rows(), logits.cols());
    for i in 0..logits.len() {
        let z = logits.as_slice()[i];
        let t = targets.as_slice()[i];
        // BCE = -[t ln σ(z) + (1 - t) ln(1 - σ(z))]
        //     = -t·logσ(z) - (1-t)·logσ(-z)
        loss += -t * log_sigmoid(z) - (1.0 - t) * log_sigmoid(-z);
        grad.as_mut_slice()[i] = (sigmoid(z) - t) / n;
    }
    (loss / n, grad)
}

/// Mean softmax cross-entropy with logits and its gradient.
fn ce_with_logits(logits: &Matrix, classes: &[usize]) -> (f32, Matrix) {
    assert_eq!(logits.rows(), classes.len(), "CE target length mismatch");
    let n = logits.rows().max(1) as f32;
    let probs = softmax_rows(logits);
    let mut loss = 0.0f32;
    let mut grad = probs.clone();
    for (r, &cls) in classes.iter().enumerate() {
        assert!(cls < logits.cols(), "class index out of range");
        loss += -(probs.get(r, cls).max(1e-12)).ln();
        let g = grad.row_mut(r);
        g[cls] -= 1.0;
        for v in g.iter_mut() {
            *v /= n;
        }
    }
    (loss / n, grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn xor_data() -> (Matrix, Matrix) {
        let x = Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ]);
        let y = Matrix::from_vec(4, 1, vec![0.0, 1.0, 1.0, 0.0]);
        (x, y)
    }

    #[test]
    fn construction_validates() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(Mlp::new(&MlpConfig::new(0, vec![], 1), &mut rng).is_err());
        assert!(Mlp::new(&MlpConfig::new(2, vec![0], 1), &mut rng).is_err());
        let ok = Mlp::new(&MlpConfig::new(3, vec![5, 4], 2), &mut rng).unwrap();
        assert_eq!(ok.num_layers(), 3);
        assert_eq!(ok.input_dim(), 3);
        assert_eq!(ok.output_dim(), 2);
        assert_eq!(ok.num_params(), 3 * 5 + 5 + 5 * 4 + 4 + 4 * 2 + 2);
    }

    #[test]
    fn params_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut mlp = Mlp::new(&MlpConfig::new(4, vec![3], 2), &mut rng).unwrap();
        let p = mlp.params();
        let mut p2 = p.clone();
        for v in &mut p2 {
            *v += 1.0;
        }
        mlp.set_params(&p2);
        assert_eq!(mlp.params(), p2);
    }

    /// Central-difference gradient check — the canonical backprop test.
    #[test]
    fn gradient_check_bce() {
        let mut rng = StdRng::seed_from_u64(2);
        let mlp = Mlp::new(
            &MlpConfig {
                input_dim: 3,
                hidden: vec![4],
                output_dim: 1,
                activation: Activation::Tanh,
                l2: 0.01,
            },
            &mut rng,
        )
        .unwrap();
        let x = Matrix::from_rows(&[vec![0.5, -0.2, 0.8], vec![-1.0, 0.3, 0.1]]);
        let t = Matrix::from_vec(2, 1, vec![1.0, 0.0]);
        let (_, grad) = mlp
            .loss_and_grad(&x, &Targets::Binary(&t), Loss::Bce)
            .unwrap();
        let p0 = mlp.params();
        let eps = 1e-3f32;
        for i in (0..p0.len()).step_by(3) {
            let mut plus = mlp.clone();
            let mut minus = mlp.clone();
            let mut pp = p0.clone();
            pp[i] += eps;
            plus.set_params(&pp);
            pp[i] -= 2.0 * eps;
            minus.set_params(&pp);
            let lp = {
                let (l, _) = plus
                    .loss_and_grad(&x, &Targets::Binary(&t), Loss::Bce)
                    .unwrap();
                l
            };
            let lm = {
                let (l, _) = minus
                    .loss_and_grad(&x, &Targets::Binary(&t), Loss::Bce)
                    .unwrap();
                l
            };
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (grad[i] - numeric).abs() < 2e-2,
                "param {i}: analytic {} vs numeric {}",
                grad[i],
                numeric
            );
        }
    }

    #[test]
    fn gradient_check_cross_entropy() {
        let mut rng = StdRng::seed_from_u64(3);
        let mlp = Mlp::new(
            &MlpConfig {
                input_dim: 2,
                hidden: vec![3],
                output_dim: 3,
                activation: Activation::Relu,
                l2: 0.0,
            },
            &mut rng,
        )
        .unwrap();
        let x = Matrix::from_rows(&[vec![0.4, -0.7], vec![1.2, 0.5], vec![-0.3, -0.9]]);
        let classes = vec![0usize, 2, 1];
        let (_, grad) = mlp
            .loss_and_grad(&x, &Targets::Classes(&classes), Loss::CrossEntropy)
            .unwrap();
        let p0 = mlp.params();
        let eps = 1e-3f32;
        for i in (0..p0.len()).step_by(2) {
            let eval = |delta: f32| {
                let mut m = mlp.clone();
                let mut pp = p0.clone();
                pp[i] += delta;
                m.set_params(&pp);
                m.loss_and_grad(&x, &Targets::Classes(&classes), Loss::CrossEntropy)
                    .unwrap()
                    .0
            };
            let numeric = (eval(eps) - eval(-eps)) / (2.0 * eps);
            assert!(
                (grad[i] - numeric).abs() < 2e-2,
                "param {i}: analytic {} vs numeric {}",
                grad[i],
                numeric
            );
        }
    }

    #[test]
    fn lbfgs_solves_xor() {
        let mut rng = StdRng::seed_from_u64(7);
        let (x, y) = xor_data();
        let mut mlp = Mlp::new(
            &MlpConfig {
                input_dim: 2,
                hidden: vec![8],
                output_dim: 1,
                activation: Activation::Tanh,
                l2: 0.0,
            },
            &mut rng,
        )
        .unwrap();
        let result = mlp
            .fit_lbfgs(
                &x,
                &Targets::Binary(&y),
                Loss::Bce,
                &LbfgsConfig {
                    max_iters: 200,
                    ..Default::default()
                },
            )
            .unwrap();
        assert!(result.loss < 0.1, "final loss {}", result.loss);
        let p = mlp.predict_sigmoid(&x);
        for (i, &t) in y.as_slice().iter().enumerate() {
            let pred = p.as_slice()[i];
            assert!(
                (pred - t).abs() < 0.4,
                "sample {i}: predicted {pred}, target {t}"
            );
        }
    }

    #[test]
    fn multiclass_fit_separates_three_clusters() {
        let mut rng = StdRng::seed_from_u64(11);
        let centers = [(0.0f32, 0.0f32), (3.0, 3.0), (0.0, 3.0)];
        let mut rows = Vec::new();
        let mut classes = Vec::new();
        for (c, &(cx, cy)) in centers.iter().enumerate() {
            for _ in 0..20 {
                rows.push(vec![
                    cx + rng.gen_range(-0.5..0.5),
                    cy + rng.gen_range(-0.5..0.5),
                ]);
                classes.push(c);
            }
        }
        let x = Matrix::from_rows(&rows);
        let mut mlp = Mlp::new(&MlpConfig::new(2, vec![8], 3), &mut rng).unwrap();
        mlp.fit_lbfgs(
            &x,
            &Targets::Classes(&classes),
            Loss::CrossEntropy,
            &LbfgsConfig {
                max_iters: 150,
                ..Default::default()
            },
        )
        .unwrap();
        let preds = mlp.predict_class(&x);
        let correct = preds.iter().zip(&classes).filter(|(a, b)| a == b).count();
        assert!(correct >= 55, "only {correct}/60 correct");
    }

    #[test]
    fn zero_hidden_layers_is_logistic_regression() {
        let mut rng = StdRng::seed_from_u64(13);
        let mlp = Mlp::new(&MlpConfig::new(3, vec![], 1), &mut rng).unwrap();
        assert_eq!(mlp.num_layers(), 1);
        let x = Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]);
        assert_eq!(mlp.forward(&x).shape(), (1, 1));
    }

    #[test]
    fn bce_loss_matches_hand_computation() {
        // Single linear unit with known weights.
        let mut rng = StdRng::seed_from_u64(17);
        let mut mlp = Mlp::new(&MlpConfig::new(1, vec![], 1), &mut rng).unwrap();
        mlp.set_params(&[1.0, 0.0]); // w=1, b=0 → logit = x
        let x = Matrix::from_vec(1, 1, vec![0.0]);
        let t = Matrix::from_vec(1, 1, vec![1.0]);
        let loss = mlp.loss(&x, &Targets::Binary(&t), Loss::Bce).unwrap();
        // -ln σ(0) = ln 2.
        assert!((loss - std::f32::consts::LN_2).abs() < 1e-5);
    }

    #[test]
    fn predict_softmax_rows_normalized() {
        let mut rng = StdRng::seed_from_u64(19);
        let mlp = Mlp::new(&MlpConfig::new(4, vec![5], 3), &mut rng).unwrap();
        let x = Matrix::from_rows(&[vec![0.1, 0.2, 0.3, 0.4], vec![1.0, -1.0, 0.5, 0.0]]);
        let p = mlp.predict_softmax(&x);
        for r in 0..2 {
            assert!((p.row(r).iter().sum::<f32>() - 1.0).abs() < 1e-5);
        }
    }
}
