//! Table 5: end-model accuracy — a CNN trained on the development set
//! alone vs the development set plus Inspector Gadget's weak labels, with
//! the "tipping point" (how much more gold data dev-only needs to catch
//! up).

use crate::common::{f1, run_inspector_gadget, ExpEnv, Prepared, Report};
use ig_augment::AugmentMethod;
use ig_baselines::cnn_models::CnnArch;
use ig_baselines::selflearn::{SelfLearnConfig, SelfLearner};
use ig_imaging::GrayImage;
use ig_synth::spec::DatasetKind;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    end_model: String,
    dev_only_f1: f64,
    weak_label_f1: f64,
    tipping_point: Option<f64>,
}

/// Run the Table 5 reproduction.
pub fn run(env: &ExpEnv) {
    let seed = env.seed();
    let mut report = Report::new("table5", &env.out);
    report.line(format!(
        "Table 5 (reproduction, scale={}): end models on dev-only vs dev+weak labels",
        env.scale().name()
    ));
    report.line(format!(
        "{:<22} {:<12} {:>9} {:>9} {:>9}",
        "Dataset", "End Model", "Dev. Set", "WL (IG)", "Tip.Pnt"
    ));
    let config = SelfLearnConfig {
        epochs: env.scale().cnn_epochs,
        ..Default::default()
    };
    let mut rows = Vec::new();
    for kind in DatasetKind::all() {
        let arch = if matches!(kind, DatasetKind::Neu) {
            CnnArch::MiniResNet
        } else {
            CnnArch::MiniVgg
        };
        let prepared = Prepared::new(&env.ctx, kind);
        let dev = prepared.dev_images();
        let num_classes = prepared.num_classes();
        // Split the held-out pool into a weak-label pool and a final test
        // half so the end models are scored on data neither saw.
        let test = prepared.test_images();
        let half = test.len() / 2;
        let (weak_pool, final_test) = test.split_at(half);
        let final_labels: Vec<usize> = prepared.test_labels()[half..].to_vec();
        let final_imgs: Vec<&GrayImage> = final_test.iter().map(|l| &l.image).collect();

        // 1. IG weak labels for the weak pool.
        let ig_run = run_inspector_gadget(
            &env.ctx,
            &prepared,
            &dev,
            AugmentMethod::Both,
            env.scale().augment_budget,
            false,
            kind,
            seed,
        );
        let Some(ig_run) = ig_run else {
            report.line(format!(
                "{:<22} (skipped: no patterns)",
                kind.display_name()
            ));
            continue;
        };
        let weak_labels: Vec<usize> = ig_run.weak_labels[..half].to_vec();

        let dev_imgs: Vec<&GrayImage> = dev.iter().map(|l| &l.image).collect();
        let dev_labels: Vec<usize> = dev.iter().map(|l| l.label).collect();

        // 2. Dev-only end model.
        let mut rng = StdRng::seed_from_u64(seed ^ 0x55);
        let mut dev_only =
            SelfLearner::train(arch, &dev_imgs, &dev_labels, num_classes, &config, &mut rng);
        let dev_only_f1 = f1(num_classes, &final_labels, &dev_only.label(&final_imgs));

        // 3. Dev + weak-labels end model.
        let mut train_imgs = dev_imgs.clone();
        let mut train_labels = dev_labels.clone();
        for (img, &wl) in weak_pool.iter().zip(&weak_labels) {
            train_imgs.push(&img.image);
            train_labels.push(wl);
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0x66);
        let mut with_weak = SelfLearner::train(
            arch,
            &train_imgs,
            &train_labels,
            num_classes,
            &config,
            &mut rng,
        );
        let weak_f1 = f1(num_classes, &final_labels, &with_weak.label(&final_imgs));

        // 4. Tipping point: grow a *gold*-labeled training set (dev plus
        // gold-labeled samples from the weak pool) until it matches the
        // weak-label model.
        let mut tipping = None;
        for multiplier in [2.0f64, 3.0, 4.0, 6.0, 8.0] {
            let extra = ((multiplier - 1.0) * dev.len() as f64) as usize;
            if extra > weak_pool.len() {
                break;
            }
            let mut gold_imgs = dev_imgs.clone();
            let mut gold_labels = dev_labels.clone();
            for img in weak_pool.iter().take(extra) {
                gold_imgs.push(&img.image);
                gold_labels.push(img.label);
            }
            let mut rng = StdRng::seed_from_u64(seed ^ 0x77 ^ (multiplier as u64));
            let mut grown = SelfLearner::train(
                arch,
                &gold_imgs,
                &gold_labels,
                num_classes,
                &config,
                &mut rng,
            );
            let grown_f1 = f1(num_classes, &final_labels, &grown.label(&final_imgs));
            if grown_f1 >= weak_f1 {
                tipping = Some(multiplier);
                break;
            }
        }

        report.line(format!(
            "{:<22} {:<12} {:>9.3} {:>9.3} {:>9}",
            kind.display_name(),
            arch.display_name(),
            dev_only_f1,
            weak_f1,
            tipping
                .map(|t| format!("x{t:.1}"))
                .unwrap_or_else(|| ">x8".to_string())
        ));
        rows.push(Row {
            dataset: kind.display_name().to_string(),
            end_model: arch.display_name().to_string(),
            dev_only_f1,
            weak_label_f1: weak_f1,
            tipping_point: tipping,
        });
    }
    let improved = rows
        .iter()
        .filter(|r| r.weak_label_f1 >= r.dev_only_f1)
        .count();
    report.line(format!(
        "Weak labels improve the end model on {improved}/{} datasets \
         (paper: improvements of 0.02–0.36 on all five)",
        rows.len()
    ));
    report.finish(&rows);
}
