//! N2: truncating float→int casts in the imaging/NN hot paths.
//!
//! `x as usize` on a float silently truncates toward zero and saturates on
//! NaN/overflow — a fine choice when intended, a subtle geometry bug when
//! not (off-by-one window origins in NCC, mis-sized resize targets). In the
//! hot-path files the rounding must be spelled out: `expr.floor() as usize`
//! (or `.ceil()`/`.round()`/`.trunc()`) passes, a bare `expr as usize` on a
//! float-valued expression fires. Detection is token-level: the source
//! expression counts as float-valued when it is a float literal, an
//! `as f32`/`as f64` chain, an identifier bound to `f32`/`f64` somewhere in
//! the file, or a parenthesized/method expression containing such evidence.
//! (Identifier typing is per-name within the file — the same granularity as
//! the hash-iter rule.)

use std::collections::BTreeSet;

use crate::context::{matching_back, FileClass, FileContext};
use crate::lexer::TokenKind;
use crate::report::Diagnostic;

/// Integer targets a float cast truncates into.
const INT_TARGETS: &[&str] = &[
    "u8", "u16", "u32", "u64", "i8", "i16", "i32", "i64", "usize", "isize",
];

/// Float-producing methods: seeing one applied right before the cast is
/// strong evidence the source is float-typed.
// `clamp`/`min`/`max` are deliberately absent: they exist on integers too
// and say nothing about the operand's type.
const FLOAT_METHODS: &[&str] = &[
    "floor",
    "ceil",
    "round",
    "trunc",
    "fract",
    "sqrt",
    "powf",
    "powi",
    "exp",
    "ln",
    "log2",
    "log10",
    "sin",
    "cos",
    "tan",
    "hypot",
    "to_degrees",
    "to_radians",
];

/// Methods that make the rounding mode explicit: `x.floor() as usize` is
/// deliberate and passes the rule.
const ROUNDING_METHODS: &[&str] = &["floor", "ceil", "round", "trunc"];

pub fn check(ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    if !ctx.hot_path || ctx.class != FileClass::Library {
        return;
    }
    let toks = ctx.tokens;

    // Pass 1: identifiers bound to a float type anywhere in the file —
    // `x: f32` (params, fields, lets) or `let x = 1.5`.
    let mut float_idents: BTreeSet<&str> = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        let is_float_ty = t.is_ident("f32") || t.is_ident("f64");
        if is_float_ty {
            let mut j = i;
            while j >= 1 && (toks[j - 1].is_punct("&") || toks[j - 1].is_ident("mut")) {
                j -= 1;
            }
            if j >= 2 && toks[j - 1].is_punct(":") && toks[j - 2].kind == TokenKind::Ident {
                float_idents.insert(toks[j - 2].text.as_str());
            }
        }
        // `let [mut] name = 1.5` — anchored on `let` so deref assignments
        // like `*w = 0.0` inside closures don't type unrelated names.
        if t.kind == TokenKind::Float
            && i >= 3
            && toks[i - 1].is_punct("=")
            && toks[i - 2].kind == TokenKind::Ident
        {
            let before = &toks[i - 3];
            if before.is_ident("let")
                || (before.is_ident("mut") && i >= 4 && toks[i - 4].is_ident("let"))
            {
                float_idents.insert(toks[i - 2].text.as_str());
            }
        }
    }

    for (i, t) in toks.iter().enumerate() {
        if !ctx.governed(i) || !t.is_ident("as") {
            continue;
        }
        let Some(target) = toks.get(i + 1) else {
            continue;
        };
        if target.kind != TokenKind::Ident || !INT_TARGETS.contains(&target.text.as_str()) {
            continue;
        }
        if i == 0 {
            continue;
        }
        let prev = &toks[i - 1];
        let float_source = match prev.kind {
            TokenKind::Float => true,
            // `x as f64 as usize` chains, or a float-bound identifier.
            TokenKind::Ident if prev.text == "f32" || prev.text == "f64" => true,
            TokenKind::Ident if float_idents.contains(prev.text.as_str()) => true,
            // `(expr) as usize` / `x.method() as usize`: look inside the
            // parens and at the method name for float evidence.
            TokenKind::Punct if prev.text == ")" => {
                let open = matching_back(toks, i - 1, "(", ")");
                match open {
                    Some(j) => {
                        let method = (j >= 2
                            && toks[j - 1].kind == TokenKind::Ident
                            && toks[j - 2].is_punct("."))
                        .then(|| toks[j - 1].text.as_str());
                        if method.is_some_and(|m| ROUNDING_METHODS.contains(&m)) {
                            false // rounding mode is explicit
                        } else {
                            let inner_float = toks[j..i].iter().any(|t| {
                                t.kind == TokenKind::Float
                                    || t.is_ident("f32")
                                    || t.is_ident("f64")
                                    || FLOAT_METHODS.contains(&t.text.as_str())
                                    || (t.kind == TokenKind::Ident
                                        && float_idents.contains(t.text.as_str()))
                            });
                            inner_float || method.is_some_and(|m| FLOAT_METHODS.contains(&m))
                        }
                    }
                    None => false,
                }
            }
            _ => false,
        };
        if float_source {
            out.push(Diagnostic {
                rule: "lossy-cast".to_string(),
                path: ctx.path.to_string(),
                line: t.line,
                col: t.col,
                message: format!(
                    "float-valued expression cast to `{}` truncates toward zero in a \
                     hot path; make the rounding explicit (`.floor() as {}`, \
                     `.round() as {}`) or annotate with \
                     `ig-lint: allow(lossy-cast) -- <intent>`",
                    target.text, target.text, target.text
                ),
            });
        }
    }
}
