//! Snuba (Varma & Ré, PVLDB 2018) re-implementation.
//!
//! Snuba automates labeling-function construction: starting from a set of
//! *primitives* ("analogous to our FGFs" — Section 6.1, and we feed it
//! exactly those similarity features, "to be favorable to Snuba"), it
//! iteratively trains small heuristic models on subsets of primitives,
//! calibrates an abstain threshold for each, selects the best by F1 ×
//! coverage-of-the-still-uncovered, and finally combines the committee
//! with a generative label model.
//!
//! The paper notes Snuba's runtime "is exponential to the number of
//! patterns" because it enumerates primitive subsets; the candidate cap
//! here keeps runs tractable while preserving that scaling behaviour for
//! the benches.

use crate::label_model::{LabelModel, Vote};
use ig_core::labeler::{Labeler, LabelerConfig};
use ig_eval::metrics::{binary_f1, macro_f1};
use ig_nn::lbfgs::LbfgsConfig;
use ig_nn::Matrix;
use rand::seq::SliceRandom;
use rand::Rng;

/// Snuba hyper-parameters.
#[derive(Debug, Clone)]
pub struct SnubaConfig {
    /// Committee size (synthesis iterations).
    pub max_lfs: usize,
    /// Max primitives per heuristic (the subset-size knob; exponential in
    /// the original system).
    pub max_subset_size: usize,
    /// Candidate heuristics evaluated per iteration.
    pub candidates_per_iter: usize,
    /// Abstain thresholds tried per heuristic.
    pub beta_grid: usize,
    /// EM rounds for the final label model.
    pub em_iterations: usize,
}

impl Default for SnubaConfig {
    fn default() -> Self {
        Self {
            max_lfs: 10,
            max_subset_size: 2,
            candidates_per_iter: 40,
            beta_grid: 8,
            em_iterations: 15,
        }
    }
}

/// One synthesized labeling function: a tiny logistic model over a
/// primitive subset plus an abstain threshold on its confidence.
#[derive(Debug)]
struct HeuristicLf {
    feature_subset: Vec<usize>,
    model: Labeler,
    /// Abstain when max class probability < this.
    confidence_floor: f32,
}

impl HeuristicLf {
    fn vote(&self, full_features: &Matrix, row: usize) -> Vote {
        let sub = self.project_row(full_features, row);
        let proba = self.model.predict_proba(&sub);
        let (best_class, best_p) = (0..proba.cols())
            .map(|c| (c, proba.get(0, c)))
            .max_by(|a, b| a.1.total_cmp(&b.1))?;
        if best_p >= self.confidence_floor {
            Some(best_class)
        } else {
            None
        }
    }

    fn project_row(&self, full: &Matrix, row: usize) -> Matrix {
        Matrix::from_fn(1, self.feature_subset.len(), |_, c| {
            full.get(row, self.feature_subset[c])
        })
    }
}

fn project(full: &Matrix, subset: &[usize]) -> Matrix {
    Matrix::from_fn(full.rows(), subset.len(), |r, c| full.get(r, subset[c]))
}

/// A trained Snuba committee.
#[derive(Debug)]
pub struct Snuba {
    lfs: Vec<HeuristicLf>,
    label_model: LabelModel,
    num_classes: usize,
    /// Per-iteration dev F1 of the selected LF (diagnostic).
    pub selection_scores: Vec<f64>,
}

impl Snuba {
    /// Run the synthesis loop on dev features/labels, then fit the label
    /// model on the unlabeled feature matrix.
    pub fn train(
        dev_features: &Matrix,
        dev_labels: &[usize],
        unlabeled_features: &Matrix,
        num_classes: usize,
        config: &SnubaConfig,
        rng: &mut impl Rng,
    ) -> Self {
        assert_eq!(dev_features.rows(), dev_labels.len(), "label mismatch");
        let d = dev_features.cols();
        let mut lfs: Vec<HeuristicLf> = Vec::new();
        let mut selection_scores = Vec::new();
        // Dev points not yet confidently covered by the committee.
        let mut uncovered: Vec<bool> = vec![true; dev_labels.len()];

        for _iter in 0..config.max_lfs {
            // Candidate subsets: all singletons first, then random pairs
            // and triples up to the cap.
            let mut subsets: Vec<Vec<usize>> = (0..d).map(|f| vec![f]).collect();
            let mut all_features: Vec<usize> = (0..d).collect();
            while subsets.len() < config.candidates_per_iter.max(d) {
                let k = rng.gen_range(2..=config.max_subset_size.max(2)).min(d);
                all_features.shuffle(rng);
                let mut s = all_features[..k].to_vec();
                s.sort_unstable();
                subsets.push(s);
            }
            subsets.truncate(config.candidates_per_iter.max(1));

            let mut best: Option<(f64, HeuristicLf)> = None;
            for subset in &subsets {
                if let Some((score, lf)) = fit_candidate(
                    dev_features,
                    dev_labels,
                    subset,
                    num_classes,
                    config,
                    &uncovered,
                    rng,
                ) {
                    if best.as_ref().is_none_or(|(s, _)| score > *s) {
                        best = Some((score, lf));
                    }
                }
            }
            let Some((score, lf)) = best else { break };
            if score <= 0.0 {
                break;
            }
            // Update coverage.
            for (i, flag) in uncovered.iter_mut().enumerate() {
                if *flag && lf.vote(dev_features, i).is_some() {
                    *flag = false;
                }
            }
            selection_scores.push(score);
            lfs.push(lf);
            if uncovered.iter().all(|&u| !u) && lfs.len() >= 3 {
                break;
            }
        }

        // Generative model fit on the unlabeled votes (Snuba's final step).
        let votes: Vec<Vec<Vote>> = (0..unlabeled_features.rows())
            .map(|r| {
                lfs.iter()
                    .map(|lf| lf.vote(unlabeled_features, r))
                    .collect()
            })
            .collect();
        let label_model = LabelModel::fit(&votes, num_classes, config.em_iterations);
        Self {
            lfs,
            label_model,
            num_classes,
            selection_scores,
        }
    }

    /// Committee size.
    pub fn num_lfs(&self) -> usize {
        self.lfs.len()
    }

    /// Weak labels for a feature matrix.
    pub fn label(&self, features: &Matrix) -> Vec<usize> {
        (0..features.rows())
            .map(|r| {
                let votes: Vec<Vote> = self.lfs.iter().map(|lf| lf.vote(features, r)).collect();
                self.label_model.predict(&votes)
            })
            .collect()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }
}

/// Train one candidate heuristic and calibrate its abstain threshold;
/// returns (selection score, LF).
#[allow(clippy::too_many_arguments)]
fn fit_candidate(
    dev_features: &Matrix,
    dev_labels: &[usize],
    subset: &[usize],
    num_classes: usize,
    config: &SnubaConfig,
    uncovered: &[bool],
    rng: &mut impl Rng,
) -> Option<(f64, HeuristicLf)> {
    let x = project(dev_features, subset);
    let mut model = Labeler::new(
        subset.len(),
        LabelerConfig {
            hidden: vec![],
            num_classes,
            l2: 1e-3,
            lbfgs: LbfgsConfig {
                max_iters: 40,
                ..Default::default()
            },
        },
        rng,
    )
    .ok()?;
    model.fit(&x, dev_labels).ok()?;
    let proba = model.predict_proba(&x);

    // Calibrate the confidence floor over a grid; score candidates by
    // F1-on-covered × fraction-of-uncovered-newly-covered.
    let uniform = 1.0 / num_classes as f32;
    let mut best: Option<(f64, f32)> = None;
    for step in 0..config.beta_grid.max(1) {
        let floor =
            uniform + (1.0 - uniform) * (step as f32 + 0.5) / config.beta_grid.max(1) as f32 * 0.9;
        let mut covered_gold = Vec::new();
        let mut covered_pred = Vec::new();
        let mut newly_covered = 0usize;
        for r in 0..proba.rows() {
            let Some((c, p)) = (0..proba.cols())
                .map(|c| (c, proba.get(r, c)))
                .max_by(|a, b| a.1.total_cmp(&b.1))
            else {
                continue;
            };
            if p >= floor {
                covered_gold.push(dev_labels[r]);
                covered_pred.push(c);
                if uncovered[r] {
                    newly_covered += 1;
                }
            }
        }
        if covered_gold.is_empty() {
            continue;
        }
        let f1 = if num_classes == 2 {
            let g: Vec<bool> = covered_gold.iter().map(|&v| v == 1).collect();
            let p: Vec<bool> = covered_pred.iter().map(|&v| v == 1).collect();
            binary_f1(&g, &p).f1
        } else {
            macro_f1(num_classes, &covered_gold, &covered_pred)
        };
        let total_uncovered: usize = uncovered.iter().filter(|&&u| u).count();
        let novelty = if total_uncovered == 0 {
            0.5 // committee already covers everything; score by F1 alone
        } else {
            newly_covered as f64 / total_uncovered as f64
        };
        let score = f1 * (0.25 + 0.75 * novelty);
        if best.as_ref().is_none_or(|(s, _)| score > *s) {
            best = Some((score, floor));
        }
    }
    let (score, floor) = best?;
    Some((
        score,
        HeuristicLf {
            feature_subset: subset.to_vec(),
            model,
            confidence_floor: floor,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Features where feature 0 separates classes; others are noise.
    fn feature_task(n: usize, d: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let y = i % 2;
            let mut row: Vec<f32> = (0..d).map(|_| rng.gen_range(0.8..0.9)).collect();
            row[0] = if y == 1 {
                rng.gen_range(0.93..1.0)
            } else {
                rng.gen_range(0.80..0.87)
            };
            rows.push(row);
            labels.push(y);
        }
        (Matrix::from_rows(&rows), labels)
    }

    #[test]
    fn snuba_learns_separable_task() {
        let mut rng = StdRng::seed_from_u64(0);
        let (dev_x, dev_y) = feature_task(60, 5, 1);
        let (test_x, test_y) = feature_task(80, 5, 2);
        let snuba = Snuba::train(
            &dev_x,
            &dev_y,
            &test_x,
            2,
            &SnubaConfig::default(),
            &mut rng,
        );
        assert!(snuba.num_lfs() >= 1);
        let preds = snuba.label(&test_x);
        let correct = preds.iter().zip(&test_y).filter(|(a, b)| a == b).count();
        assert!(correct >= 64, "{correct}/80 correct");
    }

    #[test]
    fn committee_is_bounded() {
        let mut rng = StdRng::seed_from_u64(3);
        let (dev_x, dev_y) = feature_task(40, 4, 4);
        let config = SnubaConfig {
            max_lfs: 3,
            ..Default::default()
        };
        let snuba = Snuba::train(&dev_x, &dev_y, &dev_x, 2, &config, &mut rng);
        assert!(snuba.num_lfs() <= 3);
    }

    #[test]
    fn selection_scores_are_recorded() {
        let mut rng = StdRng::seed_from_u64(5);
        let (dev_x, dev_y) = feature_task(40, 4, 6);
        let snuba = Snuba::train(&dev_x, &dev_y, &dev_x, 2, &SnubaConfig::default(), &mut rng);
        assert_eq!(snuba.selection_scores.len(), snuba.num_lfs());
        assert!(snuba.selection_scores.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn multiclass_snuba() {
        let mut rng = StdRng::seed_from_u64(7);
        // Three classes, each flagged by its own feature.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..90 {
            let y = i % 3;
            let mut row: Vec<f32> = (0..4).map(|_| rng.gen_range(0.8..0.86)).collect();
            row[y] = rng.gen_range(0.94..1.0);
            rows.push(row);
            labels.push(y);
        }
        let x = Matrix::from_rows(&rows);
        let snuba = Snuba::train(&x, &labels, &x, 3, &SnubaConfig::default(), &mut rng);
        let preds = snuba.label(&x);
        let correct = preds.iter().zip(&labels).filter(|(a, b)| a == b).count();
        assert!(correct >= 70, "{correct}/90 correct");
        assert_eq!(snuba.num_classes(), 3);
    }
}
