//! `ig-lint` — workspace analyzer enforcing the determinism, panic-freedom,
//! and numeric-safety invariants the fault-injection subsystem's
//! bit-for-bit reproducibility contract rests on.
//!
//! Run as `cargo run -p ig-lint -- check`. See DESIGN.md §"Static
//! invariants" for the rule catalog and the allow-annotation convention.

pub mod annotations;
pub mod ast;
pub mod baseline;
pub mod context;
pub mod dataflow;
pub mod fix;
pub mod lexer;
pub mod report;
pub mod rules;

use std::fs;
use std::path::{Path, PathBuf};

use annotations::AllowIndex;
use context::{
    classify, hot_loop_scope, strict_error_scope, test_mask, FileClass, FileContext, HOT_PATH_FILES,
};
use report::{Diagnostic, Report, ReportedAllow};

/// Analyze one source string as if it lived at `rel_path` (workspace
/// relative, forward slashes). This is the unit-testable core; the binary
/// and the fixture tests both go through it.
pub fn check_source(rel_path: &str, src: &str) -> Vec<Diagnostic> {
    check_source_as(rel_path, src, classify(rel_path))
}

/// Like [`check_source`], but with the file class pinned by the caller —
/// fixture tests use this to exercise library-code rules on files that
/// live under `tests/fixtures/`.
pub fn check_source_as(rel_path: &str, src: &str, class: FileClass) -> Vec<Diagnostic> {
    check_source_with(rel_path, src, class, HOT_PATH_FILES.contains(&rel_path))
}

/// Fully-pinned variant: class and hot-path flag both chosen by the caller.
pub fn check_source_with(
    rel_path: &str,
    src: &str,
    class: FileClass,
    hot_path: bool,
) -> Vec<Diagnostic> {
    let lexed = lexer::lex(src);
    let mask = test_mask(&lexed);
    let allows = AllowIndex::build(&lexed.comments, &lexed.tokens);
    // The AST may be partial on malformed input (ast.errors records where);
    // the token-level rules are unaffected either way.
    let parsed = ast::parse(&lexed.tokens);
    let ctx = FileContext {
        path: rel_path,
        class,
        tokens: &lexed.tokens,
        in_test: &mask,
        allows: &allows,
        hot_path,
        ast: &parsed,
        hot_loop: hot_loop_scope(rel_path),
        strict_errors: strict_error_scope(rel_path),
    };
    rules::check_file(&ctx)
}

/// Directories never scanned: build output, VCS, vendored stubs, run
/// artifacts, sample data, and the linter's own rule-violation fixtures.
const SKIP_DIRS: &[&str] = &[
    "target",
    ".git",
    ".offline-stubs",
    "results",
    "samples",
    "fixtures",
    ".github",
    ".claude",
];

/// Recursively collect every `.rs` file under `root`, sorted for
/// deterministic reports.
pub fn collect_rs_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = fs::read_dir(&dir)?;
        for entry in entries {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Analyze the whole workspace rooted at `root`.
pub fn check_workspace(root: &Path) -> std::io::Result<Report> {
    let files = collect_rs_files(root)?;
    let mut report = Report {
        files_scanned: files.len(),
        ..Report::default()
    };
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = fs::read_to_string(path)?;
        report.violations.extend(check_source(&rel, &src));

        // Re-lex to list surviving allow annotations for the audit trail.
        let lexed = lexer::lex(&src);
        let allows = AllowIndex::build(&lexed.comments, &lexed.tokens);
        for a in allows.allows {
            if let Some(reason) = a.reason {
                report.allows.push(ReportedAllow {
                    path: rel.clone(),
                    line: a.annotation_line,
                    rules: a.rules,
                    reason,
                });
            }
        }
    }
    report
        .violations
        .sort_by(|a, b| (&a.path, a.line, a.col, &a.rule).cmp(&(&b.path, b.line, b.col, &b.rule)));
    Ok(report)
}
