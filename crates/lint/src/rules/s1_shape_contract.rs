//! S1: shape contracts the parser can prove.
//!
//! The label pipeline threads dimensions through `Matrix`/`Tensor4`/
//! `GrayImage` constructors and the resize/pyramid entry points. Most
//! shapes are runtime values, but when a call site writes *literals* the
//! contract is decidable at lint time:
//!
//! - `Matrix::from_vec(2, 3, vec![0.0; 5])` — 2×3 ≠ 5;
//! - `Tensor4::from_vec(1, 1, 2, 2, vec![…])` with a countable length;
//! - `Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]])` — ragged rows;
//! - `resize_bilinear(img, 0, h)` — zero target dimensions, which the
//!   callee rejects at runtime (`check_dims`), caught here at lint time.
//!
//! Anything involving a non-literal dimension or an uncountable data
//! argument is out of scope — S1 only fires on what it can prove.

use crate::ast::{walk_block, Expr, ExprKind};
use crate::context::{FileClass, FileContext};
use crate::lexer::Token;
use crate::report::Diagnostic;

/// Constructors taking leading `usize` dimensions and a trailing data vec
/// whose length must equal the dimensions' product.
const FROM_VEC_TYPES: &[&str] = &["Matrix", "GrayImage", "Tensor4"];

/// Entry points whose trailing two args are target dimensions that must be
/// non-zero.
const NONZERO_DIM_FNS: &[&str] = &["resize_bilinear", "resize_nearest"];

/// Parse an integer-literal expression (`5`, `3usize`, `1_000`).
fn lit_int(e: &Expr, toks: &[Token]) -> Option<u64> {
    let ExprKind::Lit { tok, .. } = &e.kind else {
        return None;
    };
    let text = &toks.get(*tok)?.text;
    let digits: String = text
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '_')
        .filter(|c| *c != '_')
        .collect();
    if digits.is_empty() {
        return None;
    }
    digits.parse().ok()
}

/// Length of a data argument when it is countable: `vec![x; N]`,
/// `vec![a, b, c]`, `[a, b, c]`, or `Vec::new()`.
fn countable_len(e: &Expr, toks: &[Token]) -> Option<u64> {
    match &e.kind {
        ExprKind::Macro {
            name, args, repeat, ..
        } if name == "vec" => match repeat {
            Some((_, len)) => lit_int(len, toks),
            None => Some(args.len() as u64),
        },
        ExprKind::Array(items) => Some(items.len() as u64),
        ExprKind::Repeat { len, .. } => lit_int(len, toks),
        ExprKind::Call { callee, args } if args.is_empty() => match &callee.kind {
            ExprKind::Path(segs) if segs.ends_with(&["Vec".into(), "new".into()]) => Some(0),
            _ => None,
        },
        ExprKind::Unary(inner) | ExprKind::Cast(inner) => countable_len(inner, toks),
        ExprKind::MethodCall { recv, method, .. } if method == "to_vec" || method == "clone" => {
            countable_len(recv, toks)
        }
        _ => None,
    }
}

pub fn check(ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    if ctx.class != FileClass::Library {
        return;
    }

    let mut diag = |tok: usize, message: String| {
        if let Some(t) = ctx.tokens.get(tok) {
            out.push(Diagnostic {
                rule: "shape-contract".to_string(),
                path: ctx.path.to_string(),
                line: t.line,
                col: t.col,
                message,
            });
        }
    };

    for f in &ctx.ast.fns {
        if !ctx.governed(f.name_tok) {
            continue;
        }
        walk_block(&f.body, &mut |e: &Expr| {
            let ExprKind::Call { callee, args } = &e.kind else {
                return;
            };
            let ExprKind::Path(segs) = &callee.kind else {
                return;
            };
            if !ctx.governed(callee.span.lo) {
                return;
            }
            let last = segs.last().map(String::as_str).unwrap_or("");
            let ty = segs
                .len()
                .checked_sub(2)
                .and_then(|i| segs.get(i))
                .map(String::as_str)
                .unwrap_or("");

            // `Ty::from_vec(d1, …, dn, data)`: product of literal dims must
            // equal a countable data length.
            if last == "from_vec" && FROM_VEC_TYPES.contains(&ty) && args.len() >= 2 {
                let (dims, data) = args.split_at(args.len() - 1);
                let lits: Vec<u64> = dims.iter().filter_map(|d| lit_int(d, ctx.tokens)).collect();
                if lits.len() == dims.len() {
                    if let Some(len) = data.first().and_then(|d| countable_len(d, ctx.tokens)) {
                        let product: u64 = lits.iter().product();
                        if product != len {
                            let dims_str = lits
                                .iter()
                                .map(u64::to_string)
                                .collect::<Vec<_>>()
                                .join("×");
                            diag(
                                callee.span.lo,
                                format!(
                                    "`{ty}::from_vec` shape mismatch: dimensions \
                                     {dims_str} = {product} elements, but the data \
                                     argument has {len}"
                                ),
                            );
                        }
                    }
                }
            }

            // `Matrix::from_rows(&[vec![…], …])`: countable rows must agree.
            if last == "from_rows" {
                if let [arg] = args.as_slice() {
                    let mut rows_arg = arg;
                    while let ExprKind::Unary(inner) = &rows_arg.kind {
                        rows_arg = inner;
                    }
                    if let ExprKind::Array(rows) = &rows_arg.kind {
                        let lens: Vec<Option<u64>> =
                            rows.iter().map(|r| countable_len(r, ctx.tokens)).collect();
                        let known: Vec<u64> = lens.iter().flatten().copied().collect();
                        if known.len() == rows.len() {
                            if let Some(&first) = known.first() {
                                if known.iter().any(|&l| l != first) {
                                    diag(
                                        callee.span.lo,
                                        format!(
                                            "`from_rows` rows are ragged: lengths {:?} \
                                             must all match",
                                            known
                                        ),
                                    );
                                }
                            }
                        }
                    }
                }
            }

            // `resize_*(src, w, h)`: literal zero target dimension.
            if NONZERO_DIM_FNS.contains(&last) && args.len() >= 3 {
                for (i, dim) in args[args.len() - 2..].iter().enumerate() {
                    if lit_int(dim, ctx.tokens) == Some(0) {
                        let which = if i == 0 { "width" } else { "height" };
                        diag(
                            dim.span.lo,
                            format!(
                                "`{last}` called with literal zero target {which}; the \
                                 callee rejects zero dimensions at runtime"
                            ),
                        );
                    }
                }
            }
        });
    }
}
