//! The invariant rules. Each rule is a pure function from a
//! [`FileContext`] to diagnostics; suppression via allow annotations and
//! malformed-annotation reporting happen in the shared runner here.

mod a1_atomic_ordering;
mod c1_lock_discipline;
mod d1_nondeterminism;
mod d1_salt;
mod d2_hash_iter;
mod e1_error_flow;
mod f1_fingerprint;
mod h1_hot_loop_alloc;
mod j1_join;
mod n1_float_eq;
mod n2_lossy_cast;
mod p1_panic;
mod p1_stage_purity;
mod s1_shape_contract;

use std::collections::BTreeMap;

use crate::annotations::AllowIndex;
use crate::callgraph::CallGraph;
use crate::context::{FileClass, FileContext};
use crate::report::Diagnostic;
use crate::symbols::Symbols;
use crate::threads::ThreadTopology;

/// Canonical rule names, as written in `allow(…)` annotations.
///
/// `bad-annotation` is reserved for the runner itself and cannot be
/// allowed away.
pub const RULE_NAMES: &[&str] = &[
    "nondeterminism",           // D0
    "hash-iter",                // D2
    "panic",                    // PF1
    "float-eq",                 // N1
    "lossy-cast",               // N2
    "error-flow",               // E1
    "hot-loop-alloc",           // H1
    "shape-contract",           // S1
    "fingerprint-completeness", // F1
    "stage-purity",             // P1
    "lock-discipline",          // C1
    "atomic-ordering",          // A1
    "join-discipline",          // J1
    "salt-determinism",         // D1
];

/// Run every rule over one file, honoring allow annotations, and report
/// malformed annotations as violations in their own right.
pub fn check_file(ctx: &FileContext) -> Vec<Diagnostic> {
    let mut raw: Vec<Diagnostic> = Vec::new();
    d1_nondeterminism::check(ctx, &mut raw);
    d2_hash_iter::check(ctx, &mut raw);
    p1_panic::check(ctx, &mut raw);
    n1_float_eq::check(ctx, &mut raw);
    n2_lossy_cast::check(ctx, &mut raw);
    e1_error_flow::check(ctx, &mut raw);
    h1_hot_loop_alloc::check(ctx, &mut raw);
    s1_shape_contract::check(ctx, &mut raw);
    j1_join::check(ctx, &mut raw);

    let mut out: Vec<Diagnostic> = raw
        .into_iter()
        .filter(|d| !ctx.allows.is_allowed(&d.rule, d.line))
        .collect();

    // Annotation hygiene only matters where annotations have force; exempt
    // crates (including this linter, whose docs discuss the syntax) are not
    // policed.
    if ctx.class != FileClass::Exempt {
        for bad in &ctx.allows.bad {
            out.push(Diagnostic {
                rule: "bad-annotation".to_string(),
                path: ctx.path.to_string(),
                line: bad.line,
                col: 1,
                message: bad.problem.clone(),
            });
        }
    }

    out.sort_by(|a, b| (a.line, a.col, &a.rule).cmp(&(b.line, b.col, &b.rule)));
    out
}

/// Run the workspace-level rule families (F1 fingerprint-completeness,
/// P1 stage-purity, C1 lock-discipline, A1 atomic-ordering, D1
/// salt-determinism) over the symbol table + call graph + thread
/// topology, honoring each firing file's allow annotations.
pub fn check_workspace_rules(
    ctxs: &[FileContext],
    sy: &Symbols,
    graph: &CallGraph,
    topo: &ThreadTopology,
    out: &mut Vec<Diagnostic>,
) {
    let mut raw: Vec<Diagnostic> = Vec::new();
    f1_fingerprint::check(ctxs, sy, graph, &mut raw);
    p1_stage_purity::check(ctxs, sy, graph, &mut raw);
    c1_lock_discipline::check(ctxs, sy, graph, &mut raw);
    a1_atomic_ordering::check(ctxs, sy, topo, &mut raw);
    d1_salt::check(ctxs, sy, graph, &mut raw);
    let allows: BTreeMap<&str, &AllowIndex> = ctxs.iter().map(|c| (c.path, c.allows)).collect();
    out.extend(raw.into_iter().filter(|d| {
        allows
            .get(d.path.as_str())
            .map_or(true, |a| !a.is_allowed(&d.rule, d.line))
    }));
}

/// Catalog entry for one rule: identity, family, where it applies, and why.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Short id (`E1`), used in docs and the `rules` subcommand.
    pub id: &'static str,
    /// Canonical name, as written in `allow(…)` annotations.
    pub name: &'static str,
    /// Rule family grouping related invariants.
    pub family: &'static str,
    /// Where the rule fires.
    pub scope: &'static str,
    pub description: &'static str,
}

/// Full rule catalog, for `ig-lint rules` and the docs.
pub fn rule_catalog() -> Vec<RuleInfo> {
    vec![
        RuleInfo {
            id: "D0",
            name: "nondeterminism",
            family: "determinism",
            scope: "library crates, non-test code",
            description: "no thread_rng()/from_entropy()/SystemTime::now()/Instant::now() outside \
                 crates/experiments, crates/bench, and examples — clean runs must be \
                 bit-for-bit reproducible from the seed alone",
        },
        RuleInfo {
            id: "D2",
            name: "hash-iter",
            family: "determinism",
            scope: "library crates, non-test code",
            description: "no iteration over HashMap/HashSet in result-producing code — iteration \
                 order is randomized per process; use BTreeMap or sort first",
        },
        RuleInfo {
            id: "PF1",
            name: "panic",
            family: "panic-freedom",
            scope: "library crates, non-test code",
            description: "no unwrap()/expect()/panic!/slice-indexing-by-literal in library crates \
                 outside #[cfg(test)] — recovery ladders need Result, not aborts",
        },
        RuleInfo {
            id: "N1",
            name: "float-eq",
            family: "numeric-safety",
            scope: "library crates, non-test code",
            description:
                "no bare float ==/!= — use ig_imaging::stats::{approx_eq, is_effectively_zero}",
        },
        RuleInfo {
            id: "N2",
            name: "lossy-cast",
            family: "numeric-safety",
            scope: "imaging/nn hot-path files (see HOT_PATH_FILES)",
            description: "no truncating float->int `as` casts in the imaging/nn hot paths — round \
                 explicitly or annotate why truncation is intended",
        },
        RuleInfo {
            id: "E1",
            name: "error-flow",
            family: "error-flow",
            scope: "library crates; strict in crates/faults and crates/core",
            description: "a Result/Option from a fallible call must reach `?`, `match`, or an \
                 annotated sink — `let _ =`, statement-level `.ok()`, and \
                 `.unwrap_or_default()` swallow the error; strict scope flags any \
                 discarded call result",
        },
        RuleInfo {
            id: "H1",
            name: "hot-loop-alloc",
            family: "hot-loop",
            scope: "crates/imaging/src and crates/core/src/features.rs",
            description: "no Vec::new/to_vec/clone/format!/Box::new inside loops nested >= 2 deep \
                 (adapter closures count as loops) — hoist scratch buffers out of the \
                 loop nest and reuse them",
        },
        RuleInfo {
            id: "S1",
            name: "shape-contract",
            family: "shape-contract",
            scope: "library crates, non-test code",
            description: "literal-dimension mismatches the parser can prove: from_vec dims vs. \
                 data length, ragged from_rows rows, zero resize targets",
        },
        RuleInfo {
            id: "F1",
            name: "fingerprint-completeness",
            family: "stage-contract",
            scope: "every non-test `impl Stage` block in library crates",
            description: "every `self` field and keyed `ctx` accessor (`threads`, `scale`) the \
                 `run()` closure reads must be folded into `fingerprint()` — a missed \
                 input serves stale cached artifacts; the inverse (hashed but never \
                 read) silently over-invalidates the cache",
        },
        RuleInfo {
            id: "P1",
            name: "stage-purity",
            family: "stage-contract",
            scope: "code reachable from any `Stage::run` (interprocedural)",
            description: "no ambient effects — filesystem, env, wall clock, thread spawns, \
                 process launches — reachable from `run()` outside the blessed \
                 ig-runtime persistence modules (engines may spawn scoped threads); \
                 effects make memoized artifacts depend on machine state",
        },
        RuleInfo {
            id: "C1",
            name: "lock-discipline",
            family: "stage-contract",
            scope: "runtime store/disk and the imaging prepared-pattern cache",
            description: "lock acquisition must follow one partial order (no cycles), `?` must \
                 not fire while the advisory pid lock is held (the lock file leaks), \
                 and no early exit may hold two guards at once",
        },
        RuleInfo {
            id: "D1",
            name: "salt-determinism",
            family: "determinism",
            scope: "library crates, non-test code (persistence modules exempt)",
            description: "every `ctx.rng(salt)` must take a compile-time-resolvable salt, no \
                 two distinct stages may share one (`seed ^ salt` would correlate their \
                 streams), and `seed_from_u64(seed)` must not bypass the salting \
                 discipline",
        },
        RuleInfo {
            id: "A1",
            name: "atomic-ordering",
            family: "concurrency",
            scope: "library crates, non-test code, over the thread topology",
            description: "`Ordering::Relaxed` only for statement-level counters: a Relaxed \
                 load may not gate control flow, a Relaxed store may not publish across \
                 a spawn boundary, a Relaxed RMW result may not be consumed as a \
                 handshake — bless counters per-field with a reason",
        },
        RuleInfo {
            id: "J1",
            name: "join-discipline",
            family: "concurrency",
            scope: "library crates, non-test code",
            description: "every `std::thread::spawn` handle is joined on all paths (`?`/early \
                 return included) and the join result is read — a dropped handle \
                 detaches the thread, a dropped result silences worker panics; \
                 intentional detaches need a blessed annotation",
        },
        RuleInfo {
            id: "A0",
            name: "bad-annotation",
            family: "hygiene",
            scope: "everywhere annotations have force (non-exempt files)",
            description:
                "every `ig-lint: allow(...)` must list known rules and carry a `-- reason`",
        },
    ]
}

/// One-line description of each rule, for the report.
pub fn rule_descriptions() -> Vec<(&'static str, &'static str)> {
    rule_catalog()
        .into_iter()
        .map(|r| (r.name, r.description))
        .collect()
}
