//! Zero-dependency iterative radix-2 FFT for dense cross-correlation.
//!
//! The brute-force NCC numerator costs `O(W·H·w·h)` multiply-adds; for the
//! GAN-scale templates the augmenter produces (≥64×64) that term dominates
//! the whole feature-generation pass. Computing the numerator as
//! `IFFT(FFT(image) ⊙ conj(FFT(centered pattern)))` over a zero-padded
//! power-of-two plane is `O(P·log P)` with `P = next_pow2(W)·next_pow2(H)`,
//! independent of the pattern area. [`crate::planner`] decides per
//! (image dims, pattern dims) which side of that trade-off wins.
//!
//! Exactness contract: FFT scores agree with the brute sweep only to float
//! rounding (pinned to `1e-4` absolute on unit-range pixels by the parity
//! tests), so this path is only ever selected on the approximate entry
//! points — see the dispatch rules in [`crate::prepared`].
//!
//! Everything here is plain safe Rust over split re/im `f64` slices: a
//! bit-reversal permutation plus an iterative Cooley-Tukey butterfly ladder
//! with precomputed twiddles, built once per padded length and cached by
//! the planner.

use crate::{GrayImage, ImagingError, Result};

/// A forward/inverse FFT plan for one power-of-two length: the bit-reversal
/// permutation and the twiddle table `e^{-2πik/n}` for `k < n/2`, computed
/// once and reused across every row/column transform of that length.
#[derive(Debug, Clone)]
pub struct Fft {
    n: usize,
    /// `rev[i]` = bit-reversed index of `i` within `log2(n)` bits.
    rev: Vec<u32>,
    /// Forward twiddles: `tw_re[k] + i·tw_im[k] = e^{-2πik/n}`, `k < n/2`.
    tw_re: Vec<f64>,
    tw_im: Vec<f64>,
}

impl Fft {
    /// Build a plan for length `n`, which must be a nonzero power of two.
    pub fn new(n: usize) -> Result<Self> {
        if n == 0 || !n.is_power_of_two() {
            return Err(ImagingError::InvalidDimension(format!(
                "FFT length {n} is not a nonzero power of two"
            )));
        }
        let bits = n.trailing_zeros();
        let mut rev = vec![0u32; n];
        if bits > 0 {
            for (i, slot) in rev.iter_mut().enumerate() {
                *slot = (i as u32).reverse_bits() >> (32 - bits);
            }
        }
        let half = n / 2;
        let mut tw_re = vec![0.0f64; half.max(1)];
        let mut tw_im = vec![0.0f64; half.max(1)];
        let step = -2.0 * std::f64::consts::PI / n as f64;
        for k in 0..half {
            let angle = step * k as f64;
            tw_re[k] = angle.cos();
            tw_im[k] = angle.sin();
        }
        Ok(Self {
            n,
            rev,
            tw_re,
            tw_im,
        })
    }

    /// Transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the plan has zero length (never true for a built plan).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// In-place transform of `re`/`im` (each exactly `len()` long).
    /// `inverse` conjugates the twiddles and scales by `1/n` at the end.
    fn transform(&self, re: &mut [f64], im: &mut [f64], inverse: bool) -> Result<()> {
        let n = self.n;
        if re.len() != n || im.len() != n {
            return Err(ImagingError::InvalidDimension(format!(
                "FFT buffer length {}/{} does not match plan length {n}",
                re.len(),
                im.len()
            )));
        }
        for (i, &j) in self.rev.iter().enumerate() {
            let j = j as usize;
            if i < j {
                re.swap(i, j);
                im.swap(i, j);
            }
        }
        let mut len = 2usize;
        while len <= n {
            let half = len / 2;
            let stride = n / len;
            let mut base = 0usize;
            while base < n {
                for k in 0..half {
                    let wi = k * stride;
                    let wr = self.tw_re[wi];
                    let wj = if inverse {
                        -self.tw_im[wi]
                    } else {
                        self.tw_im[wi]
                    };
                    let a = base + k;
                    let b = a + half;
                    let tr = re[b] * wr - im[b] * wj;
                    let ti = re[b] * wj + im[b] * wr;
                    let ar = re[a];
                    let ai = im[a];
                    re[a] = ar + tr;
                    im[a] = ai + ti;
                    re[b] = ar - tr;
                    im[b] = ai - ti;
                }
                base += len;
            }
            len *= 2;
        }
        if inverse {
            let scale = 1.0 / n as f64;
            for (r, i) in re.iter_mut().zip(im.iter_mut()) {
                *r *= scale;
                *i *= scale;
            }
        }
        Ok(())
    }

    /// Forward DFT in place.
    pub fn forward(&self, re: &mut [f64], im: &mut [f64]) -> Result<()> {
        self.transform(re, im, false)
    }

    /// Inverse DFT in place, including the `1/n` normalisation.
    pub fn inverse(&self, re: &mut [f64], im: &mut [f64]) -> Result<()> {
        self.transform(re, im, true)
    }
}

/// Row-major 2D transform over a `row.len() × col.len()` plane: every row
/// through `row`, then every column through `col` (gathered through one
/// scratch column, so the hot butterflies always run on contiguous data).
fn fft2d(row: &Fft, col: &Fft, re: &mut [f64], im: &mut [f64], inverse: bool) -> Result<()> {
    let w = row.len();
    let h = col.len();
    if re.len() != w * h || im.len() != w * h {
        return Err(ImagingError::InvalidDimension(format!(
            "2D FFT buffer length {} does not match {w}x{h}",
            re.len()
        )));
    }
    for y in 0..h {
        let (Some(rr), Some(ri)) = (
            re.get_mut(y * w..(y + 1) * w),
            im.get_mut(y * w..(y + 1) * w),
        ) else {
            return Err(ImagingError::EmptyImage);
        };
        row.transform(rr, ri, inverse)?;
    }
    let mut col_re = vec![0.0f64; h];
    let mut col_im = vec![0.0f64; h];
    for x in 0..w {
        for y in 0..h {
            col_re[y] = re[y * w + x];
            col_im[y] = im[y * w + x];
        }
        col.transform(&mut col_re, &mut col_im, inverse)?;
        for y in 0..h {
            re[y * w + x] = col_re[y];
            im[y * w + x] = col_im[y];
        }
    }
    Ok(())
}

/// The 2D DFT of a real plane zero-padded to a `w2 × h2` power-of-two
/// grid. Cached per operand by [`crate::prepared`] so each side's forward
/// transform runs once per (level, padded dims) no matter how many
/// correlations reuse it.
#[derive(Debug, Clone)]
pub struct Spectrum {
    w2: usize,
    h2: usize,
    re: Vec<f64>,
    im: Vec<f64>,
}

impl Spectrum {
    /// Approximate heap footprint of the complex plane, in bytes. Spectra
    /// dominate a prepared operand's cache growth, so the out-of-core
    /// shard budgeter counts them explicitly.
    pub fn approx_bytes(&self) -> usize {
        (self.re.len() + self.im.len()) * core::mem::size_of::<f64>()
    }

    /// Forward-transform `plane` zero-padded to `row.len() × col.len()`.
    /// The plane must fit inside the padded grid.
    pub fn forward(plane: &GrayImage, row: &Fft, col: &Fft) -> Result<Spectrum> {
        let (w, h) = plane.dims();
        let (w2, h2) = (row.len(), col.len());
        if w > w2 || h > h2 {
            return Err(ImagingError::InvalidDimension(format!(
                "plane {w}x{h} exceeds padded FFT grid {w2}x{h2}"
            )));
        }
        let mut re = vec![0.0f64; w2 * h2];
        let mut im = vec![0.0f64; w2 * h2];
        for y in 0..h {
            let src = plane.row(y);
            let Some(dst) = re.get_mut(y * w2..y * w2 + w) else {
                return Err(ImagingError::EmptyImage);
            };
            for (d, s) in dst.iter_mut().zip(src) {
                *d = *s as f64;
            }
        }
        fft2d(row, col, &mut re, &mut im, false)?;
        Ok(Spectrum { w2, h2, re, im })
    }

    /// Padded grid dimensions.
    pub fn padded_dims(&self) -> (usize, usize) {
        (self.w2, self.h2)
    }
}

/// Valid-placement cross-correlation numerators via the spectral product:
/// `out[y·out_w + x] = Σ_{v,u} pat(u, v) · img(x+u, y+v)`, computed as
/// `IFFT(img_spec ⊙ conj(pat_spec))`. Both spectra must share the padded
/// grid, and every requested placement must fit inside it — padding to
/// `next_pow2` of the *image* dims suffices because the zero-padded
/// pattern never wraps around a valid placement.
pub fn cross_correlation(
    img: &Spectrum,
    pat: &Spectrum,
    row: &Fft,
    col: &Fft,
    out_w: usize,
    out_h: usize,
) -> Result<Vec<f64>> {
    let (w2, h2) = img.padded_dims();
    if pat.padded_dims() != (w2, h2) || row.len() != w2 || col.len() != h2 {
        return Err(ImagingError::InvalidDimension(format!(
            "spectra/plan grids disagree: img {:?}, pat {:?}, plans {}x{}",
            img.padded_dims(),
            pat.padded_dims(),
            row.len(),
            col.len()
        )));
    }
    if out_w > w2 || out_h > h2 {
        return Err(ImagingError::InvalidDimension(format!(
            "correlation output {out_w}x{out_h} exceeds padded grid {w2}x{h2}"
        )));
    }
    let len = w2 * h2;
    let mut re = vec![0.0f64; len];
    let mut im = vec![0.0f64; len];
    for k in 0..len {
        let (ar, ai) = (img.re[k], img.im[k]);
        let (br, bi) = (pat.re[k], pat.im[k]);
        // a · conj(b)
        re[k] = ar * br + ai * bi;
        im[k] = ai * br - ar * bi;
    }
    fft2d(row, col, &mut re, &mut im, true)?;
    let mut out = vec![0.0f64; out_w * out_h];
    for y in 0..out_h {
        for x in 0..out_w {
            out[y * out_w + x] = re[y * w2 + x];
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dft(re_in: &[f64], im_in: &[f64], inverse: bool) -> (Vec<f64>, Vec<f64>) {
        let n = re_in.len();
        let sign = if inverse { 2.0 } else { -2.0 };
        let mut re = vec![0.0; n];
        let mut im = vec![0.0; n];
        for k in 0..n {
            for m in 0..n {
                let ang = sign * std::f64::consts::PI * (k * m) as f64 / n as f64;
                let (s, c) = ang.sin_cos();
                re[k] += re_in[m] * c - im_in[m] * s;
                im[k] += re_in[m] * s + im_in[m] * c;
            }
        }
        if inverse {
            for v in re.iter_mut().chain(im.iter_mut()) {
                *v /= n as f64;
            }
        }
        (re, im)
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert!(Fft::new(0).is_err());
        assert!(Fft::new(6).is_err());
        assert!(Fft::new(1).is_ok());
        assert!(Fft::new(8).is_ok());
    }

    #[test]
    fn forward_matches_naive_dft() {
        for n in [1usize, 2, 4, 8, 16, 32] {
            let plan = Fft::new(n).unwrap();
            let mut re: Vec<f64> = (0..n).map(|i| ((i * 7 + 3) % 13) as f64 * 0.5).collect();
            let mut im: Vec<f64> = (0..n).map(|i| ((i * 5 + 1) % 11) as f64 * -0.25).collect();
            let (er, ei) = naive_dft(&re, &im, false);
            plan.forward(&mut re, &mut im).unwrap();
            for k in 0..n {
                assert!((re[k] - er[k]).abs() < 1e-9, "n={n} k={k} re");
                assert!((im[k] - ei[k]).abs() < 1e-9, "n={n} k={k} im");
            }
        }
    }

    #[test]
    fn inverse_round_trips() {
        let plan = Fft::new(64).unwrap();
        let orig: Vec<f64> = (0..64).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut re = orig.clone();
        let mut im = vec![0.0; 64];
        plan.forward(&mut re, &mut im).unwrap();
        plan.inverse(&mut re, &mut im).unwrap();
        for (a, b) in re.iter().zip(&orig) {
            assert!((a - b).abs() < 1e-12);
        }
        for v in &im {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn transform_rejects_wrong_length() {
        let plan = Fft::new(8).unwrap();
        let mut re = vec![0.0; 4];
        let mut im = vec![0.0; 4];
        assert!(plan.forward(&mut re, &mut im).is_err());
    }

    #[test]
    fn cross_correlation_matches_brute_force() {
        // Odd, non-power-of-two operand dims on purpose.
        let img = GrayImage::from_fn(13, 9, |x, y| ((x * 5 + y * 3) % 7) as f32 * 0.2 - 0.4);
        let pat = GrayImage::from_fn(5, 3, |x, y| ((x + 2 * y) % 4) as f32 * 0.3 - 0.2);
        let w2 = 13usize.next_power_of_two();
        let h2 = 9usize.next_power_of_two();
        let row = Fft::new(w2).unwrap();
        let col = Fft::new(h2).unwrap();
        let si = Spectrum::forward(&img, &row, &col).unwrap();
        let sp = Spectrum::forward(&pat, &row, &col).unwrap();
        let out_w = 13 - 5 + 1;
        let out_h = 9 - 3 + 1;
        let corr = cross_correlation(&si, &sp, &row, &col, out_w, out_h).unwrap();
        for y in 0..out_h {
            for x in 0..out_w {
                let mut brute = 0.0f64;
                for v in 0..3 {
                    for u in 0..5 {
                        brute += pat.get(u, v) as f64 * img.get(x + u, y + v) as f64;
                    }
                }
                let got = corr[y * out_w + x];
                assert!((got - brute).abs() < 1e-9, "({x},{y}): {got} vs {brute}");
            }
        }
    }
}
