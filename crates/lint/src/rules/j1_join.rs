//! J1: join discipline — every spawned thread is joined on every path,
//! and the join's verdict is read.
//!
//! A dropped `JoinHandle` detaches the thread: it keeps running past the
//! end of the function, past the end of the run, holding whatever its
//! closure captured — the quiet way a "finished" pipeline still has a
//! worker mutating shared state. And a joined-but-discarded result
//! swallows the one signal a worker panic ever sends back. Four shapes:
//!
//! 1. `std::thread::spawn(..)` as a statement or `let _ =` — the handle
//!    is discarded at birth. Detaching is occasionally intended
//!    (fire-and-forget logging); it must be blessed with
//!    `ig-lint: allow(join-discipline) -- reason`.
//! 2. A named handle that is never used again — dropped at scope end,
//!    which is the same detach with extra steps. Per the E1 philosophy a
//!    use exonerates: a handle that is returned, stored, or pushed into
//!    a collection escapes to be joined elsewhere, and underscore-prefixed
//!    names are deliberate. Only a handle with *no* further use fires.
//! 3. `?` between the spawn and its `.join()` — the error path returns
//!    while the thread still runs (and the handle drops, detaching it).
//!    Early `return` between the two is flagged the same way.
//! 4. A discarded join result: `h.join();`, `let _ = h.join();`, or
//!    `h.join().ok();`. The `Err` carries the worker's panic payload;
//!    dropping it converts a worker crash into silence. This shape has a
//!    mechanical rewrite (`ig-lint fix`) to an `if let Err` log.
//!
//! Scoped spawns (`scope.spawn(..)`) are exempt from 1–3 — the scope
//! joins its children at exit by construction — but shape 4 still
//! applies if a scoped handle's join result is discarded.

use crate::ast::{walk_block, walk_stmts, Expr, ExprKind, LetPat, Stmt};
use crate::context::{FileClass, FileContext};
use crate::lexer::TokenKind;
use crate::report::Diagnostic;

/// Is this expression a `std::thread::spawn(..)` call? Returns the token
/// index of the `spawn` identifier.
fn std_spawn_tok(e: &Expr) -> Option<usize> {
    let ExprKind::Call { callee, .. } = &e.kind else {
        return None;
    };
    let ExprKind::Path(segs) = &callee.kind else {
        return None;
    };
    if segs.last().is_some_and(|s| s == "spawn")
        && segs.len() >= 2
        && segs[segs.len() - 2] == "thread"
    {
        Some(callee.span.hi.saturating_sub(1))
    } else {
        None
    }
}

/// The chain of method names from the innermost receiver outward, plus
/// the root receiver expression: `h.join().ok()` → (["join", "ok"], `h`).
fn chain<'a>(e: &'a Expr) -> (Vec<&'a str>, &'a Expr) {
    match &e.kind {
        ExprKind::MethodCall { recv, method, .. } => {
            let (mut methods, root) = chain(recv);
            methods.push(method);
            (methods, root)
        }
        _ => (Vec::new(), e),
    }
}

/// Token index of the `join` link in a method chain, if present.
fn join_tok(e: &Expr) -> Option<usize> {
    match &e.kind {
        ExprKind::MethodCall {
            recv,
            method,
            method_tok,
            ..
        } => {
            if method == "join" {
                Some(*method_tok)
            } else {
                join_tok(recv)
            }
        }
        _ => None,
    }
}

fn diag(ctx: &FileContext, tok: usize, message: String) -> Diagnostic {
    let (line, col) = ctx.tokens.get(tok).map_or((0, 1), |t| (t.line, t.col));
    Diagnostic {
        rule: "join-discipline".to_string(),
        path: ctx.path.to_string(),
        line,
        col,
        message,
    }
}

pub fn check(ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    if ctx.class != FileClass::Library {
        return;
    }
    for f in &ctx.ast.fns {
        // Named handles spawned in this fn: (name, binding tok, spawn tok).
        let mut handles: Vec<(&str, usize)> = Vec::new();
        walk_stmts(&f.body, &mut |st: &Stmt| match st {
            Stmt::Let(l) => {
                let Some(init) = &l.init else { return };
                let Some(spawn) = std_spawn_tok(init) else {
                    // `let _ = h.join();` — discarded join verdict.
                    if matches!(l.pat, LetPat::Wild(_)) {
                        if let Some(jt) = join_tok(init) {
                            if ctx.governed(jt) {
                                out.push(discarded_join(ctx, jt));
                            }
                        }
                    }
                    return;
                };
                if !ctx.governed(spawn) {
                    return;
                }
                match &l.pat {
                    LetPat::Wild(_) => out.push(detached(ctx, spawn, "`let _ =`")),
                    LetPat::Name { name, tok } if !name.starts_with('_') => {
                        handles.push((name, *tok));
                    }
                    _ => {}
                }
            }
            Stmt::Expr(es) if es.has_semi => {
                if let Some(spawn) = std_spawn_tok(&es.expr) {
                    if ctx.governed(spawn) {
                        out.push(detached(ctx, spawn, "a bare statement"));
                    }
                    return;
                }
                // `h.join();` / `h.join().ok();` — verdict discarded.
                let (methods, _) = chain(&es.expr);
                if let Some(last) = methods.last() {
                    if (*last == "join" || *last == "ok") && methods.contains(&"join") {
                        if let Some(jt) = join_tok(&es.expr) {
                            if ctx.governed(jt) {
                                out.push(discarded_join(ctx, jt));
                            }
                        }
                    }
                }
            }
            _ => {}
        });
        if handles.is_empty() {
            continue;
        }
        // Uses of each handle after its binding. A `.join()` on the
        // handle satisfies the discipline; any other use exonerates
        // (the handle escapes to be joined elsewhere); no use detaches.
        for (name, bind_tok) in handles {
            let toks = ctx.tokens;
            let hi = f.span.hi.min(toks.len());
            let mut join_at: Option<usize> = None;
            let mut other_use = false;
            for i in bind_tok + 1..hi {
                let t = &toks[i];
                if t.kind != TokenKind::Ident || t.text != name {
                    continue;
                }
                // Skip field names / method names (`x.h`), and shadowing
                // `let` rebinding ends the scan conservatively.
                if i > 0 && (toks[i - 1].is_punct(".") || toks[i - 1].is_punct("::")) {
                    continue;
                }
                if toks.get(i + 1).is_some_and(|n| n.is_punct("."))
                    && toks.get(i + 2).is_some_and(|n| n.is_ident("join"))
                {
                    join_at = Some(i + 2);
                    break;
                }
                other_use = true;
            }
            match join_at {
                None if !other_use => out.push(diag(
                    ctx,
                    bind_tok,
                    format!(
                        "thread handle `{name}` is never joined — it drops at scope end, \
                         detaching the thread; join it on every path, or bless an intentional \
                         detach with `ig-lint: allow(join-discipline) -- <reason>`"
                    ),
                )),
                Some(jt) => {
                    // `?` or early `return` between spawn and join exits
                    // with the thread still running.
                    walk_block(&f.body, &mut |e: &Expr| {
                        let exit_tok = match &e.kind {
                            ExprKind::Try(_) => Some(e.span.hi.saturating_sub(1)),
                            ExprKind::Jump(_)
                                if ctx
                                    .tokens
                                    .get(e.span.lo)
                                    .is_some_and(|t| t.is_ident("return")) =>
                            {
                                Some(e.span.lo)
                            }
                            _ => None,
                        };
                        let Some(et) = exit_tok else { return };
                        if et > bind_tok && et < jt && ctx.governed(et) {
                            let what = if matches!(e.kind, ExprKind::Try(_)) {
                                "`?`"
                            } else {
                                "`return`"
                            };
                            out.push(diag(
                                ctx,
                                et,
                                format!(
                                    "{what} exits before `{name}.join()` — the error path \
                                     returns while the spawned thread still runs and the \
                                     dropped handle detaches it; join (or abort) the thread \
                                     before propagating the error"
                                ),
                            ));
                        }
                    });
                }
                None => {}
            }
        }
    }
}

fn detached(ctx: &FileContext, tok: usize, how: &str) -> Diagnostic {
    diag(
        ctx,
        tok,
        format!(
            "spawned thread is detached (handle discarded by {how}) — it outlives every join \
             point and keeps mutating its captures; bind and join the handle, or bless an \
             intentional detach with `ig-lint: allow(join-discipline) -- <reason>`"
        ),
    )
}

fn discarded_join(ctx: &FileContext, tok: usize) -> Diagnostic {
    diag(
        ctx,
        tok,
        "join result discarded — `join()` returns `Err` exactly when the worker panicked, \
         and dropping it converts the crash into silence; match on it \
         (`if let Err(e) = h.join()`) or run `ig-lint fix` for the mechanical rewrite"
            .to_string(),
    )
}
