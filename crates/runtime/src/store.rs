//! In-memory content-addressed artifact store.
//!
//! Artifacts are memoized stage outputs keyed by `(stage id, key
//! fingerprint)`; the key fingerprint is derived by [`crate::RunContext`]
//! from the stage's input fingerprint plus the run's seed and fault plan,
//! so a hit is only possible when replaying the exact same computation —
//! and the cached value is then bit-identical to what a recompute would
//! produce.

use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::fingerprint::Fingerprint;

/// Store key: stage identity plus the full input/seed/plan fingerprint.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Key {
    id: &'static str,
    fp: Fingerprint,
}

/// Thread-safe artifact cache shared by every stage under one
/// [`crate::RunContext`] (and its plan-scoped clones).
#[derive(Debug, Default)]
pub struct ArtifactStore {
    entries: Mutex<HashMap<Key, Arc<dyn Any + Send + Sync>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ArtifactStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up an artifact; counts a hit or a miss.
    pub fn get(&self, id: &'static str, fp: Fingerprint) -> Option<Arc<dyn Any + Send + Sync>> {
        let found = self.lock().get(&Key { id, fp }).cloned();
        match found {
            Some(artifact) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(artifact)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert (or replace) an artifact.
    pub fn insert(&self, id: &'static str, fp: Fingerprint, artifact: Arc<dyn Any + Send + Sync>) {
        self.lock().insert(Key { id, fp }, artifact);
    }

    /// Number of cached artifacts.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Lookups served from cache so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to compute so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Drop every cached artifact (counters are kept).
    pub fn clear(&self) {
        self.lock().clear();
    }

    fn lock(&self) -> MutexGuard<'_, HashMap<Key, Arc<dyn Any + Send + Sync>>> {
        // A poisoned map only means a panic elsewhere while holding the
        // lock; the map itself is always in a consistent state between
        // `get`/`insert` calls, so recover rather than propagate.
        self.entries.lock().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::Fingerprintable;

    #[test]
    fn get_after_insert_round_trips() {
        let store = ArtifactStore::new();
        let fp = 1u64.fingerprint();
        assert!(store.get("s", fp).is_none());
        store.insert("s", fp, Arc::new(vec![1u32, 2, 3]));
        let found = store
            .get("s", fp)
            .and_then(|a| a.downcast::<Vec<u32>>().ok());
        assert_eq!(found.as_deref(), Some(&vec![1u32, 2, 3]));
        assert_eq!((store.hits(), store.misses()), (1, 1));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn distinct_ids_do_not_collide() {
        let store = ArtifactStore::new();
        let fp = 7u64.fingerprint();
        store.insert("a", fp, Arc::new(1u32));
        assert!(store.get("b", fp).is_none());
    }

    #[test]
    fn clear_empties_the_store() {
        let store = ArtifactStore::new();
        store.insert("a", 1u64.fingerprint(), Arc::new(1u32));
        store.clear();
        assert!(store.is_empty());
    }
}
