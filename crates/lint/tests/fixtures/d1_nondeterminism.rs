//! Fixture: every D1 nondeterminism source, with expected violation lines
//! asserted in ../rules_fire.rs. Line numbers matter — do not reflow.

use std::time::{Instant, SystemTime};

fn ambient_rng() -> f32 {
    let mut rng = rand::thread_rng(); // line 7: thread_rng
    let _ = rand::random::<f32>(); // line 8: rand::random
    0.0
}

fn unseeded() {
    let _rng = StdRng::from_entropy(); // line 13: from_entropy
    let _os = OsRng; // line 14: OsRng
}

fn clocks() {
    let _t = SystemTime::now(); // line 18: SystemTime::now
    let _i = Instant::now(); // line 19: Instant::now
}

fn seeded_is_fine(seed: u64) {
    let _rng = StdRng::seed_from_u64(seed); // no violation
}

fn annotated() {
    // ig-lint: allow(nondeterminism) -- fixture: suppression check
    let _t = SystemTime::now(); // line 28: suppressed by line 27
}
