//! The paper's motivating scenario (Figure 1): a smart factory labels
//! product-quality images at scale. This example runs the *entire* stack —
//! crowd annotation, both augmentation methods, labeler tuning, weak
//! labeling, and an end CNN trained on dev + weak labels — and prints a
//! summary at every stage.
//!
//! ```text
//! cargo run --release --example smart_factory
//! ```

use inspector_gadget::augment::gan::RganConfig;
use inspector_gadget::baselines::cnn_models::CnnArch;
use inspector_gadget::baselines::endmodel::{score_f1, train_and_score};
use inspector_gadget::baselines::selflearn::SelfLearnConfig;
use inspector_gadget::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2020);

    // ---- The factory's image stream -------------------------------------
    let spec = DatasetSpec {
        n: 120,
        n_defective: 30,
        ..DatasetSpec::quick(DatasetKind::ProductScratch, 2020)
    };
    let dataset = inspector_gadget::synth::generate(&spec);
    println!(
        "[factory] {} product images / {} defective / {}x{} px",
        dataset.len(),
        dataset.num_defective(),
        dataset.image_dims().0,
        dataset.image_dims().1
    );

    // ---- Crowdsourcing workflow (Section 3) ------------------------------
    let dev_indices = sample_dev_set(&dataset, 10, &mut rng);
    let dev: Vec<&LabeledImage> = dev_indices.iter().map(|&i| &dataset.images[i]).collect();
    println!(
        "[crowd] annotated {} images to reach 10 defective ones",
        dev.len()
    );
    let crowd_out = CrowdWorkflow::full().run(&dev, &mut rng);
    println!(
        "[crowd] {} raw boxes -> {} combined patterns ({} outliers peer-reviewed)",
        crowd_out.raw_box_count,
        crowd_out.patterns.len(),
        crowd_out.outlier_count
    );

    // ---- Pattern augmentation (Section 4) --------------------------------
    let policies = vec![
        Policy {
            op: PolicyOp::Rotate,
            magnitude: 8.0,
        },
        Policy {
            op: PolicyOp::ResizeX,
            magnitude: 1.5,
        },
        Policy {
            op: PolicyOp::Brightness,
            magnitude: 0.9,
        },
    ];
    let all_patterns = augment(
        &crowd_out.patterns,
        AugmentMethod::Both,
        40,
        &policies,
        &RganConfig::quick(),
        &mut rng,
    );
    println!(
        "[augment] {} crowd patterns -> {} after policy + RGAN augmentation",
        crowd_out.patterns.len(),
        all_patterns.len()
    );

    // ---- Weak label generation (Section 5) -------------------------------
    let patterns = Pattern::wrap_all(all_patterns, PatternSource::Crowd);
    let dev_images: Vec<&GrayImage> = dev.iter().map(|l| &l.image).collect();
    let dev_labels: Vec<usize> = dev.iter().map(|l| l.label).collect();
    let ig = InspectorGadget::train(
        patterns,
        &dev_images,
        &dev_labels,
        2,
        &PipelineConfig::default(), // tuning on
        &mut rng,
    )
    .expect("pipeline trains");
    if let Some(report) = &ig.tuning_report {
        println!(
            "[labeler] tuned MLP architecture {:?} (cv F1 {:.3}, {} candidates, {} folds)",
            report.best_hidden,
            report.best_cv_f1,
            report.candidates.len(),
            report.folds
        );
    }

    let rest: Vec<&LabeledImage> = dataset
        .images
        .iter()
        .enumerate()
        .filter(|(i, _)| !dev_indices.contains(i))
        .map(|(_, img)| img)
        .collect();
    let rest_images: Vec<&GrayImage> = rest.iter().map(|l| &l.image).collect();
    let weak = ig.label(&rest_images);
    let gold: Vec<usize> = rest.iter().map(|l| l.label).collect();
    println!(
        "[weak labels] F1 = {:.3} over {} images",
        score_f1(2, &gold, &weak.labels),
        rest.len()
    );

    // ---- End model (Section 6.6) ------------------------------------------
    // Score on the second half; weak labels from the first half join dev.
    let half = rest.len() / 2;
    let cnn_config = SelfLearnConfig {
        epochs: 12,
        ..Default::default()
    };
    let test_imgs: Vec<&GrayImage> = rest_images[half..].to_vec();
    let test_gold: Vec<usize> = gold[half..].to_vec();

    let dev_only = train_and_score(
        CnnArch::MiniVgg,
        &dev_images,
        &dev_labels,
        &test_imgs,
        &test_gold,
        2,
        &cnn_config,
        &mut rng,
    );
    let mut train_imgs = dev_images.clone();
    let mut train_labels = dev_labels.clone();
    for (img, &wl) in rest_images[..half].iter().zip(&weak.labels[..half]) {
        train_imgs.push(img);
        train_labels.push(wl);
    }
    let with_weak = train_and_score(
        CnnArch::MiniVgg,
        &train_imgs,
        &train_labels,
        &test_imgs,
        &test_gold,
        2,
        &cnn_config,
        &mut rng,
    );
    println!(
        "[end model] MiniVGG F1: dev-only {dev_only:.3} vs dev+weak {with_weak:.3} \
         (the Table 5 comparison)"
    );
}
