//! Novel-defect detection — the extension the paper sketches in Related
//! Work: "an interesting line of work is novel class detection where the
//! goal is to identify unknown defects. While Inspector Gadget assumes a
//! fixed set of defects, it can be extended with these techniques."
//!
//! The detector exploits the structure Inspector Gadget already has: a
//! *known* defect produces a characteristic FGF similarity profile
//! (strong response on the patterns of its family); an *unknown* defect
//! matches no pattern and its feature vector falls outside that profile.
//! Fit the detector on the feature vectors of the development set's
//! **defective** images (the known-defect profile), then flag probe
//! images whose standardized distance exceeds a quantile-calibrated
//! threshold — see `tests/novelty_detection.rs` for the end-to-end usage.

use ig_nn::Matrix;

/// A fitted novelty detector over FGF feature vectors.
#[derive(Debug, Clone)]
pub struct NoveltyDetector {
    mean: Vec<f32>,
    std: Vec<f32>,
    threshold: f32,
}

impl NoveltyDetector {
    /// Fit on the development set's feature matrix. `quantile` sets the
    /// calibration point: the threshold is chosen so that roughly
    /// `1 - quantile` of the dev set itself would be flagged (e.g. 0.95
    /// flags the most extreme ~5% as the boundary).
    pub fn fit(dev_features: &Matrix, quantile: f64) -> Self {
        let n = dev_features.rows().max(1) as f32;
        let d = dev_features.cols();
        let mut mean = vec![0.0f32; d];
        for r in 0..dev_features.rows() {
            for (m, &v) in mean.iter_mut().zip(dev_features.row(r)) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0f32; d];
        for r in 0..dev_features.rows() {
            for ((s, &v), &m) in var.iter_mut().zip(dev_features.row(r)).zip(&mean) {
                *s += (v - m) * (v - m);
            }
        }
        let std: Vec<f32> = var.into_iter().map(|s| (s / n).sqrt().max(1e-4)).collect();
        // Calibrate on the dev scores themselves.
        let mut detector = Self {
            mean,
            std,
            threshold: f32::INFINITY,
        };
        let mut scores: Vec<f32> = (0..dev_features.rows())
            .map(|r| detector.score_row(dev_features.row(r)))
            .collect();
        scores.sort_by(f32::total_cmp);
        let idx = ((scores.len() as f64 - 1.0) * quantile.clamp(0.0, 1.0)).round() as usize;
        detector.threshold = scores.get(idx).copied().unwrap_or(f32::INFINITY) + 1e-6;
        detector
    }

    /// Novelty score of one feature vector: root-mean-square of the
    /// per-feature z-scores (a diagonal Mahalanobis distance).
    pub fn score_row(&self, features: &[f32]) -> f32 {
        assert_eq!(features.len(), self.mean.len(), "feature dim drift");
        let mut acc = 0.0f32;
        for ((&f, &m), &s) in features.iter().zip(&self.mean).zip(&self.std) {
            let z = (f - m) / s;
            acc += z * z;
        }
        (acc / features.len().max(1) as f32).sqrt()
    }

    /// The calibrated threshold.
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// True when the vector's score exceeds the calibrated threshold —
    /// i.e. the image resembles nothing the dev set contained, suggesting
    /// an unknown defect type.
    pub fn is_novel(&self, features: &[f32]) -> bool {
        self.score_row(features) > self.threshold
    }

    /// Flag a whole feature matrix.
    pub fn flag(&self, features: &Matrix) -> Vec<bool> {
        (0..features.rows())
            .map(|r| self.is_novel(features.row(r)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn in_distribution(rng: &mut StdRng) -> Vec<f32> {
        vec![
            rng.gen_range(0.55..0.75f32),
            rng.gen_range(0.1..0.3),
            rng.gen_range(0.4..0.6),
        ]
    }

    #[test]
    fn dev_samples_are_mostly_inliers() {
        let mut rng = StdRng::seed_from_u64(0);
        let rows: Vec<Vec<f32>> = (0..60).map(|_| in_distribution(&mut rng)).collect();
        let m = Matrix::from_rows(&rows);
        let detector = NoveltyDetector::fit(&m, 0.95);
        let flags = detector.flag(&m);
        let flagged = flags.iter().filter(|&&f| f).count();
        assert!(flagged <= 4, "{flagged}/60 dev samples flagged novel");
    }

    #[test]
    fn far_outlier_is_flagged() {
        let mut rng = StdRng::seed_from_u64(1);
        let rows: Vec<Vec<f32>> = (0..50).map(|_| in_distribution(&mut rng)).collect();
        let m = Matrix::from_rows(&rows);
        let detector = NoveltyDetector::fit(&m, 0.95);
        assert!(detector.is_novel(&[5.0, -3.0, 9.0]));
        assert!(detector.is_novel(&[0.0, 0.0, 0.0]) || detector.score_row(&[0.0, 0.0, 0.0]) > 1.0);
    }

    #[test]
    fn inlier_is_not_flagged() {
        let mut rng = StdRng::seed_from_u64(2);
        let rows: Vec<Vec<f32>> = (0..50).map(|_| in_distribution(&mut rng)).collect();
        let m = Matrix::from_rows(&rows);
        let detector = NoveltyDetector::fit(&m, 0.95);
        assert!(!detector.is_novel(&[0.65, 0.2, 0.5]));
    }

    #[test]
    fn score_is_zero_at_the_mean() {
        let rows = vec![vec![1.0f32, 2.0], vec![3.0, 4.0]];
        let m = Matrix::from_rows(&rows);
        let detector = NoveltyDetector::fit(&m, 0.5);
        assert!(detector.score_row(&[2.0, 3.0]) < 1e-5);
    }

    #[test]
    fn stricter_quantile_flags_more() {
        let mut rng = StdRng::seed_from_u64(3);
        let rows: Vec<Vec<f32>> = (0..80).map(|_| in_distribution(&mut rng)).collect();
        let m = Matrix::from_rows(&rows);
        let strict = NoveltyDetector::fit(&m, 0.5);
        let lenient = NoveltyDetector::fit(&m, 0.99);
        assert!(strict.threshold() < lenient.threshold());
        let probe: Vec<Vec<f32>> = (0..40).map(|_| in_distribution(&mut rng)).collect();
        let pm = Matrix::from_rows(&probe);
        let strict_count = strict.flag(&pm).iter().filter(|&&f| f).count();
        let lenient_count = lenient.flag(&pm).iter().filter(|&&f| f).count();
        assert!(strict_count >= lenient_count);
    }
}
