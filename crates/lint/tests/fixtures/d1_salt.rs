//! D1 fixture: unresolvable salts, cross-stage salt collisions, and raw
//! seed reuse fire; unique salts and stage-shared helpers stay silent.

pub struct RunContext;
pub trait Stage {
    fn run(&mut self, ctx: &mut RunContext) -> u64;
}

const SPLIT_SALT: u64 = 0x51;
const AUG_SALT: u64 = 0x51;
const EVAL_SALT: u64 = 0xE7;

pub struct Splitter;
pub struct Augmenter;
pub struct Evaluator;

impl Stage for Splitter {
    fn run(&mut self, ctx: &mut RunContext) -> u64 {
        let mut rng = ctx.rng(SPLIT_SALT);
        shared_helper(ctx) + rng.next()
    }
}

impl Stage for Augmenter {
    fn run(&mut self, ctx: &mut RunContext) -> u64 {
        let mut rng = ctx.rng(AUG_SALT);
        shared_helper(ctx) + rng.next()
    }
}

impl Stage for Evaluator {
    fn run(&mut self, ctx: &mut RunContext) -> u64 {
        let mut rng = ctx.rng(EVAL_SALT);
        let k = rng.next();
        let mut wobbly = ctx.rng(k + 1);
        let raw = StdRng::seed_from_u64(ctx.seed);
        wobbly.next() + raw.next()
    }
}

fn shared_helper(ctx: &mut RunContext) -> u64 {
    let mut rng = ctx.rng(0x5ABED);
    rng.next()
}
