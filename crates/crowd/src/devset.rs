//! Development-set sampling (Section 3).
//!
//! "\[O\]ur solution is to randomly select images and annotate them until
//! the number of defective images exceeds a given threshold. In our
//! experiments, identifying tens of defective images is sufficient."

use ig_synth::{Dataset, TaskType};
use rand::seq::SliceRandom;
use rand::Rng;

/// Randomly sample image indices until at least `min_defective` defective
/// images are included (for multi-class datasets: until `min_defective`
/// images **per class**). Returns the selected indices in sampling order —
/// their prefix order documents how much annotation effort was spent.
pub fn sample_dev_set(dataset: &Dataset, min_defective: usize, rng: &mut impl Rng) -> Vec<usize> {
    let mut order: Vec<usize> = (0..dataset.len()).collect();
    order.shuffle(rng);
    match dataset.task {
        TaskType::Binary => {
            let mut selected = Vec::new();
            let mut defective = 0usize;
            for idx in order {
                selected.push(idx);
                if dataset.images[idx].label == 1 {
                    defective += 1;
                    if defective >= min_defective {
                        break;
                    }
                }
            }
            selected
        }
        TaskType::MultiClass(k) => {
            let mut selected = Vec::new();
            let mut counts = vec![0usize; k];
            for idx in order {
                selected.push(idx);
                counts[dataset.images[idx].label] += 1;
                if counts.iter().all(|&c| c >= min_defective) {
                    break;
                }
            }
            selected
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ig_synth::spec::{DatasetKind, DatasetSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn binary_sampling_reaches_threshold() {
        let d = ig_synth::generate(&DatasetSpec::quick(DatasetKind::Ksdd, 30));
        let mut rng = StdRng::seed_from_u64(0);
        let dev = sample_dev_set(&d, 5, &mut rng);
        let defective = dev.iter().filter(|&&i| d.images[i].label == 1).count();
        assert_eq!(defective, 5);
        // Sampling stops right at the threshold: last index is defective.
        assert_eq!(d.images[*dev.last().unwrap()].label, 1);
    }

    #[test]
    fn threshold_above_population_takes_everything() {
        let d = ig_synth::generate(&DatasetSpec::quick(DatasetKind::Ksdd, 31));
        let mut rng = StdRng::seed_from_u64(1);
        let dev = sample_dev_set(&d, 10_000, &mut rng);
        assert_eq!(dev.len(), d.len());
    }

    #[test]
    fn indices_are_unique() {
        let d = ig_synth::generate(&DatasetSpec::quick(DatasetKind::ProductBubble, 32));
        let mut rng = StdRng::seed_from_u64(2);
        let dev = sample_dev_set(&d, 4, &mut rng);
        let mut sorted = dev.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), dev.len());
    }

    #[test]
    fn multiclass_sampling_covers_all_classes() {
        let d = ig_synth::generate(&DatasetSpec::quick(DatasetKind::Neu, 33));
        let mut rng = StdRng::seed_from_u64(3);
        let dev = sample_dev_set(&d, 3, &mut rng);
        let mut counts = [0usize; 6];
        for &i in &dev {
            counts[d.images[i].label] += 1;
        }
        assert!(counts.iter().all(|&c| c >= 3), "{counts:?}");
    }

    #[test]
    fn imbalanced_dataset_needs_many_samples() {
        // The bubble dataset is ~10% defective; reaching the threshold
        // requires annotating far more images than the threshold itself —
        // the cost pattern that motivates weak supervision.
        let d = ig_synth::generate(&DatasetSpec {
            n: 200,
            n_defective: 20,
            ..DatasetSpec::quick(DatasetKind::ProductBubble, 34)
        });
        let mut rng = StdRng::seed_from_u64(4);
        let dev = sample_dev_set(&d, 10, &mut rng);
        assert!(dev.len() >= 30, "only {} images sampled", dev.len());
    }
}
