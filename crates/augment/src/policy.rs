//! Policy-based augmentation (Section 4.2).
//!
//! A policy is an (operation, magnitude) pair; the paper applies
//! combinations of three policies chosen by a simplified AutoAugment-style
//! search: sample 10 random magnitudes per operation, try all 3-op
//! combinations, keep the combination that scores best on a development
//! split.

use ig_imaging::noise::white_noise_image;
use ig_imaging::transform::{rotate, shear_x, shear_y, stretch_x, stretch_y, translate};
use ig_imaging::GrayImage;
use rand::seq::SliceRandom;
use rand::Rng;

/// Augmentation operations. Magnitude semantics are per-op (degrees,
/// factors, offsets); [`PolicyOp::magnitude_range`] gives sane bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyOp {
    /// Rotate by `magnitude` degrees about the pattern center.
    Rotate,
    /// Stretch horizontally by factor `magnitude` (canvas unchanged).
    ResizeX,
    /// Stretch vertically by factor `magnitude`.
    ResizeY,
    /// Shear horizontally by factor `magnitude`.
    ShearX,
    /// Shear vertically by factor `magnitude`.
    ShearY,
    /// Multiply pixels by `magnitude` (the paper's "Brightness, 1.632").
    Brightness,
    /// Blend toward the mean: out = mean + magnitude * (p - mean).
    Contrast,
    /// Invert around `magnitude` as pivot: out = magnitude - (p - magnitude)
    /// clamped (the paper's "Invert, 0.246").
    Invert,
    /// Translate horizontally by `magnitude` pixels.
    TranslateX,
    /// Add uniform noise of amplitude `magnitude`.
    Noise,
}

impl PolicyOp {
    /// Every available operation.
    pub fn all() -> [PolicyOp; 10] {
        [
            PolicyOp::Rotate,
            PolicyOp::ResizeX,
            PolicyOp::ResizeY,
            PolicyOp::ShearX,
            PolicyOp::ShearY,
            PolicyOp::Brightness,
            PolicyOp::Contrast,
            PolicyOp::Invert,
            PolicyOp::TranslateX,
            PolicyOp::Noise,
        ]
    }

    /// Reasonable magnitude bounds for the search.
    pub fn magnitude_range(&self) -> (f32, f32) {
        match self {
            PolicyOp::Rotate => (-25.0, 25.0),
            PolicyOp::ResizeX | PolicyOp::ResizeY => (0.6, 1.8),
            PolicyOp::ShearX | PolicyOp::ShearY => (-0.4, 0.4),
            PolicyOp::Brightness => (0.6, 1.6),
            PolicyOp::Contrast => (0.5, 1.8),
            PolicyOp::Invert => (0.2, 0.8),
            PolicyOp::TranslateX => (-4.0, 4.0),
            PolicyOp::Noise => (0.01, 0.08),
        }
    }

    /// Apply to a pattern with the given magnitude.
    pub fn apply(&self, img: &GrayImage, magnitude: f32, rng: &mut impl Rng) -> GrayImage {
        let mut out = match self {
            PolicyOp::Rotate => rotate(img, magnitude),
            PolicyOp::ResizeX => {
                stretch_x(img, magnitude.max(0.05)).unwrap_or_else(|_| img.clone())
            }
            PolicyOp::ResizeY => {
                stretch_y(img, magnitude.max(0.05)).unwrap_or_else(|_| img.clone())
            }
            PolicyOp::ShearX => shear_x(img, magnitude),
            PolicyOp::ShearY => shear_y(img, magnitude),
            PolicyOp::Brightness => img.map(|p| p * magnitude),
            PolicyOp::Contrast => {
                let mean = img.pixels().iter().sum::<f32>() / img.len().max(1) as f32;
                img.map(|p| mean + magnitude * (p - mean))
            }
            PolicyOp::Invert => img.map(|p| 2.0 * magnitude - p),
            PolicyOp::TranslateX => translate(img, magnitude, 0.0),
            PolicyOp::Noise => {
                let noise =
                    white_noise_image(rng.gen(), img.width(), img.height(), -magnitude, magnitude);
                let mut out = img.clone();
                for (o, n) in out.pixels_mut().iter_mut().zip(noise.pixels()) {
                    *o += n;
                }
                out
            }
        };
        out.clamp(0.0, 1.0);
        out
    }
}

/// A concrete (operation, magnitude) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Policy {
    /// The transform.
    pub op: PolicyOp,
    /// Its magnitude.
    pub magnitude: f32,
}

impl Policy {
    /// Apply to a pattern.
    pub fn apply(&self, img: &GrayImage, rng: &mut impl Rng) -> GrayImage {
        self.op.apply(img, self.magnitude, rng)
    }
}

/// A combination of policies applied in sequence (the paper uses
/// combinations of three).
pub fn apply_policies(policies: &[Policy], img: &GrayImage, rng: &mut impl Rng) -> GrayImage {
    let mut out = img.clone();
    for p in policies {
        out = p.apply(&out, rng);
    }
    out
}

/// Search configuration (defaults follow Section 4.2).
#[derive(Debug, Clone)]
pub struct PolicySearchConfig {
    /// Operations to draw from.
    pub ops: Vec<PolicyOp>,
    /// Random magnitudes sampled per operation (paper: 10).
    pub magnitudes_per_op: usize,
    /// Policies per combination (paper: 3).
    pub combo_size: usize,
    /// Cap on the number of combinations evaluated; the paper's exhaustive
    /// iteration is kept for small op sets, larger sets sample.
    pub max_combinations: usize,
}

impl Default for PolicySearchConfig {
    fn default() -> Self {
        Self {
            ops: PolicyOp::all().to_vec(),
            magnitudes_per_op: 10,
            combo_size: 3,
            max_combinations: 80,
        }
    }
}

/// Section 4.2's search: sample magnitudes, enumerate (or sample)
/// `combo_size`-combinations, score each with `evaluate` (higher better)
/// and return the best combination. `evaluate` receives the candidate
/// policy combination; the experiment harness trains a labeler on
/// augmented patterns inside it.
pub fn search_policies(
    config: &PolicySearchConfig,
    mut evaluate: impl FnMut(&[Policy]) -> f64,
    rng: &mut impl Rng,
) -> Vec<Policy> {
    // One sampled magnitude per op per slot, as candidate pool.
    let mut candidates: Vec<Policy> = Vec::new();
    for &op in &config.ops {
        let (lo, hi) = op.magnitude_range();
        for _ in 0..config.magnitudes_per_op {
            candidates.push(Policy {
                op,
                magnitude: rng.gen_range(lo..=hi),
            });
        }
    }
    let k = config.combo_size.max(1).min(candidates.len());
    // Enumerate all k-combinations when feasible, sample otherwise.
    let total = n_choose_k(candidates.len(), k);
    let mut best: Option<(f64, Vec<Policy>)> = None;
    let mut consider = |combo: &[Policy], best: &mut Option<(f64, Vec<Policy>)>| {
        let score = evaluate(combo);
        if best.as_ref().is_none_or(|(s, _)| score > *s) {
            *best = Some((score, combo.to_vec()));
        }
    };
    if total <= config.max_combinations as u128 {
        let mut indices: Vec<usize> = (0..k).collect();
        loop {
            let combo: Vec<Policy> = indices.iter().map(|&i| candidates[i]).collect();
            consider(&combo, &mut best);
            // Next combination in lexicographic order.
            let mut i = k;
            loop {
                if i == 0 {
                    return best.map(|(_, c)| c).unwrap_or_default();
                }
                i -= 1;
                if indices[i] != i + candidates.len() - k {
                    break;
                }
            }
            indices[i] += 1;
            for j in i + 1..k {
                indices[j] = indices[j - 1] + 1;
            }
        }
    } else {
        for _ in 0..config.max_combinations {
            let combo: Vec<Policy> = candidates.choose_multiple(rng, k).copied().collect();
            consider(&combo, &mut best);
        }
        best.map(|(_, c)| c).unwrap_or_default()
    }
}

fn n_choose_k(n: usize, k: usize) -> u128 {
    if k > n {
        return 0;
    }
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc.saturating_mul((n - i) as u128) / (i + 1) as u128;
        if acc > 1u128 << 100 {
            return u128::MAX;
        }
    }
    acc
}

/// Generate `count` augmented patterns by applying the policy combination
/// to randomly chosen source patterns.
pub fn policy_augment(
    patterns: &[GrayImage],
    policies: &[Policy],
    count: usize,
    rng: &mut impl Rng,
) -> Vec<GrayImage> {
    let Some(first) = patterns.first() else {
        return Vec::new();
    };
    if policies.is_empty() {
        return Vec::new();
    }
    (0..count)
        .map(|_| {
            // `choose` is Some whenever the slice is non-empty, which the
            // `first()` guard above established.
            let src = patterns.choose(rng).unwrap_or(first);
            // Apply a random nonempty subset (1..=all) of the combination,
            // mirroring AutoAugment's stochastic application.
            let n_apply = rng.gen_range(1..=policies.len());
            let chosen: Vec<Policy> = policies.choose_multiple(rng, n_apply).copied().collect();
            apply_policies(&chosen, src, rng)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pattern() -> GrayImage {
        let mut img = GrayImage::filled(16, 16, 0.6);
        img.draw_line(3.0, 8.0, 13.0, 8.0, 1.5, 0.1);
        img
    }

    #[test]
    fn every_op_produces_valid_output() {
        let img = pattern();
        let mut rng = StdRng::seed_from_u64(0);
        for op in PolicyOp::all() {
            let (lo, hi) = op.magnitude_range();
            for mag in [lo, (lo + hi) * 0.5, hi] {
                let out = op.apply(&img, mag, &mut rng);
                assert_eq!(out.dims(), img.dims(), "{op:?} changed dims");
                for &p in out.pixels() {
                    assert!((0.0..=1.0).contains(&p), "{op:?} out of range: {p}");
                }
            }
        }
    }

    #[test]
    fn brightness_scales_pixels() {
        let img = GrayImage::filled(4, 4, 0.4);
        let mut rng = StdRng::seed_from_u64(1);
        let out = PolicyOp::Brightness.apply(&img, 1.5, &mut rng);
        assert!((out.get(0, 0) - 0.6).abs() < 1e-6);
    }

    #[test]
    fn invert_flips_around_pivot() {
        let img = GrayImage::filled(2, 2, 0.1);
        let mut rng = StdRng::seed_from_u64(2);
        let out = PolicyOp::Invert.apply(&img, 0.25, &mut rng);
        // 2*0.25 - 0.1 = 0.4.
        assert!((out.get(0, 0) - 0.4).abs() < 1e-6);
    }

    #[test]
    fn contrast_one_is_identity() {
        let img = pattern();
        let mut rng = StdRng::seed_from_u64(3);
        let out = PolicyOp::Contrast.apply(&img, 1.0, &mut rng);
        for (a, b) in img.pixels().iter().zip(out.pixels()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn rotate_changes_line_orientation() {
        let img = pattern();
        let mut rng = StdRng::seed_from_u64(4);
        let out = PolicyOp::Rotate.apply(&img, 20.0, &mut rng);
        // The horizontal line's row should lose mass.
        let row_before: f32 = img.row(8).iter().map(|&p| (0.6 - p).max(0.0)).sum();
        let row_after: f32 = out.row(8).iter().map(|&p| (0.6 - p).max(0.0)).sum();
        assert!(row_after < row_before * 0.9);
    }

    #[test]
    fn apply_policies_chains() {
        let img = pattern();
        let mut rng = StdRng::seed_from_u64(5);
        let combo = vec![
            Policy {
                op: PolicyOp::Brightness,
                magnitude: 1.2,
            },
            Policy {
                op: PolicyOp::Rotate,
                magnitude: 10.0,
            },
        ];
        let out = apply_policies(&combo, &img, &mut rng);
        assert_eq!(out.dims(), img.dims());
        assert_ne!(out, img);
    }

    #[test]
    fn search_finds_injected_optimum() {
        // Evaluator prefers combos containing a Rotate policy with
        // magnitude near +20; the search should find one.
        let mut rng = StdRng::seed_from_u64(6);
        let config = PolicySearchConfig {
            ops: vec![PolicyOp::Rotate, PolicyOp::Brightness, PolicyOp::Noise],
            magnitudes_per_op: 6,
            combo_size: 2,
            max_combinations: 1000,
        };
        let best = search_policies(
            &config,
            |combo| {
                combo
                    .iter()
                    .map(|p| match p.op {
                        PolicyOp::Rotate => 10.0 - (p.magnitude - 20.0).abs() as f64,
                        _ => 0.0,
                    })
                    .sum()
            },
            &mut rng,
        );
        assert_eq!(best.len(), 2);
        let best_rotate = best
            .iter()
            .filter(|p| p.op == PolicyOp::Rotate)
            .map(|p| p.magnitude)
            .fold(f32::NEG_INFINITY, f32::max);
        assert!(best_rotate > 5.0, "best rotate magnitude {best_rotate}");
    }

    #[test]
    fn search_samples_when_space_is_large() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut evals = 0usize;
        let config = PolicySearchConfig {
            max_combinations: 50,
            ..Default::default()
        };
        let best = search_policies(
            &config,
            |_| {
                evals += 1;
                1.0
            },
            &mut rng,
        );
        assert_eq!(evals, 50);
        assert_eq!(best.len(), 3);
    }

    #[test]
    fn policy_augment_produces_requested_count() {
        let mut rng = StdRng::seed_from_u64(8);
        let patterns = vec![pattern()];
        let policies = vec![
            Policy {
                op: PolicyOp::Rotate,
                magnitude: 15.0,
            },
            Policy {
                op: PolicyOp::ResizeX,
                magnitude: 1.4,
            },
        ];
        let out = policy_augment(&patterns, &policies, 25, &mut rng);
        assert_eq!(out.len(), 25);
        // Augmented patterns differ from the source (at least mostly).
        let distinct = out.iter().filter(|p| **p != patterns[0]).count();
        assert!(distinct > 20);
    }

    #[test]
    fn policy_augment_empty_inputs() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(policy_augment(
            &[],
            &[Policy {
                op: PolicyOp::Rotate,
                magnitude: 5.0
            }],
            10,
            &mut rng
        )
        .is_empty());
        assert!(policy_augment(&[pattern()], &[], 10, &mut rng).is_empty());
    }

    #[test]
    fn n_choose_k_values() {
        assert_eq!(n_choose_k(5, 2), 10);
        assert_eq!(n_choose_k(100, 3), 161_700);
        assert_eq!(n_choose_k(3, 5), 0);
        assert_eq!(n_choose_k(4, 4), 1);
    }
}
