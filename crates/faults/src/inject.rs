//! Adversarial input generators for property tests.
//!
//! These build feature matrices seeded deterministically, with a
//! controllable fraction of hostile entries (NaN, +/-Inf, huge, denormal),
//! so `ig-core` and `ig-nn` properties can assert that labelers and
//! optimizers never leak non-finite values no matter what comes in.

use ig_nn::Matrix;

use crate::plan::FaultPlan;

/// Deterministic adversarial matrix: mostly moderate values with a
/// `hostile_rate` fraction of NaN / +/-Inf / 1e30 / -1e30 / denormals.
pub fn adversarial_matrix(rows: usize, cols: usize, seed: u64, hostile_rate: f64) -> Matrix {
    let mut state = seed ^ 0xA076_1D64_78BD_642F;
    let mut next = move || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    Matrix::from_fn(rows, cols, |_, _| {
        let roll = (next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        if roll < hostile_rate {
            match next() % 6 {
                0 => f32::NAN,
                1 => f32::INFINITY,
                2 => f32::NEG_INFINITY,
                3 => 1e30,
                4 => -1e30,
                _ => f32::MIN_POSITIVE / 2.0,
            }
        } else {
            let unit = (next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            (unit * 2.0 - 1.0) as f32 * 10.0
        }
    })
}

/// Apply a plan's NaN/Inf feature faults to a matrix in place. Returns
/// the `(row, col)` cells that were corrupted.
pub fn corrupt_matrix(m: &mut Matrix, plan: &FaultPlan) -> Vec<(usize, usize)> {
    let mut corrupted = Vec::new();
    for r in 0..m.rows() {
        for c in 0..m.cols() {
            let v = m.get(r, c);
            let cv = plan.corrupt_feature(r, c, v);
            if cv.to_bits() != v.to_bits() {
                m.set(r, c, cv);
                corrupted.push((r, c));
            }
        }
    }
    corrupted
}

/// Binary labels (0/1) matching `rows`, deterministic in `seed`, with
/// both classes guaranteed present when `rows >= 2`.
pub fn adversarial_labels(rows: usize, seed: u64) -> Vec<usize> {
    let mut labels: Vec<usize> = (0..rows)
        .map(|i| {
            let z = crate::plan::FaultPlan {
                seed,
                ..Default::default()
            };
            usize::from(z.decide("labels", i as u64, 0.5))
        })
        .collect();
    // Slice pattern instead of indexing: provably panic-free.
    if let [first, second, ..] = labels.as_mut_slice() {
        *first = 0;
        *second = 1;
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adversarial_matrix_is_deterministic() {
        let a = adversarial_matrix(8, 5, 9, 0.3);
        let b = adversarial_matrix(8, 5, 9, 0.3);
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn adversarial_matrix_contains_hostile_values() {
        let m = adversarial_matrix(40, 10, 3, 0.3);
        assert!(m.as_slice().iter().any(|v| !v.is_finite()));
        assert!(m.as_slice().iter().any(|v| v.is_finite()));
    }

    #[test]
    fn zero_rate_is_benign() {
        let m = adversarial_matrix(20, 6, 5, 0.0);
        assert!(m
            .as_slice()
            .iter()
            .all(|v| v.is_finite() && v.abs() <= 10.0));
    }

    #[test]
    fn corrupt_matrix_reports_cells() {
        let plan = FaultPlan {
            seed: 1,
            nan_feature_rate: 0.2,
            ..FaultPlan::default()
        };
        let mut m = Matrix::zeros(30, 4);
        let cells = corrupt_matrix(&mut m, &plan);
        assert!(!cells.is_empty());
        for &(r, c) in &cells {
            assert!(m.get(r, c).is_nan());
        }
        let clean: usize = (0..m.rows())
            .flat_map(|r| (0..m.cols()).map(move |c| (r, c)))
            .filter(|rc| !cells.contains(rc))
            .map(|(r, c)| usize::from(m.get(r, c) == 0.0))
            .sum();
        assert_eq!(clean, m.len() - cells.len());
    }

    #[test]
    fn labels_have_both_classes() {
        let labels = adversarial_labels(16, 2);
        assert!(labels.contains(&0));
        assert!(labels.contains(&1));
        assert!(labels.iter().all(|&l| l <= 1));
    }
}
