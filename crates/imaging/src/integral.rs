//! Integral images (summed-area tables).
//!
//! The NCC denominator needs `sum I(x+x', y+y')^2` over every candidate
//! window; a squared integral image turns that into four lookups per
//! window, which is what makes brute-force matching tolerable and the
//! pyramid refinement cheap.

use crate::GrayImage;

/// A summed-area table over `f64` accumulators (f32 accumulates too much
/// error on megapixel industrial images).
#[derive(Debug, Clone)]
pub struct IntegralImage {
    width: usize,
    height: usize,
    /// `(width + 1) x (height + 1)` table with a zero first row/column.
    table: Vec<f64>,
}

impl IntegralImage {
    /// Approximate heap footprint of the accumulator table, in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.table.len() * core::mem::size_of::<f64>()
    }

    /// Build the integral image of `f(pixel)` for each pixel — pass
    /// `|p| p` for plain sums or `|p| p * p` for squared sums.
    pub fn build(src: &GrayImage, f: impl Fn(f32) -> f64) -> Self {
        let (w, h) = src.dims();
        let stride = w + 1;
        let mut table = vec![0.0f64; stride * (h + 1)];
        for y in 0..h {
            let row = src.row(y);
            let mut row_sum = 0.0f64;
            for x in 0..w {
                row_sum += f(row[x]);
                table[(y + 1) * stride + (x + 1)] = table[y * stride + (x + 1)] + row_sum;
            }
        }
        Self {
            width: w,
            height: h,
            table,
        }
    }

    /// Integral image of raw pixel values.
    pub fn of_values(src: &GrayImage) -> Self {
        Self::build(src, |p| p as f64)
    }

    /// Integral image of squared pixel values.
    pub fn of_squares(src: &GrayImage) -> Self {
        Self::build(src, |p| (p as f64) * (p as f64))
    }

    /// Source image width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Source image height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Fill `out[x]` with [`IntegralImage::window_sum`]`(x, y, w, h)` for
    /// every valid placement `x` in one pass over the two table rows the
    /// whole output row shares. Bit-identical to the per-placement calls
    /// (same four lookups combined in the same order), but the reads are
    /// two contiguous slices instead of scattered indexing — this is what
    /// lets the dense NCC sweep walk each output row once.
    ///
    /// `out` should hold `width - w + 1` slots; extra slots are left
    /// untouched. Out-of-range `(y, w, h)` writes nothing.
    pub fn row_window_sums(&self, y: usize, w: usize, h: usize, out: &mut [f64]) {
        let stride = self.width + 1;
        if y + h > self.height || w > self.width {
            debug_assert!(false, "row_window_sums out of range");
            return;
        }
        let (Some(top), Some(bot)) = (
            self.table.get(y * stride..y * stride + stride),
            self.table.get((y + h) * stride..(y + h) * stride + stride),
        ) else {
            return;
        };
        let (Some(top_w), Some(bot_w)) = (top.get(w..), bot.get(w..)) else {
            return;
        };
        // window_sum computes d - b - c + a; keep that exact order.
        for ((((o, a), b), c), d) in out.iter_mut().zip(top).zip(top_w).zip(bot).zip(bot_w) {
            *o = *d - *b - *c + *a;
        }
    }

    /// Sum over the window with top-left `(x, y)` and extent `(w, h)`.
    /// The window must fit inside the image.
    #[inline]
    pub fn window_sum(&self, x: usize, y: usize, w: usize, h: usize) -> f64 {
        debug_assert!(x + w <= self.width && y + h <= self.height);
        let stride = self.width + 1;
        let a = self.table[y * stride + x];
        let b = self.table[y * stride + (x + w)];
        let c = self.table[(y + h) * stride + x];
        let d = self.table[(y + h) * stride + (x + w)];
        d - b - c + a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_sum(img: &GrayImage, x: usize, y: usize, w: usize, h: usize) -> f64 {
        let mut acc = 0.0f64;
        for yy in y..y + h {
            for xx in x..x + w {
                acc += img.get(xx, yy) as f64;
            }
        }
        acc
    }

    #[test]
    fn window_sum_matches_naive() {
        let img = GrayImage::from_fn(7, 5, |x, y| ((x * 3 + y * 5) % 11) as f32 * 0.25);
        let integral = IntegralImage::of_values(&img);
        for (x, y, w, h) in [(0, 0, 7, 5), (0, 0, 1, 1), (2, 1, 3, 3), (6, 4, 1, 1)] {
            let fast = integral.window_sum(x, y, w, h);
            let slow = naive_sum(&img, x, y, w, h);
            assert!((fast - slow).abs() < 1e-6, "window ({x},{y},{w},{h})");
        }
    }

    #[test]
    fn squared_integral_matches_naive() {
        let img = GrayImage::from_fn(6, 6, |x, y| (x as f32 - y as f32) * 0.5);
        let integral = IntegralImage::of_squares(&img);
        let mut slow = 0.0f64;
        for y in 1..4 {
            for x in 2..5 {
                let p = img.get(x, y) as f64;
                slow += p * p;
            }
        }
        assert!((integral.window_sum(2, 1, 3, 3) - slow).abs() < 1e-6);
    }

    #[test]
    fn full_window_equals_total() {
        let img = GrayImage::filled(10, 4, 0.5);
        let integral = IntegralImage::of_values(&img);
        assert!((integral.window_sum(0, 0, 10, 4) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn zero_extent_window_is_zero() {
        let img = GrayImage::filled(4, 4, 1.0);
        let integral = IntegralImage::of_values(&img);
        assert_eq!(integral.window_sum(2, 2, 0, 0), 0.0);
    }
}
