//! F1 fixture: stages whose `run()` reads state that `fingerprint()`
//! never hashes, plus a hashed field no computation ever reads.

pub struct Fingerprint(u64);
pub struct Hasher;
impl Hasher {
    pub fn new() -> Hasher {
        Hasher
    }
    pub fn write(&mut self, _v: u64) {}
    pub fn finish(&self) -> Fingerprint {
        Fingerprint(0)
    }
}
pub struct RunContext;
impl RunContext {
    pub fn threads(&self) -> usize {
        1
    }
}
pub trait Stage {
    fn fingerprint(&self) -> Fingerprint;
    fn run(&mut self, ctx: &RunContext) -> u64;
}

pub struct Leaky {
    pub rate: u64,
    pub bins: u64,
    pub relic: u64,
    pub deep: u64,
}

impl Leaky {
    fn helper(&self) -> u64 {
        self.deep
    }
}

impl Stage for Leaky {
    fn fingerprint(&self) -> Fingerprint {
        let mut h = Hasher::new();
        h.write(self.rate);
        h.write(self.relic);
        h.finish()
    }
    fn run(&mut self, ctx: &RunContext) -> u64 {
        let width = self.bins + self.rate;
        let depth = self.helper();
        width + depth + ctx.threads() as u64
    }
}

pub struct Clean {
    pub rate: u64,
}

impl Stage for Clean {
    fn fingerprint(&self) -> Fingerprint {
        let mut h = Hasher::new();
        h.write(self.rate);
        h.finish()
    }
    fn run(&mut self, _ctx: &RunContext) -> u64 {
        self.rate
    }
}
