//! Parser-recovery fixture: an unparsable item must not disable the
//! token-level rules on the rest of the file.

fn broken(((( {

pub fn still_scanned(opt: Option<u32>) -> u32 {
    let v = opt.unwrap();
    v
}
