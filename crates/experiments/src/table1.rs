//! Table 1: dataset statistics — image size, N (N_D), N_V (N_DV), defect
//! and task type — for the generated simulacra.

use crate::common::{all_kinds, task_name, ExpEnv, Prepared, Report};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    image_size: String,
    n: usize,
    n_defective: usize,
    n_dev: usize,
    n_dev_defective: usize,
    defect_type: String,
    task_type: String,
}

/// Run the Table 1 reproduction.
pub fn run(env: &ExpEnv) {
    let mut report = Report::new("table1", &env.out);
    report.line(format!(
        "Table 1 (reproduction, scale={}): dataset statistics",
        env.scale().name()
    ));
    report.line(format!(
        "{:<22} {:>11} {:>12} {:>12}  {:<28} {:<11}",
        "Dataset", "Image size", "N (N_D)", "N_V (N_DV)", "Defect Type", "Task Type"
    ));
    let mut rows = Vec::new();
    for kind in all_kinds() {
        let prepared = Prepared::new(&env.ctx, kind);
        let (w, h) = prepared.dataset.image_dims();
        let dev = prepared.dev_images();
        let dev_defective = dev.iter().filter(|i| i.is_defective()).count();
        let defect_type = match kind {
            ig_synth::spec::DatasetKind::Ksdd => "Crack",
            ig_synth::spec::DatasetKind::ProductScratch => "Scratch",
            ig_synth::spec::DatasetKind::ProductBubble => "Bubble",
            ig_synth::spec::DatasetKind::ProductStamping => "Stamping",
            ig_synth::spec::DatasetKind::Neu => "6 steel-surface classes",
        };
        let row = Row {
            dataset: prepared.dataset.name.clone(),
            image_size: format!("{w} x {h}"),
            n: prepared.dataset.len(),
            n_defective: prepared.dataset.num_defective(),
            n_dev: dev.len(),
            n_dev_defective: dev_defective,
            defect_type: defect_type.to_string(),
            task_type: task_name(prepared.dataset.task).to_string(),
        };
        report.line(format!(
            "{:<22} {:>11} {:>12} {:>12}  {:<28} {:<11}",
            row.dataset,
            row.image_size,
            format!("{} ({})", row.n, row.n_defective),
            format!("{} ({})", row.n_dev, row.n_dev_defective),
            row.defect_type,
            row.task_type
        ));
        rows.push(row);
    }
    report.finish(&rows);
}
