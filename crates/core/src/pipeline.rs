//! The end-to-end Inspector Gadget pipeline (Figures 2 and 3).
//!
//! Inputs: a pattern bank (crowd patterns, optionally extended by the
//! augmenter) and a labeled development set. Training matches every
//! pattern against every dev image (features), tunes and fits the MLP
//! labeler. Labeling then turns any batch of unlabeled images into weak
//! labels — "after training the Labeler, Inspector Gadget only utilizes
//! [patterns, feature generator, labeler] for generating weak labels".

use crate::features::{FeatureGenerator, MatchBackend};
use crate::labeler::{Labeler, LabelerConfig};
use crate::pattern::Pattern;
use crate::tuning::{tune_labeler, TuningConfig, TuningReport};
use crate::Result;
use ig_imaging::GrayImage;
use ig_nn::Matrix;
use rand::Rng;

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Matching backend for the FGFs.
    pub backend: MatchBackend,
    /// Worker threads for feature generation (0 = hardware default).
    pub threads: usize,
    /// Run architecture tuning (Section 6.5). When `false`,
    /// `fixed_hidden` is used directly — the "Min"/"Max" arms of Figure 11
    /// and speed-sensitive callers use this.
    pub tune: bool,
    /// Architecture when tuning is disabled.
    pub fixed_hidden: Vec<usize>,
    /// Tuning parameters.
    pub tuning: TuningConfig,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            backend: MatchBackend::Pyramid,
            threads: 0,
            tune: true,
            fixed_hidden: vec![8],
            tuning: TuningConfig::default(),
        }
    }
}

/// Weak labels for a batch of images.
#[derive(Debug, Clone)]
pub struct WeakLabelOutput {
    /// Hard weak label per image.
    pub labels: Vec<usize>,
    /// Per-class probabilities (rows sum to 1).
    pub probabilities: Matrix,
    /// Max FGF similarity per image — the error-analysis signal.
    pub max_similarities: Vec<f32>,
}

/// A trained Inspector Gadget instance.
pub struct InspectorGadget {
    feature_gen: FeatureGenerator,
    labeler: Labeler,
    /// Tuning report when tuning ran.
    pub tuning_report: Option<TuningReport>,
}

impl InspectorGadget {
    /// Train from patterns and a labeled development set.
    pub fn train(
        patterns: Vec<Pattern>,
        dev_images: &[&GrayImage],
        dev_labels: &[usize],
        num_classes: usize,
        config: &PipelineConfig,
        rng: &mut impl Rng,
    ) -> Result<Self> {
        let mut feature_gen = FeatureGenerator::new(patterns)?.with_backend(config.backend);
        if config.threads > 0 {
            feature_gen = feature_gen.with_threads(config.threads);
        }
        let features = feature_gen.feature_matrix(dev_images);
        let (labeler, report) = if config.tune {
            let (labeler, report) =
                tune_labeler(&features, dev_labels, num_classes, &config.tuning, rng)?;
            (labeler, Some(report))
        } else {
            let mut labeler = Labeler::new(
                features.cols(),
                LabelerConfig {
                    hidden: config.fixed_hidden.clone(),
                    num_classes,
                    l2: config.tuning.l2,
                    lbfgs: config.tuning.lbfgs,
                },
                rng,
            )?;
            labeler.fit(&features, dev_labels)?;
            (labeler, None)
        };
        Ok(Self {
            feature_gen,
            labeler,
            tuning_report: report,
        })
    }

    /// Number of FGFs.
    pub fn num_features(&self) -> usize {
        self.feature_gen.num_features()
    }

    /// Borrow the feature generator (for feature reuse in experiments).
    pub fn feature_generator(&self) -> &FeatureGenerator {
        &self.feature_gen
    }

    /// Generate weak labels for a batch of images.
    pub fn label(&self, images: &[&GrayImage]) -> WeakLabelOutput {
        let features = self.feature_gen.feature_matrix(images);
        self.label_from_features(&features)
    }

    /// Generate weak labels from a precomputed feature matrix (images in
    /// the same pattern order). Lets experiments compute features once and
    /// reuse them across ablation arms.
    pub fn label_from_features(&self, features: &Matrix) -> WeakLabelOutput {
        let labels = self.labeler.predict(features);
        let probabilities = self.labeler.predict_proba(features);
        let max_similarities = (0..features.rows())
            .map(|r| FeatureGenerator::max_similarity(features, r))
            .collect();
        WeakLabelOutput {
            labels,
            probabilities,
            max_similarities,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::PatternSource;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A miniature fully-synthetic task: images with or without a dark
    /// square; the pattern bank contains a dark-square crop.
    fn make_task(
        n: usize,
        seed: u64,
    ) -> (Vec<Pattern>, Vec<GrayImage>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut images = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let defect = i % 2 == 1;
            let mut img = GrayImage::from_fn(48, 32, |x, y| {
                0.65 + 0.05 * ((x as f32 * 0.4).sin() * (y as f32 * 0.3).cos())
            });
            if defect {
                let x = rng.gen_range(2..38);
                let y = rng.gen_range(2..22);
                img.fill_rect(x, y, 7, 7, 0.15);
            }
            images.push(img);
            labels.push(usize::from(defect));
        }
        let mut pat = GrayImage::filled(7, 7, 0.15);
        pat.fill_rect(0, 0, 7, 1, 0.6); // context edge
        let patterns = vec![
            Pattern::crowd(pat),
            Pattern::augmented(GrayImage::filled(6, 6, 0.15), PatternSource::Policy),
        ];
        (patterns, images, labels)
    }

    #[test]
    fn pipeline_learns_synthetic_task() {
        let mut rng = StdRng::seed_from_u64(0);
        let (patterns, images, labels) = make_task(40, 1);
        let refs: Vec<&GrayImage> = images.iter().collect();
        let config = PipelineConfig {
            tune: false,
            ..Default::default()
        };
        let ig =
            InspectorGadget::train(patterns, &refs[..30], &labels[..30], 2, &config, &mut rng)
                .unwrap();
        let out = ig.label(&refs[30..]);
        let correct = out
            .labels
            .iter()
            .zip(&labels[30..])
            .filter(|(a, b)| a == b)
            .count();
        assert!(correct >= 8, "{correct}/10 correct");
        assert_eq!(out.probabilities.rows(), 10);
        assert_eq!(out.max_similarities.len(), 10);
    }

    #[test]
    fn pipeline_with_tuning_reports() {
        let mut rng = StdRng::seed_from_u64(2);
        let (patterns, images, labels) = make_task(50, 3);
        let refs: Vec<&GrayImage> = images.iter().collect();
        let config = PipelineConfig {
            tuning: TuningConfig {
                max_hidden_layers: 1,
                lbfgs: ig_nn::LbfgsConfig {
                    max_iters: 40,
                    ..Default::default()
                },
                ..Default::default()
            },
            ..Default::default()
        };
        let ig = InspectorGadget::train(patterns, &refs, &labels, 2, &config, &mut rng).unwrap();
        let report = ig.tuning_report.as_ref().expect("tuning ran");
        assert!(!report.candidates.is_empty());
        assert!(!report.best_hidden.is_empty());
    }

    #[test]
    fn label_from_features_matches_label() {
        let mut rng = StdRng::seed_from_u64(4);
        let (patterns, images, labels) = make_task(30, 5);
        let refs: Vec<&GrayImage> = images.iter().collect();
        let config = PipelineConfig {
            tune: false,
            ..Default::default()
        };
        let ig = InspectorGadget::train(patterns, &refs, &labels, 2, &config, &mut rng).unwrap();
        let direct = ig.label(&refs);
        let features = ig.feature_generator().feature_matrix(&refs);
        let via_features = ig.label_from_features(&features);
        assert_eq!(direct.labels, via_features.labels);
    }

    #[test]
    fn empty_pattern_bank_rejected() {
        let mut rng = StdRng::seed_from_u64(6);
        let (_, images, labels) = make_task(10, 7);
        let refs: Vec<&GrayImage> = images.iter().collect();
        assert!(InspectorGadget::train(
            vec![],
            &refs,
            &labels,
            2,
            &PipelineConfig::default(),
            &mut rng
        )
        .is_err());
    }
}
