//! The [`Stage`] trait: one typed unit of pipeline work.

use crate::context::RunContext;
use crate::fingerprint::Fingerprint;

/// A typed pipeline step with declared identity and inputs.
///
/// Stages are plain structs holding (references to) their inputs and
/// configuration; [`RunContext::run`] executes them and memoizes their
/// outputs in the artifact store when [`Stage::cacheable`] allows it.
///
/// `run` takes `&mut self` so a stage can *consume* owned inputs (via
/// `Option::take`) or drive an externally-seeded RNG — stages doing the
/// latter must report `cacheable() == false`, because RNG state cannot be
/// fingerprinted.
pub trait Stage {
    /// The artifact this stage produces. `Send + Sync + 'static` so it
    /// can live in the shared store behind an `Arc`.
    type Output: Send + Sync + 'static;
    /// Error produced on failure (use [`core::convert::Infallible`] for
    /// stages that cannot fail).
    type Error;

    /// Stable identifier, namespaced by crate (e.g. `"core.features"`).
    /// Two stages with the same id must produce the same output type.
    fn id(&self) -> &'static str;

    /// Structural fingerprint over every input and configuration field
    /// that can affect the output. Never consulted when
    /// [`Stage::cacheable`] is false — such stages may return
    /// [`Fingerprint::null`].
    fn fingerprint(&self) -> Fingerprint;

    /// Whether the output may be memoized. Default: yes.
    fn cacheable(&self) -> bool {
        true
    }

    /// Whether the output depends on the run's [`ig_faults::FaultPlan`].
    /// Plan-sensitive stages (the default) get the plan folded into their
    /// cache key, so a chaos arm never reuses a clean arm's artifact;
    /// plan-independent stages (dataset generation, image preparation)
    /// opt out and share artifacts across arms.
    fn plan_sensitive(&self) -> bool {
        true
    }

    /// Execute the stage. Called at most once per cache miss.
    fn run(&mut self, ctx: &RunContext) -> Result<Self::Output, Self::Error>;
}
