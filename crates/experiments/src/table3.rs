//! Table 3: crowdsourcing workflow ablation on the Product datasets —
//! "No avg. (±std/2)" (raw per-worker boxes), "No peer review", and the
//! full workflow. No pattern augmentation, matching the paper.

use crate::common::{run_ig_with_patterns, ExpEnv, Prepared, Report};
use ig_crowd::{CrowdWorkflow, WorkerModel};
use ig_synth::spec::DatasetKind;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    no_avg_mean: f64,
    no_avg_half_std: f64,
    no_peer_review: f64,
    full_workflow: f64,
}

const DATASETS: [DatasetKind; 3] = [
    DatasetKind::ProductScratch,
    DatasetKind::ProductBubble,
    DatasetKind::ProductStamping,
];

/// Run the Table 3 reproduction.
pub fn run(env: &ExpEnv) {
    let seed = env.seed();
    let mut report = Report::new("table3", &env.out);
    report.line(format!(
        "Table 3 (reproduction, scale={}): crowdsourcing workflow ablation (F1)",
        env.scale().name()
    ));
    report.line(format!(
        "{:<22} {:>22} {:>16} {:>14}",
        "Dataset", "No avg. (±std/2)", "No peer review", "Full workflow"
    ));
    let mut rows = Vec::new();
    for kind in DATASETS {
        let prepared = Prepared::new(&env.ctx, kind);
        let dev = prepared.dev_images();

        // No avg: one run per worker, report mean ± std/2 across workers.
        let mut per_worker = Vec::new();
        for (wi, worker) in WorkerModel::default_crew().into_iter().enumerate() {
            let workflow = CrowdWorkflow::single_worker(worker);
            let mut rng = StdRng::seed_from_u64(seed ^ (wi as u64 + 1) << 4);
            let patterns = workflow.run(&dev, &mut rng).patterns;
            if patterns.is_empty() {
                per_worker.push(0.0);
                continue;
            }
            let f1 =
                run_ig_with_patterns(&env.ctx, &prepared, &dev, patterns, false, seed + wi as u64)
                    .map(|r| r.f1)
                    .unwrap_or(0.0);
            per_worker.push(f1);
        }
        let mean = per_worker.iter().sum::<f64>() / per_worker.len().max(1) as f64;
        let var = per_worker
            .iter()
            .map(|&v| (v - mean) * (v - mean))
            .sum::<f64>()
            / per_worker.len().max(1) as f64;
        let half_std = var.sqrt() / 2.0;

        // No peer review.
        let mut rng = StdRng::seed_from_u64(seed ^ 0x33);
        let patterns = CrowdWorkflow::no_peer_review().run(&dev, &mut rng).patterns;
        let no_review = run_ig_with_patterns(&env.ctx, &prepared, &dev, patterns, false, seed + 11)
            .map(|r| r.f1)
            .unwrap_or(0.0);

        // Full workflow.
        let mut rng = StdRng::seed_from_u64(seed ^ 0x44);
        let patterns = CrowdWorkflow::full().run(&dev, &mut rng).patterns;
        let full = run_ig_with_patterns(&env.ctx, &prepared, &dev, patterns, false, seed + 13)
            .map(|r| r.f1)
            .unwrap_or(0.0);

        report.line(format!(
            "{:<22} {:>14.3} ±{:.3} {:>16.3} {:>14.3}",
            kind.display_name(),
            mean,
            half_std,
            no_review,
            full
        ));
        rows.push(Row {
            dataset: kind.display_name().to_string(),
            no_avg_mean: mean,
            no_avg_half_std: half_std,
            no_peer_review: no_review,
            full_workflow: full,
        });
    }
    let full_wins = rows
        .iter()
        .filter(|r| r.full_workflow >= r.no_peer_review)
        .count();
    report.line(format!(
        "Full workflow ≥ no-peer-review on {full_wins}/3 datasets \
         (paper: full workflow best on scratch & stamping, competitive on bubble)"
    ));
    report.finish(&rows);
}
