//! The [`Stage`] trait: one typed unit of pipeline work.

use crate::context::RunContext;
use crate::fingerprint::Fingerprint;

/// Retry and deadline policy for a supervised stage.
///
/// The default policy is "fail fast, no deadline". A stage opting into
/// supervision gets a bounded retry ladder: after each failed attempt the
/// runtime records a [`ig_faults::FaultKind::StageFailure`] in the health
/// report, sleeps the (exponentially doubling) backoff, and re-runs —
/// deterministic stages re-fail deterministically, so retries are for
/// stages whose failures come from the environment (I/O, thread pools),
/// not for laundering logic errors. Deadlines are *post-hoc*: the runtime
/// cannot preempt a stage, but when a [`crate::Clock`] is installed it
/// records a [`ig_faults::FaultKind::DeadlineExceeded`] for any stage
/// that finished over budget, so sweeps surface slow stages in the same
/// health channel as faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Supervision {
    /// Re-executions allowed after a failure (0 = fail fast).
    pub retries: u32,
    /// Backoff before the first retry, in milliseconds; doubles per
    /// attempt. 0 = retry immediately.
    pub base_backoff_ms: u64,
    /// Soft per-execution deadline in milliseconds (0 = none). Checked
    /// after the stage finishes, against the context's injected clock.
    pub deadline_ms: u64,
}

impl Supervision {
    /// Fail-fast policy (the default).
    pub fn fail_fast() -> Supervision {
        Supervision::default()
    }

    /// Policy allowing `retries` re-executions.
    pub fn retry(retries: u32) -> Supervision {
        Supervision {
            retries,
            ..Supervision::default()
        }
    }

    /// Set the base backoff (doubles per attempt).
    pub fn with_backoff_ms(mut self, ms: u64) -> Supervision {
        self.base_backoff_ms = ms;
        self
    }

    /// Set the soft deadline.
    pub fn with_deadline_ms(mut self, ms: u64) -> Supervision {
        self.deadline_ms = ms;
        self
    }

    /// Backoff before retry `attempt` (1-based): `base << (attempt - 1)`,
    /// saturating.
    pub fn backoff_ms(&self, attempt: u32) -> u64 {
        let doublings = attempt.saturating_sub(1).min(u64::BITS - 1);
        let factor = 1u64.checked_shl(doublings).unwrap_or(u64::MAX);
        self.base_backoff_ms.saturating_mul(factor)
    }
}

/// A typed pipeline step with declared identity and inputs.
///
/// Stages are plain structs holding (references to) their inputs and
/// configuration; [`RunContext::run`] executes them and memoizes their
/// outputs in the artifact store when [`Stage::cacheable`] allows it.
///
/// `run` takes `&mut self` so a stage can *consume* owned inputs (via
/// `Option::take`) or drive an externally-seeded RNG — stages doing the
/// latter must report `cacheable() == false`, because RNG state cannot be
/// fingerprinted.
pub trait Stage {
    /// The artifact this stage produces. `Send + Sync + 'static` so it
    /// can live in the shared store behind an `Arc`.
    type Output: Send + Sync + 'static;
    /// Error produced on failure (use [`core::convert::Infallible`] for
    /// stages that cannot fail).
    type Error;

    /// Stable identifier, namespaced by crate (e.g. `"core.features"`).
    /// Two stages with the same id must produce the same output type.
    fn id(&self) -> &'static str;

    /// Structural fingerprint over every input and configuration field
    /// that can affect the output. Never consulted when
    /// [`Stage::cacheable`] is false — such stages may return
    /// [`Fingerprint::null`].
    fn fingerprint(&self) -> Fingerprint;

    /// Execute the stage. Called at most once per cache miss.
    fn run(&mut self, ctx: &RunContext) -> Result<Self::Output, Self::Error>;

    /// Whether the output may be memoized. Default: yes.
    fn cacheable(&self) -> bool {
        true
    }

    /// Whether the output depends on the run's [`ig_faults::FaultPlan`].
    /// Plan-sensitive stages (the default) get the plan folded into their
    /// cache key, so a chaos arm never reuses a clean arm's artifact;
    /// plan-independent stages (dataset generation, image preparation)
    /// opt out and share artifacts across arms.
    fn plan_sensitive(&self) -> bool {
        true
    }

    /// Retry/deadline policy applied by [`RunContext::run`] on a cache
    /// miss. Default: fail fast, no deadline.
    fn supervision(&self) -> Supervision {
        Supervision::fail_fast()
    }

    /// Whether this stage persists to the durable tier *under the current
    /// inputs* — i.e. whether [`Stage::encode`] would return `Some` for
    /// its output. The runtime consults this hint **before** executing:
    /// on a durable stage's disk miss it opens a single-flight claim
    /// ([`crate::disk::DiskStore::begin_flight`]), so a concurrent
    /// process computing the same artifact is waited on and its result
    /// read back instead of recomputed. Memory-only stages (the default)
    /// skip the claim entirely. Implementations must keep this consistent
    /// with `encode`: returning `true` while `encode` returns `None`
    /// makes peers wait for an artifact that never appears (they time out
    /// into a recompute — correct, but wasteful).
    fn durable(&self) -> bool {
        false
    }

    /// Serialize the output for the durable on-disk tier. `None` (the
    /// default) keeps the stage memory-only. Implementations must pair
    /// with [`Stage::decode`] such that the round trip is bit-identical —
    /// the durable tier's whole contract is that a disk hit equals a
    /// recompute. Stages whose output under an active fault plan differs
    /// from clean output should also return `None` when the context plan
    /// is non-empty, so chaos arms replay their faults instead of reading
    /// them back.
    fn encode(&self, _output: &Self::Output) -> Option<Vec<u8>> {
        None
    }

    /// Deserialize bytes written by [`Stage::encode`]. `None` rejects the
    /// payload (the runtime quarantines the file and recomputes); the
    /// default rejects everything, matching the default `encode`.
    fn decode(&self, _bytes: &[u8]) -> Option<Self::Output> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_saturates() {
        let sup = Supervision::retry(4).with_backoff_ms(10);
        assert_eq!(sup.backoff_ms(1), 10);
        assert_eq!(sup.backoff_ms(2), 20);
        assert_eq!(sup.backoff_ms(3), 40);
        let huge = Supervision::retry(200).with_backoff_ms(u64::MAX / 2);
        assert_eq!(huge.backoff_ms(100), u64::MAX, "saturates, never wraps");
    }

    #[test]
    fn default_policy_fails_fast() {
        let sup = Supervision::fail_fast();
        assert_eq!(sup.retries, 0);
        assert_eq!(sup.deadline_ms, 0);
        assert_eq!(sup.backoff_ms(1), 0);
    }
}
