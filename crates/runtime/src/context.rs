//! [`RunContext`]: the single carrier of run-wide discipline.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ig_faults::{FaultPlan, HealthReport};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::fingerprint::{Fingerprint, FingerprintHasher, Fingerprintable};
use crate::scale::ScalePlan;
use crate::stage::Stage;
use crate::store::ArtifactStore;

/// Everything a pipeline run shares: the seed, the active fault plan, the
/// thread budget, the scale plan, the health report and the artifact
/// store.
///
/// Cloning is cheap and *scoped*: the clone shares the store and health
/// report but may carry a different fault plan (see
/// [`RunContext::with_plan`]), which is how the chaos experiment runs a
/// clean arm and a faulted arm over the same memoized dataset artifacts
/// without ever serving a faulted artifact to the clean arm — the plan is
/// part of every plan-sensitive cache key.
#[derive(Debug, Clone)]
pub struct RunContext {
    seed: u64,
    threads: usize,
    memoize: bool,
    scale: ScalePlan,
    plan: Option<FaultPlan>,
    store: Arc<ArtifactStore>,
    health: Arc<HealthReport>,
    stage_runs: Arc<AtomicU64>,
}

impl RunContext {
    /// Context with the given seed, no fault plan, hardware-default
    /// threads, quick scale, memoization on.
    pub fn new(seed: u64) -> RunContext {
        RunContext {
            seed,
            threads: 0,
            memoize: true,
            scale: ScalePlan::quick(),
            plan: None,
            store: Arc::new(ArtifactStore::new()),
            health: Arc::new(HealthReport::new()),
            stage_runs: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Replace the fault plan (shares the store: plan-sensitive cache
    /// keys keep the arms apart).
    pub fn with_plan(mut self, plan: Option<FaultPlan>) -> RunContext {
        self.plan = plan;
        self
    }

    /// Set the worker-thread budget (0 = hardware default).
    pub fn with_threads(mut self, threads: usize) -> RunContext {
        self.threads = threads;
        self
    }

    /// Set the scale plan.
    pub fn with_scale(mut self, scale: ScalePlan) -> RunContext {
        self.scale = scale;
        self
    }

    /// Turn memoization on or off (off: every stage recomputes).
    pub fn with_memoization(mut self, on: bool) -> RunContext {
        self.memoize = on;
        self
    }

    /// The run seed — the root of all seed discipline.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// A deterministic RNG for the given salt: seeded with
    /// `seed() ^ salt`, so `ctx.rng(0)` reproduces the legacy
    /// `StdRng::seed_from_u64(seed)` streams exactly.
    pub fn rng(&self, salt: u64) -> StdRng {
        StdRng::seed_from_u64(self.seed ^ salt)
    }

    /// The active fault plan, if any.
    pub fn plan(&self) -> Option<&FaultPlan> {
        self.plan.as_ref()
    }

    /// Worker-thread budget (0 = hardware default).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The scale plan.
    pub fn scale(&self) -> &ScalePlan {
        &self.scale
    }

    /// The shared health report (faults recorded by any stage under this
    /// context or its clones).
    pub fn health(&self) -> &HealthReport {
        &self.health
    }

    /// The shared artifact store.
    pub fn store(&self) -> &ArtifactStore {
        &self.store
    }

    /// Stages actually executed (cache misses + non-cacheable runs).
    pub fn stage_runs(&self) -> u64 {
        self.stage_runs.load(Ordering::Relaxed)
    }

    /// Cache key for a stage under this context: the stage's own
    /// fingerprint, the run seed, and (for plan-sensitive stages) the
    /// fault plan.
    fn cache_key(&self, stage: &impl Stage) -> Fingerprint {
        let mut h = FingerprintHasher::new();
        h.write_str(stage.id());
        stage.fingerprint().fingerprint_into(&mut h);
        h.write_u64(self.seed);
        if stage.plan_sensitive() {
            self.plan.fingerprint_into(&mut h);
        }
        h.finish()
    }

    /// Execute a stage, serving it from the artifact store when possible.
    ///
    /// On a hit the returned `Arc` is the cached artifact itself —
    /// bit-identical to the original computation by construction. On a
    /// miss (or for non-cacheable stages) the stage runs and, when
    /// cacheable, its output is stored for the next caller.
    pub fn run<S: Stage>(&self, stage: &mut S) -> Result<Arc<S::Output>, S::Error> {
        let cacheable = self.memoize && stage.cacheable();
        if cacheable {
            let key = self.cache_key(stage);
            if let Some(artifact) = self.store.get(stage.id(), key) {
                // A downcast failure means two stages share an id; fall
                // through and recompute (the insert below then repairs
                // the entry).
                if let Ok(typed) = artifact.downcast::<S::Output>() {
                    return Ok(typed);
                }
            }
            self.stage_runs.fetch_add(1, Ordering::Relaxed);
            let output = Arc::new(stage.run(self)?);
            self.store.insert(stage.id(), key, output.clone());
            Ok(output)
        } else {
            self.stage_runs.fetch_add(1, Ordering::Relaxed);
            Ok(Arc::new(stage.run(self)?))
        }
    }

    /// Like [`RunContext::run`] but hands back an owned output: moves out
    /// of the `Arc` when this call produced the only reference (always
    /// true for non-cacheable stages), clones otherwise.
    pub fn run_owned<S>(&self, stage: &mut S) -> Result<S::Output, S::Error>
    where
        S: Stage,
        S::Output: Clone,
    {
        let arc = self.run(stage)?;
        match Arc::try_unwrap(arc) {
            Ok(owned) => Ok(owned),
            Err(shared) => Ok((*shared).clone()),
        }
    }
}

impl Fingerprintable for Fingerprint {
    fn fingerprint_into(&self, h: &mut FingerprintHasher) {
        h.write_u64(self.lo);
        h.write_u64(self.hi);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::convert::Infallible;
    use std::sync::atomic::AtomicUsize;

    /// Test stage: doubles every element; counts real executions.
    struct Doubler<'a> {
        input: Vec<u64>,
        calls: &'a AtomicUsize,
        cacheable: bool,
    }

    impl Stage for Doubler<'_> {
        type Output = Vec<u64>;
        type Error = Infallible;

        fn id(&self) -> &'static str {
            "test.doubler"
        }

        fn fingerprint(&self) -> Fingerprint {
            self.input.fingerprint()
        }

        fn cacheable(&self) -> bool {
            self.cacheable
        }

        fn run(&mut self, _ctx: &RunContext) -> Result<Vec<u64>, Infallible> {
            self.calls.fetch_add(1, Ordering::Relaxed);
            Ok(self.input.iter().map(|v| v * 2).collect())
        }
    }

    #[test]
    fn second_run_is_served_from_cache() {
        let ctx = RunContext::new(1);
        let calls = AtomicUsize::new(0);
        let mut stage = Doubler {
            input: vec![1, 2, 3],
            calls: &calls,
            cacheable: true,
        };
        let a = crate::infallible(ctx.run(&mut stage));
        let b = crate::infallible(ctx.run(&mut stage));
        assert_eq!(*a, vec![2, 4, 6]);
        assert!(Arc::ptr_eq(&a, &b), "hit returns the cached artifact");
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert_eq!(ctx.stage_runs(), 1);
    }

    #[test]
    fn changed_input_recomputes() {
        let ctx = RunContext::new(1);
        let calls = AtomicUsize::new(0);
        let mut a = Doubler {
            input: vec![1],
            calls: &calls,
            cacheable: true,
        };
        let mut b = Doubler {
            input: vec![2],
            calls: &calls,
            cacheable: true,
        };
        crate::infallible(ctx.run(&mut a));
        crate::infallible(ctx.run(&mut b));
        assert_eq!(calls.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn different_seed_recomputes() {
        let store_sharing = RunContext::new(1);
        let calls = AtomicUsize::new(0);
        let mut stage = Doubler {
            input: vec![1],
            calls: &calls,
            cacheable: true,
        };
        crate::infallible(store_sharing.run(&mut stage));
        // Same store, different seed: the clone must not hit.
        let mut reseeded = store_sharing.clone();
        reseeded.seed = 2;
        crate::infallible(reseeded.run(&mut stage));
        assert_eq!(calls.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn plan_scopes_the_cache() {
        let clean = RunContext::new(1);
        let calls = AtomicUsize::new(0);
        let mut stage = Doubler {
            input: vec![3],
            calls: &calls,
            cacheable: true,
        };
        crate::infallible(clean.run(&mut stage));
        let chaotic = clean.clone().with_plan(Some(FaultPlan::chaos(9)));
        crate::infallible(chaotic.run(&mut stage));
        assert_eq!(
            calls.load(Ordering::Relaxed),
            2,
            "plan-sensitive stage must not cross arms"
        );
    }

    #[test]
    fn non_cacheable_always_runs() {
        let ctx = RunContext::new(1);
        let calls = AtomicUsize::new(0);
        let mut stage = Doubler {
            input: vec![1],
            calls: &calls,
            cacheable: false,
        };
        crate::infallible(ctx.run(&mut stage));
        crate::infallible(ctx.run(&mut stage));
        assert_eq!(calls.load(Ordering::Relaxed), 2);
        assert!(ctx.store().is_empty());
    }

    #[test]
    fn memoization_off_always_runs() {
        let ctx = RunContext::new(1).with_memoization(false);
        let calls = AtomicUsize::new(0);
        let mut stage = Doubler {
            input: vec![1],
            calls: &calls,
            cacheable: true,
        };
        crate::infallible(ctx.run(&mut stage));
        crate::infallible(ctx.run(&mut stage));
        assert_eq!(calls.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn run_owned_moves_out_of_unique_arc() {
        let ctx = RunContext::new(1);
        let calls = AtomicUsize::new(0);
        let mut stage = Doubler {
            input: vec![5],
            calls: &calls,
            cacheable: false,
        };
        let owned: Vec<u64> = crate::infallible(ctx.run_owned(&mut stage));
        assert_eq!(owned, vec![10]);
    }

    #[test]
    fn rng_salt_matches_legacy_xor_derivation() {
        use rand::RngCore;
        let ctx = RunContext::new(42);
        let mut a = ctx.rng(0x5eed);
        let mut b = StdRng::seed_from_u64(42 ^ 0x5eed);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
