//! Confusion matrices and the F1 family.
//!
//! The paper: "We use the F1 score, which is the harmonic mean between
//! precision and recall. [...] F1 is known to be more suitable for data
//! where the labels are imbalanced" (Section 6.1). Binary tasks report
//! positive-class F1; the multi-class NEU task reports macro-F1.

use ig_imaging::stats::is_effectively_zero_f64;
use serde::{Deserialize, Serialize};

/// Precision / recall / F1 triple.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrfScores {
    /// |D ∩ P| / |P|.
    pub precision: f64,
    /// |D ∩ P| / |D|.
    pub recall: f64,
    /// Harmonic mean of the two; 0 when both are 0.
    pub f1: f64,
}

impl PrfScores {
    /// Combine raw counts into scores. Empty denominators yield zeros.
    pub fn from_counts(tp: usize, fp: usize, fn_: usize) -> Self {
        let precision = if tp + fp == 0 {
            0.0
        } else {
            tp as f64 / (tp + fp) as f64
        };
        let recall = if tp + fn_ == 0 {
            0.0
        } else {
            tp as f64 / (tp + fn_) as f64
        };
        // An epsilon guard, not `== 0.0`: precision/recall reach this sum
        // through division, and a denormal-small sum must not survive into
        // the F1 division below and amplify into a garbage score.
        let f1 = if is_effectively_zero_f64(precision + recall) {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        Self {
            precision,
            recall,
            f1,
        }
    }
}

/// A `k x k` confusion matrix; rows = gold class, columns = prediction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<usize>,
}

impl ConfusionMatrix {
    /// Empty matrix over `classes` classes.
    pub fn new(classes: usize) -> Self {
        Self {
            classes: classes.max(1),
            counts: vec![0; classes.max(1) * classes.max(1)],
        }
    }

    /// Build directly from parallel gold/prediction slices.
    pub fn from_pairs(classes: usize, gold: &[usize], pred: &[usize]) -> Self {
        assert_eq!(gold.len(), pred.len(), "gold/pred length mismatch");
        let mut cm = Self::new(classes);
        for (&g, &p) in gold.iter().zip(pred) {
            cm.record(g, p);
        }
        cm
    }

    /// Record one observation.
    pub fn record(&mut self, gold: usize, pred: usize) {
        assert!(gold < self.classes && pred < self.classes, "class overflow");
        self.counts[gold * self.classes + pred] += 1;
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Count for `(gold, pred)`.
    pub fn get(&self, gold: usize, pred: usize) -> usize {
        self.counts[gold * self.classes + pred]
    }

    /// Total observations.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Fraction of observations on the diagonal.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: usize = (0..self.classes).map(|c| self.get(c, c)).sum();
        correct as f64 / total as f64
    }

    /// Precision/recall/F1 treating `class` as the positive label.
    pub fn scores_for(&self, class: usize) -> PrfScores {
        let tp = self.get(class, class);
        let fp: usize = (0..self.classes)
            .filter(|&g| g != class)
            .map(|g| self.get(g, class))
            .sum();
        let fn_: usize = (0..self.classes)
            .filter(|&p| p != class)
            .map(|p| self.get(class, p))
            .sum();
        PrfScores::from_counts(tp, fp, fn_)
    }

    /// Unweighted mean of per-class F1 (the multi-class metric for NEU).
    pub fn macro_f1(&self) -> f64 {
        let sum: f64 = (0..self.classes).map(|c| self.scores_for(c).f1).sum();
        sum / self.classes as f64
    }
}

/// Positive-class F1 for binary gold/pred label slices (`true` = defect).
pub fn binary_f1(gold: &[bool], pred: &[bool]) -> PrfScores {
    assert_eq!(gold.len(), pred.len(), "gold/pred length mismatch");
    let mut tp = 0;
    let mut fp = 0;
    let mut fn_ = 0;
    for (&g, &p) in gold.iter().zip(pred) {
        match (g, p) {
            (true, true) => tp += 1,
            (false, true) => fp += 1,
            (true, false) => fn_ += 1,
            (false, false) => {}
        }
    }
    PrfScores::from_counts(tp, fp, fn_)
}

/// Macro-F1 over class-index slices.
pub fn macro_f1(classes: usize, gold: &[usize], pred: &[usize]) -> f64 {
    ConfusionMatrix::from_pairs(classes, gold, pred).macro_f1()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_binary_prediction() {
        let gold = [true, false, true, false];
        let s = binary_f1(&gold, &gold);
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 1.0);
        assert_eq!(s.f1, 1.0);
    }

    #[test]
    fn all_wrong_is_zero() {
        let gold = [true, false];
        let pred = [false, true];
        let s = binary_f1(&gold, &pred);
        assert_eq!(s.f1, 0.0);
    }

    #[test]
    fn known_binary_counts() {
        // tp=2, fp=1, fn=1 → P=2/3, R=2/3, F1=2/3.
        let gold = [true, true, true, false, false];
        let pred = [true, true, false, true, false];
        let s = binary_f1(&gold, &pred);
        assert!((s.precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.recall - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.f1 - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_predictions_zero_precision() {
        let s = PrfScores::from_counts(0, 0, 5);
        assert_eq!(s.precision, 0.0);
        assert_eq!(s.recall, 0.0);
        assert_eq!(s.f1, 0.0);
    }

    #[test]
    fn f1_is_harmonic_mean() {
        let s = PrfScores::from_counts(1, 0, 1); // P=1, R=0.5
        assert!((s.f1 - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn confusion_matrix_accuracy() {
        let gold = [0usize, 1, 2, 0, 1, 2];
        let pred = [0usize, 1, 2, 1, 1, 0];
        let cm = ConfusionMatrix::from_pairs(3, &gold, &pred);
        assert_eq!(cm.total(), 6);
        assert!((cm.accuracy() - 4.0 / 6.0).abs() < 1e-12);
        assert_eq!(cm.get(0, 1), 1);
        assert_eq!(cm.get(2, 0), 1);
    }

    #[test]
    fn per_class_scores_match_binary_reduction() {
        let gold = [0usize, 0, 1, 1, 1];
        let pred = [0usize, 1, 1, 1, 0];
        let cm = ConfusionMatrix::from_pairs(2, &gold, &pred);
        let s = cm.scores_for(1);
        let gold_b: Vec<bool> = gold.iter().map(|&g| g == 1).collect();
        let pred_b: Vec<bool> = pred.iter().map(|&p| p == 1).collect();
        let b = binary_f1(&gold_b, &pred_b);
        assert!((s.f1 - b.f1).abs() < 1e-12);
        assert!((s.precision - b.precision).abs() < 1e-12);
    }

    #[test]
    fn macro_f1_perfect_multi_class() {
        let gold = [0usize, 1, 2, 0, 1, 2];
        assert_eq!(macro_f1(3, &gold, &gold), 1.0);
    }

    #[test]
    fn macro_f1_penalizes_minority_errors() {
        // Majority class right, minority class always wrong: macro-F1 is
        // dragged down even though accuracy is high.
        let gold: Vec<usize> = (0..100).map(|i| usize::from(i >= 95)).collect();
        let pred = vec![0usize; 100];
        let cm = ConfusionMatrix::from_pairs(2, &gold, &pred);
        assert!(cm.accuracy() > 0.9);
        assert!(cm.macro_f1() < 0.55);
    }

    #[test]
    fn empty_matrix_behaves() {
        let cm = ConfusionMatrix::new(3);
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.macro_f1(), 0.0);
    }

    #[test]
    #[should_panic(expected = "class overflow")]
    fn record_out_of_range_panics() {
        let mut cm = ConfusionMatrix::new(2);
        cm.record(2, 0);
    }
}
