//! Workspace call graph over the [`crate::symbols`] table.
//!
//! Nodes are workspace fns plus explicit `Unknown` nodes for everything
//! resolution cannot pin down (external crates, receiver-blind method
//! calls, macro-generated names). Construction is bounded and
//! deterministic: files arrive sorted, symbol ids are assigned in file
//! order, unknown nodes are interned by label into a `BTreeMap`, and the
//! JSON dump sorts edges — the same workspace always produces the same
//! bytes regardless of thread count or environment.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::ast::{walk_block, ExprKind};
use crate::context::FileContext;
use crate::symbols::{Resolution, Symbols};

/// Hard cap on recorded call sites; beyond it the graph stops growing
/// (never approached by this workspace — a runaway-input backstop).
const MAX_SITES: usize = 262_144;

/// One node of the graph.
#[derive(Debug)]
pub struct Node {
    /// Display label: the fn's full path, or the unresolved callee
    /// (`std::fs::write`, `.push`) for `Unknown` nodes.
    pub label: String,
    /// Symbol index for fn nodes; `None` marks an `Unknown` node.
    pub sym: Option<usize>,
}

/// One call site: node `caller` invokes node `callee` at token `tok` of
/// file `file`.
#[derive(Debug, Clone, Copy)]
pub struct CallSite {
    pub caller: usize,
    pub callee: usize,
    pub file: usize,
    pub tok: usize,
}

#[derive(Debug, Default)]
pub struct CallGraph {
    pub nodes: Vec<Node>,
    /// Deduplicated edges, sorted (caller, callee).
    pub edges: Vec<(usize, usize)>,
    /// Every call site, in deterministic (file, fn, token) order.
    pub sites: Vec<CallSite>,
    /// Node id of symbol `i` — the identity map today (fn nodes are
    /// allocated first, in symbol order), kept explicit so unknown-node
    /// allocation can never silently break callers.
    pub node_of_sym: Vec<usize>,
    /// Adjacency list over `nodes`.
    pub adj: Vec<Vec<usize>>,
}

impl CallGraph {
    /// Build the graph for the files in `ctxs` (sorted order expected).
    pub fn build(ctxs: &[FileContext], sy: &Symbols) -> CallGraph {
        let mut g = CallGraph::default();
        for (i, s) in sy.fns.iter().enumerate() {
            g.node_of_sym.push(g.nodes.len());
            g.nodes.push(Node {
                label: s.path.clone(),
                sym: Some(i),
            });
        }
        let mut unknown = BTreeMap::<String, usize>::new();
        let mut edge_set = BTreeSet::new();
        for (si, s) in sy.fns.iter().enumerate() {
            let ctx = &ctxs[s.file];
            let module = sy.fn_module(s.file, ctx.ast, s.fn_idx);
            let caller_node = g.node_of_sym[si];
            let body = &ctx.ast.fns[s.fn_idx].body;
            walk_block(body, &mut |e| {
                let (res, tok) = match &e.kind {
                    ExprKind::Call { callee, .. } => match &callee.kind {
                        ExprKind::Path(segs) => {
                            (sy.resolve_path(s.file, &module, segs), callee.span.lo)
                        }
                        _ => return,
                    },
                    ExprKind::MethodCall {
                        recv,
                        method,
                        method_tok,
                        ..
                    } => {
                        let on_self = matches!(&recv.kind,
                            ExprKind::Path(p) if matches!(p.as_slice(), [s] if s == "self"));
                        let st = if on_self {
                            s.self_type.as_deref()
                        } else {
                            None
                        };
                        (sy.resolve_method(st, method), *method_tok)
                    }
                    _ => return,
                };
                if g.sites.len() >= MAX_SITES {
                    return;
                }
                let callees: Vec<usize> = match res {
                    Resolution::Fns(ids) => ids.iter().map(|&i| g.node_of_sym[i]).collect(),
                    Resolution::External(label) => {
                        vec![intern_unknown(&mut g.nodes, &mut unknown, &label)]
                    }
                };
                for c in callees {
                    edge_set.insert((caller_node, c));
                    g.sites.push(CallSite {
                        caller: caller_node,
                        callee: c,
                        file: s.file,
                        tok,
                    });
                }
            });
        }
        g.edges = edge_set.into_iter().collect();
        g.adj = vec![Vec::new(); g.nodes.len()];
        for &(a, b) in &g.edges {
            g.adj[a].push(b);
        }
        g
    }

    /// Node ids reachable from `starts` (inclusive), breadth-first.
    pub fn reachable(&self, starts: &[usize]) -> Vec<bool> {
        let mut seen = vec![false; self.nodes.len()];
        let mut queue: VecDeque<usize> = VecDeque::new();
        for &s in starts {
            if s < seen.len() && !seen[s] {
                seen[s] = true;
                queue.push_back(s);
            }
        }
        while let Some(n) = queue.pop_front() {
            for &m in &self.adj[n] {
                if !seen[m] {
                    seen[m] = true;
                    queue.push_back(m);
                }
            }
        }
        seen
    }

    /// Byte-stable JSON dump: node labels in id order, edges sorted.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(self.nodes.len() * 48);
        s.push_str("{\n  \"nodes\": [\n");
        for (i, n) in self.nodes.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"id\": {}, \"kind\": \"{}\", \"label\": {}}}{}\n",
                i,
                if n.sym.is_some() { "fn" } else { "unknown" },
                crate::report::json_str(&n.label),
                if i + 1 == self.nodes.len() { "" } else { "," }
            ));
        }
        s.push_str("  ],\n  \"edges\": [\n");
        for (i, (a, b)) in self.edges.iter().enumerate() {
            s.push_str(&format!(
                "    [{}, {}]{}\n",
                a,
                b,
                if i + 1 == self.edges.len() { "" } else { "," }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

fn intern_unknown(
    nodes: &mut Vec<Node>,
    interner: &mut BTreeMap<String, usize>,
    label: &str,
) -> usize {
    if let Some(&id) = interner.get(label) {
        return id;
    }
    let id = nodes.len();
    nodes.push(Node {
        label: label.to_string(),
        sym: None,
    });
    interner.insert(label.to_string(), id);
    id
}
