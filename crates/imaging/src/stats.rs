//! Pixel statistics, normalization, and float-comparison helpers.
//!
//! The comparison helpers ([`approx_eq`], [`is_effectively_zero`] and their
//! `f64` variants) are the workspace-sanctioned replacement for bare float
//! `==`/`!=`, which the `float-eq` lint rule bans in library crates: exact
//! equality guards rot silently once a value passes through arithmetic
//! (rounding noise) or a fault injector (NaN never equals anything).

use crate::GrayImage;

/// Absolute/relative tolerance used by the `f32` comparison helpers.
pub const DEFAULT_EPS: f32 = 1e-6;

/// Tolerance used by the `f64` comparison helpers.
pub const DEFAULT_EPS_F64: f64 = 1e-12;

/// True when `a` and `b` agree within `eps`, absolutely for small values
/// and relatively for large ones. NaN never compares equal; equal
/// infinities do.
pub fn approx_eq(a: f32, b: f32, eps: f32) -> bool {
    if a == b {
        return true;
    }
    // NaN is never equal; unequal infinities must not pass the relative
    // test below (inf <= eps * inf would hold).
    if !a.is_finite() || !b.is_finite() {
        return false;
    }
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= eps * scale
}

/// `f64` counterpart of [`approx_eq`].
pub fn approx_eq_f64(a: f64, b: f64, eps: f64) -> bool {
    if a == b {
        return true;
    }
    if !a.is_finite() || !b.is_finite() {
        return false;
    }
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= eps * scale
}

/// True when `x` is zero up to [`DEFAULT_EPS`]. The canonical guard for
/// "would dividing by this explode?" checks. NaN is not zero.
pub fn is_effectively_zero(x: f32) -> bool {
    x.abs() <= DEFAULT_EPS
}

/// `f64` counterpart of [`is_effectively_zero`].
pub fn is_effectively_zero_f64(x: f64) -> bool {
    x.abs() <= DEFAULT_EPS_F64
}

/// Summary statistics of an image's pixel distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImageStats {
    /// Arithmetic mean.
    pub mean: f32,
    /// Population variance.
    pub variance: f32,
    /// Minimum pixel value.
    pub min: f32,
    /// Maximum pixel value.
    pub max: f32,
}

impl ImageStats {
    /// Population standard deviation.
    pub fn std(&self) -> f32 {
        self.variance.max(0.0).sqrt()
    }
}

/// Compute [`ImageStats`] in a single pass. Empty images return zeros.
pub fn stats(img: &GrayImage) -> ImageStats {
    if img.is_empty() {
        return ImageStats {
            mean: 0.0,
            variance: 0.0,
            min: 0.0,
            max: 0.0,
        };
    }
    let mut sum = 0.0f64;
    let mut sum_sq = 0.0f64;
    let mut min = f32::INFINITY;
    let mut max = f32::NEG_INFINITY;
    for &p in img.pixels() {
        sum += p as f64;
        sum_sq += (p as f64) * (p as f64);
        min = min.min(p);
        max = max.max(p);
    }
    let n = img.len() as f64;
    let mean = sum / n;
    let variance = (sum_sq / n - mean * mean).max(0.0);
    ImageStats {
        mean: mean as f32,
        variance: variance as f32,
        min,
        max,
    }
}

/// Linearly rescale pixel values so min → 0 and max → 1. Constant images
/// map to all-zeros.
pub fn normalize_minmax(img: &GrayImage) -> GrayImage {
    let s = stats(img);
    let range = s.max - s.min;
    if range <= f32::EPSILON {
        return GrayImage::new(img.width(), img.height());
    }
    img.map(|p| (p - s.min) / range)
}

/// Standardize to zero mean, unit variance. Constant images map to zeros.
pub fn standardize(img: &GrayImage) -> GrayImage {
    let s = stats(img);
    let std = s.std();
    if std <= f32::EPSILON {
        return GrayImage::new(img.width(), img.height());
    }
    img.map(|p| (p - s.mean) / std)
}

/// A fixed-bin histogram of pixel values over `[lo, hi]`; out-of-range
/// pixels clamp into the end bins.
pub fn histogram(img: &GrayImage, bins: usize, lo: f32, hi: f32) -> Vec<usize> {
    let bins = bins.max(1);
    let mut counts = vec![0usize; bins];
    let range = (hi - lo).max(f32::EPSILON);
    for &p in img.pixels() {
        let t = ((p - lo) / range * bins as f32) as isize;
        let idx = t.clamp(0, bins as isize - 1) as usize;
        counts[idx] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_constant() {
        let img = GrayImage::filled(4, 4, 0.5);
        let s = stats(&img);
        assert_eq!(s.mean, 0.5);
        assert_eq!(s.variance, 0.0);
        assert_eq!((s.min, s.max), (0.5, 0.5));
    }

    #[test]
    fn stats_of_known_values() {
        let img = GrayImage::from_vec(4, 1, vec![0.0, 1.0, 2.0, 3.0]).unwrap();
        let s = stats(&img);
        assert!((s.mean - 1.5).abs() < 1e-6);
        assert!((s.variance - 1.25).abs() < 1e-6);
        assert_eq!((s.min, s.max), (0.0, 3.0));
    }

    #[test]
    fn stats_of_empty_image() {
        let img = GrayImage::new(0, 0);
        let s = stats(&img);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn normalize_minmax_hits_bounds() {
        let img = GrayImage::from_vec(3, 1, vec![2.0, 4.0, 6.0]).unwrap();
        let n = normalize_minmax(&img);
        assert_eq!(n.pixels(), &[0.0, 0.5, 1.0]);
    }

    #[test]
    fn normalize_constant_is_zero() {
        let img = GrayImage::filled(3, 3, 9.0);
        let n = normalize_minmax(&img);
        assert!(n.pixels().iter().all(|&p| p == 0.0));
    }

    #[test]
    fn standardize_produces_zero_mean_unit_std() {
        let img = GrayImage::from_fn(8, 8, |x, y| ((x * 31 + y * 17) % 13) as f32);
        let z = standardize(&img);
        let s = stats(&z);
        assert!(s.mean.abs() < 1e-5);
        assert!((s.std() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn histogram_counts_sum_to_pixels() {
        let img = GrayImage::from_fn(10, 10, |x, _| x as f32 / 10.0);
        let h = histogram(&img, 5, 0.0, 1.0);
        assert_eq!(h.iter().sum::<usize>(), 100);
        // Uniform across bins: each of the 5 bins gets 2 columns x 10 rows.
        assert!(h.iter().all(|&c| c == 20));
    }

    #[test]
    fn histogram_clamps_out_of_range() {
        let img = GrayImage::from_vec(3, 1, vec![-5.0, 0.5, 99.0]).unwrap();
        let h = histogram(&img, 2, 0.0, 1.0);
        // -5 clamps into bin 0; 0.5 lands exactly on the bin-1 boundary; 99
        // clamps into the last bin.
        assert_eq!(h, vec![1, 2]);
    }

    #[test]
    fn approx_eq_tolerates_rounding_noise() {
        assert!(approx_eq(0.1 + 0.2, 0.3, DEFAULT_EPS));
        assert!(approx_eq_f64(0.1 + 0.2, 0.3, DEFAULT_EPS_F64));
        assert!(!approx_eq(0.1, 0.2, DEFAULT_EPS));
    }

    #[test]
    fn approx_eq_scales_relatively_for_large_magnitudes() {
        let big = 1.0e12f32;
        assert!(approx_eq(big, big * (1.0 + 1e-7), DEFAULT_EPS));
        assert!(!approx_eq(big, big * 1.01, DEFAULT_EPS));
    }

    #[test]
    fn approx_eq_rejects_nan_accepts_inf() {
        assert!(!approx_eq(f32::NAN, f32::NAN, DEFAULT_EPS));
        assert!(!approx_eq_f64(f64::NAN, 0.0, DEFAULT_EPS_F64));
        assert!(approx_eq(f32::INFINITY, f32::INFINITY, DEFAULT_EPS));
        assert!(!approx_eq(f32::INFINITY, f32::NEG_INFINITY, DEFAULT_EPS));
    }

    #[test]
    fn effectively_zero_guards() {
        assert!(is_effectively_zero(0.0));
        assert!(is_effectively_zero(-1e-9));
        assert!(!is_effectively_zero(1e-3));
        assert!(!is_effectively_zero(f32::NAN));
        assert!(is_effectively_zero_f64(0.0));
        assert!(!is_effectively_zero_f64(1e-6));
    }
}
