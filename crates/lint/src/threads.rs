//! Thread-topology analysis: every thread-creation site in the
//! workspace, with the closure-capture escape set of each.
//!
//! The stage runtime's reproducibility contract ("same seed, same
//! bytes") survives concurrency only where the shared state crossing a
//! spawn boundary is disciplined — scoped workers with order-independent
//! reductions, atomics whose orderings match their use. The first step
//! of checking any of that statically is knowing *where* threads are
//! born and *what* each worker closure can reach. This pass finds:
//!
//! - `std::thread::spawn(..)` — a detachable thread (the handle can be
//!   dropped, leaving the thread running past every join point);
//! - `thread::scope(..)` / `crossbeam::thread::scope(..)` — a scope
//!   whose children are implicitly joined at scope exit;
//! - `<scope>.spawn(..)` — a scoped worker (receiver-blind, like the
//!   call graph's method resolution).
//!
//! For each site the **escape set** is the closure's free identifiers:
//! every name the worker body reads that is not bound inside the closure
//! (params, `let` patterns, `for` patterns, nested-closure params). The
//! set is a deliberate lexical over-approximation — method names, path
//! qualifiers, macros, and type/const names are excluded; anything left
//! is assumed captured. Rules built on it must treat membership as
//! suspicion, never proof (same philosophy as the dataflow pass:
//! over-approximate the reads, under-approximate the claims).
//!
//! Like the call graph, the topology is deterministic and total: files
//! arrive sorted, sites are emitted in (file path, token) order, malformed
//! input degrades to whatever the recovered AST holds, and the JSON dump
//! (`ig-lint threads`, committed at `results/threads.json`) is
//! byte-stable — CI regenerates it and fails on drift.

use std::collections::BTreeSet;

use crate::ast::{walk_block, walk_expr, Expr, ExprKind};
use crate::context::FileContext;
use crate::lexer::TokenKind;
use crate::symbols::Symbols;

/// What kind of thread-creation construct a site is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpawnKind {
    /// `std::thread::spawn(..)` — detachable; dropping the handle leaks
    /// a running thread past the function's lifetime.
    Thread,
    /// `thread::scope(..)` / `crossbeam::thread::scope(..)` — children
    /// are joined when the scope closure returns.
    Scope,
    /// `<scope>.spawn(..)` — a worker inside a scope (receiver-blind).
    ScopedSpawn,
}

impl SpawnKind {
    /// Stable dump label.
    pub fn label(self) -> &'static str {
        match self {
            SpawnKind::Thread => "thread-spawn",
            SpawnKind::Scope => "scope",
            SpawnKind::ScopedSpawn => "scoped-spawn",
        }
    }
}

/// One thread-creation site.
#[derive(Debug)]
pub struct SpawnSite {
    /// Index into the workspace's `FileContext` slice.
    pub file: usize,
    /// Token index of the `spawn`/`scope` identifier (for line lookup).
    pub tok: usize,
    pub kind: SpawnKind,
    /// Symbol index of the enclosing fn.
    pub enclosing: usize,
    /// True when the site sits in `#[cfg(test)]` code.
    pub in_test: bool,
    /// Free identifiers of the worker closure — the escape set.
    pub captures: BTreeSet<String>,
}

/// The workspace thread topology: every spawn site, in deterministic
/// (file path, token) order.
#[derive(Debug, Default)]
pub struct ThreadTopology {
    pub sites: Vec<SpawnSite>,
}

/// Does a call path name a thread-creation entry point? Returns the
/// kind, or `None` for unrelated calls.
fn path_spawn_kind(segs: &[String]) -> Option<SpawnKind> {
    let last = segs.last()?;
    // `thread::spawn`, `std::thread::spawn`.
    if last == "spawn" && segs.len() >= 2 && segs[segs.len() - 2] == "thread" {
        return Some(SpawnKind::Thread);
    }
    // `thread::scope`, `std::thread::scope`, `crossbeam::thread::scope`.
    if last == "scope" && segs.len() >= 2 && segs[segs.len() - 2] == "thread" {
        return Some(SpawnKind::Scope);
    }
    None
}

impl ThreadTopology {
    /// Scan every fn body in symbol order (files are sorted, so this is
    /// deterministic) and collect the spawn sites.
    pub fn build(ctxs: &[FileContext], sy: &Symbols) -> ThreadTopology {
        let mut topo = ThreadTopology::default();
        for (si, s) in sy.fns.iter().enumerate() {
            let ctx = &ctxs[s.file];
            let body = &ctx.ast.fns[s.fn_idx].body;
            walk_block(body, &mut |e: &Expr| {
                let (kind, tok, closure) = match &e.kind {
                    ExprKind::Call { callee, args } => {
                        let ExprKind::Path(segs) = &callee.kind else {
                            return;
                        };
                        let Some(kind) = path_spawn_kind(segs) else {
                            return;
                        };
                        (kind, callee.span.hi.saturating_sub(1), first_closure(args))
                    }
                    ExprKind::MethodCall {
                        method,
                        method_tok,
                        args,
                        ..
                    } if method == "spawn" => {
                        (SpawnKind::ScopedSpawn, *method_tok, first_closure(args))
                    }
                    _ => return,
                };
                let captures = closure.map_or_else(BTreeSet::new, |c| free_idents(ctx, c));
                topo.sites.push(SpawnSite {
                    file: s.file,
                    tok,
                    kind,
                    enclosing: si,
                    in_test: !ctx.governed(tok),
                    captures,
                });
            });
        }
        // Canonical order is by file *path*, not context index, so the
        // dump is identical no matter how the units were fed in.
        topo.sites
            .sort_by(|a, b| (ctxs[a.file].path, a.tok).cmp(&(ctxs[b.file].path, b.tok)));
        topo
    }

    /// Byte-stable JSON dump mirroring [`crate::callgraph::CallGraph::to_json`]:
    /// sites in (file path, line, col) order with sorted capture lists.
    pub fn to_json(&self, ctxs: &[FileContext], sy: &Symbols) -> String {
        let mut rows: Vec<String> = Vec::with_capacity(self.sites.len());
        for s in &self.sites {
            let ctx = &ctxs[s.file];
            let (line, col) = ctx.tokens.get(s.tok).map_or((0, 1), |t| (t.line, t.col));
            let caps = s
                .captures
                .iter()
                .map(|c| crate::report::json_str(c))
                .collect::<Vec<_>>()
                .join(", ");
            rows.push(format!(
                "    {{\"file\": {}, \"line\": {line}, \"col\": {col}, \"kind\": \"{}\", \
                 \"enclosing\": {}, \"in_test\": {}, \"captures\": [{caps}]}}",
                crate::report::json_str(ctx.path),
                s.kind.label(),
                crate::report::json_str(&sy.fns[s.enclosing].path),
                s.in_test,
            ));
        }
        let mut out = String::from("{\n  \"version\": 1,\n  \"sites\": [\n");
        out.push_str(&rows.join(",\n"));
        if !rows.is_empty() {
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// First closure among a call's arguments — the worker body.
fn first_closure(args: &[Expr]) -> Option<&Expr> {
    args.iter()
        .find(|a| matches!(a.kind, ExprKind::Closure { .. }))
}

/// Identifiers that read as syntax, not as captured values.
const NON_CAPTURE_KEYWORDS: &[&str] = &[
    "as", "async", "await", "break", "continue", "dyn", "else", "false", "fn", "for", "if", "impl",
    "in", "let", "loop", "match", "move", "mut", "pub", "ref", "return", "static", "struct",
    "true", "unsafe", "use", "where", "while",
];

/// The free identifiers of a closure: every ident its span mentions,
/// minus names the closure binds and lexical noise (method names, path
/// segments, macro names, type/const-cased idents, keywords).
fn free_idents(ctx: &FileContext, closure: &Expr) -> BTreeSet<String> {
    let ExprKind::Closure { body } = &closure.kind else {
        return BTreeSet::new();
    };
    let mut bound = BTreeSet::new();
    // Params of this closure: the tokens between the closure's start and
    // its body (`move |a, (b, c)| ...` — every ident in that stretch).
    bind_span_idents(ctx, closure.span.lo, body.span.lo, &mut bound);
    collect_bound(ctx, body, &mut bound);

    let mut free = BTreeSet::new();
    let toks = ctx.tokens;
    let lo = body.span.lo;
    let hi = body.span.hi.min(toks.len());
    for i in lo..hi {
        let t = &toks[i];
        if t.kind != TokenKind::Ident || t.text == "_" {
            continue;
        }
        // Method names and path tails (`x.load`, `Ordering::Relaxed`).
        if i > 0 && (toks[i - 1].is_punct(".") || toks[i - 1].is_punct("::")) {
            continue;
        }
        // Path heads and macro names (`std::`, `panic!`).
        if toks
            .get(i + 1)
            .is_some_and(|n| n.is_punct("::") || n.is_punct("!"))
        {
            continue;
        }
        // Types, enum variants, and consts are not captures-by-value of
        // interest; the convention makes them cheap to exclude.
        if t.text.starts_with(|c: char| c.is_ascii_uppercase()) {
            continue;
        }
        if NON_CAPTURE_KEYWORDS.contains(&t.text.as_str()) || bound.contains(&t.text) {
            continue;
        }
        free.insert(t.text.clone());
    }
    free
}

/// Record every ident in the half-open token range as a bound name.
fn bind_span_idents(ctx: &FileContext, lo: usize, hi: usize, out: &mut BTreeSet<String>) {
    for i in lo..hi.min(ctx.tokens.len()) {
        let t = &ctx.tokens[i];
        if t.kind == TokenKind::Ident && !NON_CAPTURE_KEYWORDS.contains(&t.text.as_str()) {
            out.insert(t.text.clone());
        }
    }
}

/// Names bound inside the closure body: `let` patterns, `for` patterns,
/// and nested-closure params. `let` and `for` patterns are read off the
/// token stream (the AST keeps only named/wild `let` patterns, and drops
/// `for` patterns entirely); nested closures come from the AST.
fn collect_bound(ctx: &FileContext, body: &Expr, out: &mut BTreeSet<String>) {
    let toks = ctx.tokens;
    let lo = body.span.lo;
    let hi = body.span.hi.min(toks.len());
    let mut i = lo;
    while i < hi {
        let t = &toks[i];
        if t.is_ident("let") {
            // Every ident up to `=`, `;`, or a type annotation's end —
            // covers tuple and struct patterns.
            let mut j = i + 1;
            while j < hi && !toks[j].is_punct("=") && !toks[j].is_punct(";") {
                if toks[j].kind == TokenKind::Ident {
                    out.insert(toks[j].text.clone());
                }
                j += 1;
            }
            i = j;
            continue;
        }
        if t.is_ident("for") {
            let mut j = i + 1;
            while j < hi && !toks[j].is_ident("in") && !toks[j].is_punct("{") {
                if toks[j].kind == TokenKind::Ident {
                    out.insert(toks[j].text.clone());
                }
                j += 1;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    // Nested closure params bind too.
    walk_nested_closures(body, &mut |c: &Expr| {
        if let ExprKind::Closure { body: inner } = &c.kind {
            bind_span_idents(ctx, c.span.lo, inner.span.lo, out);
        }
    });
}

/// Visit every closure expression strictly inside `e`.
fn walk_nested_closures(e: &Expr, f: &mut impl FnMut(&Expr)) {
    walk_expr(e, &mut |inner| {
        if !std::ptr::eq(inner, e) && matches!(inner.kind, ExprKind::Closure { .. }) {
            f(inner);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileClass;
    use crate::symbols::Symbols;
    use crate::SourceUnit;

    fn topo_for(src: &str) -> (Vec<String>, Vec<(String, Vec<String>)>) {
        let units = vec![SourceUnit {
            rel_path: "crates/core/src/worker.rs".to_string(),
            src: src.to_string(),
            class: FileClass::Library,
            hot_path: false,
        }];
        let parsed: Vec<_> = units.iter().map(crate::parse_unit).collect();
        let ctxs = crate::contexts(&units, &parsed);
        let sy = Symbols::build(&ctxs);
        let topo = ThreadTopology::build(&ctxs, &sy);
        let kinds = topo
            .sites
            .iter()
            .map(|s| s.kind.label().to_string())
            .collect();
        let caps = topo
            .sites
            .iter()
            .map(|s| {
                (
                    s.kind.label().to_string(),
                    s.captures.iter().cloned().collect::<Vec<_>>(),
                )
            })
            .collect();
        (kinds, caps)
    }

    #[test]
    fn detects_all_three_spawn_kinds() {
        let (kinds, _) = topo_for(
            "fn run() {\n\
               let h = std::thread::spawn(|| work());\n\
               std::thread::scope(|s| {\n\
                 s.spawn(|| work());\n\
               });\n\
               let _ = h.join();\n\
             }\nfn work() {}\n",
        );
        assert_eq!(kinds, vec!["thread-spawn", "scope", "scoped-spawn"]);
    }

    #[test]
    fn escape_set_is_free_idents_only() {
        let (_, caps) = topo_for(
            "fn run(total: usize, shared: &Data) {\n\
               let local_outside = 1;\n\
               std::thread::spawn(move || {\n\
                 let inside = 0;\n\
                 for item in shared.iter() {\n\
                   consume(item, inside, total, local_outside);\n\
                 }\n\
               });\n\
             }\nfn consume() {}\n",
        );
        let (_, captures) = &caps[0];
        assert!(captures.contains(&"shared".to_string()), "caps: {caps:?}");
        assert!(captures.contains(&"total".to_string()));
        assert!(captures.contains(&"local_outside".to_string()));
        // Bound inside the closure, a method name, or a fn call.
        assert!(!captures.contains(&"inside".to_string()));
        assert!(!captures.contains(&"item".to_string()));
        assert!(!captures.contains(&"iter".to_string()));
    }

    #[test]
    fn nested_closure_params_are_not_captures() {
        let (_, caps) = topo_for(
            "fn run(xs: Vec<u32>) {\n\
               std::thread::spawn(move || {\n\
                 xs.iter().map(|x| x + 1).sum::<u32>()\n\
               });\n\
             }\n",
        );
        let (_, captures) = &caps[0];
        assert!(captures.contains(&"xs".to_string()));
        assert!(!captures.contains(&"x".to_string()), "caps: {caps:?}");
    }
}
