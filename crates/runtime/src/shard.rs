//! Deterministic sharding: stream a dataset through the stage graph in
//! budget-sized slices instead of materializing it whole.
//!
//! The paper's datasets fit in memory at reproduction scale, but the
//! system they describe is an industrial labeling pipeline — the
//! interesting regime is when the image corpus does *not* fit. The `ooc`
//! scale tier ([`crate::ScalePlan::ooc`]) models that regime honestly:
//! a [`ShardPlan`] divides a dataset's estimated resident bytes by the
//! plan's `memory_budget_bytes` to pick a shard count, and each stage
//! that opts in ([`ShardableStage`]) runs once per [`ShardSpec`] through
//! the ordinary [`Stage`] machinery via the [`Sharded`] wrapper.
//!
//! Because a sharded run is just `count` small stage executions, every
//! existing runtime guarantee applies *per shard* with no new code:
//!
//! * memoization — each shard's cache key is the inner stage fingerprint
//!   mixed with the shard coordinates, so shard `3/8` of a dataset is a
//!   distinct artifact from shard `3/4` of the same dataset;
//! * crash resume — a killed sweep that completed shards `0..k` reloads
//!   them from the durable tier and recomputes only `k..count`;
//! * cross-process warm starts — two sweeps over one store root share
//!   shard artifacts through the disk tier's single-flight protocol.
//!
//! Shard boundaries are pure functions of `(total, count)` — balanced to
//! within one item, never dependent on wall clock, thread count, or
//! arrival order — so the same plan always produces the same shards and
//! the same fingerprints.

use crate::context::RunContext;
use crate::fingerprint::{Fingerprint, FingerprintHasher, Fingerprintable};
use crate::stage::{Stage, Supervision};

/// How many shards a dataset streams through, and where each one starts.
///
/// Construction is deliberately simple: `ceil(total_bytes / budget)`,
/// clamped to `[1, total_items]`. A budget of zero (the monolithic
/// tiers) always yields one shard covering everything, so callers can
/// route both modes through the same loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    /// Number of items being sharded.
    pub total: usize,
    /// Number of shards (≥ 1; ≤ `total` unless `total` is 0).
    pub count: usize,
}

impl ShardPlan {
    /// One shard over everything — the monolithic degenerate case.
    pub fn single(total: usize) -> ShardPlan {
        ShardPlan { total, count: 1 }
    }

    /// Exactly `count` shards (clamped to `[1, max(total, 1)]`).
    pub fn with_count(total: usize, count: usize) -> ShardPlan {
        ShardPlan {
            total,
            count: count.clamp(1, total.max(1)),
        }
    }

    /// Shard count from a byte budget: the smallest count whose slices
    /// fit in `budget_bytes`, assuming items contribute uniformly to
    /// `total_bytes`. `budget_bytes == 0` means unbounded (one shard).
    pub fn for_budget(total_items: usize, total_bytes: u64, budget_bytes: u64) -> ShardPlan {
        if budget_bytes == 0 || total_bytes <= budget_bytes {
            return ShardPlan::single(total_items);
        }
        let count = total_bytes.div_ceil(budget_bytes);
        let count = usize::try_from(count).unwrap_or(usize::MAX);
        ShardPlan::with_count(total_items, count)
    }

    /// The `index`-th shard's range. Shards are balanced to within one
    /// item: the first `total % count` shards carry one extra.
    pub fn shard(&self, index: usize) -> ShardSpec {
        debug_assert!(index < self.count, "shard {index} of {}", self.count);
        let base = self.total / self.count;
        let rem = self.total % self.count;
        let start = index * base + index.min(rem);
        let len = base + usize::from(index < rem);
        ShardSpec {
            index,
            count: self.count,
            start,
            end: start + len,
        }
    }

    /// All shards, in order. Concatenating their ranges reproduces
    /// `0..total` exactly.
    pub fn shards(&self) -> Vec<ShardSpec> {
        (0..self.count).map(|i| self.shard(i)).collect()
    }
}

/// One shard's coordinates: which slice of the item space it covers and
/// where it sits in the plan.
///
/// All four fields reach the fingerprint — `start..end` alone is not
/// enough, because invalidation must also track *how* the dataset was
/// divided (shard `0` of 2 and shard `0` of 4 may share a prefix of the
/// range space yet belong to incompatible streaming runs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// Position in the plan (`0..count`).
    pub index: usize,
    /// Total shards in the plan.
    pub count: usize,
    /// First item covered (inclusive).
    pub start: usize,
    /// One past the last item covered.
    pub end: usize,
}

impl ShardSpec {
    /// Number of items this shard covers.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the shard covers nothing.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

impl Fingerprintable for ShardSpec {
    fn fingerprint_into(&self, h: &mut FingerprintHasher) {
        h.write_usize(self.index);
        h.write_usize(self.count);
        h.write_usize(self.start);
        h.write_usize(self.end);
    }
}

/// A stage that can execute over one [`ShardSpec`] at a time.
///
/// The contract mirrors [`Stage`] exactly, minus the cache-key logic the
/// [`Sharded`] wrapper supplies: `fingerprint` covers the *whole-input*
/// identity (the wrapper mixes in the shard), and `run_shard` must be a
/// pure function of `(inputs, shard)` — concatenating every shard's
/// output in index order must reproduce the monolithic output
/// bit-identically. That invariant is what lets the `ooc` tier claim
/// byte-equal results at a fraction of the resident set, and it is
/// pinned by proptests wherever the workspace implements this trait.
pub trait ShardableStage {
    /// Per-shard artifact type.
    type Output: Send + Sync + 'static;
    /// Error produced on failure.
    type Error;

    /// Stable identifier (shared with the monolithic stage when one
    /// exists — the shard-mixed fingerprint keeps the artifacts apart).
    fn id(&self) -> &'static str;

    /// Fingerprint of the whole-input identity, *excluding* the shard.
    fn fingerprint(&self) -> Fingerprint;

    /// Produce this shard's slice of the output.
    fn run_shard(
        &mut self,
        ctx: &RunContext,
        shard: &ShardSpec,
    ) -> Result<Self::Output, Self::Error>;

    /// See [`Stage::plan_sensitive`].
    fn plan_sensitive(&self) -> bool {
        true
    }

    /// See [`Stage::durable`].
    fn durable(&self) -> bool {
        false
    }

    /// See [`Stage::encode`]; applied to one shard's output.
    fn encode_shard(&self, _output: &Self::Output) -> Option<Vec<u8>> {
        None
    }

    /// See [`Stage::decode`]; applied to one shard's payload.
    fn decode_shard(&self, _bytes: &[u8]) -> Option<Self::Output> {
        None
    }
}

/// Adapter running a [`ShardableStage`] over one fixed shard, as an
/// ordinary [`Stage`].
///
/// The cache key is `inner.fingerprint() ⊕ shard`, so per-shard
/// artifacts memoize, persist, and crash-resume independently through
/// the unmodified store machinery.
#[derive(Debug, Clone)]
pub struct Sharded<S> {
    inner: S,
    shard: ShardSpec,
}

impl<S> Sharded<S> {
    /// Wrap `inner` to execute over `shard`.
    pub fn new(inner: S, shard: ShardSpec) -> Sharded<S> {
        Sharded { inner, shard }
    }

    /// The shard this wrapper executes.
    pub fn shard(&self) -> &ShardSpec {
        &self.shard
    }
}

impl<S: ShardableStage> Stage for Sharded<S> {
    type Output = S::Output;
    type Error = S::Error;

    fn id(&self) -> &'static str {
        self.inner.id()
    }

    fn fingerprint(&self) -> Fingerprint {
        self.inner.fingerprint().mix(self.shard.fingerprint())
    }

    fn plan_sensitive(&self) -> bool {
        self.inner.plan_sensitive()
    }

    fn durable(&self) -> bool {
        self.inner.durable()
    }

    fn supervision(&self) -> Supervision {
        Supervision::fail_fast()
    }

    fn run(&mut self, ctx: &RunContext) -> Result<Self::Output, Self::Error> {
        self.inner.run_shard(ctx, &self.shard)
    }

    fn encode(&self, output: &Self::Output) -> Option<Vec<u8>> {
        self.inner.encode_shard(output)
    }

    fn decode(&self, bytes: &[u8]) -> Option<Self::Output> {
        self.inner.decode_shard(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::convert::Infallible;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn budget_zero_means_one_shard() {
        assert_eq!(
            ShardPlan::for_budget(100, 1 << 30, 0),
            ShardPlan::single(100)
        );
    }

    #[test]
    fn budget_covering_everything_means_one_shard() {
        assert_eq!(ShardPlan::for_budget(100, 500, 500).count, 1);
        assert_eq!(ShardPlan::for_budget(100, 499, 500).count, 1);
    }

    #[test]
    fn count_is_ceil_of_bytes_over_budget() {
        assert_eq!(ShardPlan::for_budget(100, 1000, 250).count, 4);
        assert_eq!(ShardPlan::for_budget(100, 1001, 250).count, 5);
    }

    #[test]
    fn count_never_exceeds_items() {
        let plan = ShardPlan::for_budget(3, 1 << 40, 1);
        assert_eq!(plan.count, 3, "at most one item per shard");
        let empty = ShardPlan::for_budget(0, 10, 1);
        assert_eq!(empty.count, 1, "zero items still form one empty shard");
        assert!(empty.shard(0).is_empty());
    }

    #[test]
    fn shards_partition_the_range_in_order() {
        for (total, count) in [(10, 3), (7, 7), (9, 1), (100, 8), (5, 4)] {
            let plan = ShardPlan::with_count(total, count);
            let shards = plan.shards();
            assert_eq!(shards.len(), plan.count);
            let mut cursor = 0usize;
            for (i, s) in shards.iter().enumerate() {
                assert_eq!(s.index, i);
                assert_eq!(s.count, plan.count);
                assert_eq!(s.start, cursor, "contiguous at shard {i}");
                assert!(s.end >= s.start);
                cursor = s.end;
            }
            assert_eq!(cursor, total, "covers everything");
            // Balanced to within one item.
            let lens: Vec<usize> = shards.iter().map(ShardSpec::len).collect();
            let (min, max) = (lens.iter().min(), lens.iter().max());
            if let (Some(&min), Some(&max)) = (min, max) {
                assert!(max - min <= 1, "{total}/{count}: {lens:?}");
            }
        }
    }

    #[test]
    fn shard_fingerprints_cover_all_coordinates() {
        let base = ShardSpec {
            index: 0,
            count: 2,
            start: 0,
            end: 5,
        };
        let variants = [
            ShardSpec { index: 1, ..base },
            ShardSpec { count: 4, ..base },
            ShardSpec { start: 1, ..base },
            ShardSpec { end: 6, ..base },
        ];
        for v in &variants {
            assert_ne!(base.fingerprint(), v.fingerprint(), "{v:?}");
        }
    }

    /// Shardable test stage: squares the items in its shard's range.
    struct Squares<'a> {
        salt: u64,
        calls: &'a AtomicUsize,
    }

    impl ShardableStage for Squares<'_> {
        type Output = Vec<u64>;
        type Error = Infallible;

        fn id(&self) -> &'static str {
            "test.squares"
        }

        fn fingerprint(&self) -> Fingerprint {
            self.salt.fingerprint()
        }

        fn plan_sensitive(&self) -> bool {
            false
        }

        fn run_shard(
            &mut self,
            _ctx: &RunContext,
            shard: &ShardSpec,
        ) -> Result<Vec<u64>, Infallible> {
            self.calls.fetch_add(1, Ordering::Relaxed);
            Ok((shard.start..shard.end)
                .map(|i| (i as u64 + self.salt) * (i as u64 + self.salt))
                .collect())
        }
    }

    #[test]
    fn sharded_outputs_concatenate_to_the_monolithic_output() {
        let ctx = RunContext::new(1);
        let calls = AtomicUsize::new(0);
        let whole: Vec<u64> = {
            let mut stage = Sharded::new(
                Squares {
                    salt: 3,
                    calls: &calls,
                },
                ShardPlan::single(11).shard(0),
            );
            crate::infallible(ctx.run(&mut stage)).as_ref().clone()
        };
        for count in [1usize, 2, 3, 11] {
            let plan = ShardPlan::with_count(11, count);
            let mut streamed = Vec::new();
            for shard in plan.shards() {
                let mut stage = Sharded::new(
                    Squares {
                        salt: 3,
                        calls: &calls,
                    },
                    shard,
                );
                streamed.extend(crate::infallible(ctx.run(&mut stage)).iter().copied());
            }
            assert_eq!(streamed, whole, "count={count}");
        }
    }

    #[test]
    fn each_shard_memoizes_independently() {
        let ctx = RunContext::new(1);
        let calls = AtomicUsize::new(0);
        let plan = ShardPlan::with_count(8, 4);
        for _ in 0..3 {
            for shard in plan.shards() {
                let mut stage = Sharded::new(
                    Squares {
                        salt: 0,
                        calls: &calls,
                    },
                    shard,
                );
                crate::infallible(ctx.run(&mut stage));
            }
        }
        assert_eq!(calls.load(Ordering::Relaxed), 4, "one run per shard, ever");
    }

    #[test]
    fn same_range_different_plan_is_a_different_artifact() {
        // Shard 0 of 1 and shard 0 of 2 can cover overlapping ranges; the
        // plan coordinates must keep their artifacts apart.
        let calls = AtomicUsize::new(0);
        let a = Sharded::new(
            Squares {
                salt: 1,
                calls: &calls,
            },
            ShardSpec {
                index: 0,
                count: 1,
                start: 0,
                end: 4,
            },
        );
        let b = Sharded::new(
            Squares {
                salt: 1,
                calls: &calls,
            },
            ShardSpec {
                index: 0,
                count: 2,
                start: 0,
                end: 4,
            },
        );
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
