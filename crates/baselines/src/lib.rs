//! # ig-baselines
//!
//! Every system Inspector Gadget is compared against in Section 6, plus
//! the end-model machinery of Section 6.6:
//!
//! * [`snuba`] — Snuba (Varma & Ré, PVLDB 2018): automatic labeling-
//!   function synthesis over primitives (here: the same FGF similarity
//!   features IG uses, "in order to be favorable to Snuba"), combined by a
//!   generative [`label_model`];
//! * [`goggles`] — GOGGLES (Das et al., SIGMOD 2020): affinity coding over
//!   max-activation prototypes from a frozen feature extractor. The
//!   pre-trained VGG-16 is substituted with a fixed multi-scale filter
//!   bank (see DESIGN.md);
//! * [`cnn_models`] + [`selflearn`] — self-learning CNN baselines: MiniVGG
//!   (for VGG-19), MiniMobileNet (for MobileNetV2) and MiniResNet (for
//!   ResNet50) trained on the development set only;
//! * [`transfer`] — the transfer-learning baseline: pre-train on a source
//!   corpus (SynthNet playing ImageNet, or another defect dataset for
//!   Table 2), fine-tune on the target dev set;
//! * [`endmodel`] — train an end model on dev ∪ weak labels (Table 5).

#![warn(missing_docs)]

pub mod cnn_models;
pub mod endmodel;
pub mod goggles;
pub mod label_model;
pub mod selflearn;
pub mod snuba;
pub mod transfer;

pub use cnn_models::{images_to_tensor, CnnArch};
pub use goggles::Goggles;
pub use label_model::LabelModel;
pub use selflearn::SelfLearner;
pub use snuba::{Snuba, SnubaConfig};
