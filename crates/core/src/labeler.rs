//! The weak-label MLP (Section 5.2) trained with L-BFGS (Section 6.1).
//!
//! "The model can have any architecture and be small because there are not
//! as many features as say the number of pixels in an image. We use a
//! multilayer perceptron (MLP) because it is simple, but also has good
//! performance."
//!
//! Features are standardized with statistics from the training set before
//! entering the network — NCC scores on textured industrial images
//! cluster in a narrow high band, and centering them makes L-BFGS
//! converge far more reliably.

use crate::{CoreError, Result};
use ig_nn::lbfgs::LbfgsConfig;
use ig_nn::mlp::{Loss, Mlp, MlpConfig, Targets};
use ig_nn::{Activation, Matrix};
use rand::Rng;

/// Labeler hyper-parameters.
#[derive(Debug, Clone)]
pub struct LabelerConfig {
    /// Hidden layer widths (1–3 layers after tuning).
    pub hidden: Vec<usize>,
    /// Number of classes (2 = binary task with a 1-unit sigmoid head).
    pub num_classes: usize,
    /// L2 weight decay.
    pub l2: f32,
    /// L-BFGS settings (paper: lr 1e-5-style conservative steps, early
    /// stopping — here the iteration cap plays that role).
    pub lbfgs: LbfgsConfig,
}

impl LabelerConfig {
    /// Default: one hidden layer of 8, mild decay.
    pub fn new(num_classes: usize) -> Self {
        Self {
            hidden: vec![8],
            num_classes,
            l2: 1e-3,
            lbfgs: LbfgsConfig {
                max_iters: 150,
                ..Default::default()
            },
        }
    }
}

/// A trained (or trainable) labeler: standardization + MLP.
#[derive(Debug, Clone)]
pub struct Labeler {
    mlp: Mlp,
    config: LabelerConfig,
    feat_mean: Vec<f32>,
    feat_std: Vec<f32>,
}

impl Labeler {
    /// Initialize an untrained labeler for `input_dim` features.
    pub fn new(input_dim: usize, config: LabelerConfig, rng: &mut impl Rng) -> Result<Self> {
        if config.num_classes < 2 {
            return Err(CoreError::BadDevSet(
                "labeler needs at least two classes".into(),
            ));
        }
        let output_dim = if config.num_classes == 2 {
            1
        } else {
            config.num_classes
        };
        let mlp = Mlp::new(
            &MlpConfig {
                input_dim,
                hidden: config.hidden.clone(),
                output_dim,
                activation: Activation::Relu,
                l2: config.l2,
            },
            rng,
        )
        .map_err(|e| CoreError::BadDevSet(e.to_string()))?;
        Ok(Self {
            mlp,
            config,
            feat_mean: vec![0.0; input_dim],
            feat_std: vec![1.0; input_dim],
        })
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.config.num_classes
    }

    /// Fit on a feature matrix and gold labels. Returns the final L-BFGS
    /// loss.
    pub fn fit(&mut self, features: &Matrix, labels: &[usize]) -> Result<f32> {
        if features.rows() != labels.len() {
            return Err(CoreError::BadDevSet(format!(
                "{} feature rows vs {} labels",
                features.rows(),
                labels.len()
            )));
        }
        if features.rows() == 0 {
            return Err(CoreError::BadDevSet("empty training set".into()));
        }
        self.compute_standardization(features);
        let x = self.standardize(features);
        let result = if self.config.num_classes == 2 {
            let targets =
                Matrix::from_vec(labels.len(), 1, labels.iter().map(|&l| l as f32).collect());
            self.mlp
                .fit_lbfgs(&x, &Targets::Binary(&targets), Loss::Bce, &self.config.lbfgs)
        } else {
            self.mlp.fit_lbfgs(
                &x,
                &Targets::Classes(labels),
                Loss::CrossEntropy,
                &self.config.lbfgs,
            )
        };
        Ok(result.loss)
    }

    /// Predicted class per feature row.
    pub fn predict(&self, features: &Matrix) -> Vec<usize> {
        let x = self.standardize(features);
        if self.config.num_classes == 2 {
            self.mlp
                .predict_sigmoid(&x)
                .as_slice()
                .iter()
                .map(|&p| usize::from(p >= 0.5))
                .collect()
        } else {
            self.mlp.predict_class(&x)
        }
    }

    /// Per-class probabilities (binary → column 1 is P(defect)).
    pub fn predict_proba(&self, features: &Matrix) -> Matrix {
        let x = self.standardize(features);
        if self.config.num_classes == 2 {
            let p = self.mlp.predict_sigmoid(&x);
            Matrix::from_fn(p.rows(), 2, |r, c| {
                let pos = p.get(r, 0);
                if c == 1 {
                    pos
                } else {
                    1.0 - pos
                }
            })
        } else {
            self.mlp.predict_softmax(&x)
        }
    }

    fn compute_standardization(&mut self, features: &Matrix) {
        let n = features.rows().max(1) as f32;
        let d = features.cols();
        let mut mean = vec![0.0f32; d];
        for r in 0..features.rows() {
            for (m, &v) in mean.iter_mut().zip(features.row(r)) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0f32; d];
        for r in 0..features.rows() {
            for ((s, &v), &m) in var.iter_mut().zip(features.row(r)).zip(&mean) {
                *s += (v - m) * (v - m);
            }
        }
        self.feat_std = var
            .into_iter()
            .map(|s| (s / n).sqrt().max(1e-4))
            .collect();
        self.feat_mean = mean;
    }

    fn standardize(&self, features: &Matrix) -> Matrix {
        assert_eq!(features.cols(), self.feat_mean.len(), "feature dim drift");
        Matrix::from_fn(features.rows(), features.cols(), |r, c| {
            (features.get(r, c) - self.feat_mean[c]) / self.feat_std[c]
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Toy similarity features: defective rows have one high feature.
    fn toy_data(n_per_class: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n_per_class {
            rows.push(vec![
                rng.gen_range(0.80..0.88f32),
                rng.gen_range(0.78..0.86),
                rng.gen_range(0.80..0.88),
            ]);
            labels.push(0);
            rows.push(vec![
                rng.gen_range(0.93..1.0f32),
                rng.gen_range(0.80..0.90),
                rng.gen_range(0.90..1.0),
            ]);
            labels.push(1);
        }
        (Matrix::from_rows(&rows), labels)
    }

    #[test]
    fn binary_labeler_learns_separation() {
        let mut rng = StdRng::seed_from_u64(0);
        let (x, y) = toy_data(30, 1);
        let mut labeler = Labeler::new(3, LabelerConfig::new(2), &mut rng).unwrap();
        labeler.fit(&x, &y).unwrap();
        let preds = labeler.predict(&x);
        let correct = preds.iter().zip(&y).filter(|(a, b)| a == b).count();
        assert!(correct >= 55, "{correct}/60 correct");
    }

    #[test]
    fn probabilities_are_normalized() {
        let mut rng = StdRng::seed_from_u64(2);
        let (x, y) = toy_data(10, 3);
        let mut labeler = Labeler::new(3, LabelerConfig::new(2), &mut rng).unwrap();
        labeler.fit(&x, &y).unwrap();
        let proba = labeler.predict_proba(&x);
        assert_eq!(proba.cols(), 2);
        for r in 0..proba.rows() {
            let sum: f32 = proba.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn multiclass_labeler() {
        let mut rng = StdRng::seed_from_u64(4);
        // Three classes, each activating one feature strongly.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for c in 0..3usize {
            for _ in 0..20 {
                let mut row = vec![
                    rng.gen_range(0.8..0.85f32),
                    rng.gen_range(0.8..0.85),
                    rng.gen_range(0.8..0.85),
                ];
                row[c] = rng.gen_range(0.95..1.0);
                rows.push(row);
                labels.push(c);
            }
        }
        let x = Matrix::from_rows(&rows);
        let mut labeler = Labeler::new(3, LabelerConfig::new(3), &mut rng).unwrap();
        labeler.fit(&x, &labels).unwrap();
        let preds = labeler.predict(&x);
        let correct = preds.iter().zip(&labels).filter(|(a, b)| a == b).count();
        assert!(correct >= 54, "{correct}/60 correct");
        let proba = labeler.predict_proba(&x);
        assert_eq!(proba.cols(), 3);
    }

    #[test]
    fn mismatched_rows_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut labeler = Labeler::new(2, LabelerConfig::new(2), &mut rng).unwrap();
        let x = Matrix::zeros(3, 2);
        assert!(labeler.fit(&x, &[0, 1]).is_err());
    }

    #[test]
    fn empty_training_set_rejected() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut labeler = Labeler::new(2, LabelerConfig::new(2), &mut rng).unwrap();
        let x = Matrix::zeros(0, 2);
        assert!(labeler.fit(&x, &[]).is_err());
    }

    #[test]
    fn one_class_config_rejected() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!(Labeler::new(3, LabelerConfig::new(1), &mut rng).is_err());
    }

    #[test]
    fn standardization_centers_features() {
        let mut rng = StdRng::seed_from_u64(8);
        let (x, y) = toy_data(15, 9);
        let mut labeler = Labeler::new(3, LabelerConfig::new(2), &mut rng).unwrap();
        labeler.fit(&x, &y).unwrap();
        let z = labeler.standardize(&x);
        for c in 0..3 {
            let mean: f32 = (0..z.rows()).map(|r| z.get(r, c)).sum::<f32>() / z.rows() as f32;
            assert!(mean.abs() < 1e-4, "column {c} mean {mean}");
        }
    }
}
