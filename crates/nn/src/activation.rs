//! Elementwise activation functions with analytic derivatives.

use crate::matrix::Matrix;

/// Supported activations. Derivatives are expressed in terms of the
/// *activated output* where that is cheaper (sigmoid/tanh) and of the
/// *pre-activation* for the rectifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Identity.
    Linear,
    /// max(0, x).
    Relu,
    /// max(alpha*x, x) with alpha = 0.01 — used in the GAN discriminator.
    LeakyRelu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent — used as the GAN generator output.
    Tanh,
}

impl Activation {
    /// Apply elementwise to a scalar.
    #[inline]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Linear => x,
            Activation::Relu => x.max(0.0),
            Activation::LeakyRelu => {
                if x >= 0.0 {
                    x
                } else {
                    0.01 * x
                }
            }
            Activation::Sigmoid => sigmoid(x),
            Activation::Tanh => x.tanh(),
        }
    }

    /// Derivative with respect to the pre-activation, given the
    /// pre-activation `x` and the activated output `y = apply(x)`.
    #[inline]
    pub fn derivative(self, x: f32, y: f32) -> f32 {
        match self {
            Activation::Linear => 1.0,
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::LeakyRelu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.01
                }
            }
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Tanh => 1.0 - y * y,
        }
    }

    /// Apply to every element of a matrix.
    pub fn forward(self, x: &Matrix) -> Matrix {
        x.map(|v| self.apply(v))
    }
}

/// Numerically-stable logistic sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        let e = (-x).exp();
        1.0 / (1.0 + e)
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Numerically-stable `ln(sigmoid(x))`, used by the relativistic GAN loss.
#[inline]
pub fn log_sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        -(1.0 + (-x).exp()).ln()
    } else {
        x - (1.0 + x.exp()).ln()
    }
}

/// Row-wise softmax with the max-subtraction trick.
pub fn softmax_rows(logits: &Matrix) -> Matrix {
    let mut out = logits.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_symmetry_and_range() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        for x in [-30.0f32, -5.0, -0.3, 0.7, 5.0, 30.0] {
            let s = sigmoid(x);
            assert!((0.0..=1.0).contains(&s));
            assert!((s + sigmoid(-x) - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn sigmoid_extreme_values_stable() {
        assert_eq!(sigmoid(1000.0), 1.0);
        assert_eq!(sigmoid(-1000.0), 0.0);
        assert!(sigmoid(-1000.0).is_finite());
    }

    #[test]
    fn log_sigmoid_matches_naive_in_safe_range() {
        for x in [-3.0f32, -1.0, 0.0, 1.0, 3.0] {
            let naive = sigmoid(x).ln();
            assert!((log_sigmoid(x) - naive).abs() < 1e-5);
        }
    }

    #[test]
    fn log_sigmoid_stable_at_extremes() {
        assert!(log_sigmoid(-100.0).is_finite());
        assert!((log_sigmoid(-100.0) + 100.0).abs() < 1e-3);
        assert!(log_sigmoid(100.0).abs() < 1e-3);
    }

    #[test]
    fn relu_and_leaky() {
        assert_eq!(Activation::Relu.apply(-2.0), 0.0);
        assert_eq!(Activation::Relu.apply(3.0), 3.0);
        assert_eq!(Activation::LeakyRelu.apply(-2.0), -0.02);
        assert_eq!(Activation::LeakyRelu.apply(3.0), 3.0);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let eps = 1e-3f32;
        for act in [
            Activation::Linear,
            Activation::Relu,
            Activation::LeakyRelu,
            Activation::Sigmoid,
            Activation::Tanh,
        ] {
            for x in [-1.7f32, -0.4, 0.6, 2.3] {
                let y = act.apply(x);
                let analytic = act.derivative(x, y);
                let numeric = (act.apply(x + eps) - act.apply(x - eps)) / (2.0 * eps);
                assert!(
                    (analytic - numeric).abs() < 1e-2,
                    "{act:?} at {x}: {analytic} vs {numeric}"
                );
            }
        }
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let p = softmax_rows(&logits);
        for r in 0..2 {
            let sum: f32 = p.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
            assert!(p.row(r).iter().all(|&v| v > 0.0));
        }
        // Monotone in the logits.
        assert!(p.get(0, 2) > p.get(0, 1));
    }

    #[test]
    fn softmax_stable_with_large_logits() {
        let logits = Matrix::from_vec(1, 2, vec![1000.0, 999.0]);
        let p = softmax_rows(&logits);
        assert!(p.as_slice().iter().all(|v| v.is_finite()));
        assert!((p.row(0).iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }
}
