//! Fixture: P1 panic paths. Line numbers are asserted — do not reflow.

fn unwraps(v: Option<u32>, r: Result<u32, ()>) -> u32 {
    let a = v.unwrap(); // line 4: .unwrap()
    let b = r.expect("present"); // line 5: .expect()
    a + b
}

fn macros(kind: u8) -> u8 {
    match kind {
        0 => panic!("boom"), // line 11: panic!
        1 => todo!(),        // line 12: todo!
        2 => unreachable!(), // line 13: unreachable!
        k => k,
    }
}

fn literal_index(row: &[f32]) -> f32 {
    row[0] // line 19: slice index by literal
}

fn variable_index_is_fine(row: &[f32], i: usize) -> f32 {
    row[i] // no violation: not a literal index
}

fn unwrap_or_is_fine(v: Option<u32>) -> u32 {
    v.unwrap_or(0) // no violation: total method
}

fn annotated(v: Option<u32>) -> u32 {
    v.unwrap() // line 31: suppressed // ig-lint: allow(panic) -- fixture: caller checked is_some
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1); // no violation: test code
    }
}
