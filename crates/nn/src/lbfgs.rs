//! Limited-memory BFGS (Liu & Nocedal, 1989) with Armijo backtracking.
//!
//! The paper trains the labeler with "an L-BFGS optimizer, which provides
//! stable training on small data" (Section 6.1). This is the standard
//! two-loop-recursion implementation over a user-supplied
//! loss-and-gradient oracle on flat `f32` parameter vectors.

/// L-BFGS hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct LbfgsConfig {
    /// History size `m` (number of curvature pairs kept).
    pub memory: usize,
    /// Maximum outer iterations.
    pub max_iters: usize,
    /// Stop when the gradient's infinity norm drops below this.
    pub grad_tol: f32,
    /// Stop when the loss improves by less than this between iterations.
    pub loss_tol: f32,
    /// Armijo sufficient-decrease constant.
    pub c1: f32,
    /// Maximum backtracking halvings per line search.
    pub max_line_search: usize,
}

impl Default for LbfgsConfig {
    fn default() -> Self {
        Self {
            memory: 10,
            max_iters: 100,
            grad_tol: 1e-5,
            loss_tol: 1e-9,
            c1: 1e-4,
            max_line_search: 30,
        }
    }
}

/// Restart policy for [`minimize_robust`].
#[derive(Debug, Clone, Copy)]
pub struct RestartConfig {
    /// Maximum restarts after a diverged run (0 = plain [`minimize`]).
    pub max_restarts: usize,
    /// Base magnitude of the uniform jitter added to the start point.
    /// Doubles on every retry, backing the restart away from the
    /// poisoned region a little further each time.
    pub jitter: f32,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
}

impl Default for RestartConfig {
    fn default() -> Self {
        Self {
            max_restarts: 3,
            jitter: 0.1,
            seed: 0x1bf65,
        }
    }
}

/// Result of an [`minimize`] run.
#[derive(Debug, Clone)]
pub struct LbfgsResult {
    /// Final parameters. Always entirely finite, even on divergence.
    pub x: Vec<f32>,
    /// Final loss. Non-finite only when the very first evaluation was
    /// already poisoned (see [`LbfgsResult::diverged`]).
    pub loss: f32,
    /// Outer iterations performed.
    pub iters: usize,
    /// True when a tolerance (rather than the iteration cap) stopped it.
    pub converged: bool,
    /// True when a non-finite loss or gradient was encountered and the
    /// run had to stop at the last finite iterate.
    pub diverged: bool,
}

fn dot(a: &[f32], b: &[f32]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| x as f64 * y as f64).sum()
}

fn inf_norm(v: &[f32]) -> f32 {
    v.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
}

fn all_finite(v: &[f32]) -> bool {
    v.iter().all(|x| x.is_finite())
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Minimize `f` starting from `x0`. `f` must return `(loss, gradient)` with
/// the gradient the same length as the input.
pub fn minimize(
    mut f: impl FnMut(&[f32]) -> (f32, Vec<f32>),
    x0: Vec<f32>,
    config: &LbfgsConfig,
) -> LbfgsResult {
    let n = x0.len();
    let mut x = x0;
    let (mut loss, mut grad) = f(&x);
    assert_eq!(grad.len(), n, "gradient length mismatch");

    // A poisoned start point gives the line search nothing to improve on:
    // stop immediately (with finite parameters) and let the caller restart.
    if !loss.is_finite() || !all_finite(&grad) {
        for v in &mut x {
            if !v.is_finite() {
                *v = 0.0;
            }
        }
        return LbfgsResult {
            x,
            loss,
            iters: 0,
            converged: false,
            diverged: true,
        };
    }

    // Curvature history: s_k = x_{k+1} - x_k, y_k = g_{k+1} - g_k.
    let mut s_hist: Vec<Vec<f32>> = Vec::new();
    let mut y_hist: Vec<Vec<f32>> = Vec::new();
    let mut rho_hist: Vec<f64> = Vec::new();

    for iter in 0..config.max_iters {
        if inf_norm(&grad) < config.grad_tol {
            return LbfgsResult {
                x,
                loss,
                iters: iter,
                converged: true,
                diverged: false,
            };
        }

        // Two-loop recursion: direction = -H_k * grad.
        let mut q: Vec<f32> = grad.clone();
        let mut alphas = vec![0.0f64; s_hist.len()];
        for i in (0..s_hist.len()).rev() {
            let alpha = rho_hist[i] * dot(&s_hist[i], &q);
            alphas[i] = alpha;
            for (qv, &yv) in q.iter_mut().zip(&y_hist[i]) {
                *qv -= (alpha * yv as f64) as f32;
            }
        }
        // Initial Hessian scaling gamma = s·y / y·y from the latest pair.
        if let (Some(s), Some(y)) = (s_hist.last(), y_hist.last()) {
            let gamma = dot(s, y) / dot(y, y).max(1e-12);
            for qv in &mut q {
                *qv = (*qv as f64 * gamma) as f32;
            }
        }
        for i in 0..s_hist.len() {
            let beta = rho_hist[i] * dot(&y_hist[i], &q);
            let coeff = (alphas[i] - beta) as f32;
            for (qv, &sv) in q.iter_mut().zip(&s_hist[i]) {
                *qv += coeff * sv;
            }
        }
        let mut direction: Vec<f32> = q.iter().map(|&v| -v).collect();

        // Safeguard: fall back to steepest descent if not a descent dir.
        let mut dir_deriv = dot(&direction, &grad);
        if dir_deriv >= 0.0 {
            direction = grad.iter().map(|&g| -g).collect();
            dir_deriv = -dot(&grad, &grad);
            s_hist.clear();
            y_hist.clear();
            rho_hist.clear();
        }

        // Armijo backtracking line search. Probes with a non-finite loss
        // or gradient are rejected like any insufficient-decrease step;
        // the shrinking step backs the search away from the poisoned
        // region, so a single NaN pocket does not kill the run.
        let mut step = 1.0f32;
        let mut accepted = false;
        let mut saw_poison = false;
        let mut new_x = x.clone();
        let mut new_loss = loss;
        let mut new_grad = grad.clone();
        for _ in 0..config.max_line_search {
            for i in 0..n {
                new_x[i] = x[i] + step * direction[i];
            }
            let (l, g) = f(&new_x);
            let finite = l.is_finite() && all_finite(&g);
            saw_poison |= !finite;
            if finite && l <= loss + config.c1 * step * dir_deriv as f32 {
                new_loss = l;
                new_grad = g;
                accepted = true;
                break;
            }
            step *= 0.5;
        }
        if !accepted {
            // No progress possible along this direction. If the search was
            // blocked by non-finite probes, report divergence so callers
            // can restart; otherwise this is an ordinary stall.
            return LbfgsResult {
                x,
                loss,
                iters: iter,
                converged: !saw_poison,
                diverged: saw_poison,
            };
        }

        // Update curvature history.
        let s: Vec<f32> = new_x.iter().zip(&x).map(|(&a, &b)| a - b).collect();
        let y: Vec<f32> = new_grad.iter().zip(&grad).map(|(&a, &b)| a - b).collect();
        let sy = dot(&s, &y);
        if sy > 1e-10 {
            if s_hist.len() == config.memory {
                s_hist.remove(0);
                y_hist.remove(0);
                rho_hist.remove(0);
            }
            rho_hist.push(1.0 / sy);
            s_hist.push(s);
            y_hist.push(y);
        }

        let improvement = loss - new_loss;
        x = new_x.clone();
        grad = new_grad.clone();
        loss = new_loss;
        if improvement.abs() < config.loss_tol {
            return LbfgsResult {
                x,
                loss,
                iters: iter + 1,
                converged: true,
                diverged: false,
            };
        }
    }

    LbfgsResult {
        x,
        loss,
        iters: config.max_iters,
        converged: false,
        diverged: false,
    }
}

/// [`minimize`] wrapped in a bounded retry ladder: when a run diverges on
/// non-finite losses or gradients, restart from the (sanitized) start
/// point plus deterministic uniform jitter whose magnitude doubles per
/// attempt. Returns the first non-diverged result and the number of
/// restarts consumed; after exhausting `restart.max_restarts` the last
/// (finite-parameter) diverged result is returned.
pub fn minimize_robust(
    mut f: impl FnMut(&[f32]) -> (f32, Vec<f32>),
    x0: Vec<f32>,
    config: &LbfgsConfig,
    restart: &RestartConfig,
) -> (LbfgsResult, usize) {
    let mut base = x0;
    for v in &mut base {
        if !v.is_finite() {
            *v = 0.0;
        }
    }
    let mut last = None;
    for attempt in 0..=restart.max_restarts {
        let start = if attempt == 0 {
            base.clone()
        } else {
            let scale = restart.jitter * (1u32 << (attempt - 1).min(16)) as f32;
            base.iter()
                .enumerate()
                .map(|(i, &v)| {
                    let h = splitmix64(restart.seed ^ (attempt as u64) << 32 ^ i as u64);
                    let unit = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                    v + (unit as f32 * 2.0 - 1.0) * scale
                })
                .collect()
        };
        let result = minimize(&mut f, start, config);
        if !result.diverged {
            return (result, attempt);
        }
        last = Some(result);
    }
    // ig-lint: allow(panic) -- the attempt loop above runs at least once
    // (restarts+1 iterations), so `last` is always populated here
    let mut result = last.expect("at least one attempt runs");
    // Divergence already forces finite parameters; scrub defensively anyway.
    for v in &mut result.x {
        if !v.is_finite() {
            *v = 0.0;
        }
    }
    (result, restart.max_restarts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_separable_quadratic() {
        let target = [3.0f32, -1.0, 0.5];
        let result = minimize(
            |x| {
                let loss: f32 = x
                    .iter()
                    .zip(&target)
                    .map(|(&a, &b)| 0.5 * (a - b) * (a - b))
                    .sum();
                let grad = x.iter().zip(&target).map(|(&a, &b)| a - b).collect();
                (loss, grad)
            },
            vec![0.0; 3],
            &LbfgsConfig::default(),
        );
        assert!(result.converged);
        for (a, b) in result.x.iter().zip(&target) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn minimizes_rosenbrock() {
        // The classic banana function; slow for gradient descent, fast for
        // quasi-Newton methods.
        let result = minimize(
            |x| {
                let (a, b) = (x[0], x[1]);
                let loss = (1.0 - a).powi(2) + 100.0 * (b - a * a).powi(2);
                let grad = vec![
                    -2.0 * (1.0 - a) - 400.0 * a * (b - a * a),
                    200.0 * (b - a * a),
                ];
                (loss, grad)
            },
            vec![-1.2, 1.0],
            &LbfgsConfig {
                // Armijo-only backtracking (no Wolfe curvature condition)
                // tracks Rosenbrock's curved valley slowly; it converges
                // around ~700 iterations.
                max_iters: 2000,
                grad_tol: 1e-6,
                ..Default::default()
            },
        );
        assert!((result.x[0] - 1.0).abs() < 1e-2, "x0 = {}", result.x[0]);
        assert!((result.x[1] - 1.0).abs() < 1e-2, "x1 = {}", result.x[1]);
    }

    #[test]
    fn respects_iteration_cap() {
        let result = minimize(
            |x| {
                let loss = x[0] * x[0];
                (loss, vec![2.0 * x[0]])
            },
            vec![100.0],
            &LbfgsConfig {
                max_iters: 2,
                grad_tol: 0.0,
                loss_tol: 0.0,
                ..Default::default()
            },
        );
        assert_eq!(result.iters, 2);
        assert!(!result.converged);
    }

    #[test]
    fn already_optimal_start_converges_immediately() {
        let result = minimize(
            |x| (x[0] * x[0], vec![2.0 * x[0]]),
            vec![0.0],
            &LbfgsConfig::default(),
        );
        assert!(result.converged);
        assert_eq!(result.iters, 0);
    }

    #[test]
    fn loss_never_increases() {
        let mut losses = Vec::new();
        minimize(
            |x| {
                let loss = (x[0] - 2.0).powi(4) + (x[1] + 1.0).powi(2);
                losses.push(loss);
                (loss, vec![4.0 * (x[0] - 2.0).powi(3), 2.0 * (x[1] + 1.0)])
            },
            vec![5.0, 5.0],
            &LbfgsConfig::default(),
        );
        // Accepted iterates must be monotone; the oracle also sees rejected
        // line-search probes, so compare best-so-far instead of adjacent.
        let mut best = f32::INFINITY;
        let mut monotone_best = Vec::new();
        for &l in &losses {
            best = best.min(l);
            monotone_best.push(best);
        }
        assert!(monotone_best.last().unwrap() < &1e-3);
    }

    #[test]
    fn poisoned_start_flags_divergence() {
        let result = minimize(
            |_| (f32::NAN, vec![f32::NAN]),
            vec![1.0],
            &LbfgsConfig::default(),
        );
        assert!(result.diverged);
        assert!(!result.converged);
        assert_eq!(result.iters, 0);
        assert!(result.x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn nan_pocket_mid_run_keeps_params_finite() {
        // Loss is NaN whenever x drifts below -0.5; the minimum at x = 2
        // is reachable without entering the pocket, and rejected probes
        // that land in it must not leak NaN into the result.
        let result = minimize(
            |x| {
                if x[0] < -0.5 {
                    (f32::NAN, vec![f32::NAN])
                } else {
                    ((x[0] - 2.0).powi(2), vec![2.0 * (x[0] - 2.0)])
                }
            },
            vec![0.0],
            &LbfgsConfig::default(),
        );
        assert!(result.x[0].is_finite());
        assert!((result.x[0] - 2.0).abs() < 1e-3);
        assert!(!result.diverged);
    }

    #[test]
    fn robust_restarts_out_of_poisoned_start() {
        // The oracle is poisoned exactly at the start point, so attempt 0
        // diverges immediately; any jittered restart escapes and solves
        // the quadratic.
        let (result, restarts) = minimize_robust(
            |x| {
                if x[0] == 1.0 {
                    (f32::INFINITY, vec![f32::INFINITY])
                } else {
                    ((x[0] - 3.0).powi(2), vec![2.0 * (x[0] - 3.0)])
                }
            },
            vec![1.0],
            &LbfgsConfig::default(),
            &RestartConfig::default(),
        );
        assert!(!result.diverged);
        assert!(restarts >= 1);
        assert!((result.x[0] - 3.0).abs() < 1e-3);
    }

    #[test]
    fn robust_gives_up_with_finite_params() {
        let (result, restarts) = minimize_robust(
            |_| (f32::NAN, vec![f32::NAN, f32::NAN]),
            vec![f32::NAN, 5.0],
            &LbfgsConfig::default(),
            &RestartConfig::default(),
        );
        assert!(result.diverged);
        assert_eq!(restarts, RestartConfig::default().max_restarts);
        assert!(result.x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn robust_is_deterministic() {
        let oracle = |x: &[f32]| {
            if x[0].abs() < 0.1 {
                (f32::NAN, vec![f32::NAN])
            } else {
                ((x[0] - 1.0).powi(2), vec![2.0 * (x[0] - 1.0)])
            }
        };
        let (a, ra) = minimize_robust(
            oracle,
            vec![0.0],
            &LbfgsConfig::default(),
            &RestartConfig::default(),
        );
        let (b, rb) = minimize_robust(
            oracle,
            vec![0.0],
            &LbfgsConfig::default(),
            &RestartConfig::default(),
        );
        assert_eq!(ra, rb);
        assert_eq!(a.x, b.x);
    }

    #[test]
    fn high_dimensional_quadratic() {
        let n = 200;
        let result = minimize(
            |x| {
                let mut loss = 0.0f32;
                let mut grad = vec![0.0f32; n];
                for i in 0..n {
                    let scale = 1.0 + (i % 10) as f32;
                    let d = x[i] - i as f32 * 0.01;
                    loss += 0.5 * scale * d * d;
                    grad[i] = scale * d;
                }
                (loss, grad)
            },
            vec![1.0; n],
            &LbfgsConfig {
                max_iters: 300,
                ..Default::default()
            },
        );
        assert!(result.loss < 1e-6, "loss {}", result.loss);
    }
}
