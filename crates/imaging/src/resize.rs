//! Image resampling.
//!
//! The pattern augmenter resizes irregular crowd patterns to a fixed square
//! before GAN training and back to their original sizes afterwards
//! (Section 4.1); the pyramid matcher halves resolutions repeatedly; the CNN
//! baselines downscale full images. All of those go through these two
//! functions.

use crate::{GrayImage, ImagingError, Result};

/// Resize with nearest-neighbour sampling.
pub fn resize_nearest(src: &GrayImage, new_w: usize, new_h: usize) -> Result<GrayImage> {
    check_dims(src, new_w, new_h)?;
    let sx = src.width() as f32 / new_w as f32;
    let sy = src.height() as f32 / new_h as f32;
    Ok(GrayImage::from_fn(new_w, new_h, |x, y| {
        let src_x = (((x as f32 + 0.5) * sx).floor() as usize).min(src.width() - 1);
        let src_y = (((y as f32 + 0.5) * sy).floor() as usize).min(src.height() - 1);
        src.get(src_x, src_y)
    }))
}

/// Resize with bilinear sampling (pixel-center aligned).
pub fn resize_bilinear(src: &GrayImage, new_w: usize, new_h: usize) -> Result<GrayImage> {
    check_dims(src, new_w, new_h)?;
    let sx = src.width() as f32 / new_w as f32;
    let sy = src.height() as f32 / new_h as f32;
    Ok(GrayImage::from_fn(new_w, new_h, |x, y| {
        let src_x = (x as f32 + 0.5) * sx - 0.5;
        let src_y = (y as f32 + 0.5) * sy - 0.5;
        src.sample_bilinear(src_x, src_y)
    }))
}

/// Proportionally scale so the longer side equals `max_side`, never
/// upscaling. Used by the CNN baselines to bound input size.
pub fn fit_max_side(src: &GrayImage, max_side: usize) -> Result<GrayImage> {
    let (w, h) = src.dims();
    let longest = w.max(h);
    if longest <= max_side {
        return Ok(src.clone());
    }
    let scale = max_side as f32 / longest as f32;
    let nw = ((w as f32 * scale).round() as usize).max(1);
    let nh = ((h as f32 * scale).round() as usize).max(1);
    resize_bilinear(src, nw, nh)
}

fn check_dims(src: &GrayImage, new_w: usize, new_h: usize) -> Result<()> {
    if src.is_empty() {
        return Err(ImagingError::EmptyImage);
    }
    if new_w == 0 || new_h == 0 {
        return Err(ImagingError::InvalidDimension(
            "resize target has a zero dimension".into(),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_resize_is_exact() {
        let img = GrayImage::from_fn(5, 4, |x, y| (x * y) as f32);
        let same = resize_bilinear(&img, 5, 4).unwrap();
        for (a, b) in img.pixels().iter().zip(same.pixels()) {
            assert!((a - b).abs() < 1e-5);
        }
        assert_eq!(resize_nearest(&img, 5, 4).unwrap(), img);
    }

    #[test]
    fn nearest_upscale_replicates() {
        let img = GrayImage::from_vec(2, 1, vec![0.0, 1.0]).unwrap();
        let up = resize_nearest(&img, 4, 1).unwrap();
        assert_eq!(up.pixels(), &[0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn bilinear_downscale_averages() {
        let img = GrayImage::from_vec(4, 1, vec![0.0, 0.0, 1.0, 1.0]).unwrap();
        let down = resize_bilinear(&img, 2, 1).unwrap();
        assert!((down.get(0, 0) - 0.0).abs() < 0.26);
        assert!((down.get(1, 0) - 1.0).abs() < 0.26);
    }

    #[test]
    fn constant_image_stays_constant() {
        let img = GrayImage::filled(7, 3, 0.42);
        for (w, h) in [(3, 3), (14, 6), (1, 1), (20, 1)] {
            let r = resize_bilinear(&img, w, h).unwrap();
            assert!(r.pixels().iter().all(|&p| (p - 0.42).abs() < 1e-6));
        }
    }

    #[test]
    fn rejects_zero_target() {
        let img = GrayImage::filled(4, 4, 1.0);
        assert!(resize_bilinear(&img, 0, 3).is_err());
        assert!(resize_nearest(&img, 3, 0).is_err());
    }

    #[test]
    fn rejects_empty_source() {
        let img = GrayImage::new(0, 0);
        assert!(matches!(
            resize_bilinear(&img, 2, 2),
            Err(ImagingError::EmptyImage)
        ));
    }

    #[test]
    fn fit_max_side_preserves_aspect() {
        let img = GrayImage::filled(100, 50, 0.0);
        let fitted = fit_max_side(&img, 20).unwrap();
        assert_eq!(fitted.dims(), (20, 10));
    }

    #[test]
    fn fit_max_side_never_upscales() {
        let img = GrayImage::filled(10, 5, 0.0);
        let fitted = fit_max_side(&img, 100).unwrap();
        assert_eq!(fitted.dims(), (10, 5));
    }

    #[test]
    fn extreme_aspect_ratio_survives() {
        // Product images are long thin strips like 162x2702.
        let img = GrayImage::filled(16, 270, 0.5);
        let fitted = fit_max_side(&img, 64).unwrap();
        assert_eq!(fitted.dims().1, 64);
        assert!(fitted.dims().0 >= 1);
    }
}
