//! Reproduction harness: one subcommand per table/figure of
//! "Inspector Gadget" (Heo et al., VLDB 2020).
//!
//! ```text
//! ig-experiments <experiment> [--scale tiny|quick|medium|paper] [--seed N]
//!                [--out DIR] [--no-memo]
//!
//! experiments: table1 table2 table3 table4 table5 table6
//!              fig9 fig10 fig11 combine chaos all
//!              ("combine" is an extra ablation of the box-combination
//!              strategy from Section 3, not a numbered paper table;
//!              "chaos" is the fault-injection / recovery harness)
//! ```
//!
//! `--scale medium` (default) keeps the paper's class ratios at reduced
//! dataset sizes so a full `all` run finishes in CPU-minutes; `paper`
//! uses Table 1's exact N; `tiny` is the CI smoke alias of `quick`.
//! Outputs go to stdout and `<out>/<exp>.{txt,json}`.
//!
//! Every run builds one [`ExpEnv`] whose [`ig_core::RunContext`] is
//! shared by all drivers it dispatches: datasets, prepared-image caches
//! and feature matrices memoize in the context's artifact store, so an
//! `all` run pyramids each image exactly once across experiments.
//! `--no-memo` disables the store (every stage recomputes) — the A/B for
//! benchmarking what memoization saves.

mod ablation_combine;
mod chaos;
mod common;
mod fig10;
mod fig11;
mod fig9;
mod table1;
mod table2;
mod table3;
mod table4;
mod table5;
mod table6;

use common::ExpEnv;
use ig_core::{RunContext, ScalePlan};

struct Args {
    experiment: String,
    scale: ScalePlan,
    seed: u64,
    out: String,
    memoize: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let experiment = args.next().ok_or("missing experiment name")?;
    let mut scale = ScalePlan::medium();
    let mut seed = 42u64;
    let mut out = "results".to_string();
    let mut memoize = true;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--scale" => {
                let v = args.next().ok_or("--scale needs a value")?;
                scale = ScalePlan::parse(&v).ok_or(format!("unknown scale {v}"))?;
            }
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                seed = v.parse().map_err(|_| format!("bad seed {v}"))?;
            }
            "--out" => {
                out = args.next().ok_or("--out needs a value")?;
            }
            "--no-memo" => {
                memoize = false;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(Args {
        experiment,
        scale,
        seed,
        out,
        memoize,
    })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: ig-experiments <table1..table6|fig9|fig10|fig11|combine|chaos|all> \
                 [--scale tiny|quick|medium|paper] [--seed N] [--out DIR] [--no-memo]"
            );
            std::process::exit(2);
        }
    };
    let env = ExpEnv {
        ctx: RunContext::new(args.seed)
            .with_scale(args.scale)
            .with_memoization(args.memoize),
        out: args.out,
    };
    let run = |name: &str| match name {
        "table1" => table1::run(&env),
        "table2" => table2::run(&env),
        "table3" => table3::run(&env),
        "table4" => table4::run(&env),
        "table5" => table5::run(&env),
        "table6" => table6::run(&env),
        "fig9" => fig9::run(&env),
        "combine" => ablation_combine::run(&env),
        "fig10" => fig10::run(&env),
        "fig11" => fig11::run(&env),
        "chaos" => chaos::run(&env),
        other => {
            eprintln!("unknown experiment {other}");
            std::process::exit(2);
        }
    };
    if args.experiment == "all" {
        for name in [
            "table1", "table2", "table3", "table4", "table5", "table6", "fig9", "fig10", "fig11",
            "combine", "chaos",
        ] {
            let started = std::time::Instant::now();
            println!("\n===================== {name} =====================");
            run(name);
            println!("[{name} took {:.1}s]", started.elapsed().as_secs_f32());
        }
    } else {
        run(&args.experiment);
    }
    let store = env.ctx.store();
    println!(
        "[runtime: {} stage runs, artifact store {} entries, {} hits / {} misses]",
        env.ctx.stage_runs(),
        store.len(),
        store.hits(),
        store.misses()
    );
}
