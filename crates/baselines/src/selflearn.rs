//! Self-learning CNN baselines (Section 6.1).
//!
//! "\[W\]e compare Inspector Gadget with self-learning baselines that train
//! CNN models on the development set using cross validation and use them
//! to label the rest of the images." No pre-training.

use crate::cnn_models::{images_to_tensor, CnnArch};
use ig_imaging::GrayImage;
use ig_nn::conv::{Cnn, Tensor4};
use ig_nn::train::EarlyStopping;
use rand::seq::SliceRandom;
use rand::Rng;

/// A self-learning baseline wrapping one CNN architecture.
#[derive(Debug)]
pub struct SelfLearner {
    cnn: Cnn,
    side: usize,
    arch: CnnArch,
}

/// Training hyper-parameters for the CNN baselines.
#[derive(Debug, Clone, Copy)]
pub struct SelfLearnConfig {
    /// Input resolution.
    pub side: usize,
    /// Max epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Early-stopping patience (on a 20% validation split).
    pub patience: usize,
}

impl Default for SelfLearnConfig {
    fn default() -> Self {
        Self {
            side: 24,
            epochs: 30,
            batch: 16,
            lr: 0.01,
            patience: 5,
        }
    }
}

impl SelfLearner {
    /// Train `arch` on the development set.
    pub fn train(
        arch: CnnArch,
        dev_images: &[&GrayImage],
        dev_labels: &[usize],
        num_classes: usize,
        config: &SelfLearnConfig,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(!dev_images.is_empty(), "empty development set");
        let mut cnn = arch.build(num_classes, config.lr, rng);
        fit_cnn(&mut cnn, dev_images, dev_labels, config, rng);
        Self {
            cnn,
            side: config.side,
            arch,
        }
    }

    /// The wrapped architecture.
    pub fn arch(&self) -> CnnArch {
        self.arch
    }

    /// Mutable access to the inner CNN (fine-tuning).
    pub fn cnn_mut(&mut self) -> &mut Cnn {
        &mut self.cnn
    }

    /// Consume into the inner CNN.
    pub fn into_cnn(self) -> Cnn {
        self.cnn
    }

    /// Wrap an already-trained CNN (used by the transfer baseline).
    pub fn from_cnn(cnn: Cnn, side: usize, arch: CnnArch) -> Self {
        Self { cnn, side, arch }
    }

    /// Label a batch of images.
    pub fn label(&mut self, images: &[&GrayImage]) -> Vec<usize> {
        if images.is_empty() {
            return Vec::new();
        }
        // Predict in chunks to bound memory.
        let mut out = Vec::with_capacity(images.len());
        for chunk in images.chunks(64) {
            let tensor = images_to_tensor(chunk, self.side);
            out.extend(self.cnn.predict(&tensor));
        }
        out
    }
}

/// The shared CNN training loop: minibatch Adam with a 20% early-stopping
/// holdout when the set is large enough. Used by both the self-learning
/// and transfer-learning (fine-tune phase) baselines.
pub fn fit_cnn(
    cnn: &mut Cnn,
    images: &[&GrayImage],
    labels: &[usize],
    config: &SelfLearnConfig,
    rng: &mut impl Rng,
) {
    assert_eq!(images.len(), labels.len(), "label count mismatch");
    if images.is_empty() {
        return;
    }
    let tensor = images_to_tensor(images, config.side);
    let n = images.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    let n_val = if n >= 10 { n / 5 } else { 0 };
    let (val_idx, train_idx) = order.split_at(n_val);

    let mut stopper = EarlyStopping::new(config.patience, 1e-4);
    let mut train_order: Vec<usize> = train_idx.to_vec();
    for _epoch in 0..config.epochs {
        train_order.shuffle(rng);
        for chunk in train_order.chunks(config.batch.max(1)) {
            let batch = select_tensor(&tensor, chunk, config.side);
            let batch_labels: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();
            cnn.train_batch(&batch, &batch_labels);
        }
        if !val_idx.is_empty() {
            let val = select_tensor(&tensor, val_idx, config.side);
            let val_labels: Vec<usize> = val_idx.iter().map(|&i| labels[i]).collect();
            let loss = validation_loss(cnn, &val, &val_labels);
            if stopper.observe(loss) {
                break;
            }
        }
    }
}

fn select_tensor(full: &Tensor4, indices: &[usize], side: usize) -> Tensor4 {
    let mut out = Tensor4::zeros(indices.len(), 1, side, side);
    let stride = side * side;
    for (j, &i) in indices.iter().enumerate() {
        out.as_mut_slice()[j * stride..(j + 1) * stride]
            .copy_from_slice(&full.as_slice()[i * stride..(i + 1) * stride]);
    }
    out
}

fn validation_loss(cnn: &mut Cnn, x: &Tensor4, labels: &[usize]) -> f32 {
    let probs = cnn.predict_proba(x);
    let mut loss = 0.0f32;
    for (r, &c) in labels.iter().enumerate() {
        loss += -(probs.get(r, c).max(1e-12)).ln();
    }
    loss / labels.len().max(1) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bright_dark_task(n: usize, seed: u64) -> (Vec<GrayImage>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut images = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let bright = i % 2 == 0;
            // Distinguish by *pattern*, not mean (standardization kills
            // mean differences): class 1 has a strong vertical stripe.
            let img = GrayImage::from_fn(20, 20, |x, _| {
                let noise = rng.gen_range(-0.05..0.05f32);
                if bright && (8..12).contains(&x) {
                    0.9 + noise
                } else {
                    0.4 + noise
                }
            });
            images.push(img);
            labels.push(usize::from(bright));
        }
        (images, labels)
    }

    #[test]
    fn self_learner_learns_simple_task() {
        let mut rng = StdRng::seed_from_u64(0);
        let (images, labels) = bright_dark_task(40, 1);
        let refs: Vec<&GrayImage> = images.iter().collect();
        let config = SelfLearnConfig {
            side: 16,
            epochs: 20,
            ..Default::default()
        };
        let mut learner = SelfLearner::train(
            CnnArch::MiniVgg,
            &refs[..30],
            &labels[..30],
            2,
            &config,
            &mut rng,
        );
        let preds = learner.label(&refs[30..]);
        let correct = preds
            .iter()
            .zip(&labels[30..])
            .filter(|(a, b)| a == b)
            .count();
        assert!(correct >= 8, "{correct}/10 correct");
    }

    #[test]
    fn tiny_dev_set_trains_without_validation_split() {
        let mut rng = StdRng::seed_from_u64(2);
        let (images, labels) = bright_dark_task(6, 3);
        let refs: Vec<&GrayImage> = images.iter().collect();
        let config = SelfLearnConfig {
            side: 12,
            epochs: 3,
            ..Default::default()
        };
        let mut learner =
            SelfLearner::train(CnnArch::MiniMobileNet, &refs, &labels, 2, &config, &mut rng);
        assert_eq!(learner.label(&refs).len(), 6);
    }

    #[test]
    fn empty_label_batch() {
        let mut rng = StdRng::seed_from_u64(4);
        let (images, labels) = bright_dark_task(8, 5);
        let refs: Vec<&GrayImage> = images.iter().collect();
        let config = SelfLearnConfig {
            side: 12,
            epochs: 2,
            ..Default::default()
        };
        let mut learner =
            SelfLearner::train(CnnArch::MiniResNet, &refs, &labels, 2, &config, &mut rng);
        assert!(learner.label(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "empty development set")]
    fn empty_dev_set_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        let _ = SelfLearner::train(
            CnnArch::MiniVgg,
            &[],
            &[],
            2,
            &SelfLearnConfig::default(),
            &mut rng,
        );
    }
}
