//! Shared plumbing for the per-table/figure experiment drivers.
//!
//! Every driver runs under one [`ExpEnv`]: a [`RunContext`] carrying the
//! seed, the [`ScalePlan`] and the run-wide artifact store, plus the
//! output directory. Dataset generation and per-image matching-cache
//! preparation go through the runtime's stages, so an `all` run (or a
//! multi-arm driver) generates each dataset and pyramids each image
//! exactly once — the memoization that the per-driver `OnceLock` caches
//! used to approximate locally now lives in the shared store.

use ig_augment::policy::{Policy, PolicyOp};
use ig_augment::{augment, AugmentMethod, RganConfig};
use ig_core::{
    DevSet, FeatureGenerator, InspectorGadget, MatchBackend, Pattern, PatternSource,
    PipelineConfig, RunContext, ScalePlan, ScaleTier,
};
use ig_crowd::{sample_dev_set, CrowdWorkflow};
use ig_eval::metrics::{binary_f1, macro_f1};
use ig_imaging::prepared::PreparedImage;
use ig_nn::Matrix;
use ig_runtime::{infallible, GenerateDataset, PrepareImages};
use ig_synth::spec::DatasetKind;
use ig_synth::{Dataset, LabeledImage, TaskType};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::Arc;

/// One experiment invocation's environment: the shared [`RunContext`]
/// (seed, scale, artifact store) and the output directory.
pub struct ExpEnv {
    /// Run-wide context. Drivers clone it to install a fault plan
    /// ([`RunContext::with_plan`]); the clone shares the artifact store.
    pub ctx: RunContext,
    /// Report output directory.
    pub out: String,
}

impl ExpEnv {
    /// Scale plan shorthand.
    pub fn scale(&self) -> &ScalePlan {
        self.ctx.scale()
    }

    /// Seed shorthand.
    pub fn seed(&self) -> u64 {
        self.ctx.seed()
    }
}

/// A dataset with its sampled development order and the held-out rest.
pub struct Prepared {
    /// The generated dataset (shared via the context's artifact store —
    /// two drivers asking for the same kind/scale/seed get one copy).
    pub dataset: Arc<Dataset>,
    /// Dev indices in annotation order (prefixes = smaller dev sets).
    pub dev_order: Vec<usize>,
    /// Everything not in `dev_order` — the test set whose gold labels
    /// score the weak labels.
    pub test_indices: Vec<usize>,
}

impl Prepared {
    /// Generate (through the context's [`GenerateDataset`] stage) and
    /// split. The dev sampling uses `ctx.rng(0x5eed)`, preserving the
    /// legacy `seed ^ 0x5eed` derivation bit for bit.
    pub fn new(ctx: &RunContext, kind: DatasetKind) -> Prepared {
        let dataset = infallible(ctx.run(&mut GenerateDataset {
            spec: ctx.scale().spec(kind, ctx.seed()),
        }));
        let mut rng = ctx.rng(0x5eed);
        let mut dev_order =
            sample_dev_set(&dataset, ctx.scale().dev_defective_target(kind), &mut rng);
        // Keep at least a third of the data as test and make sure the dev
        // set covers all classes (a tiny sample can hit defectives only,
        // which no labeler can be trained on).
        let cap = (dataset.len() * 2) / 3;
        if dev_order.len() > cap.max(4) {
            dev_order.truncate(cap.max(4));
        }
        let mut in_dev: std::collections::HashSet<usize> = dev_order.iter().copied().collect();
        let classes_in = |dev: &[usize]| -> std::collections::HashSet<usize> {
            dev.iter().map(|&i| dataset.images[i].label).collect()
        };
        let num_classes = dataset.task.num_classes();
        let mut pool: Vec<usize> = (0..dataset.len()).filter(|i| !in_dev.contains(i)).collect();
        use rand::seq::SliceRandom;
        pool.shuffle(&mut rng);
        let mut pool_iter = pool.into_iter();
        while classes_in(&dev_order).len() < num_classes.min(2)
            && dev_order.len() < (dataset.len() * 2) / 3
        {
            let Some(next) = pool_iter.next() else { break };
            in_dev.insert(next);
            dev_order.push(next);
        }
        let test_indices: Vec<usize> = (0..dataset.len()).filter(|i| !in_dev.contains(i)).collect();
        Prepared {
            dataset,
            dev_order,
            test_indices,
        }
    }

    fn prepare(&self, ctx: &RunContext, indices: &[usize]) -> Arc<Vec<PreparedImage>> {
        let images: Vec<&ig_imaging::GrayImage> = indices
            .iter()
            .map(|&i| &self.dataset.images[i].image)
            .collect();
        infallible(ctx.run(&mut PrepareImages::new(images)))
    }

    /// Prepared forms (pyramid + integral tables) of the full dev set in
    /// annotation order, memoized in the context's artifact store: every
    /// arm that scores this dataset shares one build.
    pub fn dev_prepared(&self, ctx: &RunContext) -> Arc<Vec<PreparedImage>> {
        self.prepare(ctx, &self.dev_order)
    }

    /// Prepared forms of the test images, memoized like
    /// [`Prepared::dev_prepared`].
    pub fn test_prepared(&self, ctx: &RunContext) -> Arc<Vec<PreparedImage>> {
        self.prepare(ctx, &self.test_indices)
    }

    /// Number of classes of the task.
    pub fn num_classes(&self) -> usize {
        self.dataset.task.num_classes()
    }

    /// Dev images (full dev set).
    pub fn dev_images(&self) -> Vec<&LabeledImage> {
        self.dev_order
            .iter()
            .map(|&i| &self.dataset.images[i])
            .collect()
    }

    /// A prefix of the dev set of size `k` (clamped).
    pub fn dev_prefix(&self, k: usize) -> Vec<&LabeledImage> {
        self.dev_order
            .iter()
            .take(k.min(self.dev_order.len()))
            .map(|&i| &self.dataset.images[i])
            .collect()
    }

    /// Test images.
    pub fn test_images(&self) -> Vec<&LabeledImage> {
        self.test_indices
            .iter()
            .map(|&i| &self.dataset.images[i])
            .collect()
    }

    /// Gold labels of the test set.
    pub fn test_labels(&self) -> Vec<usize> {
        self.test_indices
            .iter()
            .map(|&i| self.dataset.images[i].label)
            .collect()
    }
}

/// Task-appropriate F1 (positive-class or macro).
pub fn f1(num_classes: usize, gold: &[usize], pred: &[usize]) -> f64 {
    if num_classes == 2 {
        let g: Vec<bool> = gold.iter().map(|&v| v == 1).collect();
        let p: Vec<bool> = pred.iter().map(|&v| v == 1).collect();
        binary_f1(&g, &p).f1
    } else {
        macro_f1(num_classes, gold, pred)
    }
}

/// A sensible default policy combination per dataset kind, standing in
/// for a full Section 4.2 search in the sweep experiments (fig10/table4
/// run the actual search).
pub fn default_policies(kind: DatasetKind) -> Vec<Policy> {
    match kind {
        // Cracks: stretch + rotate (line-shaped defects).
        DatasetKind::Ksdd => vec![
            Policy {
                op: PolicyOp::Rotate,
                magnitude: 12.0,
            },
            Policy {
                op: PolicyOp::ResizeY,
                magnitude: 1.4,
            },
            Policy {
                op: PolicyOp::Brightness,
                magnitude: 1.15,
            },
        ],
        DatasetKind::ProductScratch => vec![
            Policy {
                op: PolicyOp::Rotate,
                magnitude: 8.0,
            },
            Policy {
                op: PolicyOp::ResizeX,
                magnitude: 1.5,
            },
            Policy {
                op: PolicyOp::Brightness,
                magnitude: 0.9,
            },
        ],
        DatasetKind::ProductBubble => vec![
            Policy {
                op: PolicyOp::ResizeX,
                magnitude: 1.2,
            },
            Policy {
                op: PolicyOp::Brightness,
                magnitude: 0.85,
            },
            Policy {
                op: PolicyOp::Noise,
                magnitude: 0.03,
            },
        ],
        DatasetKind::ProductStamping => vec![
            Policy {
                op: PolicyOp::TranslateX,
                magnitude: 2.0,
            },
            Policy {
                op: PolicyOp::Brightness,
                magnitude: 1.1,
            },
            Policy {
                op: PolicyOp::Contrast,
                magnitude: 1.3,
            },
        ],
        DatasetKind::Neu => vec![
            Policy {
                op: PolicyOp::Rotate,
                magnitude: 15.0,
            },
            Policy {
                op: PolicyOp::Contrast,
                magnitude: 1.3,
            },
            Policy {
                op: PolicyOp::Noise,
                magnitude: 0.04,
            },
        ],
    }
}

/// GAN config scaled for experiments.
pub fn gan_config(scale: &ScalePlan) -> RganConfig {
    match scale.tier {
        ScaleTier::Quick => RganConfig::quick(),
        ScaleTier::Medium => RganConfig {
            epochs: 150,
            pattern_side: 12,
            ..RganConfig::default()
        },
        ScaleTier::Paper | ScaleTier::Ooc => RganConfig {
            epochs: 400,
            ..RganConfig::default()
        },
    }
}

/// Everything produced by one Inspector Gadget run.
pub struct IgRun {
    /// F1 of the weak labels on the test set.
    pub f1: f64,
    /// Per-test-image max FGF similarity (error analysis).
    pub max_similarities: Vec<f32>,
    /// Weak labels on the test set.
    pub weak_labels: Vec<usize>,
    /// Feature matrices so baselines can reuse them.
    pub dev_features: Matrix,
    /// Feature matrices so baselines can reuse them.
    pub test_features: Matrix,
}

/// Run the full Inspector Gadget pipeline on a prepared dataset.
///
/// `dev` is the (possibly prefixed) development set; patterns come from
/// the crowd workflow, get augmented with `method`, then the tuned
/// labeler weak-labels the test set. All cacheable stages memoize in
/// `ctx`'s artifact store.
#[allow(clippy::too_many_arguments)]
pub fn run_inspector_gadget(
    ctx: &RunContext,
    prepared: &Prepared,
    dev: &[&LabeledImage],
    method: AugmentMethod,
    budget: usize,
    tune: bool,
    kind: DatasetKind,
    seed: u64,
) -> Option<IgRun> {
    let mut rng = StdRng::seed_from_u64(seed);
    let crowd_out = CrowdWorkflow::full().run(dev, &mut rng);
    if crowd_out.patterns.is_empty() {
        return None;
    }
    let policies = default_policies(kind);
    let all_patterns = augment(
        &crowd_out.patterns,
        method,
        budget,
        &policies,
        &gan_config(ctx.scale()),
        &mut rng,
    );
    run_ig_with_patterns(ctx, prepared, dev, all_patterns, tune, seed)
}

/// Run IG given an explicit pattern set (used by ablations).
pub fn run_ig_with_patterns(
    ctx: &RunContext,
    prepared: &Prepared,
    dev: &[&LabeledImage],
    patterns: Vec<ig_imaging::GrayImage>,
    tune: bool,
    seed: u64,
) -> Option<IgRun> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xa5a5);
    let patterns = Pattern::wrap_all(patterns, PatternSource::Crowd);
    let dev_images: Vec<&ig_imaging::GrayImage> = dev.iter().map(|l| &l.image).collect();
    let dev_labels: Vec<usize> = dev.iter().map(|l| l.label).collect();
    // Need both classes in dev.
    {
        let mut seen = std::collections::HashSet::new();
        for &l in &dev_labels {
            seen.insert(l);
        }
        if seen.len() < 2 {
            return None;
        }
    }
    let num_classes = prepared.num_classes();
    let config = PipelineConfig {
        backend: MatchBackend::Pyramid,
        tune,
        ..Default::default()
    };
    // Every driver passes a prefix of the annotation order, which lets
    // the store-backed prepared-image artifact serve the training batch;
    // an arbitrary dev slice falls back to raw images.
    let dev_is_prefix = dev.len() <= prepared.dev_order.len()
        && dev
            .iter()
            .zip(&prepared.dev_order)
            .all(|(l, &i)| std::ptr::eq(*l, &prepared.dataset.images[i]));
    let dev_prep = dev_is_prefix.then(|| prepared.dev_prepared(ctx));
    let ig = match &dev_prep {
        Some(all) => InspectorGadget::train_in(
            ctx,
            patterns,
            DevSet::Prepared(&all[..dev.len()]),
            &dev_labels,
            num_classes,
            &config,
            &mut rng,
        ),
        None => InspectorGadget::train_in(
            ctx,
            patterns,
            DevSet::Raw(&dev_images),
            &dev_labels,
            num_classes,
            &config,
            &mut rng,
        ),
    }
    .ok()?;
    let test_prep = prepared.test_prepared(ctx);
    let test_features = ig.features_in(ctx, DevSet::Prepared(&test_prep));
    let out = ig.label_from_features(&test_features);
    let gold = prepared.test_labels();
    let score = f1(num_classes, &gold, &out.labels);
    // The dev matrix was already computed (and tuned on) during training.
    let dev_features = ig.dev_features().clone();
    Some(IgRun {
        f1: score,
        max_similarities: out.max_similarities,
        weak_labels: out.labels,
        dev_features,
        test_features: (*test_features).clone(),
    })
}

/// Crowd patterns only (no augmentation) — shared by several drivers.
pub fn crowd_patterns(
    dev: &[&LabeledImage],
    workflow: &CrowdWorkflow,
    seed: u64,
) -> Vec<ig_imaging::GrayImage> {
    let mut rng = StdRng::seed_from_u64(seed);
    workflow.run(dev, &mut rng).patterns
}

/// Dispatch: a FeatureGenerator over raw crops.
pub fn feature_generator(patterns: &[ig_imaging::GrayImage]) -> Option<FeatureGenerator> {
    FeatureGenerator::new(Pattern::wrap_all(patterns.to_vec(), PatternSource::Crowd)).ok()
}

/// Report writer: pretty text to stdout, JSON records to `results/`.
pub struct Report {
    name: String,
    out_dir: PathBuf,
    lines: Vec<String>,
}

impl Report {
    /// Create for an experiment id like "table4".
    pub fn new(name: &str, out_dir: &str) -> Report {
        Report {
            name: name.to_string(),
            out_dir: PathBuf::from(out_dir),
            lines: Vec::new(),
        }
    }

    /// Print and remember a line.
    pub fn line(&mut self, text: impl AsRef<str>) {
        println!("{}", text.as_ref());
        self.lines.push(text.as_ref().to_string());
    }

    /// Persist the text and a JSON payload.
    pub fn finish<T: Serialize>(self, payload: &T) {
        if std::fs::create_dir_all(&self.out_dir).is_err() {
            return;
        }
        let txt_path = self.out_dir.join(format!("{}.txt", self.name));
        if let Ok(mut f) = std::fs::File::create(&txt_path) {
            let _ = writeln!(f, "{}", self.lines.join("\n"));
        }
        let json_path = self.out_dir.join(format!("{}.json", self.name));
        if let Ok(json) = serde_json::to_string_pretty(payload) {
            let _ = std::fs::write(json_path, json);
        }
    }
}

/// All dataset kinds at a scale — NEU excluded at quick scale for speed
/// in CI-style runs? No: keep all five; quick NEU is small.
pub fn all_kinds() -> [DatasetKind; 5] {
    DatasetKind::all()
}

/// Human-readable task tag used by Table 1.
pub fn task_name(task: TaskType) -> &'static str {
    match task {
        TaskType::Binary => "Binary",
        TaskType::MultiClass(_) => "Multi-class",
    }
}
