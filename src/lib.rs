//! # inspector-gadget
//!
//! A pure-Rust reproduction of **"Inspector Gadget: A Data
//! Programming-based Labeling System for Industrial Images"** (Heo, Roh,
//! Hwang, Lee & Whang, VLDB 2020), including every substrate the paper
//! depends on: an imaging stack with pyramid NCC template matching, a
//! from-scratch neural network library (MLPs with L-BFGS, CNNs,
//! Relativistic GAN with spectral normalization), synthetic industrial
//! dataset simulacra, a crowdsourcing simulation, and the baselines the
//! paper compares against (Snuba, GOGGLES, self-learning and transfer-
//! learning CNNs).
//!
//! ## Quickstart
//!
//! ```
//! use inspector_gadget::prelude::*;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//!
//! // 1. A (synthetic) industrial dataset: strip images, scratch defects.
//! let dataset = inspector_gadget::synth::generate(
//!     &DatasetSpec::quick(DatasetKind::ProductScratch, 7),
//! );
//!
//! // 2. Crowd workers annotate a small development set.
//! let dev_indices = sample_dev_set(&dataset, 8, &mut rng);
//! let dev: Vec<&LabeledImage> = dev_indices.iter().map(|&i| &dataset.images[i]).collect();
//! let crowd_out = CrowdWorkflow::full().run(&dev, &mut rng);
//!
//! // 3. Patterns + dev labels train the pipeline; it weak-labels the rest.
//! let patterns = Pattern::wrap_all(crowd_out.patterns, PatternSource::Crowd);
//! let dev_images: Vec<&GrayImage> = dev.iter().map(|l| &l.image).collect();
//! let dev_labels: Vec<usize> = dev.iter().map(|l| l.label).collect();
//! let config = PipelineConfig { tune: false, ..Default::default() };
//! let ig = InspectorGadget::train(patterns, &dev_images, &dev_labels, 2, &config, &mut rng)
//!     .expect("training succeeds");
//! let unlabeled: Vec<&GrayImage> = dataset.images.iter().map(|l| &l.image).collect();
//! let weak = ig.label(&unlabeled);
//! assert_eq!(weak.labels.len(), dataset.len());
//! ```

pub use ig_augment as augment;
pub use ig_baselines as baselines;
pub use ig_core as core;
pub use ig_crowd as crowd;
pub use ig_eval as eval;
pub use ig_faults as faults;
pub use ig_imaging as imaging;
pub use ig_nn as nn;
pub use ig_synth as synth;

/// One-stop imports for the common workflow.
pub mod prelude {
    pub use ig_augment::{augment, AugmentMethod, Policy, PolicyOp, Rgan, RganConfig};
    pub use ig_core::{
        FeatureGenerator, InspectorGadget, Labeler, MatchBackend, Pattern, PatternSource,
        PipelineConfig, WeakLabelOutput,
    };
    pub use ig_crowd::{sample_dev_set, CombineStrategy, CrowdWorkflow, WorkerModel};
    pub use ig_eval::{binary_f1, macro_f1, ConfusionMatrix};
    pub use ig_faults::{FaultPlan, HealthReport};
    pub use ig_imaging::{BBox, GrayImage};
    pub use ig_synth::spec::{DatasetKind, DatasetSpec};
    pub use ig_synth::{Dataset, LabeledImage, TaskType};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        use crate::prelude::*;
        let img = GrayImage::filled(4, 4, 0.5);
        assert_eq!(img.dims(), (4, 4));
        let _ = DatasetSpec::quick(DatasetKind::Ksdd, 0);
    }
}
