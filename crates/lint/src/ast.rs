//! A tolerant recursive-descent parser over the lexer's token stream.
//!
//! The token-level rules of ig-lint v1 cannot see *structure*: whether a
//! `Result` flows into `?` or dies in `let _ =`, how deeply a call site is
//! nested in loops, or which literal dimensions feed a constructor. This
//! parser recovers exactly the structure those rules (E1 error-flow,
//! H1 hot-loop-alloc, S1 shape-contract) need — items, fn signatures,
//! blocks, `let`/`match`/call/method-chain expressions, and loop nesting —
//! from the same zero-dependency token stream.
//!
//! Design constraints, in order:
//!
//! 1. **Never panic.** All indexing is checked; a fuel counter bounds the
//!    total work so even adversarial input terminates.
//! 2. **Degrade, don't fail.** Unparseable fragments become [`ExprKind::Opaque`]
//!    spans and a [`ParseError`] is recorded; every other function in the
//!    file still gets a full AST, and the token-level rules are unaffected.
//! 3. **No type system.** The grammar is simplified (operator precedence is
//!    flattened, patterns are spans) because the rules only consume names,
//!    shapes, and nesting — not semantics.

use crate::lexer::{Token, TokenKind};

/// Half-open range of token indices, `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    pub lo: usize,
    pub hi: usize,
}

impl Span {
    /// Borrow the tokens this span covers (empty on out-of-range).
    pub fn tokens<'t>(&self, toks: &'t [Token]) -> &'t [Token] {
        toks.get(self.lo..self.hi.min(toks.len())).unwrap_or(&[])
    }
}

/// What a function's signature says it returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReturnKind {
    /// No `->` arrow.
    Unit,
    /// Last path segment of the return type ends with `Result`
    /// (`Result<T, E>`, `io::Result<T>`, `crate::Result<T>`).
    Result,
    /// Return type is `Option<T>`.
    Option,
    /// Anything else.
    Other,
}

/// One parsed `fn` item (free function, method, or nested fn).
#[derive(Debug)]
pub struct FnDecl {
    pub name: String,
    /// Token index of the name identifier.
    pub name_tok: usize,
    pub returns: ReturnKind,
    pub body: Block,
    /// Span from the `fn` keyword through the body's closing brace.
    pub span: Span,
    /// Parameter names in declaration order (`self` included when present;
    /// pattern parameters the parser cannot name are omitted).
    pub params: Vec<String>,
    /// Inline-`mod` path from the file root to this fn (empty at top level).
    pub module: Vec<String>,
}

/// One flattened leaf of a `use` tree: `use a::b::{c, d as e};` yields two
/// decls. Globs record a trailing `*` segment with alias `*`.
#[derive(Debug, Clone)]
pub struct UseDecl {
    /// Full path segments as written (`crate`/`self`/`super` preserved).
    pub path: Vec<String>,
    /// Name the import binds locally: the alias after `as`, else the last
    /// real segment (`use a::b::{self}` binds `b`).
    pub alias: String,
    /// Inline-`mod` path of the module the `use` sits in.
    pub module: Vec<String>,
    pub line: u32,
}

/// One `impl` block header plus the fns declared inside it.
#[derive(Debug)]
pub struct ImplDecl {
    /// `impl Trait for Type` trait path; `None` for inherent impls.
    pub trait_path: Option<Vec<String>>,
    /// Path of the implementing type, generics stripped (`Type`, `a::Type`).
    pub self_path: Vec<String>,
    /// Indices into [`Ast::fns`] of fns declared in this block (including
    /// fns nested inside method bodies — an over-approximation callers
    /// filter by name when it matters).
    pub fn_ids: Vec<usize>,
    /// Inline-`mod` path of the module the impl sits in.
    pub module: Vec<String>,
    pub span: Span,
}

/// A `{ ... }` block.
#[derive(Debug, Default)]
pub struct Block {
    pub stmts: Vec<Stmt>,
    pub span: Span,
}

/// One statement.
#[derive(Debug)]
pub enum Stmt {
    Let(LetStmt),
    Expr(ExprStmt),
    /// A nested item (its fns are also collected into [`Ast::fns`]).
    Item(Span),
    /// A stray `;`.
    Empty(usize),
}

/// The pattern of a `let` binding, simplified.
#[derive(Debug)]
pub enum LetPat {
    /// `let _ = ...` — token index of the `_`.
    Wild(usize),
    /// `let name = ...` / `let mut name = ...`.
    Name { name: String, tok: usize },
    /// Tuple, struct, or enum patterns; the rules treat these as opaque.
    Other(Span),
}

/// `let PAT (: TYPE)? (= EXPR)? (else BLOCK)? ;`
#[derive(Debug)]
pub struct LetStmt {
    pub pat: LetPat,
    pub init: Option<Expr>,
    pub else_block: Option<Block>,
    /// Token index of the `let` keyword.
    pub let_tok: usize,
    pub span: Span,
}

/// An expression statement, with or without a trailing `;`.
#[derive(Debug)]
pub struct ExprStmt {
    pub expr: Expr,
    pub has_semi: bool,
    pub span: Span,
}

/// Which loop construct introduced a nesting level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopKind {
    For,
    While,
    Loop,
    /// A closure passed to a per-element iterator adapter (`.map(|x| ...)`)
    /// — its body runs once per element, so it nests like a loop.
    AdapterClosure,
}

/// An expression node.
#[derive(Debug)]
pub struct Expr {
    pub kind: ExprKind,
    pub span: Span,
    /// Loop nesting depth at this node: number of enclosing `for`/`while`/
    /// `loop` bodies plus adapter closures (see [`LoopKind::AdapterClosure`]).
    pub depth: u32,
}

/// Expression shapes the rules consume. Anything else is flattened into
/// `Binary`/`Opaque` with children preserved for recursive walks.
#[derive(Debug)]
pub enum ExprKind {
    /// `a::b::c` — segments without turbofish args.
    Path(Vec<String>),
    /// Literal token (int, float, string, char).
    Lit { kind: TokenKind, tok: usize },
    /// `callee(args)`.
    Call { callee: Box<Expr>, args: Vec<Expr> },
    /// `recv.method(args)`.
    MethodCall {
        recv: Box<Expr>,
        method: String,
        method_tok: usize,
        args: Vec<Expr>,
    },
    /// `name!(args)` / `name![args]` / `name!{args}`.
    Macro {
        name: String,
        name_tok: usize,
        args: Vec<Expr>,
        /// `vec![elem; len]` repeat form.
        repeat: Option<(Box<Expr>, Box<Expr>)>,
    },
    /// `expr?`.
    Try(Box<Expr>),
    /// `expr.field` / `expr.0` / `expr.await`.
    Field { base: Box<Expr>, name: String },
    /// `base[index]`.
    Index { base: Box<Expr>, index: Box<Expr> },
    /// Prefix `& * - !` applied to an expression.
    Unary(Box<Expr>),
    /// Flattened operator sequence `a + b * c` (precedence is irrelevant to
    /// the rules; children are in source order).
    Binary { children: Vec<Expr> },
    /// `expr as Type`.
    Cast(Box<Expr>),
    /// `(a, b)` / `(a)`.
    Tuple(Vec<Expr>),
    /// `[a, b, c]`.
    Array(Vec<Expr>),
    /// `[elem; len]`.
    Repeat { elem: Box<Expr>, len: Box<Expr> },
    /// `Path { field: expr, .. }`.
    StructLit {
        path: Vec<String>,
        fields: Vec<Expr>,
        /// Field name for each entry of `fields`, in the same order.
        /// `None` for shorthand init (the value expr *is* the name) and
        /// for entries the parser could not attribute.
        names: Vec<Option<String>>,
    },
    /// `if cond { .. } else ..` (`cond` covers `if let` via `Binary`).
    If {
        cond: Box<Expr>,
        then: Block,
        els: Option<Box<Expr>>,
    },
    /// `match scrutinee { pat => expr, .. }`; patterns stay as spans.
    Match {
        scrutinee: Box<Expr>,
        arms: Vec<(Span, Expr)>,
    },
    /// `for`/`while`/`loop` with its body (depth already bumped inside).
    Loop { kind: LoopKind, body: Block },
    /// `{ ... }` in expression position.
    BlockExpr(Block),
    /// `|args| body` / `move |args| body`.
    Closure { body: Box<Expr> },
    /// `let PAT = expr` inside an `if`/`while` condition.
    LetCond { pat: Span, expr: Box<Expr> },
    /// `return (expr)?` / `break (expr)?` / `continue`.
    Jump(Option<Box<Expr>>),
    /// Tokens the parser could not structure; span preserved for recovery.
    Opaque,
}

/// A recoverable parse failure.
#[derive(Debug, Clone)]
pub struct ParseError {
    pub line: u32,
    pub msg: String,
}

/// Parser output: every `fn` in the file plus any recoverable errors.
#[derive(Debug, Default)]
pub struct Ast {
    pub fns: Vec<FnDecl>,
    /// Flattened `use` declarations, in source order.
    pub uses: Vec<UseDecl>,
    /// `impl` blocks, in source order.
    pub impls: Vec<ImplDecl>,
    pub errors: Vec<ParseError>,
}

impl Ast {
    /// True when the file parsed without structural surprises.
    pub fn clean(&self) -> bool {
        self.errors.is_empty()
    }

    /// Signature table: return kind of every fn *declared in this file*,
    /// last declaration wins. Used by E1 to decide fallibility.
    pub fn signatures(&self) -> std::collections::BTreeMap<&str, ReturnKind> {
        self.fns
            .iter()
            .map(|f| (f.name.as_str(), f.returns))
            .collect()
    }
}

/// Per-element iterator adapters whose closure argument executes once per
/// item: passing a closure here nests it one loop level deeper.
const ITER_ADAPTERS: &[&str] = &[
    "map",
    "filter",
    "filter_map",
    "flat_map",
    "for_each",
    "fold",
    "try_fold",
    "retain",
    "scan",
    "inspect",
    "map_while",
    "take_while",
    "skip_while",
    "position",
    "find",
    "find_map",
    "any",
    "all",
    "sort_by",
    "sort_by_key",
    "max_by",
    "max_by_key",
    "min_by",
    "min_by_key",
];

/// Item-introducing keywords the item scanner understands.
const ITEM_KEYWORDS: &[&str] = &[
    "fn",
    "struct",
    "enum",
    "union",
    "type",
    "use",
    "const",
    "static",
    "trait",
    "impl",
    "mod",
    "extern",
    "macro_rules",
    "macro",
];

/// Binary / assignment operators (the parser flattens precedence).
const BINOPS: &[&str] = &[
    "+", "-", "*", "/", "%", "==", "!=", "<", ">", "<=", ">=", "&&", "||", "&", "|", "^", "<<",
    ">>", "..", "..=", "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=",
];

/// Parse one file's token stream.
pub fn parse(toks: &[Token]) -> Ast {
    let mut p = Parser {
        toks,
        pos: 0,
        depth: 0,
        nest: 0,
        no_struct: 0,
        adapter_arg: false,
        mods: Vec::new(),
        fuel: toks.len().saturating_mul(16).saturating_add(1024),
        ast: Ast::default(),
    };
    p.items_until(None);
    p.ast
}

/// Maximum parser recursion depth; beyond this, nested constructs are
/// consumed flat as [`ExprKind::Opaque`] (degrade, don't blow the stack).
const MAX_NEST: u32 = 128;

struct Parser<'t> {
    toks: &'t [Token],
    pos: usize,
    depth: u32,
    /// Current parser recursion depth (nothing to do with loop `depth`).
    nest: u32,
    /// Nonzero while parsing a condition/scrutinee, where `Path {` is a
    /// block, not a struct literal.
    no_struct: u32,
    /// True while parsing the argument list of an iterator adapter: closure
    /// bodies there run per element and get `depth + 1`.
    adapter_arg: bool,
    /// Inline-`mod` path from the file root to the current item position.
    mods: Vec<String>,
    fuel: usize,
    ast: Ast,
}

impl<'t> Parser<'t> {
    // ---- token plumbing -------------------------------------------------

    fn peek(&self) -> Option<&'t Token> {
        self.toks.get(self.pos)
    }

    fn peek_at(&self, off: usize) -> Option<&'t Token> {
        self.toks.get(self.pos + off)
    }

    fn bump(&mut self) -> Option<&'t Token> {
        let t = self.toks.get(self.pos)?;
        self.pos += 1;
        self.fuel = self.fuel.saturating_sub(1);
        Some(t)
    }

    fn out_of_fuel(&mut self) -> bool {
        if self.fuel == 0 {
            if self
                .ast
                .errors
                .last()
                .is_none_or(|e| e.msg != "parser fuel exhausted")
            {
                self.error("parser fuel exhausted");
            }
            self.pos = self.toks.len();
            true
        } else {
            false
        }
    }

    fn at_ident(&self, s: &str) -> bool {
        self.peek().is_some_and(|t| t.is_ident(s))
    }

    fn at_punct(&self, s: &str) -> bool {
        self.peek().is_some_and(|t| t.is_punct(s))
    }

    fn eat_punct(&mut self, s: &str) -> bool {
        if self.at_punct(s) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_ident(&mut self, s: &str) -> bool {
        if self.at_ident(s) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn error(&mut self, msg: &str) {
        let line = self
            .toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map_or(0, |t| t.line);
        if self.ast.errors.len() < 64 {
            self.ast.errors.push(ParseError {
                line,
                msg: msg.to_string(),
            });
        }
    }

    fn mk(&self, kind: ExprKind, lo: usize) -> Expr {
        Expr {
            kind,
            span: Span { lo, hi: self.pos },
            depth: self.depth,
        }
    }

    /// Skip a balanced `( )` / `[ ]` / `{ }` group starting at the current
    /// open delimiter. Progress is guaranteed. Returns false when the close
    /// was never found (EOF) — callers that can recover should rewind.
    fn skip_group(&mut self, open: &str, close: &str) -> bool {
        let mut depth = 0usize;
        while let Some(t) = self.peek() {
            if self.out_of_fuel() {
                return false;
            }
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth = depth.saturating_sub(1);
                self.bump();
                if depth == 0 {
                    return true;
                }
                continue;
            }
            self.bump();
        }
        false
    }

    /// Skip generic params `<...>`, tolerating `>>`/`<<` shift tokens.
    fn skip_angles(&mut self) {
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            if self.out_of_fuel() {
                return;
            }
            match t.text.as_str() {
                "<" => depth += 1,
                "<<" => depth += 2,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                "(" => {
                    self.skip_group("(", ")");
                    continue;
                }
                "[" => {
                    self.skip_group("[", "]");
                    continue;
                }
                ";" | "{" | "}" => return, // never part of generics at depth we care about
                _ => {}
            }
            self.bump();
            if depth <= 0 {
                return;
            }
        }
    }

    /// Skip type tokens (after `:` in a let, after `as`, in a return type),
    /// stopping at any of `stop` at bracket depth 0.
    fn skip_type(&mut self, stop: &[&str]) {
        let mut angle = 0i32;
        let mut paren = 0i32;
        let mut bracket = 0i32;
        while let Some(t) = self.peek() {
            if self.out_of_fuel() {
                return;
            }
            let s = t.text.as_str();
            if angle <= 0 && paren == 0 && bracket == 0 && stop.contains(&s) {
                return;
            }
            match s {
                "<" => angle += 1,
                "<<" => angle += 2,
                ">" => angle -= 1,
                ">>" => angle -= 2,
                "->" => {}
                "(" => paren += 1,
                ")" => {
                    if paren == 0 {
                        return;
                    }
                    paren -= 1;
                }
                "[" => bracket += 1,
                "]" => {
                    if bracket == 0 {
                        return;
                    }
                    bracket -= 1;
                }
                "{" | "}" | ";" => return,
                _ => {}
            }
            self.bump();
        }
    }

    /// Skip `#[...]` / `#![...]` attributes.
    fn skip_attrs(&mut self) {
        while self.at_punct("#") {
            if self.out_of_fuel() {
                return;
            }
            self.bump();
            self.eat_punct("!");
            if self.at_punct("[") {
                self.skip_group("[", "]");
            }
        }
    }

    // ---- items ----------------------------------------------------------

    /// Parse items until EOF (`close == None`) or a closing `}`.
    fn items_until(&mut self, close: Option<&str>) {
        while let Some(t) = self.peek() {
            if self.out_of_fuel() {
                return;
            }
            if let Some(c) = close {
                if t.is_punct(c) {
                    return;
                }
            }
            self.item();
        }
    }

    fn item(&mut self) {
        self.skip_attrs();
        // Qualifiers before the item keyword.
        loop {
            if self.at_ident("pub") {
                self.bump();
                if self.at_punct("(") {
                    self.skip_group("(", ")"); // pub(crate), pub(in ...)
                }
            } else if self.at_ident("unsafe")
                || self.at_ident("async")
                || self.at_ident("default")
                || self.at_ident("const") && self.peek_at(1).is_some_and(|t| t.is_ident("fn"))
            {
                self.bump();
            } else {
                break;
            }
        }
        let Some(t) = self.peek() else { return };
        match t.text.as_str() {
            "fn" => self.fn_item(),
            "impl" => self.impl_item(),
            "mod" => self.mod_item(),
            "use" => self.use_item(),
            "trait" => {
                self.bump();
                // Scan to the body brace (or `;` for an alias bound).
                let mut found_body = false;
                while let Some(t) = self.peek() {
                    if self.out_of_fuel() {
                        return;
                    }
                    match t.text.as_str() {
                        "{" => {
                            found_body = true;
                            break;
                        }
                        ";" => {
                            self.bump();
                            break;
                        }
                        "<" => {
                            self.skip_angles();
                            continue;
                        }
                        "(" => {
                            self.skip_group("(", ")");
                            continue;
                        }
                        "[" => {
                            self.skip_group("[", "]");
                            continue;
                        }
                        _ => {
                            self.bump();
                        }
                    }
                }
                if found_body {
                    self.bump(); // `{`
                    self.items_until(Some("}"));
                    self.eat_punct("}");
                }
            }
            kw if ITEM_KEYWORDS.contains(&kw) => {
                // struct/enum/use/const/static/type/extern/macro…: skip to
                // `;` or the matching close of the first body brace.
                self.bump();
                let mut paren = 0i32;
                let mut bracket = 0i32;
                while let Some(t) = self.peek() {
                    if self.out_of_fuel() {
                        return;
                    }
                    match t.text.as_str() {
                        "(" => paren += 1,
                        ")" => paren -= 1,
                        "[" => bracket += 1,
                        "]" => bracket -= 1,
                        "<" => {
                            self.skip_angles();
                            continue;
                        }
                        ";" if paren == 0 && bracket == 0 => {
                            self.bump();
                            return;
                        }
                        "{" if paren == 0 && bracket == 0 => {
                            self.skip_group("{", "}");
                            // `struct S { .. }` ends here; tuple structs
                            // continue to `;`, handled by the next loop turn
                            // only if a `;` immediately follows.
                            self.eat_punct(";");
                            return;
                        }
                        _ => {}
                    }
                    self.bump();
                }
            }
            _ => {
                // Unknown token at item position: record once and advance.
                self.error(&format!("unexpected token `{}` at item position", t.text));
                self.bump();
            }
        }
    }

    fn fn_item(&mut self) {
        let lo = self.pos;
        self.bump(); // `fn`
        let (name, name_tok) = match self.peek() {
            Some(t) if t.kind == TokenKind::Ident => {
                let out = (t.text.clone(), self.pos);
                self.bump();
                out
            }
            _ => {
                self.error("expected fn name");
                (String::new(), lo)
            }
        };
        if self.at_punct("<") {
            self.skip_angles();
        }
        let mut params = Vec::new();
        if self.at_punct("(") {
            let params_at = self.pos;
            if !self.skip_group("(", ")") {
                // Unclosed parameter list would swallow the rest of the
                // file; step back inside it and let recovery continue.
                self.pos = params_at + 1;
                self.error("unclosed fn parameter list");
            } else {
                params = param_names(&self.toks[params_at + 1..self.pos.saturating_sub(1)]);
            }
        }
        let mut returns = ReturnKind::Unit;
        if self.at_punct("->") {
            self.bump();
            let ty_lo = self.pos;
            self.skip_type(&["where"]);
            returns = classify_return(
                &self.toks[ty_lo.min(self.toks.len())..self.pos.min(self.toks.len())],
            );
        }
        if self.at_ident("where") {
            self.bump();
            self.skip_type(&[]);
        }
        if self.at_punct(";") {
            // Trait method declaration — no body, nothing for the rules.
            self.bump();
            return;
        }
        if !self.at_punct("{") {
            self.error("expected fn body");
            return;
        }
        let body = self.block();
        self.ast.fns.push(FnDecl {
            name,
            name_tok,
            returns,
            body,
            span: Span { lo, hi: self.pos },
            params,
            module: self.mods.clone(),
        });
    }

    /// Parse the type path after `impl` (or after `for`): ident segments
    /// joined by `::`, generics and leading `&`/`dyn`/`mut` stripped.
    fn type_path(&mut self) -> Vec<String> {
        while self.at_punct("&")
            || self.at_punct("&&")
            || self.at_ident("mut")
            || self.at_ident("dyn")
        {
            self.bump();
        }
        let mut segs = Vec::new();
        loop {
            if self.out_of_fuel() {
                break;
            }
            match self.peek() {
                Some(t)
                    if t.kind == TokenKind::Ident && !t.is_ident("for") && !t.is_ident("where") =>
                {
                    segs.push(t.text.clone());
                    self.bump();
                }
                _ => break,
            }
            if self.at_punct("<") {
                self.skip_angles();
            }
            if self.at_punct("::") {
                self.bump();
                continue;
            }
            break;
        }
        segs
    }

    /// `impl (<..>)? TraitPath (for TypePath)? (where ..)? { items }` —
    /// records the header and the index range of fns parsed in the body.
    fn impl_item(&mut self) {
        let lo = self.pos;
        self.bump(); // `impl`
        if self.at_punct("<") {
            self.skip_angles();
        }
        self.eat_punct("!"); // negative impls
        let first = self.type_path();
        let (trait_path, self_path) = if self.eat_ident("for") {
            (Some(first), self.type_path())
        } else {
            (None, first)
        };
        // `where` clause / anything else before the body.
        while let Some(t) = self.peek() {
            if self.out_of_fuel() {
                return;
            }
            match t.text.as_str() {
                "{" => break,
                ";" => {
                    self.bump();
                    return;
                }
                "<" => self.skip_angles(),
                "(" => {
                    self.skip_group("(", ")");
                }
                "[" => {
                    self.skip_group("[", "]");
                }
                _ => {
                    self.bump();
                }
            }
        }
        if !self.eat_punct("{") {
            return;
        }
        let fns_lo = self.ast.fns.len();
        self.items_until(Some("}"));
        self.eat_punct("}");
        self.ast.impls.push(ImplDecl {
            trait_path,
            self_path,
            fn_ids: (fns_lo..self.ast.fns.len()).collect(),
            module: self.mods.clone(),
            span: Span { lo, hi: self.pos },
        });
    }

    /// `mod name;` or `mod name { items }` — pushes onto the module path
    /// while the body parses.
    fn mod_item(&mut self) {
        self.bump(); // `mod`
        let name = match self.peek() {
            Some(t) if t.kind == TokenKind::Ident => {
                let n = t.text.clone();
                self.bump();
                n
            }
            _ => {
                self.error("expected mod name");
                return;
            }
        };
        if self.eat_punct(";") {
            return;
        }
        if !self.eat_punct("{") {
            self.error("expected mod body");
            return;
        }
        self.mods.push(name);
        self.items_until(Some("}"));
        self.eat_punct("}");
        self.mods.pop();
    }

    /// `use tree;` — flattens the use tree into [`Ast::uses`] leaves.
    fn use_item(&mut self) {
        let line = self.peek().map_or(0, |t| t.line);
        self.bump(); // `use`
        let mut prefix = Vec::new();
        self.use_tree(&mut prefix, line, 0);
        // Recover to the end of the item whatever the tree looked like.
        while let Some(t) = self.peek() {
            if self.out_of_fuel() {
                return;
            }
            if t.is_punct(";") {
                self.bump();
                return;
            }
            if t.is_punct("{") {
                self.skip_group("{", "}");
                continue;
            }
            if t.is_punct("}") {
                return; // don't eat the enclosing module's close
            }
            self.bump();
        }
    }

    /// One branch of a use tree; `prefix` holds the segments accumulated so
    /// far and is restored before returning.
    fn use_tree(&mut self, prefix: &mut Vec<String>, line: u32, depth: u32) {
        let mark = prefix.len();
        if depth > 16 {
            return; // pathological nesting; recovery in use_item skips the rest
        }
        loop {
            if self.out_of_fuel() {
                break;
            }
            if self.at_punct("{") {
                self.bump();
                loop {
                    if self.out_of_fuel() {
                        break;
                    }
                    let Some(t) = self.peek() else { break };
                    if t.is_punct("}") {
                        self.bump();
                        break;
                    }
                    if t.is_punct(",") {
                        self.bump();
                        continue;
                    }
                    let before = self.pos;
                    self.use_tree(prefix, line, depth + 1);
                    if self.pos == before {
                        self.bump();
                    }
                }
                break;
            }
            if self.at_punct("*") {
                self.bump();
                let mut path = prefix.clone();
                path.push("*".to_string());
                self.record_use(path, "*".to_string(), line);
                break;
            }
            match self.peek() {
                Some(t) if t.kind == TokenKind::Ident && !t.is_ident("as") => {
                    prefix.push(t.text.clone());
                    self.bump();
                }
                _ => break,
            }
            if self.at_punct("::") {
                self.bump();
                continue;
            }
            // End of this branch's path: optional rename, then record.
            let alias = if self.eat_ident("as") {
                match self.peek() {
                    Some(t) if t.kind == TokenKind::Ident || t.is_punct("_") => {
                        let a = t.text.clone();
                        self.bump();
                        a
                    }
                    _ => String::new(),
                }
            } else {
                String::new()
            };
            let mut path = prefix.clone();
            // `use a::b::{self}` binds `b`, not `self`.
            if path.last().is_some_and(|s| s == "self") && path.len() > 1 {
                path.pop();
            }
            let alias = if alias.is_empty() {
                path.last().cloned().unwrap_or_default()
            } else {
                alias
            };
            self.record_use(path, alias, line);
            break;
        }
        prefix.truncate(mark);
    }

    fn record_use(&mut self, path: Vec<String>, alias: String, line: u32) {
        if path.is_empty() || self.ast.uses.len() >= 1024 {
            return;
        }
        self.ast.uses.push(UseDecl {
            path,
            alias,
            module: self.mods.clone(),
            line,
        });
    }

    // ---- statements -----------------------------------------------------

    /// Parse a `{ ... }` block; the cursor must sit on `{`.
    fn block(&mut self) -> Block {
        let lo = self.pos;
        let mut stmts = Vec::new();
        if self.nest >= MAX_NEST {
            // Too deep: consume the whole group flat and move on.
            if self.at_punct("{") {
                self.skip_group("{", "}");
            }
            self.error("nesting too deep; block skipped");
            return Block {
                stmts,
                span: Span { lo, hi: self.pos },
            };
        }
        self.nest += 1;
        if !self.eat_punct("{") {
            self.nest -= 1;
            return Block {
                stmts,
                span: Span { lo, hi: self.pos },
            };
        }
        let saved_no_struct = std::mem::take(&mut self.no_struct);
        loop {
            if self.out_of_fuel() {
                break;
            }
            let Some(t) = self.peek() else {
                self.error("unclosed block");
                break;
            };
            if t.is_punct("}") {
                self.bump();
                break;
            }
            if t.is_punct(";") {
                stmts.push(Stmt::Empty(self.pos));
                self.bump();
                continue;
            }
            if t.is_punct("#") {
                self.skip_attrs();
                continue;
            }
            if t.is_ident("let") {
                stmts.push(self.let_stmt());
                continue;
            }
            // Nested items inside the block.
            let is_item = ITEM_KEYWORDS.contains(&t.text.as_str())
                && !t.is_ident("const") // `const { .. }` blocks are exprs; const items rare in fns
                || (t.is_ident("pub"));
            if is_item && !t.is_ident("impl") {
                let item_lo = self.pos;
                self.item();
                if self.pos == item_lo {
                    self.bump(); // guarantee progress
                }
                stmts.push(Stmt::Item(Span {
                    lo: item_lo,
                    hi: self.pos,
                }));
                continue;
            }
            let stmt_lo = self.pos;
            let expr = self.expr();
            let has_semi = self.eat_punct(";");
            if self.pos == stmt_lo {
                // Expression made no progress (shouldn't happen; belt and
                // braces against hangs).
                self.bump();
            }
            stmts.push(Stmt::Expr(ExprStmt {
                expr,
                has_semi,
                span: Span {
                    lo: stmt_lo,
                    hi: self.pos,
                },
            }));
        }
        self.no_struct = saved_no_struct;
        self.nest -= 1;
        Block {
            stmts,
            span: Span { lo, hi: self.pos },
        }
    }

    fn let_stmt(&mut self) -> Stmt {
        let let_tok = self.pos;
        self.bump(); // `let`
        let pat = self.let_pattern();
        if self.at_punct(":") {
            self.bump();
            self.skip_type(&["=", ";", "else"]);
        }
        let init = if self.eat_punct("=") {
            Some(self.expr())
        } else {
            None
        };
        let else_block = if self.eat_ident("else") {
            Some(self.block())
        } else {
            None
        };
        if !self.eat_punct(";") {
            self.error("expected `;` after let statement");
        }
        Stmt::Let(LetStmt {
            pat,
            init,
            else_block,
            let_tok,
            span: Span {
                lo: let_tok,
                hi: self.pos,
            },
        })
    }

    fn let_pattern(&mut self) -> LetPat {
        let lo = self.pos;
        if self.at_ident("_") {
            let tok = self.pos;
            self.bump();
            // `_` alone is wild; `_foo` was already one ident token, and a
            // bare `_` followed by pattern syntax falls through to Other.
            if self.at_punct(":") || self.at_punct("=") || self.at_punct(";") {
                return LetPat::Wild(tok);
            }
        } else {
            let mutable = self.eat_ident("mut");
            if let Some(t) = self.peek() {
                if t.kind == TokenKind::Ident
                    && self
                        .peek_at(1)
                        .is_some_and(|n| n.is_punct(":") || n.is_punct("=") || n.is_punct(";"))
                {
                    let name = t.text.clone();
                    let tok = self.pos;
                    self.bump();
                    if name.starts_with('_') && !mutable && name != "_" {
                        // `_name` bindings behave like named locals for the
                        // dataflow pass (rustc's unused lint ignores them,
                        // which is exactly why E1 cares).
                        return LetPat::Name { name, tok };
                    }
                    return LetPat::Name { name, tok };
                }
            }
        }
        // Structured pattern: consume to `:`, `=`, or `;` at depth 0.
        let mut paren = 0i32;
        let mut bracket = 0i32;
        let mut brace = 0i32;
        while let Some(t) = self.peek() {
            if self.out_of_fuel() {
                break;
            }
            match t.text.as_str() {
                "(" => paren += 1,
                ")" => paren -= 1,
                "[" => bracket += 1,
                "]" => bracket -= 1,
                "{" => brace += 1,
                "}" => brace -= 1,
                "<" => {
                    self.skip_angles();
                    continue;
                }
                ":" | "=" | ";" if paren == 0 && bracket == 0 && brace == 0 => break,
                _ => {}
            }
            if paren < 0 || bracket < 0 || brace < 0 {
                break;
            }
            self.bump();
        }
        LetPat::Other(Span {
            lo,
            hi: self.pos.max(lo),
        })
    }

    // ---- expressions ----------------------------------------------------

    /// Parse one expression (flattened precedence).
    fn expr(&mut self) -> Expr {
        if self.nest >= MAX_NEST {
            let lo = self.pos;
            self.error("nesting too deep; expression skipped");
            self.bump(); // guarantee progress
            return self.mk(ExprKind::Opaque, lo);
        }
        self.nest += 1;
        let e = self.expr_inner();
        self.nest -= 1;
        e
    }

    fn expr_inner(&mut self) -> Expr {
        let lo = self.pos;
        let first = self.unary();
        let mut children = vec![first];
        loop {
            if self.out_of_fuel() {
                break;
            }
            let Some(t) = self.peek() else { break };
            if t.is_ident("as") {
                self.bump();
                self.skip_type(&[
                    ";", ",", ")", "]", "}", "==", "!=", "&&", "||", "+", "-", "/", "%", "?", ".",
                    "=",
                ]);
                let inner = children.pop().map(Box::new);
                if let Some(inner) = inner {
                    let cast = Expr {
                        kind: ExprKind::Cast(inner),
                        span: Span { lo, hi: self.pos },
                        depth: self.depth,
                    };
                    children.push(cast);
                }
                continue;
            }
            if t.kind == TokenKind::Punct && BINOPS.contains(&t.text.as_str()) {
                // A `<` here could be comparison (expr) — generics only
                // follow `::` which the path parser already consumed.
                self.bump();
                // Trailing unary ops after a binop belong to the next chain.
                if self.peek().is_none()
                    || self.at_punct(")")
                    || self.at_punct("]")
                    || self.at_punct("}")
                    || self.at_punct(",")
                    || self.at_punct(";")
                {
                    break; // `..` range with open end, `&mut x =` etc.
                }
                children.push(self.unary());
                continue;
            }
            break;
        }
        if children.len() == 1 {
            children
                .pop()
                .unwrap_or_else(|| self.mk(ExprKind::Opaque, lo))
        } else {
            self.mk(ExprKind::Binary { children }, lo)
        }
    }

    fn unary(&mut self) -> Expr {
        let lo = self.pos;
        let mut prefixed = false;
        while let Some(t) = self.peek() {
            match t.text.as_str() {
                "&" | "&&" | "*" | "-" | "!" => {
                    prefixed = true;
                    // `&&` in prefix position is two borrows; `|`/`||` stay
                    // closure markers handled in primary.
                    if t.is_punct("&") || t.is_punct("&&") {
                        self.bump();
                        self.eat_ident("mut");
                        self.eat_ident("raw");
                    } else {
                        self.bump();
                    }
                }
                _ => break,
            }
        }
        let inner = self.postfix_chain();
        if prefixed {
            self.mk(ExprKind::Unary(Box::new(inner)), lo)
        } else {
            inner
        }
    }

    fn postfix_chain(&mut self) -> Expr {
        let lo = self.pos;
        let mut e = self.primary();
        loop {
            if self.out_of_fuel() {
                break;
            }
            let Some(t) = self.peek() else { break };
            match t.text.as_str() {
                "." => {
                    let Some(n) = self.peek_at(1) else { break };
                    match n.kind {
                        TokenKind::Ident => {
                            if self.peek_at(2).is_some_and(|t| t.is_punct("(")) {
                                // Method call.
                                self.bump(); // .
                                let method = n.text.clone();
                                let method_tok = self.pos;
                                self.bump(); // name
                                let args =
                                    self.paren_args(ITER_ADAPTERS.contains(&method.as_str()));
                                e = self.mk(
                                    ExprKind::MethodCall {
                                        recv: Box::new(e),
                                        method,
                                        method_tok,
                                        args,
                                    },
                                    lo,
                                );
                            } else if self.peek_at(2).is_some_and(|t| t.is_punct("::")) {
                                // Turbofish method: `.collect::<Vec<_>>()`.
                                self.bump(); // .
                                let method = n.text.clone();
                                let method_tok = self.pos;
                                self.bump(); // name
                                self.bump(); // ::
                                if self.at_punct("<") {
                                    self.skip_angles();
                                }
                                let args = if self.at_punct("(") {
                                    self.paren_args(ITER_ADAPTERS.contains(&method.as_str()))
                                } else {
                                    Vec::new()
                                };
                                e = self.mk(
                                    ExprKind::MethodCall {
                                        recv: Box::new(e),
                                        method,
                                        method_tok,
                                        args,
                                    },
                                    lo,
                                );
                            } else {
                                // Field access or `.await`.
                                self.bump();
                                let name = n.text.clone();
                                self.bump();
                                e = self.mk(
                                    ExprKind::Field {
                                        base: Box::new(e),
                                        name,
                                    },
                                    lo,
                                );
                            }
                        }
                        TokenKind::Int | TokenKind::Float => {
                            // Tuple index `.0` (a `.0.1` chain lexes as one
                            // float; both are plain field accesses here).
                            self.bump();
                            let name = n.text.clone();
                            self.bump();
                            e = self.mk(
                                ExprKind::Field {
                                    base: Box::new(e),
                                    name,
                                },
                                lo,
                            );
                        }
                        _ => break,
                    }
                }
                "(" => {
                    let args = self.paren_args(false);
                    e = self.mk(
                        ExprKind::Call {
                            callee: Box::new(e),
                            args,
                        },
                        lo,
                    );
                }
                "[" => {
                    self.bump();
                    let saved = std::mem::take(&mut self.no_struct);
                    let index = self.expr();
                    self.no_struct = saved;
                    if !self.eat_punct("]") {
                        self.recover_to_close("]");
                    }
                    e = self.mk(
                        ExprKind::Index {
                            base: Box::new(e),
                            index: Box::new(index),
                        },
                        lo,
                    );
                }
                "?" => {
                    self.bump();
                    e = self.mk(ExprKind::Try(Box::new(e)), lo);
                }
                _ => break,
            }
        }
        e
    }

    /// Parse `( ... )` call arguments. `adapter` marks closures in this list
    /// as per-element bodies (loop depth + 1).
    fn paren_args(&mut self, adapter: bool) -> Vec<Expr> {
        let mut args = Vec::new();
        if !self.eat_punct("(") {
            return args;
        }
        let saved_no_struct = std::mem::take(&mut self.no_struct);
        let saved_adapter = std::mem::replace(&mut self.adapter_arg, adapter);
        loop {
            if self.out_of_fuel() {
                break;
            }
            let Some(t) = self.peek() else {
                self.error("unclosed call arguments");
                break;
            };
            if t.is_punct(")") {
                self.bump();
                break;
            }
            if t.is_punct(",") {
                self.bump();
                continue;
            }
            let before = self.pos;
            args.push(self.expr());
            if self.pos == before {
                self.bump(); // guarantee progress on junk
            }
        }
        self.adapter_arg = saved_adapter;
        self.no_struct = saved_no_struct;
        args
    }

    /// After a failed delimiter match, scan forward to `close` (balanced).
    fn recover_to_close(&mut self, close: &str) {
        let open = match close {
            ")" => "(",
            "]" => "[",
            _ => "{",
        };
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            if self.out_of_fuel() {
                return;
            }
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                if depth == 0 {
                    self.bump();
                    return;
                }
                depth -= 1;
            } else if t.is_punct(";") && depth == 0 {
                return; // statement boundary: stop looking
            }
            self.bump();
        }
    }

    fn primary(&mut self) -> Expr {
        if self.nest >= MAX_NEST {
            let lo = self.pos;
            self.error("nesting too deep; expression skipped");
            self.bump();
            return self.mk(ExprKind::Opaque, lo);
        }
        self.nest += 1;
        let e = self.primary_inner();
        self.nest -= 1;
        e
    }

    fn primary_inner(&mut self) -> Expr {
        let lo = self.pos;
        let Some(t) = self.peek() else {
            return self.mk(ExprKind::Opaque, lo);
        };
        // Loop labels: `'outer: for ...`.
        if t.kind == TokenKind::Lifetime && self.peek_at(1).is_some_and(|n| n.is_punct(":")) {
            self.bump();
            self.bump();
            return self.primary();
        }
        match t.kind {
            TokenKind::Int | TokenKind::Float | TokenKind::Str => {
                let kind = t.kind;
                let tok = self.pos;
                self.bump();
                return self.mk(ExprKind::Lit { kind, tok }, lo);
            }
            TokenKind::Lifetime => {
                self.bump();
                return self.mk(ExprKind::Opaque, lo);
            }
            _ => {}
        }
        match t.text.as_str() {
            "if" => self.if_expr(),
            "match" => self.match_expr(),
            "for" => {
                self.bump();
                // Pattern up to `in` at depth 0.
                let mut depth = 0i32;
                while let Some(t) = self.peek() {
                    if self.out_of_fuel() {
                        break;
                    }
                    match t.text.as_str() {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "in" if depth == 0 => break,
                        "{" | ";" => break, // malformed; bail
                        _ => {}
                    }
                    self.bump();
                }
                self.eat_ident("in");
                self.no_struct += 1;
                let _iter = self.expr();
                self.no_struct -= 1;
                self.depth += 1;
                let body = self.block();
                self.depth -= 1;
                self.mk(
                    ExprKind::Loop {
                        kind: LoopKind::For,
                        body,
                    },
                    lo,
                )
            }
            "while" => {
                self.bump();
                self.no_struct += 1;
                let _cond = self.condition();
                self.no_struct -= 1;
                self.depth += 1;
                let body = self.block();
                self.depth -= 1;
                self.mk(
                    ExprKind::Loop {
                        kind: LoopKind::While,
                        body,
                    },
                    lo,
                )
            }
            "loop" => {
                self.bump();
                self.depth += 1;
                let body = self.block();
                self.depth -= 1;
                self.mk(
                    ExprKind::Loop {
                        kind: LoopKind::Loop,
                        body,
                    },
                    lo,
                )
            }
            "unsafe" | "async" | "try" => {
                self.bump();
                if self.at_punct("{") {
                    let b = self.block();
                    self.mk(ExprKind::BlockExpr(b), lo)
                } else {
                    self.primary() // `async move |..|`, etc.
                }
            }
            "move" => {
                self.bump();
                self.closure(lo)
            }
            "return" | "break" => {
                self.bump();
                if self.peek().is_some_and(|t| t.kind == TokenKind::Lifetime) {
                    self.bump(); // break 'label
                }
                let arg = if self.expr_can_start() {
                    Some(Box::new(self.expr()))
                } else {
                    None
                };
                self.mk(ExprKind::Jump(arg), lo)
            }
            "continue" => {
                self.bump();
                if self.peek().is_some_and(|t| t.kind == TokenKind::Lifetime) {
                    self.bump();
                }
                self.mk(ExprKind::Jump(None), lo)
            }
            "let" => {
                // `let pat = expr` in a condition (if let / while let / chains).
                self.bump();
                let pat_lo = self.pos;
                let mut depth = 0i32;
                while let Some(t) = self.peek() {
                    if self.out_of_fuel() {
                        break;
                    }
                    match t.text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => {
                            if depth == 0 {
                                break;
                            }
                            depth -= 1;
                        }
                        "=" if depth == 0 => break,
                        ";" => break,
                        _ => {}
                    }
                    self.bump();
                }
                let pat = Span {
                    lo: pat_lo,
                    hi: self.pos,
                };
                self.eat_punct("=");
                let value = self.unary();
                self.mk(
                    ExprKind::LetCond {
                        pat,
                        expr: Box::new(value),
                    },
                    lo,
                )
            }
            "{" => {
                let b = self.block();
                self.mk(ExprKind::BlockExpr(b), lo)
            }
            "(" => {
                self.bump();
                let saved = std::mem::take(&mut self.no_struct);
                let mut items = Vec::new();
                loop {
                    if self.out_of_fuel() {
                        break;
                    }
                    let Some(t) = self.peek() else {
                        self.error("unclosed parenthesis");
                        break;
                    };
                    if t.is_punct(")") {
                        self.bump();
                        break;
                    }
                    if t.is_punct(",") {
                        self.bump();
                        continue;
                    }
                    let before = self.pos;
                    items.push(self.expr());
                    if self.pos == before {
                        self.bump();
                    }
                }
                self.no_struct = saved;
                self.mk(ExprKind::Tuple(items), lo)
            }
            "[" => {
                self.bump();
                let saved = std::mem::take(&mut self.no_struct);
                let mut items = Vec::new();
                let mut repeat_len = None;
                loop {
                    if self.out_of_fuel() {
                        break;
                    }
                    let Some(t) = self.peek() else {
                        self.error("unclosed array literal");
                        break;
                    };
                    if t.is_punct("]") {
                        self.bump();
                        break;
                    }
                    if t.is_punct(",") {
                        self.bump();
                        continue;
                    }
                    if t.is_punct(";") {
                        self.bump();
                        repeat_len = Some(Box::new(self.expr()));
                        continue;
                    }
                    let before = self.pos;
                    items.push(self.expr());
                    if self.pos == before {
                        self.bump();
                    }
                }
                self.no_struct = saved;
                match (items.len(), repeat_len) {
                    (1, Some(len)) => {
                        let elem = Box::new(items.pop().unwrap_or(Expr {
                            kind: ExprKind::Opaque,
                            span: Span { lo, hi: self.pos },
                            depth: self.depth,
                        }));
                        self.mk(ExprKind::Repeat { elem, len }, lo)
                    }
                    _ => self.mk(ExprKind::Array(items), lo),
                }
            }
            "|" | "||" => self.closure(lo),
            _ if t.kind == TokenKind::Ident => self.path_or_struct_or_macro(),
            _ => {
                // Junk: consume one token so callers always progress.
                self.bump();
                self.mk(ExprKind::Opaque, lo)
            }
        }
    }

    /// Can the current token begin an expression? (Used after `return`.)
    fn expr_can_start(&self) -> bool {
        let Some(t) = self.peek() else { return false };
        match t.kind {
            TokenKind::Ident => !matches!(t.text.as_str(), "else" | "in" | "as" | "where"),
            TokenKind::Int | TokenKind::Float | TokenKind::Str | TokenKind::Lifetime => true,
            TokenKind::Punct => {
                matches!(
                    t.text.as_str(),
                    "(" | "[" | "{" | "&" | "&&" | "*" | "-" | "!" | "|" | "||"
                )
            }
        }
    }

    fn closure(&mut self, lo: usize) -> Expr {
        // `|params| body` / `||` / `move |params| body`.
        let bump_depth = self.adapter_arg;
        if self.at_punct("||") {
            self.bump();
        } else if self.eat_punct("|") {
            // Params: scan to the closing `|` at delimiter depth 0.
            let mut depth = 0i32;
            while let Some(t) = self.peek() {
                if self.out_of_fuel() {
                    break;
                }
                match t.text.as_str() {
                    "(" | "[" | "<" => depth += 1,
                    ")" | "]" | ">" => depth -= 1,
                    "|" if depth <= 0 => {
                        self.bump();
                        break;
                    }
                    "{" | ";" => break, // malformed
                    _ => {}
                }
                self.bump();
            }
        }
        if self.at_punct("->") {
            self.bump();
            self.skip_type(&["{"]);
        }
        if bump_depth {
            self.depth += 1;
        }
        let saved_adapter = std::mem::replace(&mut self.adapter_arg, false);
        let body = self.expr();
        self.adapter_arg = saved_adapter;
        if bump_depth {
            self.depth -= 1;
        }
        self.mk(
            ExprKind::Closure {
                body: Box::new(body),
            },
            lo,
        )
    }

    fn if_expr(&mut self) -> Expr {
        if self.nest >= MAX_NEST {
            let lo = self.pos;
            self.error("nesting too deep; expression skipped");
            self.bump();
            return self.mk(ExprKind::Opaque, lo);
        }
        self.nest += 1;
        let e = self.if_expr_inner();
        self.nest -= 1;
        e
    }

    fn if_expr_inner(&mut self) -> Expr {
        let lo = self.pos;
        self.bump(); // `if`
        self.no_struct += 1;
        let cond = self.condition();
        self.no_struct -= 1;
        let then = self.block();
        let els = if self.eat_ident("else") {
            if self.at_ident("if") {
                Some(Box::new(self.if_expr()))
            } else {
                let b = self.block();
                Some(Box::new(self.mk(ExprKind::BlockExpr(b), lo)))
            }
        } else {
            None
        };
        self.mk(
            ExprKind::If {
                cond: Box::new(cond),
                then,
                els,
            },
            lo,
        )
    }

    /// An `if`/`while` condition: a full expression (covers `let` chains).
    fn condition(&mut self) -> Expr {
        self.expr()
    }

    fn match_expr(&mut self) -> Expr {
        let lo = self.pos;
        self.bump(); // `match`
        self.no_struct += 1;
        let scrutinee = self.expr();
        self.no_struct -= 1;
        let mut arms = Vec::new();
        if self.eat_punct("{") {
            loop {
                if self.out_of_fuel() {
                    break;
                }
                let Some(t) = self.peek() else {
                    self.error("unclosed match");
                    break;
                };
                if t.is_punct("}") {
                    self.bump();
                    break;
                }
                if t.is_punct(",") {
                    self.bump();
                    continue;
                }
                self.skip_attrs();
                // Pattern (plus optional guard) up to `=>` at depth 0.
                let pat_lo = self.pos;
                let mut depth = 0i32;
                while let Some(t) = self.peek() {
                    if self.out_of_fuel() {
                        break;
                    }
                    match t.text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "}" => {
                            if depth == 0 {
                                break;
                            }
                            depth -= 1;
                        }
                        "=>" if depth == 0 => break,
                        _ => {}
                    }
                    self.bump();
                }
                let pat = Span {
                    lo: pat_lo,
                    hi: self.pos,
                };
                if !self.eat_punct("=>") {
                    // Malformed arm; skip one token and retry.
                    if self.pos == pat_lo {
                        self.bump();
                    }
                    continue;
                }
                let arm = self.expr();
                arms.push((pat, arm));
            }
        } else {
            self.error("expected `{` after match scrutinee");
        }
        self.mk(
            ExprKind::Match {
                scrutinee: Box::new(scrutinee),
                arms,
            },
            lo,
        )
    }

    /// An identifier begins a path, a macro call, a struct literal, or a
    /// plain name.
    fn path_or_struct_or_macro(&mut self) -> Expr {
        let lo = self.pos;
        let mut segs: Vec<String> = Vec::new();
        if let Some(t) = self.peek() {
            segs.push(t.text.clone());
        }
        self.bump();
        loop {
            if self.out_of_fuel() {
                break;
            }
            if self.at_punct("::") {
                match self.peek_at(1) {
                    Some(n) if n.kind == TokenKind::Ident => {
                        self.bump();
                        segs.push(n.text.clone());
                        self.bump();
                    }
                    Some(n) if n.is_punct("<") => {
                        // Turbofish `Vec::<u8>::new`.
                        self.bump();
                        self.skip_angles();
                    }
                    _ => break,
                }
            } else {
                break;
            }
        }
        // Macro invocation? (`!=` is a single token, so a bare `!` here is
        // unambiguous.)
        if self.at_punct("!") {
            let name = segs.last().cloned().unwrap_or_default();
            let name_tok = self.pos.saturating_sub(1);
            self.bump(); // !
            return self.macro_args(lo, name, name_tok);
        }
        // Struct literal?
        if self.at_punct("{") && self.no_struct == 0 {
            self.bump();
            let mut fields = Vec::new();
            let mut names = Vec::new();
            loop {
                if self.out_of_fuel() {
                    break;
                }
                let Some(t) = self.peek() else {
                    self.error("unclosed struct literal");
                    break;
                };
                if t.is_punct("}") {
                    self.bump();
                    break;
                }
                if t.is_punct(",") || t.is_punct("..") {
                    self.bump();
                    continue;
                }
                // `field: expr` or shorthand `field` (shorthand keeps
                // `None`: the value expr carries the name).
                let mut name = None;
                if t.kind == TokenKind::Ident && self.peek_at(1).is_some_and(|n| n.is_punct(":")) {
                    name = Some(t.text.clone());
                    self.bump();
                    self.bump();
                }
                let before = self.pos;
                fields.push(self.expr());
                names.push(name);
                if self.pos == before {
                    self.bump();
                }
            }
            return self.mk(
                ExprKind::StructLit {
                    path: segs,
                    fields,
                    names,
                },
                lo,
            );
        }
        self.mk(ExprKind::Path(segs), lo)
    }

    fn macro_args(&mut self, lo: usize, name: String, name_tok: usize) -> Expr {
        let (open, close) = match self.peek().map(|t| t.text.as_str()) {
            Some("(") => ("(", ")"),
            Some("[") => ("[", "]"),
            Some("{") => ("{", "}"),
            _ => {
                return self.mk(
                    ExprKind::Macro {
                        name,
                        name_tok,
                        args: Vec::new(),
                        repeat: None,
                    },
                    lo,
                )
            }
        };
        self.bump();
        let saved = std::mem::take(&mut self.no_struct);
        let mut args = Vec::new();
        let mut repeat_len: Option<Box<Expr>> = None;
        loop {
            if self.out_of_fuel() {
                break;
            }
            let Some(t) = self.peek() else {
                self.error("unclosed macro invocation");
                break;
            };
            if t.is_punct(close) {
                self.bump();
                break;
            }
            if t.is_punct(",") {
                self.bump();
                continue;
            }
            if t.is_punct(";") && open == "[" {
                // `vec![elem; len]`.
                self.bump();
                repeat_len = Some(Box::new(self.expr()));
                continue;
            }
            let before = self.pos;
            args.push(self.expr());
            if self.pos == before {
                // Macro bodies are free-form; skip junk token by token.
                self.bump();
            }
        }
        self.no_struct = saved;
        let repeat = match (args.len(), repeat_len) {
            (1, Some(len)) => {
                let elem = args.pop().map(Box::new);
                elem.map(|e| (e, len))
            }
            _ => None,
        };
        self.mk(
            ExprKind::Macro {
                name,
                name_tok,
                args,
                repeat,
            },
            lo,
        )
    }
}

/// Classify the tokens of a return type.
/// Extract parameter names from the tokens between a fn's parentheses:
/// at bracket depth 0 and outside type position, `name :` introduces a
/// parameter and a bare `self` is the receiver. Pattern parameters
/// (`(a, b): (u32, u32)`) are omitted — callers treat them as unnamed.
fn param_names(toks: &[Token]) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut in_type = false;
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        match t.text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "<" => depth += 1,
            "<<" => depth += 2,
            ">" => depth -= 1,
            ">>" => depth -= 2,
            "," if depth == 0 => in_type = false,
            ":" if depth == 0 => in_type = true,
            _ => {
                if depth == 0 && !in_type && t.kind == TokenKind::Ident {
                    if t.is_ident("self") {
                        out.push("self".to_string());
                    } else if toks.get(i + 1).is_some_and(|n| n.is_punct(":")) {
                        out.push(t.text.clone());
                    }
                }
            }
        }
        i += 1;
    }
    out
}

fn classify_return(ty: &[Token]) -> ReturnKind {
    // Strip leading `&`/`impl`/`dyn`/lifetimes, then read the path until `<`.
    let mut segs: Vec<&str> = Vec::new();
    for t in ty {
        match t.kind {
            TokenKind::Ident => {
                if matches!(t.text.as_str(), "impl" | "dyn" | "mut") {
                    continue;
                }
                segs.push(t.text.as_str());
            }
            TokenKind::Lifetime => continue,
            TokenKind::Punct => match t.text.as_str() {
                "&" | "&&" | "::" => continue,
                _ => break,
            },
            _ => break,
        }
    }
    match segs.last() {
        None => ReturnKind::Unit,
        Some(s) if s.ends_with("Result") => ReturnKind::Result,
        Some(&"Option") => ReturnKind::Option,
        _ => ReturnKind::Other,
    }
}

// ---- AST walking helpers -----------------------------------------------

/// Visit every expression in a block, depth-first.
pub fn walk_block<'a>(b: &'a Block, f: &mut impl FnMut(&'a Expr)) {
    for s in &b.stmts {
        match s {
            Stmt::Let(l) => {
                if let Some(e) = &l.init {
                    walk_expr(e, f);
                }
                if let Some(b) = &l.else_block {
                    walk_block(b, f);
                }
            }
            Stmt::Expr(e) => walk_expr(&e.expr, f),
            Stmt::Item(_) | Stmt::Empty(_) => {}
        }
    }
}

/// Visit every statement in `b` and in all nested blocks, depth-first.
/// (E1 inspects statement shape — `let _ = …;` / `expr.ok();` — which the
/// expression walker cannot see.)
pub fn walk_stmts<'a>(b: &'a Block, f: &mut impl FnMut(&'a Stmt)) {
    for s in &b.stmts {
        f(s);
        match s {
            Stmt::Let(l) => {
                if let Some(e) = &l.init {
                    stmts_in_expr(e, f);
                }
                if let Some(eb) = &l.else_block {
                    walk_stmts(eb, f);
                }
            }
            Stmt::Expr(es) => stmts_in_expr(&es.expr, f),
            Stmt::Item(_) | Stmt::Empty(_) => {}
        }
    }
}

fn stmts_in_expr<'a>(e: &'a Expr, f: &mut impl FnMut(&'a Stmt)) {
    match &e.kind {
        ExprKind::If { cond, then, els } => {
            stmts_in_expr(cond, f);
            walk_stmts(then, f);
            if let Some(e) = els {
                stmts_in_expr(e, f);
            }
        }
        ExprKind::Loop { body, .. } | ExprKind::BlockExpr(body) => walk_stmts(body, f),
        ExprKind::Match { scrutinee, arms } => {
            stmts_in_expr(scrutinee, f);
            for (_, a) in arms {
                stmts_in_expr(a, f);
            }
        }
        ExprKind::Call { callee, args } => {
            stmts_in_expr(callee, f);
            for a in args {
                stmts_in_expr(a, f);
            }
        }
        ExprKind::MethodCall { recv, args, .. } => {
            stmts_in_expr(recv, f);
            for a in args {
                stmts_in_expr(a, f);
            }
        }
        ExprKind::Macro { args, repeat, .. } => {
            for a in args {
                stmts_in_expr(a, f);
            }
            if let Some((elem, len)) = repeat {
                stmts_in_expr(elem, f);
                stmts_in_expr(len, f);
            }
        }
        ExprKind::Try(inner)
        | ExprKind::Unary(inner)
        | ExprKind::Cast(inner)
        | ExprKind::Closure { body: inner } => stmts_in_expr(inner, f),
        ExprKind::Field { base, .. } => stmts_in_expr(base, f),
        ExprKind::Index { base, index } => {
            stmts_in_expr(base, f);
            stmts_in_expr(index, f);
        }
        ExprKind::Binary { children } => {
            for c in children {
                stmts_in_expr(c, f);
            }
        }
        ExprKind::Tuple(items) | ExprKind::Array(items) => {
            for i in items {
                stmts_in_expr(i, f);
            }
        }
        ExprKind::Repeat { elem, len } => {
            stmts_in_expr(elem, f);
            stmts_in_expr(len, f);
        }
        ExprKind::StructLit { fields, .. } => {
            for fe in fields {
                stmts_in_expr(fe, f);
            }
        }
        ExprKind::LetCond { expr, .. } => stmts_in_expr(expr, f),
        ExprKind::Jump(Some(inner)) => stmts_in_expr(inner, f),
        ExprKind::Jump(None) | ExprKind::Path(_) | ExprKind::Lit { .. } | ExprKind::Opaque => {}
    }
}

/// Visit `e` and every expression below it, depth-first.
pub fn walk_expr<'a>(e: &'a Expr, f: &mut impl FnMut(&'a Expr)) {
    f(e);
    match &e.kind {
        ExprKind::Call { callee, args } => {
            walk_expr(callee, f);
            for a in args {
                walk_expr(a, f);
            }
        }
        ExprKind::MethodCall { recv, args, .. } => {
            walk_expr(recv, f);
            for a in args {
                walk_expr(a, f);
            }
        }
        ExprKind::Macro { args, repeat, .. } => {
            for a in args {
                walk_expr(a, f);
            }
            if let Some((elem, len)) = repeat {
                walk_expr(elem, f);
                walk_expr(len, f);
            }
        }
        ExprKind::Try(inner)
        | ExprKind::Unary(inner)
        | ExprKind::Cast(inner)
        | ExprKind::Closure { body: inner } => walk_expr(inner, f),
        ExprKind::Field { base, .. } => walk_expr(base, f),
        ExprKind::Index { base, index } => {
            walk_expr(base, f);
            walk_expr(index, f);
        }
        ExprKind::Binary { children } => {
            for c in children {
                walk_expr(c, f);
            }
        }
        ExprKind::Tuple(items) | ExprKind::Array(items) => {
            for i in items {
                walk_expr(i, f);
            }
        }
        ExprKind::Repeat { elem, len } => {
            walk_expr(elem, f);
            walk_expr(len, f);
        }
        ExprKind::StructLit { fields, .. } => {
            for fe in fields {
                walk_expr(fe, f);
            }
        }
        ExprKind::If { cond, then, els } => {
            walk_expr(cond, f);
            walk_block(then, f);
            if let Some(e) = els {
                walk_expr(e, f);
            }
        }
        ExprKind::Match { scrutinee, arms } => {
            walk_expr(scrutinee, f);
            for (_, e) in arms {
                walk_expr(e, f);
            }
        }
        ExprKind::Loop { body, .. } => walk_block(body, f),
        ExprKind::BlockExpr(b) => walk_block(b, f),
        ExprKind::LetCond { expr, .. } => walk_expr(expr, f),
        ExprKind::Jump(Some(inner)) => walk_expr(inner, f),
        ExprKind::Jump(None) | ExprKind::Path(_) | ExprKind::Lit { .. } | ExprKind::Opaque => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Ast {
        parse(&lex(src).tokens)
    }

    #[test]
    fn fn_signatures_classified() {
        let ast = parse_src(
            "fn a() {}\n\
             fn b() -> Result<u32, E> { Ok(1) }\n\
             fn c() -> io::Result<()> { Ok(()) }\n\
             fn d() -> Option<u8> { None }\n\
             fn e() -> Vec<u8> { vec![] }\n\
             pub(crate) fn f(x: &[u8]) -> crate::Result<u8> { Ok(x[0]) }\n",
        );
        assert!(ast.clean(), "errors: {:?}", ast.errors);
        let sigs = ast.signatures();
        assert_eq!(sigs["a"], ReturnKind::Unit);
        assert_eq!(sigs["b"], ReturnKind::Result);
        assert_eq!(sigs["c"], ReturnKind::Result);
        assert_eq!(sigs["d"], ReturnKind::Option);
        assert_eq!(sigs["e"], ReturnKind::Other);
        assert_eq!(sigs["f"], ReturnKind::Result);
    }

    #[test]
    fn methods_inside_impl_blocks_are_collected() {
        let ast = parse_src(
            "impl<T: Clone> Foo<T> {\n\
               pub fn get(&self) -> Option<&T> { self.0.first() }\n\
               fn set(&mut self, v: T) { self.0.push(v); }\n\
             }\n\
             mod inner { pub fn helper() -> Result<(), E> { Ok(()) } }\n",
        );
        assert!(ast.clean(), "errors: {:?}", ast.errors);
        let names: Vec<&str> = ast.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["get", "set", "helper"]);
    }

    #[test]
    fn let_patterns_distinguished() {
        let ast = parse_src(
            "fn f() {\n\
               let _ = g();\n\
               let x = h();\n\
               let mut y = 3;\n\
               let (a, b) = pair();\n\
               let Some(v) = maybe() else { return };\n\
             }\n",
        );
        assert!(ast.clean(), "errors: {:?}", ast.errors);
        let stmts = &ast.fns[0].body.stmts;
        assert_eq!(stmts.len(), 5);
        assert!(matches!(
            &stmts[0],
            Stmt::Let(l) if matches!(l.pat, LetPat::Wild(_))
        ));
        assert!(matches!(
            &stmts[1],
            Stmt::Let(l) if matches!(&l.pat, LetPat::Name { name, .. } if name == "x")
        ));
        assert!(matches!(
            &stmts[2],
            Stmt::Let(l) if matches!(&l.pat, LetPat::Name { name, .. } if name == "y")
        ));
        assert!(matches!(
            &stmts[3],
            Stmt::Let(l) if matches!(l.pat, LetPat::Other(_))
        ));
        match &stmts[4] {
            Stmt::Let(l) => assert!(l.else_block.is_some(), "let-else parsed"),
            other => panic!("expected let-else, got {other:?}"),
        }
    }

    #[test]
    fn loop_depth_is_tracked() {
        let ast = parse_src(
            "fn f(n: usize) {\n\
               let a = Vec::new();\n\
               for i in 0..n {\n\
                 let b = Vec::new();\n\
                 while i < n {\n\
                   let c = Vec::new();\n\
                   loop { let d = Vec::new(); break; }\n\
                 }\n\
               }\n\
             }\n",
        );
        assert!(ast.clean(), "errors: {:?}", ast.errors);
        let mut depths = Vec::new();
        walk_block(&ast.fns[0].body, &mut |e| {
            if let ExprKind::Call { callee, .. } = &e.kind {
                if let ExprKind::Path(segs) = &callee.kind {
                    if segs == &["Vec", "new"] {
                        depths.push(e.depth);
                    }
                }
            }
        });
        assert_eq!(depths, vec![0, 1, 2, 3]);
    }

    #[test]
    fn adapter_closures_count_as_loops() {
        let ast = parse_src(
            "fn f(v: &[u32]) -> Vec<u32> {\n\
               for _ in 0..2 {\n\
                 let s: Vec<u32> = v.iter().map(|x| x.to_string().len() as u32).collect();\n\
               }\n\
               Vec::new()\n\
             }\n",
        );
        assert!(ast.clean(), "errors: {:?}", ast.errors);
        let mut found = None;
        walk_block(&ast.fns[0].body, &mut |e| {
            if let ExprKind::MethodCall { method, .. } = &e.kind {
                if method == "to_string" {
                    found = Some(e.depth);
                }
            }
        });
        assert_eq!(found, Some(2), "map closure inside for = depth 2");
    }

    #[test]
    fn method_chains_and_try_operator() {
        let ast = parse_src(
            "fn f() -> Result<(), E> {\n\
               let v = load(path)?.filter().count();\n\
               g(v)?;\n\
               Ok(())\n\
             }\n",
        );
        assert!(ast.clean(), "errors: {:?}", ast.errors);
        let Stmt::Let(l) = &ast.fns[0].body.stmts[0] else {
            panic!("let expected")
        };
        // count( filter( try( call(load) ) ) )
        let mut methods = Vec::new();
        walk_expr(l.init.as_ref().expect("init"), &mut |e| {
            if let ExprKind::MethodCall { method, .. } = &e.kind {
                methods.push(method.clone());
            }
        });
        assert_eq!(methods, vec!["count", "filter"]);
        let Stmt::Expr(es) = &ast.fns[0].body.stmts[1] else {
            panic!("expr stmt expected")
        };
        assert!(matches!(es.expr.kind, ExprKind::Try(_)));
    }

    #[test]
    fn match_and_struct_literals() {
        let ast = parse_src(
            "fn f(x: Option<u8>) -> P {\n\
               match x {\n\
                 Some(v) if v > 1 => P { a: v, b: 0 },\n\
                 _ => P { a: 0, b: 1 },\n\
               }\n\
             }\n",
        );
        assert!(ast.clean(), "errors: {:?}", ast.errors);
        let Stmt::Expr(es) = &ast.fns[0].body.stmts[0] else {
            panic!("match stmt expected")
        };
        let ExprKind::Match { arms, .. } = &es.expr.kind else {
            panic!("match expected, got {:?}", es.expr.kind)
        };
        assert_eq!(arms.len(), 2);
        assert!(matches!(arms[0].1.kind, ExprKind::StructLit { .. }));
    }

    #[test]
    fn vec_macro_shapes() {
        let ast = parse_src(
            "fn f() {\n\
               let a = vec![1, 2, 3];\n\
               let b = vec![0.0; 9];\n\
             }\n",
        );
        assert!(ast.clean(), "errors: {:?}", ast.errors);
        let Stmt::Let(a) = &ast.fns[0].body.stmts[0] else {
            panic!()
        };
        let ExprKind::Macro {
            name, args, repeat, ..
        } = &a.init.as_ref().expect("init").kind
        else {
            panic!("macro expected")
        };
        assert_eq!(name, "vec");
        assert_eq!(args.len(), 3);
        assert!(repeat.is_none());
        let Stmt::Let(b) = &ast.fns[0].body.stmts[1] else {
            panic!()
        };
        let ExprKind::Macro { repeat, .. } = &b.init.as_ref().expect("init").kind else {
            panic!("macro expected")
        };
        assert!(repeat.is_some());
    }

    #[test]
    fn malformed_source_degrades_without_panicking() {
        // Unbalanced braces, stray operators, truncated fn — the parser
        // must record errors and keep whatever structure it found.
        let srcs = [
            "fn broken( { let x = ; } fn ok() -> Result<u8, E> { Ok(1) }",
            "impl } fn f() { let _ = g(); }",
            "fn f() { match x { Some => } }",
            "fn f() { (((((",
            "== != <<>> :: fn g() {}",
            "fn f() { v.iter().map(|x| } ",
        ];
        for src in srcs {
            let ast = parse_src(src);
            // Never panics; and the trailing well-formed fn is usually found.
            let _ = ast.fns.len();
        }
        let ast = parse_src("fn broken( { let x = ; } fn ok() -> Result<u8, E> { Ok(1) }");
        assert!(ast.fns.iter().any(|f| f.name == "ok"));
        assert!(!ast.clean());
    }

    #[test]
    fn deeply_nested_source_is_fuel_bounded() {
        let mut src = String::from("fn f() { ");
        for _ in 0..2000 {
            src.push_str("{ (");
        }
        let ast = parse_src(&src);
        let _ = ast.fns.len(); // terminates; that's the assertion
    }

    #[test]
    fn if_let_and_while_let_conditions() {
        let ast = parse_src(
            "fn f(r: Result<u8, E>) {\n\
               if let Ok(v) = r { use_it(v); }\n\
               while let Some(x) = next() { use_it(x); }\n\
             }\n",
        );
        assert!(ast.clean(), "errors: {:?}", ast.errors);
        let Stmt::Expr(ifs) = &ast.fns[0].body.stmts[0] else {
            panic!()
        };
        let ExprKind::If { cond, .. } = &ifs.expr.kind else {
            panic!("if expected, got {:?}", ifs.expr.kind)
        };
        assert!(matches!(cond.kind, ExprKind::LetCond { .. }));
    }

    #[test]
    fn closures_in_plain_calls_do_not_bump_depth() {
        let ast = parse_src(
            "fn f() {\n\
               for _ in 0..2 {\n\
                 spawn(|| Vec::new());\n\
               }\n\
             }\n",
        );
        assert!(ast.clean(), "errors: {:?}", ast.errors);
        let mut depth = None;
        walk_block(&ast.fns[0].body, &mut |e| {
            if let ExprKind::Call { callee, .. } = &e.kind {
                if matches!(&callee.kind, ExprKind::Path(p) if p == &["Vec", "new"]) {
                    depth = Some(e.depth);
                }
            }
        });
        assert_eq!(depth, Some(1), "spawn closure body stays at loop depth");
    }
}
