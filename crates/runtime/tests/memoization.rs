//! Property tests for artifact memoization: the cache must be *sound*
//! (a hit is bit-identical to what a fresh computation would produce —
//! in fact it is the very same `Arc`) and *precise* (any change to a
//! stage's declared inputs, the run seed, or the fault plan of a
//! plan-sensitive stage forces a recompute).
//!
//! Two stage families are exercised: a synthetic stage whose fingerprint
//! covers an input vector plus a config scalar, and the real
//! [`PrepareImages`] stage over random images, where a single perturbed
//! pixel must change the fingerprint.

use core::convert::Infallible;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use ig_faults::FaultPlan;
use ig_imaging::GrayImage;
use ig_runtime::{
    infallible, Fingerprint, FingerprintHasher, Fingerprintable, PrepareImages, RunContext, Stage,
};
use proptest::prelude::*;

/// Synthetic cacheable stage: output is a pure function of `input`,
/// `gain` and the run seed; `calls` counts real executions.
struct ScaleAdd<'a> {
    input: Vec<u64>,
    gain: u64,
    calls: &'a AtomicUsize,
}

impl Stage for ScaleAdd<'_> {
    type Output = Vec<u64>;
    type Error = Infallible;

    fn id(&self) -> &'static str {
        "test.scale_add"
    }

    fn fingerprint(&self) -> Fingerprint {
        let mut h = FingerprintHasher::new();
        self.input.fingerprint_into(&mut h);
        h.write_u64(self.gain);
        h.finish()
    }

    fn run(&mut self, ctx: &RunContext) -> Result<Vec<u64>, Infallible> {
        self.calls.fetch_add(1, Ordering::Relaxed);
        Ok(self
            .input
            .iter()
            .map(|v| v.wrapping_mul(self.gain) ^ ctx.seed())
            .collect())
    }
}

fn random_image(w: usize, h: usize, seed: u64) -> GrayImage {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    GrayImage::from_fn(w, h, |_, _| rng.gen_range(0.0f32..1.0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Identical stage + identical context ⇒ the second run is served from
    /// the cache: zero extra executions and literally the same artifact.
    #[test]
    fn identical_inputs_and_seed_hit_the_cache(
        input in proptest::collection::vec(any::<u64>(), 0..32),
        gain in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let ctx = RunContext::new(seed);
        let calls = AtomicUsize::new(0);
        let mut stage = ScaleAdd { input: input.clone(), gain, calls: &calls };
        let first = infallible(ctx.run(&mut stage));
        let mut again = ScaleAdd { input, gain, calls: &calls };
        let second = infallible(ctx.run(&mut again));
        prop_assert!(Arc::ptr_eq(&first, &second), "hit must return the stored artifact");
        prop_assert_eq!(&*first, &*second);
        prop_assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    /// Any fingerprint-visible change — a mutated input element, a changed
    /// config scalar, or a different run seed — forces a recompute, and
    /// the recomputed artifact reflects the new inputs.
    #[test]
    fn any_fingerprint_change_recomputes(
        input in proptest::collection::vec(any::<u64>(), 1..32),
        gain in any::<u64>(),
        seed in any::<u64>(),
        which in 0usize..3,
        tweak in 1u64..u64::MAX,
    ) {
        let ctx = RunContext::new(seed);
        let calls = AtomicUsize::new(0);
        let mut stage = ScaleAdd { input: input.clone(), gain, calls: &calls };
        infallible(ctx.run(&mut stage));

        let (mut input2, mut gain2, mut ctx2) = (input.clone(), gain, ctx.clone());
        match which {
            0 => {
                let i = (tweak as usize) % input2.len();
                input2[i] ^= tweak;
            }
            1 => gain2 = gain.wrapping_add(tweak),
            // Same store, different seed: clones share the artifact map,
            // so only the key separates the runs.
            _ => ctx2 = RunContext::new(seed.wrapping_add(tweak)),
        }
        let mut changed = ScaleAdd { input: input2.clone(), gain: gain2, calls: &calls };
        let out = infallible(ctx2.run(&mut changed));
        prop_assert_eq!(calls.load(Ordering::Relaxed), 2, "changed stage must not hit");
        let expect: Vec<u64> = input2
            .iter()
            .map(|v| v.wrapping_mul(gain2) ^ ctx2.seed())
            .collect();
        prop_assert_eq!(&*out, &expect);
    }

    /// The real [`PrepareImages`] stage: same pixels hit, one perturbed
    /// pixel misses. Plan changes must NOT miss — preparation declares
    /// itself plan-insensitive, so chaos and clean arms share it.
    #[test]
    fn prepare_images_keys_on_pixels_not_plan(
        w in 4usize..12,
        h in 4usize..12,
        img_seed in any::<u64>(),
        px in any::<usize>(),
        plan_seed in any::<u64>(),
    ) {
        let image = random_image(w, h, img_seed);
        let ctx = RunContext::new(1);
        let first = infallible(ctx.run(&mut PrepareImages::new(vec![&image])));
        let chaotic = ctx.clone().with_plan(Some(FaultPlan::chaos(plan_seed)));
        let shared = infallible(chaotic.run(&mut PrepareImages::new(vec![&image])));
        prop_assert!(
            Arc::ptr_eq(&first, &shared),
            "plan-insensitive stage must share artifacts across arms"
        );

        let mut perturbed = image.clone();
        let i = px % (w * h);
        let old = perturbed.pixels()[i];
        perturbed.pixels_mut()[i] = if old > 0.5 { old - 0.5 } else { old + 0.5 };
        let other = infallible(ctx.run(&mut PrepareImages::new(vec![&perturbed])));
        prop_assert!(
            !Arc::ptr_eq(&first, &other),
            "a changed pixel must change the fingerprint"
        );
    }

    /// The incident class ig-lint's F1 (fingerprint-completeness) exists
    /// to prevent, reproduced on purpose: a stage whose fingerprint omits
    /// a field `run()` reads. Two differently-configured stages collide on
    /// one cache key and the second is served the first's (stale, wrong)
    /// artifact — while the correctly-keyed twin from the same inputs
    /// recomputes. F1 flags the `UnderKeyed` shape at lint time; this test
    /// pins the runtime behavior that makes that flag worth failing CI on.
    #[test]
    fn unhashed_field_serves_stale_artifact(
        input in proptest::collection::vec(any::<u64>(), 1..32),
        gain in any::<u64>(),
        tweak in 1u64..u64::MAX,
        seed in any::<u64>(),
    ) {
        struct UnderKeyed<'a> {
            input: Vec<u64>,
            gain: u64,
            calls: &'a AtomicUsize,
        }
        impl Stage for UnderKeyed<'_> {
            type Output = Vec<u64>;
            type Error = Infallible;
            fn id(&self) -> &'static str {
                "test.under_keyed"
            }
            // BUG under test: `gain` is read by run() but not hashed.
            fn fingerprint(&self) -> Fingerprint {
                let mut h = FingerprintHasher::new();
                self.input.fingerprint_into(&mut h);
                h.finish()
            }
            fn run(&mut self, _ctx: &RunContext) -> Result<Vec<u64>, Infallible> {
                self.calls.fetch_add(1, Ordering::Relaxed);
                Ok(self.input.iter().map(|v| v.wrapping_mul(self.gain)).collect())
            }
        }
        let ctx = RunContext::new(seed);
        let calls = AtomicUsize::new(0);
        let gain2 = gain.wrapping_add(tweak);
        let first = infallible(ctx.run(&mut UnderKeyed { input: input.clone(), gain, calls: &calls }));
        let stale = infallible(ctx.run(&mut UnderKeyed { input: input.clone(), gain: gain2, calls: &calls }));
        prop_assert!(
            Arc::ptr_eq(&first, &stale),
            "under-keyed stage collides: the second config is served the first's artifact"
        );
        prop_assert_eq!(calls.load(Ordering::Relaxed), 1, "the stale hit never executed");
        // The correctly-keyed stage over the same inputs recomputes and
        // yields the artifact the stale hit should have produced.
        let kcalls = AtomicUsize::new(0);
        infallible(ctx.run(&mut ScaleAdd { input: input.clone(), gain, calls: &kcalls }));
        let fresh = infallible(ctx.run(&mut ScaleAdd { input: input.clone(), gain: gain2, calls: &kcalls }));
        prop_assert_eq!(kcalls.load(Ordering::Relaxed), 2, "keyed stage must not collide");
        let expect: Vec<u64> = input.iter().map(|v| v.wrapping_mul(gain2) ^ ctx.seed()).collect();
        prop_assert_eq!(&*fresh, &expect);
    }

    /// With memoization disabled the store stays empty, every run
    /// executes, and outputs still agree bit-for-bit with the memoized
    /// path — caching must be a pure optimization.
    #[test]
    fn memoized_and_unmemoized_runs_agree(
        input in proptest::collection::vec(any::<u64>(), 0..32),
        gain in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let memo = RunContext::new(seed);
        let raw = RunContext::new(seed).with_memoization(false);
        let calls = AtomicUsize::new(0);
        let a = infallible(memo.run(&mut ScaleAdd { input: input.clone(), gain, calls: &calls }));
        let b = infallible(raw.run(&mut ScaleAdd { input: input.clone(), gain, calls: &calls }));
        let c = infallible(raw.run(&mut ScaleAdd { input, gain, calls: &calls }));
        prop_assert_eq!(&*a, &*b);
        prop_assert_eq!(&*b, &*c);
        prop_assert_eq!(calls.load(Ordering::Relaxed), 3, "unmemoized runs always execute");
        prop_assert!(raw.store().is_empty());
    }
}
