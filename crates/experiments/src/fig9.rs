//! Figure 9: weak-label F1 vs development-set size for all six systems —
//! Inspector Gadget, Snuba, GOGGLES, self-learning VGG19 / MobileNetV2,
//! and the transfer-learning baseline.

use crate::common::{f1, run_inspector_gadget, ExpEnv, Prepared, Report};
use ig_augment::AugmentMethod;
use ig_baselines::cnn_models::CnnArch;
use ig_baselines::goggles::{Goggles, GogglesConfig};
use ig_baselines::selflearn::{SelfLearnConfig, SelfLearner};
use ig_baselines::snuba::{Snuba, SnubaConfig};
use ig_baselines::transfer::{fine_tune, pretrain};
use ig_core::ScaleTier;
use ig_imaging::GrayImage;
use ig_synth::spec::DatasetKind;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    dataset: String,
    dev_size: usize,
    method: String,
    f1: f64,
}

const METHODS: [&str; 6] = [
    "Inspector Gadget",
    "Snuba",
    "GOGGLES",
    "SL (VGG19)",
    "SL (MobileNetV2)",
    "TL (VGG19 + Pre-training)",
];

/// Run the Figure 9 reproduction.
pub fn run(env: &ExpEnv) {
    let seed = env.seed();
    let scale = *env.scale();
    let mut report = Report::new("fig9", &env.out);
    report.line(format!(
        "Figure 9 (reproduction, scale={}): weak-label F1 vs dev-set size",
        scale.name()
    ));
    let cnn_config = SelfLearnConfig {
        epochs: scale.cnn_epochs,
        ..Default::default()
    };
    let fractions = [0.4f64, 0.6, 0.8, 1.0];
    let mut points: Vec<Point> = Vec::new();

    for kind in DatasetKind::all() {
        let prepared = Prepared::new(&env.ctx, kind);
        let num_classes = prepared.num_classes();
        let test = prepared.test_images();
        let test_imgs: Vec<&GrayImage> = test.iter().map(|l| &l.image).collect();
        let test_labels = prepared.test_labels();
        report.line(format!(
            "\n--- {} (dev pool {}, test {}) ---",
            kind.display_name(),
            prepared.dev_order.len(),
            test.len()
        ));
        report.line(format!(
            "{:>8} {}",
            "dev",
            METHODS
                .iter()
                .map(|m| format!("{m:>26}"))
                .collect::<String>()
        ));

        // GOGGLES: clusters the whole corpus; dev labels only name the
        // clusters, so its score is constant across dev sizes (the flat
        // dotted line in the paper's plots).
        let goggles_f1 = {
            let mut rng = StdRng::seed_from_u64(seed ^ 0x90);
            let all_imgs: Vec<&GrayImage> =
                prepared.dataset.images.iter().map(|l| &l.image).collect();
            let dev_small =
                prepared.dev_prefix(((prepared.dev_order.len() as f64) * fractions[0]) as usize);
            let dev_pairs: Vec<(usize, usize)> = prepared
                .dev_order
                .iter()
                .take(dev_small.len())
                .map(|&i| (i, prepared.dataset.images[i].label))
                .collect();
            let goggles = Goggles::fit(
                &all_imgs,
                &dev_pairs,
                num_classes,
                &GogglesConfig::default(),
                &mut rng,
            );
            let preds = goggles.label(&test_imgs);
            f1(num_classes, &test_labels, &preds)
        };

        for &frac in &fractions {
            let k = ((prepared.dev_order.len() as f64) * frac).round() as usize;
            let dev = prepared.dev_prefix(k.max(6));
            let dev_size = dev.len();
            let dev_imgs: Vec<&GrayImage> = dev.iter().map(|l| &l.image).collect();
            let dev_labels: Vec<usize> = dev.iter().map(|l| l.label).collect();
            let dev_classes: std::collections::HashSet<usize> =
                dev_labels.iter().copied().collect();
            if dev_classes.len() < 2 {
                continue;
            }
            let mut scores: Vec<f64> = Vec::with_capacity(METHODS.len());

            // Inspector Gadget (tuning on except at quick scale).
            let ig_run = run_inspector_gadget(
                &env.ctx,
                &prepared,
                &dev,
                AugmentMethod::Both,
                scale.augment_budget,
                !matches!(scale.tier, ScaleTier::Quick),
                kind,
                seed ^ (dev_size as u64),
            );
            scores.push(ig_run.as_ref().map(|r| r.f1).unwrap_or(0.0));

            // Snuba on the same features.
            let snuba_f1 = ig_run
                .as_ref()
                .map(|r| {
                    let mut rng = StdRng::seed_from_u64(seed ^ 0x57 ^ dev_size as u64);
                    let snuba = Snuba::train(
                        &r.dev_features,
                        &dev_labels,
                        &r.test_features,
                        num_classes,
                        &SnubaConfig::default(),
                        &mut rng,
                    );
                    let preds = snuba.label(&r.test_features);
                    f1(num_classes, &test_labels, &preds)
                })
                .unwrap_or(0.0);
            scores.push(snuba_f1);

            scores.push(goggles_f1);

            // Self-learning CNNs.
            for arch in [CnnArch::MiniVgg, CnnArch::MiniMobileNet] {
                let mut rng = StdRng::seed_from_u64(seed ^ 0x60 ^ dev_size as u64);
                let mut learner = SelfLearner::train(
                    arch,
                    &dev_imgs,
                    &dev_labels,
                    num_classes,
                    &cnn_config,
                    &mut rng,
                );
                let preds = learner.label(&test_imgs);
                scores.push(f1(num_classes, &test_labels, &preds));
            }

            // Transfer learning: SynthNet pre-training, fine-tune on dev.
            // Pre-training epochs are halved: the trunk features converge
            // quickly on the procedural corpus and this stage dominates
            // the sweep's single-core runtime.
            {
                let mut rng = StdRng::seed_from_u64(seed ^ 0x70 ^ dev_size as u64);
                let corpus_n = match scale.tier {
                    ScaleTier::Quick => 64,
                    ScaleTier::Medium => 200,
                    ScaleTier::Paper | ScaleTier::Ooc => 640,
                };
                let synthnet = ig_synth::synthnet::generate(corpus_n, 32, seed ^ 0x71);
                let src_imgs: Vec<&GrayImage> = synthnet.images.iter().map(|l| &l.image).collect();
                let src_labels = synthnet.labels();
                let pretrain_config = ig_baselines::selflearn::SelfLearnConfig {
                    epochs: (cnn_config.epochs / 2).max(3),
                    ..cnn_config
                };
                let pre = pretrain(
                    CnnArch::MiniVgg,
                    &src_imgs,
                    &src_labels,
                    synthnet.task.num_classes(),
                    &pretrain_config,
                    &mut rng,
                );
                let mut tuned = fine_tune(
                    pre,
                    &dev_imgs,
                    &dev_labels,
                    num_classes,
                    &cnn_config,
                    &mut rng,
                );
                let preds = tuned.label(&test_imgs);
                scores.push(f1(num_classes, &test_labels, &preds));
            }

            report.line(format!(
                "{:>8} {}",
                dev_size,
                scores
                    .iter()
                    .map(|s| format!("{s:>26.3}"))
                    .collect::<String>()
            ));
            for (m, &s) in METHODS.iter().zip(&scores) {
                points.push(Point {
                    dataset: kind.display_name().to_string(),
                    dev_size,
                    method: m.to_string(),
                    f1: s,
                });
            }
        }
    }

    // Shape check: among non-pre-trained methods, IG is best or
    // second-best per dataset at the largest dev size.
    let mut top2 = 0usize;
    let mut total = 0usize;
    for kind in DatasetKind::all() {
        let name = kind.display_name();
        let max_dev = points
            .iter()
            .filter(|p| p.dataset == name)
            .map(|p| p.dev_size)
            .max();
        let Some(max_dev) = max_dev else { continue };
        let mut finals: Vec<(&str, f64)> = METHODS[..5] // exclude TL (pre-trained)
            .iter()
            .filter_map(|m| {
                points
                    .iter()
                    .find(|p| p.dataset == name && p.dev_size == max_dev && p.method == *m)
                    .map(|p| (*m, p.f1))
            })
            .collect();
        finals.sort_by(|a, b| b.1.total_cmp(&a.1));
        let rank = finals
            .iter()
            .position(|(m, _)| *m == "Inspector Gadget")
            .unwrap_or(usize::MAX);
        if rank < 2 {
            top2 += 1;
        }
        total += 1;
    }
    report.line(format!(
        "\nIG is best or second-best among non-pre-trained methods on {top2}/{total} datasets \
         (paper: on all five)"
    ));
    report.finish(&points);
}
