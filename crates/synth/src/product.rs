//! Product simulacra: strip-shaped images with scratch / bubble / stamping
//! defects. The paper splits its proprietary Product dataset into three
//! per-defect datasets (Section 6.1); we mirror that split.

use crate::defects::{paint_bubble, paint_scratch, paint_stamping};
use crate::spec::DatasetSpec;
use crate::surface::{corrupt_with_noise, strip_styled, StripStyle};
use crate::{Dataset, DefectKind, LabeledImage, TaskType};
use ig_imaging::{BBox, GrayImage};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

type Painter = fn(&mut GrayImage, &mut StdRng, f32) -> BBox;

/// Per-kind generation parameters, resolved once per dataset.
struct Setup {
    painter: Painter,
    name: &'static str,
    style: StripStyle,
    min_defects: usize,
    max_defects: usize,
}

/// One dispatch for the three Product defect kinds; anything else is a
/// caller bug, answered with `None` (the callers return an empty dataset
/// instead of panicking).
fn setup(kind: DefectKind) -> Option<Setup> {
    let (painter, name, style): (Painter, &'static str, StripStyle) = match kind {
        DefectKind::Scratch => (paint_scratch, "Product (scratch)", StripStyle::Matte),
        DefectKind::Bubble => (paint_bubble, "Product (bubble)", StripStyle::Glossy),
        DefectKind::Stamping => (paint_stamping, "Product (stamping)", StripStyle::Brushed),
        _ => return None,
    };
    // Bubbles are small: a defective image usually carries several.
    let (min_defects, max_defects) = match kind {
        DefectKind::Bubble => (1, 4),
        DefectKind::Scratch => (1, 3),
        _ => (1, 2),
    };
    Some(Setup {
        painter,
        name,
        style,
        min_defects,
        max_defects,
    })
}

fn not_a_product_defect(kind: DefectKind) -> Dataset {
    Dataset {
        name: format!("Product ({kind:?}: not a Product defect)"),
        task: TaskType::Binary,
        images: Vec::new(),
    }
}

/// Emit every image slot in generation (pre-shuffle) order, threading all
/// random draws through `rng` exactly as [`generate`] always has — shared
/// by the monolithic path and the out-of-core replay
/// ([`generate_range`]).
fn emit(spec: &DatasetSpec, setup: &Setup, rng: &mut StdRng, sink: &mut dyn FnMut(LabeledImage)) {
    for i in 0..spec.n {
        let defective = i < spec.n_defective;
        let surface_seed = spec.seed.wrapping_mul(37).wrapping_add(i as u64);
        let mut image = strip_styled(surface_seed, spec.width, spec.height, setup.style);
        let difficult = defective && rng.gen_bool(spec.difficult_fraction);
        let mut defect_boxes = Vec::new();
        if defective {
            let magnitude = if difficult {
                rng.gen_range(0.05..0.09)
            } else {
                rng.gen_range(0.25..0.45)
            };
            let count = rng.gen_range(setup.min_defects..=setup.max_defects);
            for _ in 0..count {
                defect_boxes.push((setup.painter)(&mut image, rng, -magnitude));
            }
        }
        let noisy = rng.gen_bool(spec.noisy_fraction);
        if noisy {
            image = corrupt_with_noise(&image, surface_seed.wrapping_add(7), rng);
        }
        sink(LabeledImage {
            image,
            label: usize::from(defective),
            defect_boxes,
            noisy,
            difficult,
        });
    }
}

/// Generate one of the three Product datasets.
pub fn generate(spec: &DatasetSpec, kind: DefectKind) -> Dataset {
    let Some(setup) = setup(kind) else {
        return not_a_product_defect(kind);
    };
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut images = Vec::with_capacity(spec.n);
    emit(spec, &setup, &mut rng, &mut |img| images.push(img));
    images.shuffle(&mut rng);
    Dataset {
        name: setup.name.to_string(),
        task: TaskType::Binary,
        images,
    }
}

/// Images `start..end` of [`generate`]'s (shuffled) output, bit-identical,
/// holding at most one off-shard image at a time — see
/// [`crate::replay_range`].
pub fn generate_range(spec: &DatasetSpec, kind: DefectKind, start: usize, end: usize) -> Dataset {
    let Some(setup) = setup(kind) else {
        return not_a_product_defect(kind);
    };
    let images = crate::replay_range(
        spec,
        |spec, rng, sink| emit(spec, &setup, rng, sink),
        start,
        end,
    );
    Dataset {
        name: setup.name.to_string(),
        task: TaskType::Binary,
        images,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DatasetKind;

    #[test]
    fn all_three_kinds_generate() {
        for (dk, sk) in [
            (DefectKind::Scratch, DatasetKind::ProductScratch),
            (DefectKind::Bubble, DatasetKind::ProductBubble),
            (DefectKind::Stamping, DatasetKind::ProductStamping),
        ] {
            let spec = DatasetSpec::quick(sk, 3);
            let d = generate(&spec, dk);
            assert_eq!(d.len(), spec.n);
            assert_eq!(d.num_defective(), spec.n_defective);
            assert_eq!(d.task, TaskType::Binary);
        }
    }

    #[test]
    fn crack_is_not_a_product_defect() {
        let spec = DatasetSpec::quick(DatasetKind::ProductScratch, 0);
        let d = generate(&spec, DefectKind::Crack);
        assert_eq!(d.len(), 0);
        assert!(d.name.contains("not a Product defect"));
    }

    #[test]
    fn bubble_images_can_carry_multiple_defects() {
        let spec = DatasetSpec {
            n: 30,
            n_defective: 30,
            ..DatasetSpec::quick(DatasetKind::ProductBubble, 4)
        };
        let d = generate(&spec, DefectKind::Bubble);
        let max_count = d.images.iter().map(|i| i.defect_boxes.len()).max().unwrap();
        assert!(max_count >= 2, "no multi-bubble image in 30 draws");
    }

    #[test]
    fn noisy_flag_matches_spec_rate_roughly() {
        let spec = DatasetSpec {
            n: 200,
            n_defective: 50,
            noisy_fraction: 0.2,
            ..DatasetSpec::quick(DatasetKind::ProductScratch, 5)
        };
        let d = generate(&spec, DefectKind::Scratch);
        let noisy = d.images.iter().filter(|i| i.noisy).count();
        assert!(
            (20..=65).contains(&noisy),
            "expected ~40 noisy images, got {noisy}"
        );
    }

    #[test]
    fn difficult_defects_exist_only_on_defective_images() {
        let spec = DatasetSpec {
            difficult_fraction: 0.5,
            ..DatasetSpec::quick(DatasetKind::ProductStamping, 6)
        };
        let d = generate(&spec, DefectKind::Stamping);
        for img in &d.images {
            if img.difficult {
                assert_eq!(img.label, 1);
            }
        }
        assert!(d.images.iter().any(|i| i.difficult));
    }
}
