//! Stage-graph runtime for the Inspector Gadget pipeline.
//!
//! The paper's system is an explicit dataflow — crowdsourced patterns →
//! augmenter → feature generation functions → labeler → end model (Fig. 2)
//! — and every layer of this workspace runs some slice of it. This crate
//! gives those slices one substrate:
//!
//! * [`Stage`]: a typed unit of work with a stable id and a structural
//!   [`Fingerprint`] over its inputs and configuration;
//! * [`RunContext`]: the single carrier of seed discipline, the active
//!   [`ig_faults::FaultPlan`], the thread budget, the [`ScalePlan`], a
//!   shared [`HealthReport`](ig_faults::HealthReport), and the artifact
//!   store;
//! * [`ArtifactStore`]: an in-memory content-addressed cache memoizing
//!   stage outputs by `(stage id, input fingerprint, seed, fault plan)`,
//!   so e.g. dev-set `PreparedImage`s and the dev feature matrix are
//!   computed once per run and shared across experiment arms by
//!   construction — capacity-bounded with LRU eviction that never drops
//!   an artifact a caller still holds;
//! * [`DiskStore`]: a crash-safe on-disk tier beneath the memory store
//!   (temp-file + fsync + atomic rename, checksum-verified loads,
//!   quarantine of corrupt artifacts, advisory pid locks), which is what
//!   makes killed sweeps resumable and warm starts possible — see the
//!   [`disk`] module docs for the durability protocol;
//! * [`Supervision`]: per-stage bounded retry-with-backoff ladders and
//!   post-hoc deadlines (via an injected [`Clock`]), recorded in the
//!   shared health report;
//! * [`shard`]: deterministic out-of-core streaming — a [`ShardPlan`]
//!   sized to the scale plan's memory budget splits a dataset into
//!   [`ShardSpec`]s, and [`Sharded`] runs a [`ShardableStage`] once per
//!   shard with shard-granular memoization and crash resume.
//!
//! Higher layers implement [`Stage`] for their own steps (`ig-core` ports
//! the training pipeline; `ig-experiments` ports dataset generation and
//! image preparation) and submit them through [`RunContext::run`].

pub mod codec;
pub mod context;
pub mod disk;
pub mod fingerprint;
pub mod scale;
pub mod shard;
pub mod stage;
pub mod stages;
pub mod store;

pub use codec::{Dec, Durable, Enc};
pub use context::{Clock, RunContext};
pub use disk::{DiskStats, DiskStore, Flight, FlightGuard};
pub use fingerprint::{Fingerprint, FingerprintHasher, Fingerprintable};
pub use scale::{ScalePlan, ScaleTier};
pub use shard::{ShardPlan, ShardSpec, ShardableStage, Sharded};
pub use stage::{Stage, Supervision};
pub use stages::{GenerateDataset, PrepareImages};
pub use store::ArtifactStore;

/// Collapse a `Result` whose error type is uninhabited.
///
/// Stages that cannot fail use [`core::convert::Infallible`] as their
/// error type; this turns the `Result` that [`RunContext::run`] still
/// returns back into the bare value without a panic path.
pub fn infallible<T>(result: Result<T, core::convert::Infallible>) -> T {
    match result {
        Ok(value) => value,
        Err(never) => match never {},
    }
}
