//! Workspace symbol table: every `fn` in every scanned file, addressed by
//! its full module path, plus the per-file import environment needed to
//! resolve call paths (`use`-aware, `crate`/`self`/`super`-aware).
//!
//! Resolution is deliberately *name-based and total*: anything that cannot
//! be pinned to a workspace fn degrades to an external path string (the
//! call graph turns those into explicit `Unknown` nodes). There is no type
//! inference — method calls resolve through the receiver only when it is
//! literally `self`, otherwise by workspace-unique method name.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::Ast;
use crate::context::FileContext;

/// One workspace function symbol.
#[derive(Debug)]
pub struct FnSym {
    /// Index of the file (into the slice `Symbols::build` was given).
    pub file: usize,
    /// Index into that file's `Ast::fns`.
    pub fn_idx: usize,
    /// Full path, e.g. `ig_runtime::disk::DiskStore::save`.
    pub path: String,
    /// Bare fn name.
    pub name: String,
    /// Last segment of the `impl` self type, for methods.
    pub self_type: Option<String>,
    /// Last segment of the implemented trait, for trait-impl methods.
    pub trait_name: Option<String>,
    /// Index into the file's `Ast::impls`, for methods.
    pub impl_idx: Option<usize>,
    /// Declared inside `#[cfg(test)]` / `#[test]` code.
    pub in_test: bool,
}

/// What a call path resolves to.
#[derive(Debug)]
pub enum Resolution {
    /// Workspace fns (several when the same name is declared repeatedly —
    /// e.g. one method per impl block).
    Fns(Vec<usize>),
    /// Not a workspace fn; the absolutized path names it (`std::fs::write`).
    External(String),
}

/// The workspace symbol table.
#[derive(Debug, Default)]
pub struct Symbols {
    pub fns: Vec<FnSym>,
    /// Full path → symbol indices (duplicates possible across cfg blocks).
    pub by_path: BTreeMap<String, Vec<usize>>,
    /// Bare name → symbol indices.
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// (self-type last segment, method name) → symbol indices.
    pub methods: BTreeMap<(String, String), Vec<usize>>,
    /// Method name → symbol indices (for receiver-blind resolution).
    pub by_method_name: BTreeMap<String, Vec<usize>>,
    /// Per file: `fn_idx` → symbol index.
    pub fn_of: Vec<BTreeMap<usize, usize>>,
    /// Per file: local alias → absolutized import path.
    pub imports: Vec<BTreeMap<String, Vec<String>>>,
    /// Per file: absolutized base paths of glob imports (`use x::*`).
    pub globs: Vec<Vec<Vec<String>>>,
    /// Per file: module path derived from the file's workspace path.
    pub module_of_file: Vec<Vec<String>>,
    /// Root module names of every scanned crate (`ig_runtime`, …).
    pub crate_roots: BTreeSet<String>,
}

/// Map a workspace-relative file path to its module path.
/// `crates/runtime/src/disk.rs` → `[ig_runtime, disk]`;
/// `crates/x/src/a/mod.rs` → `[ig_x, a]`; `src/lib.rs` →
/// `[inspector_gadget]`; test/bench/example files get a unique synthetic
/// root so their fns never collide with library paths.
pub fn module_path(rel: &str) -> Vec<String> {
    let rel = rel.strip_suffix(".rs").unwrap_or(rel);
    let segs: Vec<&str> = rel.split('/').filter(|s| !s.is_empty()).collect();
    let (root, rest): (String, &[&str]) = match segs.as_slice() {
        ["crates", c, "src", rest @ ..] => (format!("ig_{}", c.replace('-', "_")), rest),
        ["crates", c, kind, rest @ ..] => (
            format!("ig_{}_{}", c.replace('-', "_"), kind.replace('-', "_")),
            rest,
        ),
        ["src", rest @ ..] => ("inspector_gadget".to_string(), rest),
        [kind, rest @ ..] => (format!("root_{}", kind.replace('-', "_")), rest),
        [] => ("unknown".to_string(), &[]),
    };
    let mut out = vec![root];
    for (i, s) in rest.iter().enumerate() {
        let last = i + 1 == rest.len();
        if last && (*s == "lib" || *s == "main" || *s == "mod") {
            continue;
        }
        out.push(s.replace('-', "_"));
    }
    out
}

impl Symbols {
    /// Build the table over all files of a (possibly single-file) workspace.
    /// Files must already be in deterministic (sorted) order — symbol ids
    /// are assigned in file order, so the table inherits that determinism.
    pub fn build(ctxs: &[FileContext]) -> Symbols {
        let mut sy = Symbols::default();
        for ctx in ctxs {
            let m = module_path(ctx.path);
            if let Some(root) = m.first() {
                sy.crate_roots.insert(root.clone());
            }
            sy.module_of_file.push(m);
        }
        // Pass 1: declare fns.
        for (fi, ctx) in ctxs.iter().enumerate() {
            let file_mod = sy.module_of_file[fi].clone();
            let mut fn_map = BTreeMap::new();
            // Impl membership: fn index → impl index (first impl wins).
            let mut impl_of: BTreeMap<usize, usize> = BTreeMap::new();
            for (ii, im) in ctx.ast.impls.iter().enumerate() {
                for &f in &im.fn_ids {
                    impl_of.entry(f).or_insert(ii);
                }
            }
            for (fni, f) in ctx.ast.fns.iter().enumerate() {
                let impl_idx = impl_of.get(&fni).copied();
                let (self_type, trait_name) = match impl_idx {
                    Some(ii) => {
                        let im = &ctx.ast.impls[ii];
                        (
                            im.self_path.last().cloned(),
                            im.trait_path.as_ref().and_then(|t| t.last().cloned()),
                        )
                    }
                    None => (None, None),
                };
                let mut path_segs = file_mod.clone();
                path_segs.extend(f.module.iter().cloned());
                if let Some(st) = &self_type {
                    path_segs.push(st.clone());
                }
                path_segs.push(f.name.clone());
                let path = path_segs.join("::");
                let idx = sy.fns.len();
                let in_test = ctx.in_test.get(f.name_tok).copied().unwrap_or(false);
                sy.by_path.entry(path.clone()).or_default().push(idx);
                sy.by_name.entry(f.name.clone()).or_default().push(idx);
                if let Some(st) = &self_type {
                    sy.methods
                        .entry((st.clone(), f.name.clone()))
                        .or_default()
                        .push(idx);
                    sy.by_method_name
                        .entry(f.name.clone())
                        .or_default()
                        .push(idx);
                }
                fn_map.insert(fni, idx);
                sy.fns.push(FnSym {
                    file: fi,
                    fn_idx: fni,
                    path,
                    name: f.name.clone(),
                    self_type,
                    trait_name,
                    impl_idx,
                    in_test,
                });
            }
            sy.fn_of.push(fn_map);
        }
        // Pass 2: absolutize imports (needs every crate root known).
        for (fi, ctx) in ctxs.iter().enumerate() {
            let mut imports = BTreeMap::new();
            let mut globs = Vec::new();
            for u in &ctx.ast.uses {
                let mut base = sy.module_of_file[fi].clone();
                base.extend(u.module.iter().cloned());
                let abs = sy.absolutize(&u.path, &base);
                if u.alias == "*" {
                    let mut g = abs;
                    if g.last().is_some_and(|s| s == "*") {
                        g.pop();
                    }
                    if globs.len() < 64 {
                        globs.push(g);
                    }
                } else if !u.alias.is_empty() {
                    imports.insert(u.alias.clone(), abs);
                }
            }
            sy.imports.push(imports);
            sy.globs.push(globs);
        }
        sy
    }

    /// Rewrite `crate`/`self`/`super` prefixes against `module` (the module
    /// the path was written in). Other roots pass through unchanged.
    pub fn absolutize(&self, path: &[String], module: &[String]) -> Vec<String> {
        let mut out: Vec<String>;
        let mut rest = path;
        match path.first().map(String::as_str) {
            Some("crate") => {
                out = vec![module.first().cloned().unwrap_or_default()];
                rest = &path[1..];
            }
            Some("self") => {
                out = module.to_vec();
                rest = &path[1..];
            }
            Some("super") => {
                out = module.to_vec();
                while rest.first().is_some_and(|s| s == "super") {
                    out.pop();
                    rest = &rest[1..];
                }
            }
            _ => out = Vec::new(),
        }
        out.extend(rest.iter().cloned());
        out
    }

    /// Resolve a call path written inside file `fi`, module `module`
    /// (file module + inline mods of the enclosing fn). Total: anything
    /// unresolvable comes back as [`Resolution::External`].
    pub fn resolve_path(&self, fi: usize, module: &[String], segs: &[String]) -> Resolution {
        if segs.is_empty() {
            return Resolution::External(String::new());
        }
        if let [bare] = segs {
            return self.resolve_bare(fi, module, bare);
        }
        // Expand a leading alias (`use std::fs;` → `fs::write`), then
        // absolutize relative prefixes.
        let mut path = segs.to_vec();
        if let Some(exp) = path.first().and_then(|p0| self.imports[fi].get(p0)) {
            let mut p = exp.clone();
            p.extend(path.iter().skip(1).cloned());
            path = p;
        }
        let abs = self.absolutize(&path, module);
        let joined = abs.join("::");
        if let Some(ids) = self.by_path.get(&joined) {
            return Resolution::Fns(ids.clone());
        }
        // `Type::method` (possibly behind a module path): key on the last
        // two segments when the next-to-last looks like a type.
        if abs.len() >= 2 {
            let ty = &abs[abs.len() - 2];
            let name = &abs[abs.len() - 1];
            if ty.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                if let Some(ids) = self.methods.get(&(ty.clone(), name.clone())) {
                    return Resolution::Fns(ids.clone());
                }
            }
        }
        // Glob imports: try each base.
        for g in &self.globs[fi] {
            let mut cand = g.clone();
            cand.extend(abs.iter().cloned());
            if let Some(ids) = self.by_path.get(&cand.join("::")) {
                return Resolution::Fns(ids.clone());
            }
        }
        Resolution::External(joined)
    }

    fn resolve_bare(&self, fi: usize, module: &[String], name: &String) -> Resolution {
        // Same module first.
        let mut cand = module.to_vec();
        cand.push(name.clone());
        if let Some(ids) = self.by_path.get(&cand.join("::")) {
            return Resolution::Fns(ids.clone());
        }
        // Enclosing modules (covers fns in inline `mod tests` calling file-
        // level helpers through the ubiquitous `use super::*`).
        let mut m = module.to_vec();
        while m.pop().is_some() {
            let mut cand = m.clone();
            cand.push(name.clone());
            if let Some(ids) = self.by_path.get(&cand.join("::")) {
                return Resolution::Fns(ids.clone());
            }
        }
        // Exact import.
        if let Some(p) = self.imports[fi].get(name) {
            let joined = p.join("::");
            if let Some(ids) = self.by_path.get(&joined) {
                return Resolution::Fns(ids.clone());
            }
            return Resolution::External(joined);
        }
        // Glob imports.
        for g in &self.globs[fi] {
            let mut cand = g.clone();
            cand.push(name.clone());
            if let Some(ids) = self.by_path.get(&cand.join("::")) {
                return Resolution::Fns(ids.clone());
            }
        }
        // Workspace-unique bare name.
        if let Some(ids) = self.by_name.get(name) {
            if ids.len() == 1 {
                return Resolution::Fns(ids.clone());
            }
        }
        Resolution::External(name.clone())
    }

    /// Resolve `recv.method(..)` where `recv` is literally `self` inside a
    /// method of `self_type`; falls back to workspace-unique method name.
    pub fn resolve_method(&self, self_type: Option<&str>, method: &str) -> Resolution {
        if let Some(st) = self_type {
            if let Some(ids) = self.methods.get(&(st.to_string(), method.to_string())) {
                return Resolution::Fns(ids.clone());
            }
        }
        match self.by_method_name.get(method) {
            Some(ids) if ids.len() == 1 => Resolution::Fns(ids.clone()),
            _ => Resolution::External(format!(".{method}")),
        }
    }

    /// Full module path of fn `fn_idx` in file `fi` (file path + inline
    /// mods), *without* the self-type segment — the namespace its bare
    /// calls resolve in.
    pub fn fn_module(&self, fi: usize, ast: &Ast, fn_idx: usize) -> Vec<String> {
        let mut m = self.module_of_file[fi].clone();
        if let Some(f) = ast.fns.get(fn_idx) {
            m.extend(f.module.iter().cloned());
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_path_maps_workspace_layout() {
        assert_eq!(module_path("crates/runtime/src/lib.rs"), vec!["ig_runtime"]);
        assert_eq!(
            module_path("crates/runtime/src/disk.rs"),
            vec!["ig_runtime", "disk"]
        );
        assert_eq!(module_path("crates/x/src/a/mod.rs"), vec!["ig_x", "a"]);
        assert_eq!(module_path("src/lib.rs"), vec!["inspector_gadget"]);
        assert_eq!(
            module_path("crates/runtime/tests/memoization.rs"),
            vec!["ig_runtime_tests", "memoization"]
        );
    }

    #[test]
    fn hyphenated_crate_dirs_become_underscored_roots() {
        assert_eq!(
            module_path("crates/my-crate/src/lib.rs"),
            vec!["ig_my_crate"]
        );
    }
}
