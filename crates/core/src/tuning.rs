//! Automatic labeler tuning (Sections 5.2 and 6.5).
//!
//! "We use an MLP with 1 to 3 hidden layers and varied the number of nodes
//! per hidden layer to be one of {2^n | n = 1..m and 2^(m−1) ≤ I ≤ 2^m}
//! where I is the number of input nodes." Candidates are scored with
//! stratified k-fold cross-validation on the development set (each fold
//! keeping at least 20 examples per class when possible) and the best
//! architecture is retrained on the full development set.

use crate::features::FeatureGenerator;
use crate::labeler::{Labeler, LabelerConfig};
use crate::{CoreError, Result};
use ig_eval::metrics::{binary_f1, macro_f1};
use ig_faults::{FaultKind, HealthReport, RecoveryAction, Stage};
use ig_imaging::prepared::PreparedImage;
use ig_nn::lbfgs::LbfgsConfig;
use ig_nn::train::{paper_fold_count, stratified_kfold};
use ig_nn::Matrix;
use rand::Rng;

/// Tuning parameters.
#[derive(Debug, Clone)]
pub struct TuningConfig {
    /// Maximum hidden depth (paper: 3).
    pub max_hidden_layers: usize,
    /// Paper rule: each CV fold keeps at least this many examples per
    /// class (paper: 20); fold count derives from it.
    pub min_per_class_per_fold: usize,
    /// L2 decay passed to every candidate.
    pub l2: f32,
    /// L-BFGS settings per candidate fit.
    pub lbfgs: LbfgsConfig,
}

impl Default for TuningConfig {
    fn default() -> Self {
        Self {
            max_hidden_layers: 3,
            min_per_class_per_fold: 20,
            l2: 1e-3,
            lbfgs: LbfgsConfig {
                max_iters: 120,
                ..Default::default()
            },
        }
    }
}

/// One evaluated candidate.
#[derive(Debug, Clone)]
pub struct CandidateScore {
    /// Hidden layer widths.
    pub hidden: Vec<usize>,
    /// Mean cross-validated F1.
    pub cv_f1: f64,
}

/// What the tuner tried and chose.
#[derive(Debug, Clone)]
pub struct TuningReport {
    /// Every candidate with its CV score.
    pub candidates: Vec<CandidateScore>,
    /// The chosen architecture.
    pub best_hidden: Vec<usize>,
    /// Its CV F1.
    pub best_cv_f1: f64,
    /// Folds used.
    pub folds: usize,
}

/// The paper's width set: powers of two `2^1 .. 2^m` with
/// `2^(m-1) ≤ I ≤ 2^m` for input dimension `I`.
pub fn width_options(input_dim: usize) -> Vec<usize> {
    let mut m = 1usize;
    while (1usize << m) < input_dim.max(2) {
        m += 1;
    }
    (1..=m).map(|n| 1usize << n).collect()
}

/// All candidate architectures: depth 1..=max_depth, uniform width from
/// [`width_options`].
pub fn candidate_architectures(input_dim: usize, max_depth: usize) -> Vec<Vec<usize>> {
    let widths = width_options(input_dim);
    let mut out = Vec::new();
    for depth in 1..=max_depth.max(1) {
        for &w in &widths {
            out.push(vec![w; depth]);
        }
    }
    out
}

fn f1_of(num_classes: usize, gold: &[usize], pred: &[usize]) -> f64 {
    if num_classes == 2 {
        let g: Vec<bool> = gold.iter().map(|&v| v == 1).collect();
        let p: Vec<bool> = pred.iter().map(|&v| v == 1).collect();
        binary_f1(&g, &p).f1
    } else {
        macro_f1(num_classes, gold, pred)
    }
}

/// Evaluate one architecture by stratified k-fold CV; returns the mean F1.
pub fn cross_validate(
    features: &Matrix,
    labels: &[usize],
    num_classes: usize,
    hidden: &[usize],
    config: &TuningConfig,
    folds: usize,
    rng: &mut impl Rng,
) -> Result<f64> {
    let splits = stratified_kfold(labels, folds, rng);
    let mut total = 0.0f64;
    let mut counted = 0usize;
    for fold in &splits {
        if fold.train.is_empty() || fold.val.is_empty() {
            continue;
        }
        let x_train = features.select_rows(&fold.train);
        let y_train: Vec<usize> = fold.train.iter().map(|&i| labels[i]).collect();
        // A fold whose training half lost a class entirely cannot be fit.
        let classes_present = {
            let mut seen = vec![false; num_classes];
            for &y in &y_train {
                seen[y] = true;
            }
            seen.iter().all(|&s| s)
        };
        if !classes_present {
            continue;
        }
        let mut labeler = Labeler::new(
            features.cols(),
            LabelerConfig {
                hidden: hidden.to_vec(),
                num_classes,
                l2: config.l2,
                lbfgs: config.lbfgs,
            },
            rng,
        )?;
        labeler.fit(&x_train, &y_train)?;
        let x_val = features.select_rows(&fold.val);
        let y_val: Vec<usize> = fold.val.iter().map(|&i| labels[i]).collect();
        let preds = labeler.predict(&x_val);
        total += f1_of(num_classes, &y_val, &preds);
        counted += 1;
    }
    if counted == 0 {
        return Err(CoreError::BadDevSet(
            "no usable cross-validation folds".into(),
        ));
    }
    Ok(total / counted as f64)
}

/// Full tuning procedure: score every candidate, retrain the best on the
/// whole development set.
pub fn tune_labeler(
    features: &Matrix,
    labels: &[usize],
    num_classes: usize,
    config: &TuningConfig,
    rng: &mut impl Rng,
) -> Result<(Labeler, TuningReport)> {
    tune_labeler_with_health(features, labels, num_classes, config, rng, None)
}

/// [`tune_labeler`] with a recovery ladder: a candidate whose
/// cross-validation fails (diverged fits, unusable folds) is skipped and
/// recorded on `health` instead of aborting the whole search. Tuning
/// only errors when *no* candidate survives — callers then fall back to
/// a fixed architecture or a class-prior labeler.
pub fn tune_labeler_with_health(
    features: &Matrix,
    labels: &[usize],
    num_classes: usize,
    config: &TuningConfig,
    rng: &mut impl Rng,
    health: Option<&HealthReport>,
) -> Result<(Labeler, TuningReport)> {
    if features.rows() != labels.len() || features.rows() == 0 {
        return Err(CoreError::BadDevSet("empty or mismatched dev set".into()));
    }
    let distinct = {
        let mut seen = std::collections::HashSet::new();
        labels.iter().for_each(|&l| {
            seen.insert(l);
        });
        seen.len()
    };
    if distinct < 2 {
        return Err(CoreError::BadDevSet(
            "development set has a single class".into(),
        ));
    }
    let folds = paper_fold_count(labels, config.min_per_class_per_fold);
    let mut candidates = Vec::new();
    let mut best: Option<CandidateScore> = None;
    for hidden in candidate_architectures(features.cols(), config.max_hidden_layers) {
        let cv_f1 = match cross_validate(features, labels, num_classes, &hidden, config, folds, rng)
        {
            Ok(f1) => f1,
            Err(e) => {
                if let Some(h) = health {
                    h.record(
                        Stage::Tuning,
                        FaultKind::TuningFailure,
                        RecoveryAction::NoneRequired,
                        format!("candidate {hidden:?} skipped: {e}"),
                    );
                }
                continue;
            }
        };
        let cand = CandidateScore {
            hidden: hidden.clone(),
            cv_f1,
        };
        if best.as_ref().is_none_or(|b| cand.cv_f1 > b.cv_f1) {
            best = Some(cand.clone());
        }
        candidates.push(cand);
    }
    let Some(best) = best else {
        return Err(CoreError::BadDevSet(
            "every tuning candidate failed cross-validation".into(),
        ));
    };
    let mut labeler = Labeler::new(
        features.cols(),
        LabelerConfig {
            hidden: best.hidden.clone(),
            num_classes,
            l2: config.l2,
            lbfgs: config.lbfgs,
        },
        rng,
    )?;
    labeler.fit_with_health(features, labels, health)?;
    Ok((
        labeler,
        TuningReport {
            candidates,
            best_hidden: best.hidden,
            best_cv_f1: best.cv_f1,
            folds,
        },
    ))
}

/// Tune straight from prepared images: the batched matching engine runs
/// exactly once here, and the resulting feature matrix is shared by every
/// candidate architecture and every cross-validation fold (folds only
/// `select_rows`; they never re-match patterns). Returns the matrix
/// alongside the tuned labeler so callers can keep reusing it — e.g. for
/// the final refit or downstream error analysis.
#[allow(clippy::too_many_arguments)]
pub fn tune_labeler_on_prepared(
    fg: &FeatureGenerator,
    images: &[PreparedImage],
    labels: &[usize],
    num_classes: usize,
    config: &TuningConfig,
    rng: &mut impl Rng,
    health: Option<&HealthReport>,
) -> Result<(Labeler, TuningReport, Matrix)> {
    let features = match health {
        Some(h) => fg.feature_matrix_prepared_with_health(images, None, h),
        None => fg.feature_matrix_prepared(images),
    };
    let (labeler, report) =
        tune_labeler_with_health(&features, labels, num_classes, config, rng, health)?;
    Ok((labeler, report, features))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn width_options_follow_paper_rule() {
        // I = 20 → m = 5 (16 < 20 ≤ 32): widths 2..32.
        assert_eq!(width_options(20), vec![2, 4, 8, 16, 32]);
        // I = 16 → exact power: m = 4.
        assert_eq!(width_options(16), vec![2, 4, 8, 16]);
        assert_eq!(width_options(2), vec![2]);
        assert_eq!(width_options(3), vec![2, 4]);
    }

    #[test]
    fn candidate_count_is_depth_times_widths() {
        let c = candidate_architectures(16, 3);
        assert_eq!(c.len(), 4 * 3);
        assert!(c.contains(&vec![8, 8, 8]));
        assert!(c.contains(&vec![2]));
    }

    fn separable_data(seed: u64, n: usize) -> (Matrix, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let defect = i % 2 == 1;
            let base: f32 = if defect { 0.95 } else { 0.82 };
            rows.push(vec![
                base + rng.gen_range(-0.02..0.02),
                rng.gen_range(0.8..0.9),
                base + rng.gen_range(-0.02..0.02),
                rng.gen_range(0.8..0.9),
            ]);
            labels.push(usize::from(defect));
        }
        (Matrix::from_rows(&rows), labels)
    }

    #[test]
    fn tuning_picks_a_working_architecture() {
        let mut rng = StdRng::seed_from_u64(0);
        let (x, y) = separable_data(1, 80);
        let config = TuningConfig {
            max_hidden_layers: 2,
            lbfgs: LbfgsConfig {
                max_iters: 60,
                ..Default::default()
            },
            ..Default::default()
        };
        let (labeler, report) = tune_labeler(&x, &y, 2, &config, &mut rng).unwrap();
        assert!(report.best_cv_f1 > 0.8, "cv f1 {}", report.best_cv_f1);
        assert!(!report.candidates.is_empty());
        let preds = labeler.predict(&x);
        let correct = preds.iter().zip(&y).filter(|(a, b)| a == b).count();
        assert!(correct >= 70, "{correct}/80");
    }

    #[test]
    fn tuning_report_contains_all_candidates() {
        let mut rng = StdRng::seed_from_u64(2);
        let (x, y) = separable_data(3, 60);
        let config = TuningConfig {
            max_hidden_layers: 3,
            lbfgs: LbfgsConfig {
                max_iters: 30,
                ..Default::default()
            },
            ..Default::default()
        };
        let (_, report) = tune_labeler(&x, &y, 2, &config, &mut rng).unwrap();
        // x has 4 columns → widths {2, 4} → 2 * 3 depths = 6 candidates.
        assert_eq!(report.candidates.len(), 6);
        let best_in_list = report
            .candidates
            .iter()
            .map(|c| c.cv_f1)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((best_in_list - report.best_cv_f1).abs() < 1e-12);
    }

    #[test]
    fn tune_on_prepared_matches_tuning_on_computed_features() {
        use crate::pattern::Pattern;
        use ig_imaging::GrayImage;
        let mut pat = GrayImage::filled(7, 7, 0.15);
        pat.fill_rect(0, 0, 7, 1, 0.6);
        let fg = FeatureGenerator::new(vec![Pattern::crowd(pat)]).unwrap();
        let mut images = Vec::new();
        let mut labels = Vec::new();
        for i in 0..60 {
            let defect = i % 2 == 1;
            let mut img = GrayImage::from_fn(48, 32, |x, y| {
                0.65 + 0.05 * ((x as f32 * 0.4).sin() * (y as f32 * 0.3).cos())
            });
            if defect {
                img.fill_rect(2 + (i % 30), 2 + (i % 20), 7, 7, 0.15);
            }
            images.push(img);
            labels.push(usize::from(defect));
        }
        let refs: Vec<&GrayImage> = images.iter().collect();
        let config = TuningConfig {
            max_hidden_layers: 1,
            lbfgs: LbfgsConfig {
                max_iters: 40,
                ..Default::default()
            },
            ..Default::default()
        };
        let features = fg.feature_matrix(&refs);
        let mut rng_a = StdRng::seed_from_u64(30);
        let (labeler_a, report_a) =
            tune_labeler(&features, &labels, 2, &config, &mut rng_a).unwrap();
        let prepped = fg.prepare_images(&refs);
        let mut rng_b = StdRng::seed_from_u64(30);
        let (labeler_b, report_b, shared) =
            tune_labeler_on_prepared(&fg, &prepped, &labels, 2, &config, &mut rng_b, None).unwrap();
        assert_eq!(features.as_slice(), shared.as_slice());
        assert_eq!(report_a.best_hidden, report_b.best_hidden);
        assert_eq!(labeler_a.predict(&features), labeler_b.predict(&shared));
    }

    #[test]
    fn single_class_dev_set_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        let x = Matrix::from_rows(&[vec![0.5, 0.5], vec![0.6, 0.4]]);
        let y = vec![0usize, 0];
        assert!(tune_labeler(&x, &y, 2, &TuningConfig::default(), &mut rng).is_err());
    }

    #[test]
    fn empty_dev_set_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        let x = Matrix::zeros(0, 3);
        assert!(tune_labeler(&x, &[], 2, &TuningConfig::default(), &mut rng).is_err());
    }

    #[test]
    fn fold_count_respects_small_dev_sets() {
        let mut rng = StdRng::seed_from_u64(6);
        let (x, y) = separable_data(7, 20);
        let config = TuningConfig {
            max_hidden_layers: 1,
            lbfgs: LbfgsConfig {
                max_iters: 30,
                ..Default::default()
            },
            ..Default::default()
        };
        // 10 per class, min 20 per fold → clamps to 2 folds and still runs.
        let (_, report) = tune_labeler(&x, &y, 2, &config, &mut rng).unwrap();
        assert_eq!(report.folds, 2);
    }
}
