//! Small helpers for scrubbing non-finite values out of numeric data.

use ig_nn::Matrix;

/// Replace a non-finite value with `fallback`. Returns the cleaned value
/// and whether a replacement happened.
#[inline]
pub fn finite_or(value: f32, fallback: f32) -> (f32, bool) {
    if value.is_finite() {
        (value, false)
    } else {
        (fallback, true)
    }
}

/// Scrub non-finite entries from a slice in place. Returns how many
/// entries were replaced.
pub fn scrub_slice(values: &mut [f32], fallback: f32) -> usize {
    let mut replaced = 0;
    for v in values {
        if !v.is_finite() {
            *v = fallback;
            replaced += 1;
        }
    }
    replaced
}

/// Scrub non-finite entries from a matrix in place. Returns how many
/// entries were replaced.
pub fn scrub_matrix(m: &mut Matrix, fallback: f32) -> usize {
    scrub_slice(m.as_mut_slice(), fallback)
}

/// True when every entry of the slice is finite.
#[inline]
pub fn all_finite(values: &[f32]) -> bool {
    values.iter().all(|v| v.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_or_passes_and_replaces() {
        assert_eq!(finite_or(1.5, 0.0), (1.5, false));
        assert_eq!(finite_or(f32::NAN, 0.0), (0.0, true));
        assert_eq!(finite_or(f32::INFINITY, -1.0), (-1.0, true));
    }

    #[test]
    fn scrub_counts_replacements() {
        let mut v = vec![1.0, f32::NAN, 2.0, f32::NEG_INFINITY];
        assert_eq!(scrub_slice(&mut v, 0.0), 2);
        assert_eq!(v, vec![1.0, 0.0, 2.0, 0.0]);
        assert!(all_finite(&v));
    }

    #[test]
    fn scrub_matrix_cleans_everything() {
        let mut m = Matrix::from_vec(2, 2, vec![f32::NAN, 1.0, f32::INFINITY, 4.0]);
        assert_eq!(scrub_matrix(&mut m, 0.5), 2);
        assert!(all_finite(m.as_slice()));
        assert_eq!(m.get(0, 1), 1.0);
    }
}
